//! String-level machinery behind typing: deterministic (one-unambiguous)
//! expressions, inclusion with counterexample words, and the `equiv[R]`
//! oracle of Definition 1.
//!
//! ```sh
//! cargo run --release --example perfect_typing_words
//! ```

use dxml::automata::equiv::{equivalent, included};
use dxml::automata::{dre, RFormalism, Regex, RSpec};

fn main() {
    // One-unambiguity (the dRE test of Brüggemann-Klein/Wood).
    println!("[one-unambiguity]");
    for src in ["a*bc*", "(ab)*", "(a|b)*a", "(a|b)*a(a|b)"] {
        let re = Regex::parse_chars(src).unwrap();
        let expr = dre::one_unambiguous_expr(&re);
        let lang = dre::one_unambiguous_language(&re.to_nfa());
        println!("  {src:<14} expression: {expr:<5}  language: {lang}");
    }
    // (a|b)*a is not deterministic as written but its language is: a dRE
    // content model exists (b*a(b*a)*).
    let nondet = Regex::parse_chars("(a|b)*a").unwrap();
    let det = Regex::parse_chars("b*a(b*a)*").unwrap();
    assert!(!dre::one_unambiguous_expr(&nondet));
    assert!(dre::one_unambiguous_expr(&det));
    assert!(equivalent(&nondet.to_nfa(), &det.to_nfa()).is_ok());
    println!("  (a|b)*a ≡ b*a(b*a)*, the right-hand side is a dRE");

    // RSpec: the same content model in all four formalisms R.
    println!("\n[content models across formalisms]");
    for f in RFormalism::ALL {
        let spec = RSpec::parse_chars(f, "a*bc*").unwrap();
        println!("  {f}: size {} accepts `ab`: {}", spec.size(), spec.accepts(&dxml::automata::symbol::word_chars("ab")));
    }
    // dRE rejects genuinely nondeterministic expressions.
    assert!(RSpec::parse_chars(RFormalism::Dre, "(a|b)*a").is_err());
    println!("  dRE rejects (a|b)*a as written");

    // Inclusion with shortest counterexample words — the oracle local
    // typing verification composes.
    println!("\n[inclusion counterexamples]");
    let narrow = Regex::parse("country, Good, index").unwrap().to_nfa();
    let wide = Regex::parse("country, Good, (index | value, year)").unwrap().to_nfa();
    assert!(included(&narrow, &wide).is_ok());
    let broken = Regex::parse("country, Good, index, value").unwrap().to_nfa();
    match included(&broken, &wide) {
        Err(ce) => println!("  broken office ⊄ τ(nationalIndex): {}", ce.describe()),
        Ok(()) => unreachable!(),
    }
}
