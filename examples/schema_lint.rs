//! Schema lint: the `dxml-analysis` diagnostic passes over the repo's
//! schema corpus, with rustc-style output.
//!
//! Two parts:
//!
//! 1. a **showcase** over a deliberately flawed design, demonstrating every
//!    diagnostic family (structural, content-model, definability advisory,
//!    design-level) — its findings never affect the exit code;
//! 2. the **corpus gate**: every schema and design the examples and bench
//!    workloads use is linted, and the process exits non-zero if any
//!    diagnostic of `error` severity survives — the CI entry point.
//!
//! ```sh
//! cargo run --example schema_lint
//! ```

use std::process::ExitCode;

use dxml::analysis::{analyze_box_design, analyze_design, analyze_schema, AnySchema};
use dxml::automata::{RFormalism, Regex, RSpec};
use dxml::core::{DesignProblem, DistributedDoc};
use dxml::schema::{RDtd, REdtd};
use dxml::{Diagnostic, Severity};

/// Prints a report under a corpus-entry header; returns the error count.
fn render(entry: &str, report: &[Diagnostic]) -> usize {
    if report.is_empty() {
        println!("{entry}: clean");
        return 0;
    }
    println!("{entry}:");
    for d in report {
        println!("{d}");
    }
    report.iter().filter(|d| d.severity == Severity::Error).count()
}

/// A design with one of everything: an unsatisfiable element, an
/// unreachable one, a non-one-unambiguous content model, a shadowed
/// function name, a never-docked function, a schema-less call and a
/// secretly-DTD-definable EDTD target in the box variant.
fn showcase() {
    println!("== showcase: a deliberately flawed design ==");
    let mut target = RDtd::parse(
        RFormalism::Nre,
        "store -> item*, f?\n\
         item -> (sku | sku), price\n\
         loop -> loop\n\
         orphan -> price",
    )
    .expect("showcase DTD parses");
    target.add_element("f");
    let mut fschema = RDtd::new(RFormalism::Nre, "item");
    fschema.set_rule("item", RSpec::Nre(Regex::parse("sku, price").unwrap()));
    let problem = DesignProblem::new(target)
        .with_function("f", fschema.clone())
        .with_function("audit", fschema);
    let doc = DistributedDoc::parse("store(item(sku price) f ghost)", ["f", "ghost"])
        .expect("showcase document parses");
    let report = analyze_design(&problem, &doc);
    for d in &report {
        println!("{d}");
    }

    println!("\n== showcase: an EDTD that is secretly a DTD ==");
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("x", "a");
    e.add_specialization("y", "a");
    e.set_rule("s", RSpec::Nre(Regex::parse("x y*").unwrap()));
    e.set_rule("x", RSpec::Nre(Regex::parse("b").unwrap()));
    e.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
    for d in analyze_schema(AnySchema::Edtd(&e)) {
        println!("{d}");
    }
}

/// Lints every schema and design of the example/bench corpus; returns the
/// number of error-severity diagnostics.
fn corpus_gate() -> usize {
    println!("\n== corpus gate ==");
    let mut errors = 0;

    // The Figure 3 Eurostat type driving the paper examples.
    let eurostat = RDtd::parse_w3c(
        RFormalism::Dre,
        r#"<!ELEMENT eurostat (averages, nationalIndex*)>
           <!ELEMENT averages (Good, index+)+>
           <!ELEMENT nationalIndex (country, Good, (index | (value, year)))>
           <!ELEMENT index (value, year)>
           <!ELEMENT country (#PCDATA)>
           <!ELEMENT Good (#PCDATA)>
           <!ELEMENT value (#PCDATA)>
           <!ELEMENT year (#PCDATA)>"#,
    )
    .expect("Figure 3 parses as a dRE-DTD");
    errors += render("eurostat (Figure 3)", &analyze_schema(AnySchema::Dtd(&eurostat)));

    // The one-c specialised target of the box-design example.
    let mut one_c = REdtd::new(RFormalism::Nre, "s", "s");
    one_c.add_specialization("ab", "a");
    one_c.add_specialization("ac", "a");
    one_c.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
    one_c.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
    one_c.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
    errors += render("one-c target (box_design)", &analyze_schema(AnySchema::Edtd(&one_c)));

    // The seeded bench families, one schema per formalism.
    for formalism in RFormalism::ALL {
        let dtd = dxml_bench::dtd_family(formalism, 12, 7);
        let entry = format!("bench dtd_family({formalism}, n=12)");
        errors += render(&entry, &analyze_schema(AnySchema::Dtd(&dtd)));
    }

    // The bench design workloads, both kinds.
    let (problem, doc) = dxml_bench::design_workload(12, 3, 7);
    errors += render("bench design_workload(n=12)", &analyze_design(&problem, &doc));
    let (problem, doc) = dxml_bench::box_workload(6);
    errors += render("bench box_workload(n=6)", &analyze_box_design(&problem, &doc));

    errors
}

fn main() -> ExitCode {
    showcase();
    let errors = corpus_gate();
    if errors > 0 {
        println!("\nschema lint: {errors} error-severity diagnostic(s) in the corpus");
        return ExitCode::FAILURE;
    }
    println!("\nschema lint: corpus clean (no error-severity diagnostics)");
    ExitCode::SUCCESS
}
