//! Schema lint: the `dxml-analysis` diagnostic passes over the repo's
//! schema corpus, with rustc-style output.
//!
//! Two parts:
//!
//! 1. a **showcase** over a deliberately flawed design, demonstrating every
//!    diagnostic family (structural, content-model, definability advisory,
//!    design-level) — its findings never affect the exit code;
//! 2. the **corpus gate**: every schema and design the examples and bench
//!    workloads use is linted, and the process exits non-zero if any
//!    diagnostic of `error` severity survives — the CI entry point.
//!
//! ```sh
//! cargo run --example schema_lint             # rustc-style text report
//! cargo run --example schema_lint -- --json   # machine-readable findings
//! cargo run --example schema_lint -- --costs  # + static cost predictions
//! ```
//!
//! With `--json` the corpus-gate findings are emitted as one JSON document
//! (`{"entries": [...], "errors": N}`, rendered by
//! `dxml_analysis::report`) in the same machine-readable spirit as the
//! `BENCH_*`/`TELEMETRY_*` files; the showcase prose is skipped and the
//! exit-code contract is unchanged. `--costs` appends the static
//! cost-analysis summary (`dxml_analysis::cost`) for the corpus designs —
//! predicted state/step brackets, the dominating location and the
//! recommended budget quotas — as text or, combined with `--json`, as a
//! `"costs"` array in the same document.

use std::process::ExitCode;

use dxml::analysis::report::{error_count, json_string, render_json, render_text};
use dxml::analysis::{
    analyze_box_design, analyze_design, analyze_schema, box_design_cost, design_cost,
    recommended_quotas, AnySchema, DesignCost, DEFAULT_HEADROOM,
};
use dxml::automata::{RFormalism, Regex, RSpec};
use dxml::core::{DesignProblem, DistributedDoc};
use dxml::schema::{RDtd, REdtd};
use dxml::Diagnostic;

/// A design with one of everything: an unsatisfiable element, an
/// unreachable one, a non-one-unambiguous content model, a shadowed
/// function name, a never-docked function, a schema-less call and a
/// secretly-DTD-definable EDTD target in the box variant.
fn showcase() {
    println!("== showcase: a deliberately flawed design ==");
    let mut target = RDtd::parse(
        RFormalism::Nre,
        "store -> item*, f?\n\
         item -> (sku | sku), price\n\
         loop -> loop\n\
         orphan -> price",
    )
    .expect("showcase DTD parses");
    target.add_element("f");
    let mut fschema = RDtd::new(RFormalism::Nre, "item");
    fschema.set_rule("item", RSpec::Nre(Regex::parse("sku, price").unwrap()));
    let problem = DesignProblem::new(target)
        .with_function("f", fschema.clone())
        .with_function("audit", fschema);
    let doc = DistributedDoc::parse("store(item(sku price) f ghost)", ["f", "ghost"])
        .expect("showcase document parses");
    let report = analyze_design(&problem, &doc);
    for d in &report {
        println!("{d}");
    }

    println!("\n== showcase: an EDTD that is secretly a DTD ==");
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("x", "a");
    e.add_specialization("y", "a");
    e.set_rule("s", RSpec::Nre(Regex::parse("x y*").unwrap()));
    e.set_rule("x", RSpec::Nre(Regex::parse("b").unwrap()));
    e.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
    for d in analyze_schema(AnySchema::Edtd(&e)) {
        println!("{d}");
    }

    println!("\n== showcase: a predicted-exponential content model ==");
    let adversarial = dxml_bench::adversarial_dtd(10);
    for d in analyze_schema(AnySchema::Dtd(&adversarial)) {
        println!("{d}");
    }
}

/// Lints every schema and design of the example/bench corpus; returns the
/// findings per corpus entry, in corpus order.
fn corpus_findings() -> Vec<(String, Vec<Diagnostic>)> {
    let mut entries = Vec::new();

    // The Figure 3 Eurostat type driving the paper examples.
    let eurostat = dxml_bench::eurostat_figure3();
    entries.push(("eurostat (Figure 3)".to_string(), analyze_schema(AnySchema::Dtd(&eurostat))));

    // The one-c specialised target of the box-design example.
    let mut one_c = REdtd::new(RFormalism::Nre, "s", "s");
    one_c.add_specialization("ab", "a");
    one_c.add_specialization("ac", "a");
    one_c.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
    one_c.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
    one_c.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
    entries.push(("one-c target (box_design)".to_string(), analyze_schema(AnySchema::Edtd(&one_c))));

    // The seeded bench families, one schema per formalism.
    for formalism in RFormalism::ALL {
        let dtd = dxml_bench::dtd_family(formalism, 12, 7);
        let entry = format!("bench dtd_family({formalism}, n=12)");
        entries.push((entry, analyze_schema(AnySchema::Dtd(&dtd))));
    }

    // The bench design workloads, both kinds.
    let (problem, doc) = dxml_bench::design_workload(12, 3, 7);
    entries.push(("bench design_workload(n=12)".to_string(), analyze_design(&problem, &doc)));
    let (problem, doc) = dxml_bench::box_workload(6);
    entries.push(("bench box_workload(n=6)".to_string(), analyze_box_design(&problem, &doc)));

    entries
}

/// The corpus designs' composed cost models, plus the adversarial family
/// as the worked example of a predicted-exponential design.
fn corpus_costs() -> Vec<(String, DesignCost)> {
    let mut out = Vec::new();
    let (problem, _) = dxml_bench::design_workload(12, 3, 7);
    out.push(("bench design_workload(n=12)".to_string(), design_cost(&problem)));
    let (problem, _) = dxml_bench::box_workload(6);
    out.push(("bench box_workload(n=6)".to_string(), box_design_cost(&problem)));
    out.push((
        "eurostat (Figure 3)".to_string(),
        design_cost(&DesignProblem::new(dxml_bench::eurostat_figure3())),
    ));
    out.push((
        "adversarial_dtd(n=10)".to_string(),
        design_cost(&DesignProblem::new(dxml_bench::adversarial_dtd(10))),
    ));
    out
}

fn render_costs_text(costs: &[(String, DesignCost)]) {
    println!("\n== static cost analysis ==");
    for (entry, cost) in costs {
        let (state_quota, step_quota) = recommended_quotas(cost, DEFAULT_HEADROOM);
        println!("{entry}:");
        println!("  subset states: {}   governed steps: {}", cost.states, cost.steps);
        println!("  determinised tree target: {} states", cost.duta_states);
        println!("  recommended budget: state quota {state_quota}, step quota {step_quota}");
        for (loc, sc) in cost.target.exponential() {
            println!("  predicted-exponential: {loc} — at least {} states", sc.dfa_lower_bound);
        }
        if let Some(dom) = &cost.dominant {
            println!(
                "  dominated by {} ({} of {} upper-bound states)",
                dom.location, dom.upper, dom.total_upper
            );
        }
    }
}

fn costs_json(costs: &[(String, DesignCost)]) -> String {
    let rendered: Vec<String> = costs
        .iter()
        .map(|(entry, cost)| {
            let (state_quota, step_quota) = recommended_quotas(cost, DEFAULT_HEADROOM);
            let dominant = cost.dominant.as_ref().map_or_else(
                || "null".to_string(),
                |d| json_string(&d.location),
            );
            format!(
                "    {{\"entry\":{},\"states_lower\":{},\"states_upper\":{},\
                 \"steps_lower\":{},\"steps_upper\":{},\"state_quota\":{},\
                 \"step_quota\":{},\"dominant\":{}}}",
                json_string(entry),
                cost.states.lower,
                cost.states.upper,
                cost.steps.lower,
                cost.steps.upper,
                state_quota,
                step_quota,
                dominant
            )
        })
        .collect();
    format!("[\n{}\n  ]", rendered.join(",\n"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let costs = args.iter().any(|a| a == "--costs");

    if json {
        let entries = corpus_findings();
        let errors = error_count(&entries);
        let mut doc = render_json(&entries);
        if costs {
            // Splice the costs array into the same document, keeping it a
            // single JSON value.
            let closing = doc.rfind("\n}").expect("render_json emits an object");
            let costs_part = format!(",\n  \"costs\": {}\n}}", costs_json(&corpus_costs()));
            doc.truncate(closing);
            doc.push_str(&costs_part);
        }
        println!("{doc}");
        return if errors > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    showcase();
    println!("\n== corpus gate ==");
    let entries = corpus_findings();
    print!("{}", render_text(&entries));
    let errors = error_count(&entries);
    if costs {
        render_costs_text(&corpus_costs());
    }
    if errors > 0 {
        println!("\nschema lint: {errors} error-severity diagnostic(s) in the corpus");
        return ExitCode::FAILURE;
    }
    println!("\nschema lint: corpus clean (no error-severity diagnostics)");
    ExitCode::SUCCESS
}
