//! Schema lint: the `dxml-analysis` diagnostic passes over the repo's
//! schema corpus, with rustc-style output.
//!
//! Two parts:
//!
//! 1. a **showcase** over a deliberately flawed design, demonstrating every
//!    diagnostic family (structural, content-model, definability advisory,
//!    design-level) — its findings never affect the exit code;
//! 2. the **corpus gate**: every schema and design the examples and bench
//!    workloads use is linted, and the process exits non-zero if any
//!    diagnostic of `error` severity survives — the CI entry point.
//!
//! ```sh
//! cargo run --example schema_lint            # rustc-style text report
//! cargo run --example schema_lint -- --json  # machine-readable findings
//! ```
//!
//! With `--json` the corpus-gate findings are emitted as one JSON document
//! (`{"entries": [...], "errors": N}`) in the same machine-readable spirit
//! as the `BENCH_*`/`TELEMETRY_*` files; the showcase prose is skipped and
//! the exit-code contract is unchanged.

use std::process::ExitCode;

use dxml::analysis::{analyze_box_design, analyze_design, analyze_schema, AnySchema};
use dxml::automata::{RFormalism, Regex, RSpec};
use dxml::core::{DesignProblem, DistributedDoc};
use dxml::schema::{RDtd, REdtd};
use dxml::{Diagnostic, Severity};

/// Prints a report under a corpus-entry header; returns the error count.
fn render(entry: &str, report: &[Diagnostic]) -> usize {
    if report.is_empty() {
        println!("{entry}: clean");
        return 0;
    }
    println!("{entry}:");
    for d in report {
        println!("{d}");
    }
    report.iter().filter(|d| d.severity == Severity::Error).count()
}

/// Minimal JSON string rendering (quotes, backslashes and control
/// characters escaped), matching the bench harness's dependency-free
/// output files.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One corpus entry's findings as a JSON object.
fn entry_json(entry: &str, report: &[Diagnostic]) -> String {
    let diags: Vec<String> = report
        .iter()
        .map(|d| {
            let suggestion = d
                .suggestion
                .as_deref()
                .map_or_else(|| "null".to_string(), json_string);
            format!(
                r#"      {{"code":{},"severity":{},"location":{},"message":{},"suggestion":{}}}"#,
                json_string(d.code),
                json_string(&d.severity.to_string()),
                json_string(&d.location),
                json_string(&d.message),
                suggestion
            )
        })
        .collect();
    let body = if diags.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n    ]", diags.join(",\n"))
    };
    format!(
        "    {{\"entry\":{},\"diagnostics\":{}}}",
        json_string(entry),
        body
    )
}

/// A design with one of everything: an unsatisfiable element, an
/// unreachable one, a non-one-unambiguous content model, a shadowed
/// function name, a never-docked function, a schema-less call and a
/// secretly-DTD-definable EDTD target in the box variant.
fn showcase() {
    println!("== showcase: a deliberately flawed design ==");
    let mut target = RDtd::parse(
        RFormalism::Nre,
        "store -> item*, f?\n\
         item -> (sku | sku), price\n\
         loop -> loop\n\
         orphan -> price",
    )
    .expect("showcase DTD parses");
    target.add_element("f");
    let mut fschema = RDtd::new(RFormalism::Nre, "item");
    fschema.set_rule("item", RSpec::Nre(Regex::parse("sku, price").unwrap()));
    let problem = DesignProblem::new(target)
        .with_function("f", fschema.clone())
        .with_function("audit", fschema);
    let doc = DistributedDoc::parse("store(item(sku price) f ghost)", ["f", "ghost"])
        .expect("showcase document parses");
    let report = analyze_design(&problem, &doc);
    for d in &report {
        println!("{d}");
    }

    println!("\n== showcase: an EDTD that is secretly a DTD ==");
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("x", "a");
    e.add_specialization("y", "a");
    e.set_rule("s", RSpec::Nre(Regex::parse("x y*").unwrap()));
    e.set_rule("x", RSpec::Nre(Regex::parse("b").unwrap()));
    e.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
    for d in analyze_schema(AnySchema::Edtd(&e)) {
        println!("{d}");
    }
}

/// Lints every schema and design of the example/bench corpus; returns the
/// findings per corpus entry, in corpus order.
fn corpus_findings() -> Vec<(String, Vec<Diagnostic>)> {
    let mut entries = Vec::new();

    // The Figure 3 Eurostat type driving the paper examples.
    let eurostat = RDtd::parse_w3c(
        RFormalism::Dre,
        r#"<!ELEMENT eurostat (averages, nationalIndex*)>
           <!ELEMENT averages (Good, index+)+>
           <!ELEMENT nationalIndex (country, Good, (index | (value, year)))>
           <!ELEMENT index (value, year)>
           <!ELEMENT country (#PCDATA)>
           <!ELEMENT Good (#PCDATA)>
           <!ELEMENT value (#PCDATA)>
           <!ELEMENT year (#PCDATA)>"#,
    )
    .expect("Figure 3 parses as a dRE-DTD");
    entries.push(("eurostat (Figure 3)".to_string(), analyze_schema(AnySchema::Dtd(&eurostat))));

    // The one-c specialised target of the box-design example.
    let mut one_c = REdtd::new(RFormalism::Nre, "s", "s");
    one_c.add_specialization("ab", "a");
    one_c.add_specialization("ac", "a");
    one_c.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
    one_c.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
    one_c.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
    entries.push(("one-c target (box_design)".to_string(), analyze_schema(AnySchema::Edtd(&one_c))));

    // The seeded bench families, one schema per formalism.
    for formalism in RFormalism::ALL {
        let dtd = dxml_bench::dtd_family(formalism, 12, 7);
        let entry = format!("bench dtd_family({formalism}, n=12)");
        entries.push((entry, analyze_schema(AnySchema::Dtd(&dtd))));
    }

    // The bench design workloads, both kinds.
    let (problem, doc) = dxml_bench::design_workload(12, 3, 7);
    entries.push(("bench design_workload(n=12)".to_string(), analyze_design(&problem, &doc)));
    let (problem, doc) = dxml_bench::box_workload(6);
    entries.push(("bench box_workload(n=6)".to_string(), analyze_box_design(&problem, &doc)));

    entries
}

/// Error-severity count across all findings.
fn error_count(entries: &[(String, Vec<Diagnostic>)]) -> usize {
    entries
        .iter()
        .flat_map(|(_, report)| report)
        .filter(|d| d.severity == Severity::Error)
        .count()
}

fn main() -> ExitCode {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    if json {
        let entries = corpus_findings();
        let errors = error_count(&entries);
        let rendered: Vec<String> =
            entries.iter().map(|(entry, report)| entry_json(entry, report)).collect();
        println!(
            "{{\n  \"entries\": [\n{}\n  ],\n  \"errors\": {errors}\n}}",
            rendered.join(",\n")
        );
        return if errors > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    showcase();
    println!("\n== corpus gate ==");
    let entries = corpus_findings();
    let mut errors = 0;
    for (entry, report) in &entries {
        errors += render(entry, report);
    }
    if errors > 0 {
        println!("\nschema lint: {errors} error-severity diagnostic(s) in the corpus");
        return ExitCode::FAILURE;
    }
    println!("\nschema lint: corpus clean (no error-severity diagnostics)");
    ExitCode::SUCCESS
}
