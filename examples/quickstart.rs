//! Quickstart: parse a DTD, validate documents, inspect counterexamples.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dxml::automata::RFormalism;
use dxml::schema::RDtd;
use dxml::tree::term::parse_term;

fn main() {
    // The Eurostat NCPI global type of Figure 3, in the compact rule syntax.
    let dtd = RDtd::parse(
        RFormalism::Nre,
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, (index | value, year)\n\
         index -> value, year",
    )
    .expect("the Figure 3 DTD parses");
    println!("Global type τ:\n{dtd}");

    // A valid document (Figure 2, element structure only).
    let good = parse_term(
        "eurostat(averages(Good index(value year)) \
         nationalIndex(country Good index(value year)) \
         nationalIndex(country Good value year))",
    )
    .unwrap();
    println!("valid document:   {good}");
    assert!(dtd.accepts(&good));
    println!("  -> validates");

    // An invalid document: a nationalIndex in both formats at once.
    let bad = parse_term(
        "eurostat(averages(Good index(value year)) \
         nationalIndex(country Good index(value year) value))",
    )
    .unwrap();
    println!("invalid document: {bad}");
    match dtd.validate(&bad) {
        Err(e) => println!("  -> rejected: {e}"),
        Ok(()) => unreachable!("the document is invalid"),
    }

    // Schema-level reasoning: equivalence with a counterexample tree.
    let other = RDtd::parse(
        RFormalism::Nre,
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, index\n\
         index -> value, year",
    )
    .unwrap();
    match dtd.equivalent_witness(&other) {
        Err((tree, in_first)) => {
            let side = if in_first { "first" } else { "second" };
            println!("schemas differ; e.g. the {side} schema alone accepts:\n  {tree}");
        }
        Ok(()) => unreachable!("the schemas differ"),
    }

    // The language is non-empty: extract a smallest witness.
    println!("sample document of τ: {}", dtd.sample_tree().unwrap());
}
