//! Repo-invariant lint: structural conventions the workspace promises but
//! the compiler cannot check, enforced as a CI gate.
//!
//! Four invariant families, reported rustc-style and failing the process
//! (for CI) when any finding survives:
//!
//! * `RI001`/`RI002` — every telemetry counter ([`Metric`]) and histogram
//!   ([`Hist`]) is actually incremented / observed by engine code, not
//!   merely declared: a declared-but-dead metric silently reports `0` and
//!   poisons dashboards. (The declaration site,
//!   `crates/telemetry/src/metrics.rs`, and the generic snapshot renderer
//!   are excluded from the search; the span layer counts as wiring.)
//! * `RI003`/`RI004` — every bench target declared in
//!   `crates/bench/Cargo.toml` has a committed gated baseline
//!   (`baselines/BENCH_<name>.json`) and a row in `crates/bench/README.md`:
//!   a target without a baseline is not regression-gated at all.
//! * `RI005` — every governed `*_with_budget` function has an ungoverned
//!   twin of the same name in the same crate (the workspace's API
//!   convention: governance is opt-in, never forced).
//! * `RI006` — every crate root (and the umbrella root) carries
//!   `#![forbid(unsafe_code)]`.
//!
//! The scan is purely textual over the workspace sources — `std` only, no
//! parsing — which keeps it fast and dependency-free; the conventions it
//! checks are naming-based by design.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dxml::telemetry::{Hist, Metric};

/// One violated invariant.
struct Finding {
    code: &'static str,
    location: String,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}\n  --> {}", self.code, self.message, self.location)
    }
}

/// Collects every `.rs` file under `dir`, recursively.
fn rust_sources(dir: &Path, out: &mut Vec<(PathBuf, String)>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                out.push((path, text));
            }
        }
    }
}

/// The bench targets declared in `crates/bench/Cargo.toml`, in file order.
fn bench_targets(manifest: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_bench = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("[[") {
            in_bench = line == "[[bench]]";
        } else if in_bench {
            if let Some(name) = line.strip_prefix("name = \"").and_then(|r| r.strip_suffix('"')) {
                targets.push(name.to_string());
            }
        }
    }
    targets
}

/// The crate-level scope a source file belongs to (`crates/<name>` or the
/// umbrella root) — the unit within which a governed function must have
/// its ungoverned twin.
fn crate_scope(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return format!("crates/{name}");
        }
    }
    "root".to_string()
}

/// Extracts `name` from every `fn name_with_budget` definition in `text`.
fn governed_fns(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (pos, _) in text.match_indices("fn ") {
        // Only definitions: `fn ` at the start of a token, not `(fn ` etc.
        if pos > 0 && !text.as_bytes()[pos - 1].is_ascii_whitespace() {
            continue;
        }
        let rest = &text[pos + 3..];
        let ident: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if let Some(base) = ident.strip_suffix("_with_budget") {
            if !base.is_empty() {
                out.push(base.to_string());
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut findings: Vec<Finding> = Vec::new();

    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    rust_sources(&root.join("src"), &mut sources);
    rust_sources(&root.join("examples"), &mut sources);
    let rel = |p: &Path| {
        p.strip_prefix(&root).unwrap_or(p).to_string_lossy().replace('\\', "/")
    };

    // RI001/RI002 — every metric is wired into the engine. The declaring
    // enum and the generic snapshot/report layer don't count as wiring.
    let wiring: Vec<&(PathBuf, String)> = sources
        .iter()
        .filter(|(p, _)| {
            let r = rel(p);
            r != "crates/telemetry/src/metrics.rs" && r != "crates/telemetry/src/snapshot.rs"
        })
        .collect();
    for metric in Metric::ALL {
        let needle = format!("Metric::{metric:?}");
        if !wiring.iter().any(|(_, text)| text.contains(&needle)) {
            findings.push(Finding {
                code: "RI001",
                location: format!("telemetry counter `{}`", metric.name()),
                message: format!(
                    "counter `{}` is declared but never incremented by engine code",
                    metric.name()
                ),
            });
        }
    }
    for hist in Hist::ALL {
        let needle = format!("Hist::{hist:?}");
        if !wiring.iter().any(|(_, text)| text.contains(&needle)) {
            findings.push(Finding {
                code: "RI002",
                location: format!("telemetry histogram `{}`", hist.name()),
                message: format!(
                    "histogram `{}` is declared but never observed by engine code",
                    hist.name()
                ),
            });
        }
    }

    // RI003/RI004 — every bench target is baseline-gated and documented.
    let manifest = fs::read_to_string(root.join("crates/bench/Cargo.toml"))
        .expect("crates/bench/Cargo.toml is readable");
    let readme = fs::read_to_string(root.join("crates/bench/README.md")).unwrap_or_default();
    let targets = bench_targets(&manifest);
    if targets.is_empty() {
        findings.push(Finding {
            code: "RI003",
            location: "crates/bench/Cargo.toml".to_string(),
            message: "no [[bench]] targets found — the target parser is broken".to_string(),
        });
    }
    for target in &targets {
        let baseline = root.join("baselines").join(format!("BENCH_{target}.json"));
        if !baseline.is_file() {
            findings.push(Finding {
                code: "RI003",
                location: format!("bench target `{target}`"),
                message: format!(
                    "bench target `{target}` has no committed baseline \
                     (baselines/BENCH_{target}.json) — it is not regression-gated"
                ),
            });
        }
        if !readme.contains(&format!("`{target}`")) {
            findings.push(Finding {
                code: "RI004",
                location: format!("bench target `{target}`"),
                message: format!(
                    "bench target `{target}` has no row in crates/bench/README.md"
                ),
            });
        }
    }

    // RI005 — every governed function has an ungoverned twin in its crate.
    for (path, text) in &sources {
        let r = rel(path);
        let scope = crate_scope(&r);
        for base in governed_fns(text) {
            let twin_paren = format!("fn {base}(");
            let twin_generic = format!("fn {base}<");
            let has_twin = sources.iter().any(|(p, t)| {
                crate_scope(&rel(p)) == scope
                    && (t.contains(&twin_paren) || t.contains(&twin_generic))
            });
            if !has_twin {
                findings.push(Finding {
                    code: "RI005",
                    location: format!("{r} (fn `{base}_with_budget`)"),
                    message: format!(
                        "governed `{base}_with_budget` has no ungoverned twin `{base}` in {scope}"
                    ),
                });
            }
        }
    }

    // RI006 — unsafe code is forbidden at every crate root.
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    for lib in roots {
        let text = fs::read_to_string(&lib).unwrap_or_default();
        if !text.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                code: "RI006",
                location: rel(&lib),
                message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    println!(
        "repo invariants: {} source files, {} counters, {} histograms, {} bench targets checked",
        sources.len(),
        Metric::ALL.len(),
        Hist::ALL.len(),
        targets.len()
    );
    if findings.is_empty() {
        println!("repo invariants: all invariants hold");
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!("repo invariants: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
