//! The full Eurostat NCPI scenario (Figures 1–4): ingest XML, validate
//! against the global type, typecheck the distributed design and emit the
//! materialised document as XML.
//!
//! ```sh
//! cargo run --release --example eurostat_ncpi
//! ```

use std::collections::BTreeMap;

use dxml::automata::{RFormalism, Symbol};
use dxml::core::{DesignProblem, DistributedDoc, TypingVerdict};
use dxml::schema::RDtd;
use dxml::tree::term::parse_forest;
use dxml::tree::xml::{parse_xml, to_xml};

fn main() {
    // Global type, in the W3C syntax of Figure 3.
    let target = RDtd::parse_w3c(
        RFormalism::Dre,
        r#"<!ELEMENT eurostat (averages, nationalIndex*)>
           <!ELEMENT averages (Good, index+)+>
           <!ELEMENT nationalIndex (country, Good, (index | (value, year)))>
           <!ELEMENT index (value, year)>
           <!ELEMENT country (#PCDATA)>
           <!ELEMENT Good (#PCDATA)>
           <!ELEMENT value (#PCDATA)>
           <!ELEMENT year (#PCDATA)>"#,
    )
    .expect("Figure 3 parses as a dRE-DTD");

    // Ingest an actual XML document (Figure 2, values elided).
    let xml = r#"
        <eurostat>
          <averages><Good/><index><value/><year/></index></averages>
          <nationalIndex>
            <country/><Good/><index><value/><year/></index>
          </nationalIndex>
        </eurostat>"#;
    let doc = parse_xml(xml).expect("the Figure 2 document parses");
    assert!(target.accepts(&doc));
    println!("Figure 2 document validates against the Figure 3 type.");

    // The distributed version: national indexes come from member states.
    let kernel = DistributedDoc::parse(
        "eurostat(averages(Good index(value year)) fDE fFR fIT)",
        ["fDE", "fFR", "fIT"],
    )
    .unwrap();
    let office = RDtd::parse(
        RFormalism::Dre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index\n\
         index -> value, year",
    )
    .unwrap();
    let mut problem = DesignProblem::new(target.clone());
    for f in ["fDE", "fFR", "fIT"] {
        problem.add_function(f, office.clone());
    }
    match problem.typecheck(&kernel).unwrap() {
        TypingVerdict::Valid => println!("The distributed NCPI design typechecks."),
        TypingVerdict::Invalid { violation, .. } => unreachable!("unexpected: {violation}"),
    }

    // Materialise a snapshot and emit it as XML.
    let entry = "nationalIndex(country Good index(value year))";
    let mut results = BTreeMap::new();
    for f in ["fDE", "fFR", "fIT"] {
        results.insert(Symbol::new(f), parse_forest(entry).unwrap());
    }
    let materialised = kernel.materialize(&results).unwrap();
    assert!(target.accepts(&materialised));
    println!("\nMaterialised snapshot as XML:\n{}", to_xml(&materialised));
}
