//! Streaming one-pass SDTD validation: type documents while parsing them,
//! in memory proportional to nesting depth, and fan a batch over all cores.
//!
//! ```sh
//! cargo run --release --example streaming_validation
//! ```

use dxml::automata::RFormalism;
use dxml::core::validate_batch;
use dxml::schema::{RSdtd, StreamValidator};

fn main() {
    // The single-type property (Definition 6): the specialised name of a
    // node is a function of its label and its parent's specialised name, so
    // an XSD-style schema validates top-down in one pass — here, `nat`
    // records have one shape at top level and another inside `archive`.
    let sdtd = RSdtd::parse(
        RFormalism::Nre,
        "s -> nat~1*, archive?\n\
         archive -> nat~2*\n\
         nat~1 -> country, year\n\
         nat~2 -> country",
    )
    .expect("the schema is single-type");
    println!("SDTD:\n{sdtd}\n");

    // One reusable validator: every content model is determinised once.
    let validator = StreamValidator::new(&sdtd);

    let valid = "<s><nat><country/><year/></nat><archive><nat><country/></nat></archive></s>";
    println!("valid document     → {:?}", validator.validate(valid));

    // An archived `nat` must have the nat~2 shape (country only).
    let invalid = "<s><archive><nat><country/><year/></nat></archive></s>";
    println!("archived nat~1     → {}", validator.validate(invalid).unwrap_err());

    // The stream is typed as it is parsed: a million-element chain needs
    // one frame per *open* element, never the materialised tree.
    let deep_schema = RSdtd::parse(RFormalism::Nre, "a -> a?").expect("chain schema");
    let deep_validator = StreamValidator::new(&deep_schema);
    let depth = 100_000;
    let chain = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
    let (verdict, stats) = deep_validator.validate_with_stats(&chain);
    println!(
        "\n{depth}-deep chain    → {verdict:?} (peak depth {}, peak buffered labels {})",
        stats.peak_depth, stats.peak_buffered
    );

    // Batch front end: one shared validator, one streaming pass per
    // document, all cores, verdicts in input order.
    let docs: Vec<&str> = vec![
        valid,
        invalid,
        "<s/>",
        "<t/>",
        "<s><nat>",
    ];
    println!("\nbatch of {} documents:", docs.len());
    for (doc, verdict) in docs.iter().zip(validate_batch(&sdtd, &docs)) {
        let rendered = match verdict {
            Ok(()) => "valid".to_string(),
            Err(e) => format!("invalid: {e}"),
        };
        println!("  {doc:<90} {rendered}");
    }
}
