//! Distributed validation: typing verification of a kernel document with
//! function calls (the paper's central decision problem).
//!
//! ```sh
//! cargo run --release --example distributed_validation
//! ```

use std::collections::BTreeMap;

use dxml::automata::{RFormalism, Symbol};
use dxml::core::{DesignProblem, DistributedDoc, LocalVerdict, TypingVerdict};
use dxml::schema::RDtd;
use dxml::tree::term::parse_forest;

fn main() {
    // Global type τ (Figure 3).
    let target = RDtd::parse(
        RFormalism::Nre,
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, (index | value, year)\n\
         index -> value, year",
    )
    .unwrap();

    // Kernel: averages stored locally, national indexes fetched from two
    // statistics offices.
    let doc = DistributedDoc::parse(
        "eurostat(averages(Good index(value year)) fDE fFR)",
        ["fDE", "fFR"],
    )
    .unwrap();
    println!("kernel: {doc}");

    // A well-typed office: returns nationalIndex entries in the old format.
    let good_office = RDtd::parse(
        RFormalism::Nre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index\n\
         index -> value, year",
    )
    .unwrap();
    // An ill-typed office: emits a stray value after the index.
    let bad_office = RDtd::parse(
        RFormalism::Nre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index, value\n\
         index -> value, year",
    )
    .unwrap();

    // Case 1: both offices well-typed — the design typechecks.
    let ok = DesignProblem::new(target.clone())
        .with_function("fDE", good_office.clone())
        .with_function("fFR", good_office.clone());
    println!("\n[well-typed design]");
    match ok.typecheck(&doc).unwrap() {
        TypingVerdict::Valid => println!("  every extension validates"),
        TypingVerdict::Invalid { .. } => unreachable!(),
    }

    // Materialise a snapshot and validate it directly.
    let mut results = BTreeMap::new();
    results.insert(
        Symbol::new("fDE"),
        parse_forest("nationalIndex(country Good index(value year))").unwrap(),
    );
    results.insert(
        Symbol::new("fFR"),
        parse_forest(
            "nationalIndex(country Good index(value year)) \
             nationalIndex(country Good index(value year))",
        )
        .unwrap(),
    );
    let ext = doc.materialize(&results).unwrap();
    println!("  snapshot extension: {ext}");
    assert!(target.accepts(&ext));

    // Case 2: one office ill-typed — verification refutes the design and
    // produces a concrete bad extension.
    let bad = DesignProblem::new(target)
        .with_function("fDE", good_office)
        .with_function("fFR", bad_office);
    println!("\n[ill-typed design]");
    match bad.typecheck(&doc).unwrap() {
        TypingVerdict::Invalid { counterexample, violation } => {
            println!("  refuted; a possible extension violating τ:");
            println!("    {counterexample}");
            println!("  violation: {violation}");
        }
        TypingVerdict::Valid => unreachable!(),
    }

    // The string-level local check pins the same problem as a word.
    match bad.verify_local(&doc).unwrap() {
        LocalVerdict::Invalid(v) => println!("  local check: {v}"),
        LocalVerdict::Valid => unreachable!(),
    }
}
