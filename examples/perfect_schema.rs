//! Perfect typing (Section 6) on the paper's Eurostat NCPI scenario:
//! synthesise the *most permissive* schema a national statistics office may
//! publish under, instead of merely checking a declared one.
//!
//! ```sh
//! cargo run --release --example perfect_schema
//! ```

use dxml::automata::{RFormalism, Symbol};
use dxml::core::{DesignProblem, DistributedDoc};
use dxml::schema::RDtd;

fn main() {
    // The global type τ of Figure 3 and the distributed kernel of Figure 4:
    // the European averages live in the kernel, the per-country indexes
    // dock at the call `fNCP`.
    let target = RDtd::parse(
        RFormalism::Nre,
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, (index | value, year)\n\
         index -> value, year",
    )
    .expect("the Figure 3 DTD parses");
    let doc = DistributedDoc::parse(
        "eurostat(averages(Good index(value year)) fNCP)",
        ["fNCP"],
    )
    .unwrap();
    let problem = DesignProblem::new(target);

    println!("kernel document: {doc}");
    println!("\nsynthesising the perfect schema for `fNCP` …");
    let perfect = problem.perfect_schema(&doc, "fNCP").expect("synthesis succeeds");
    println!("{perfect}");

    // The design typechecks with the synthesised schema …
    let solved = problem.clone().with_function("fNCP", perfect.clone());
    assert!(solved.typecheck(&doc).unwrap().is_valid());
    println!("the design typechecks with the synthesised schema");

    // … and the schema is the most permissive one: any declared office
    // schema the design typechecks with is subsumed by it. The old-format
    // office of the paper (nested `index` elements) is one such schema.
    let office = RDtd::parse(
        RFormalism::Nre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index\n\
         index -> value, year",
    )
    .unwrap();
    let office_forest = office.content(office.start()).to_nfa();
    let perfect_forest = perfect.content(perfect.start()).to_nfa();
    assert!(dxml::automata::equiv::included(&office_forest, &perfect_forest).is_ok());
    println!("the declared office schema is a sub-schema of the perfect one");

    // The perfect schema is strictly wider: it also admits the newer
    // `value, year` format the declared office schema forbids.
    let new_format = perfect.content(&Symbol::new("nationalIndex")).to_nfa();
    let w: Vec<Symbol> = ["country", "Good", "value", "year"].map(Symbol::new).into();
    assert!(new_format.accepts(&w));
    assert!(!office.content(&Symbol::new("nationalIndex")).to_nfa().accepts(&w));
    println!("…and it additionally admits the `value, year` national-index format");

    // Maximality, demonstrated on one word: admitting a lone `country`
    // forest entry breaks the design.
    let mut too_wide = perfect.clone();
    let forest = perfect.content(perfect.start()).to_nfa();
    too_wide.set_rule(
        *perfect.start(),
        dxml::automata::RSpec::Nfa(
            forest.union(&dxml::automata::Nfa::symbol("country")),
        ),
    );
    let broken = problem.with_function("fNCP", too_wide);
    match broken.typecheck(&doc).unwrap() {
        dxml::core::TypingVerdict::Invalid { counterexample, violation } => {
            println!("\nenlarging the forest language by [country] breaks typing:");
            println!("  counterexample extension: {counterexample}");
            println!("  violation: {violation}");
        }
        dxml::core::TypingVerdict::Valid => unreachable!("the enlarged schema must fail"),
    }
}
