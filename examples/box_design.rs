//! Box-design end to end (Section 7): typing verification and perfect
//! typing against a genuinely *specialised* R-EDTD target — a tree language
//! no DTD can express.
//!
//! The target says: an `s`-document holds `a`-records of which **exactly
//! one** carries a `c` payload (the rest carry `b`). The kernel stores one
//! `a(b)` record locally and docks the remaining records at a single call
//! `f`. We check designs against the target, inspect the kernel boxes
//! `B(fn)` of Definition 21, and synthesise the perfect (most permissive)
//! schema for `f` — itself an EDTD.
//!
//! Run with `cargo run --example box_design`.

use dxml::automata::{RFormalism, Regex, RSpec};
use dxml::core::{BoxDesignProblem, BoxVerdict, DistributedDoc, TypingVerdict};
use dxml::schema::REdtd;
use dxml::tree::term::parse_term;

fn main() {
    // The target: s → ab* ac ab*, with µ(ab) = µ(ac) = a.
    let mut target = REdtd::new(RFormalism::Nre, "s", "s");
    target.add_specialization("ab", "a");
    target.add_specialization("ac", "a");
    target.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
    target.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
    target.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
    println!("== the specialised target ==\n{target}");
    assert!(target.is_normal(), "distinct specialisations are disjoint");

    // The distributed document: one record kept locally, the rest docked.
    let doc = DistributedDoc::parse("s(a(b) f)", ["f"]).unwrap();
    println!("== the distributed document ==\n{doc}  (f is a docking point)\n");

    // A kernel box: the fixed children of a materialised sibling document,
    // rendered as slots of specialised names.
    let problem = BoxDesignProblem::new(target.clone());
    let plain = DistributedDoc::parse("s(a(b) a(c) a(b))", [] as [&str; 0]).unwrap();
    let kernel_box = problem.kernel_box(&plain, plain.kernel().root()).unwrap();
    println!("== kernel box of s(a(b) a(c) a(b)) ==\nB = {kernel_box}\n");

    // A bad design: f may return any number of a(c) records.
    let mut any_c = REdtd::new(RFormalism::Nre, "r", "r");
    any_c.add_specialization("x", "a");
    any_c.set_rule("r", RSpec::Nre(Regex::parse("x*").unwrap()));
    any_c.set_rule("x", RSpec::Nre(Regex::parse("c").unwrap()));
    let bad = problem.clone().with_function("f", any_c);
    match bad.typecheck(&doc).unwrap() {
        TypingVerdict::Invalid { counterexample, violation } => {
            println!("== refuted design (f returns a(c)*) ==");
            println!("counterexample document: {counterexample}");
            println!("violation: {violation}");
        }
        TypingVerdict::Valid => unreachable!("a(c)* admits zero c-records"),
    }
    match bad.verify_local(&doc).unwrap() {
        BoxVerdict::Invalid(v) => println!("string route: {v}\n"),
        BoxVerdict::Valid => unreachable!(),
    }

    // Perfect typing: the most permissive schema for f. It must say
    // "exactly one a(c), any number of a(b)" — expressible only with
    // specialisations.
    let perfect = problem.perfect_schema(&doc, "f").unwrap();
    println!("== the perfect schema for f ==\n{perfect}");
    let solved = problem.clone().with_function("f", perfect.clone());
    assert!(solved.typecheck(&doc).unwrap().is_valid());
    assert!(solved.verify_local(&doc).unwrap().is_valid());

    let embed = |forest: &str| {
        parse_term(&format!("{}({forest})", perfect.start().as_str())).unwrap()
    };
    for (forest, expected) in [
        ("a(c)", true),
        ("a(b) a(c)", true),
        ("a(b) a(c) a(b) a(b)", true),
        ("a(b)", false),
        ("a(c) a(c)", false),
    ] {
        let verdict = perfect.accepts(&embed(forest));
        assert_eq!(verdict, expected, "forest [{forest}]");
        println!("forest [{forest:<20}] admitted: {verdict}");
    }
    println!("\nThe perfect schema admits exactly the forests completing the");
    println!("kernel's a(b) to a one-c record list — a language with no DTD.");
}
