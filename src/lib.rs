//! Umbrella crate for the *Distributed XML Design* workspace.
//!
//! Re-exports the workspace layers under one roof so that examples and
//! downstream users can write `use dxml::…`:
//!
//! * [`automata`] — regular string languages (NFAs, DFAs, nRE/dRE).
//! * [`tree`] — unranked trees and unranked tree automata.
//! * [`schema`] — R-DTDs, R-SDTDs and R-EDTDs.
//! * [`core`] — distributed documents, design problems and typing
//!   verification.

#![forbid(unsafe_code)]

pub use dxml_automata as automata;
pub use dxml_core as core;
pub use dxml_schema as schema;
pub use dxml_tree as tree;

// The working set of the design layer, re-exported at the crate root so
// downstream code can `use dxml::{DesignProblem, BoxDesignProblem, …}`.
pub use dxml_automata::BoxLang;
pub use dxml_core::{BoxDesignProblem, BoxVerdict, DesignProblem, DistributedDoc, TypingVerdict};
pub use dxml_schema::{RDtd, REdtd, RSdtd};
