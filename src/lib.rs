//! Umbrella crate for the *Distributed XML Design* workspace.
//!
//! Re-exports the workspace layers under one roof so that examples and
//! downstream users can write `use dxml::…`:
//!
//! * [`automata`] — regular string languages (NFAs, DFAs, nRE/dRE).
//! * [`tree`] — unranked trees and unranked tree automata.
//! * [`schema`] — R-DTDs, R-SDTDs and R-EDTDs.
//! * [`core`] — distributed documents, design problems and typing
//!   verification.
//! * [`analysis`] — static analysis: exact DTD/SDTD-definability decision
//!   procedures (Lemmas 3.12 and 3.5) and the `DXnnn` diagnostic passes
//!   over schemas and designs.
//! * [`telemetry`] — zero-dependency counters, histograms and span tracing
//!   over the whole engine (off by default; `DXML_TELEMETRY=1` enables).
//!
//! Every worst-case-exponential decision procedure has a governed
//! `*_with_budget` variant taking a [`Budget`] (step/state/node quotas, a
//! depth limit, a wall-clock deadline, cooperative cancellation via a
//! [`CancelHandle`]); a trip surfaces as a typed `BudgetExceeded` error and
//! leaves every cache rebuildable — see `dxml_automata::limits`.

#![forbid(unsafe_code)]

pub use dxml_analysis as analysis;
pub use dxml_automata as automata;
pub use dxml_core as core;
pub use dxml_schema as schema;
pub use dxml_telemetry as telemetry;
pub use dxml_tree as tree;

// The working set of the design layer, re-exported at the crate root so
// downstream code can `use dxml::{DesignProblem, BoxDesignProblem, …}`.
pub use dxml_analysis::{
    analyze_box_design, analyze_design, analyze_schema, box_design_cost, design_cost,
    dtd_definable, recommend_box_budget, recommend_budget, recommend_budget_with_headroom,
    sdtd_definable, AnySchema, Bounds, DesignCost, Diagnostic, Severity, SuffixCounting,
};
pub use dxml_automata::{BoxLang, Budget, CancelHandle};
pub use dxml_core::{BoxDesignProblem, BoxVerdict, DesignProblem, DistributedDoc, TypingVerdict};
pub use dxml_schema::{RDtd, REdtd, RSdtd};
