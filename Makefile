# Repo-local CI entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

.PHONY: all build test clippy fmt-check bench examples verify

all: verify

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

bench:
	$(CARGO) check --benches

examples:
	$(CARGO) run -q --release --example quickstart
	$(CARGO) run -q --release --example distributed_validation
	$(CARGO) run -q --release --example perfect_typing_words
	$(CARGO) run -q --release --example eurostat_ncpi

# The tier-1 gate plus lints and bench compilation.
verify: build test clippy bench
	@echo "verify: OK"
