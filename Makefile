# Repo-local CI entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

# Every bench target, read off crates/bench/Cargo.toml so the list cannot
# drift when benches are added or renamed; bench-smoke fails if any of them
# stops emitting its BENCH_<name>.json timing file (the perf-trajectory
# pipeline reads these).
BENCH_TARGETS := $(shell sed -n 's/^name = "\([a-z0-9_]*\)"$$/\1/p' \
                 crates/bench/Cargo.toml | grep -v '^dxml')

.PHONY: all build test clippy doc fmt-check bench bench-smoke examples verify

all: verify

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

# API docs must build cleanly: broken intra-doc links and missing docs are
# errors.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps -q

bench:
	$(CARGO) check --benches

# Run every bench target once (release profile): exercises the real bench
# code paths and their assertions, and emits machine-readable
# BENCH_<name>.json timing files (DXML_BENCH_DIR overrides the destination).
# Fails when a bench target stops emitting its timing file.
bench-smoke:
	@test -n "$(BENCH_TARGETS)" || { \
		echo "bench-smoke: no bench targets found in crates/bench/Cargo.toml" >&2; exit 1; }
	@rm -f $(foreach b,$(BENCH_TARGETS),"$(CURDIR)/BENCH_$(b).json")
	DXML_BENCH_SMOKE=1 DXML_BENCH_DIR=$(CURDIR) $(CARGO) bench -q
	@for b in $(BENCH_TARGETS); do \
		test -f "$(CURDIR)/BENCH_$$b.json" || { \
			echo "bench-smoke: BENCH_$$b.json was not emitted" >&2; exit 1; }; \
	done
	@echo "bench-smoke: all $(words $(BENCH_TARGETS)) timing files emitted"

examples:
	$(CARGO) run -q --release --example quickstart
	$(CARGO) run -q --release --example distributed_validation
	$(CARGO) run -q --release --example perfect_typing_words
	$(CARGO) run -q --release --example eurostat_ncpi
	$(CARGO) run -q --release --example perfect_schema
	$(CARGO) run -q --release --example box_design

# The tier-1 gate plus lints, docs and bench compilation.
verify: build test clippy doc bench
	@echo "verify: OK"
