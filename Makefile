# Repo-local CI entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

# Every bench target, read off crates/bench/Cargo.toml so the list cannot
# drift when benches are added or renamed; bench-smoke fails if any of them
# stops emitting its BENCH_<name>.json timing file (the perf-trajectory
# pipeline reads these).
BENCH_TARGETS := $(shell sed -n 's/^name = "\([a-z0-9_]*\)"$$/\1/p' \
                 crates/bench/Cargo.toml | grep -v '^dxml')

.PHONY: all build test clippy doc fmt-check bench bench-smoke bench-baselines bench-compare fuzz-smoke examples lint-schemas lint-repo verify

all: verify

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Denies all default lints, plus a curated subset of pedantic lints the
# codebase holds itself to (warn level, escalated by -D warnings).
clippy:
	$(CARGO) clippy --all-targets -- -D warnings \
		-W clippy::semicolon_if_nothing_returned \
		-W clippy::explicit_iter_loop \
		-W clippy::redundant_closure_for_method_calls \
		-W clippy::map_unwrap_or \
		-W clippy::missing_panics_doc

# API docs must build cleanly: broken intra-doc links and missing docs are
# errors.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps -q

bench:
	$(CARGO) check --benches

# Run every bench target once (release profile): exercises the real bench
# code paths and their assertions, and emits machine-readable
# BENCH_<name>.json timing files (DXML_BENCH_DIR overrides the destination)
# plus TELEMETRY_<name>.json engine-counter sidecars (collection is enabled
# here — smoke mode measures nothing, so the gate costs nothing). Fails when
# a bench target stops emitting either file.
bench-smoke:
	@test -n "$(BENCH_TARGETS)" || { \
		echo "bench-smoke: no bench targets found in crates/bench/Cargo.toml" >&2; exit 1; }
	@rm -f $(foreach b,$(BENCH_TARGETS),"$(CURDIR)/BENCH_$(b).json" "$(CURDIR)/TELEMETRY_$(b).json")
	DXML_BENCH_SMOKE=1 DXML_TELEMETRY=1 DXML_BENCH_DIR=$(CURDIR) $(CARGO) bench -q
	@for b in $(BENCH_TARGETS); do \
		test -f "$(CURDIR)/BENCH_$$b.json" || { \
			echo "bench-smoke: BENCH_$$b.json was not emitted" >&2; exit 1; }; \
		test -f "$(CURDIR)/TELEMETRY_$$b.json" || { \
			echo "bench-smoke: TELEMETRY_$$b.json was not emitted" >&2; exit 1; }; \
		for m in limits.budget_trips limits.deadline_trips limits.cancellations; do \
			grep -q "\"$$m\"" "$(CURDIR)/TELEMETRY_$$b.json" || { \
				echo "bench-smoke: TELEMETRY_$$b.json is missing the $$m counter" >&2; exit 1; }; \
		done; \
	done
	@echo "bench-smoke: all $(words $(BENCH_TARGETS)) timing files and telemetry sidecars emitted"

# Where the committed perf baselines live (full non-smoke runs; refresh
# with `make bench-baselines` on the reference machine and commit).
BASELINE_DIR := baselines

# One full (non-smoke) pass regenerates every target's baseline; stale
# files are removed first so the emission check below makes a silently
# skipped target a hard error instead of a re-committed stale baseline.
bench-baselines:
	@test -n "$(BENCH_TARGETS)" || { \
		echo "bench-baselines: no bench targets found in crates/bench/Cargo.toml" >&2; exit 1; }
	@mkdir -p $(BASELINE_DIR)
	@rm -f $(foreach b,$(BENCH_TARGETS),"$(BASELINE_DIR)/BENCH_$(b).json")
	DXML_BENCH_DIR=$(CURDIR)/$(BASELINE_DIR) $(CARGO) bench -q
	@rm -f $(BASELINE_DIR)/TELEMETRY_*.json
	@for b in $(BENCH_TARGETS); do \
		test -f "$(BASELINE_DIR)/BENCH_$$b.json" || { \
			echo "bench-baselines: BENCH_$$b.json was not regenerated" >&2; exit 1; }; \
	done
	@echo "bench-baselines: refreshed all $(words $(BENCH_TARGETS)) baselines in $(BASELINE_DIR)/ — review and commit"

# Re-run every bench target (full timing mode) and diff the fresh
# BENCH_<name>.json files against the committed baselines: any warm-path
# median more than BENCH_COMPARE_THRESHOLD x its baseline fails the build.
# The threshold is absolute-time based, so baselines and the comparing
# machine must be in the same speed class; override the threshold (or
# refresh the baselines from the CI runner's artifacts) when they are not.
BENCH_COMPARE_THRESHOLD ?= 2

bench-compare:
	@test -d $(BASELINE_DIR) || { \
		echo "bench-compare: no $(BASELINE_DIR)/ directory; run make bench-baselines first" >&2; exit 1; }
	@rm -rf target/bench-current && mkdir -p target/bench-current
	DXML_BENCH_DIR=$(CURDIR)/target/bench-current $(CARGO) bench -q
	$(CARGO) run -q --release -p dxml-bench --bin bench_compare -- \
		$(BASELINE_DIR) target/bench-current $(BENCH_COMPARE_THRESHOLD)

# Timeout-wrapped fault-injection suite: the governance tests drive budget
# trips, expired deadlines, cooperative cancellations and injected worker
# panics end to end against adversarial (exponential) inputs. The timeout
# turns a hung governed loop — the exact failure mode budgets exist to
# prevent — into a hard failure instead of a stuck CI job.
FUZZ_SMOKE_TIMEOUT ?= 300

fuzz-smoke:
	timeout $(FUZZ_SMOKE_TIMEOUT) $(CARGO) test -q --release -p dxml-automata --test budget_loops
	timeout $(FUZZ_SMOKE_TIMEOUT) $(CARGO) test -q --release -p dxml-core --test governance
	timeout $(FUZZ_SMOKE_TIMEOUT) $(CARGO) test -q --release -p dxml-bench --test cost_calibration
	@echo "fuzz-smoke: governance fault suite passed within $(FUZZ_SMOKE_TIMEOUT)s per binary"

examples:
	$(CARGO) run -q --release --example quickstart
	$(CARGO) run -q --release --example distributed_validation
	$(CARGO) run -q --release --example perfect_typing_words
	$(CARGO) run -q --release --example eurostat_ncpi
	$(CARGO) run -q --release --example perfect_schema
	$(CARGO) run -q --release --example box_design
	$(CARGO) run -q --release --example streaming_validation
	$(CARGO) run -q --release --example schema_lint
	$(CARGO) run -q --release --example repo_invariants

# Lint the example/bench schema corpus: exits non-zero on any
# error-severity diagnostic from the dxml-analysis passes. --costs appends
# the static cost-analysis summary for the corpus designs.
lint-schemas:
	$(CARGO) run -q --release --example schema_lint -- --costs

# Lint the repo's structural conventions (telemetry metrics wired, bench
# targets baseline-gated and documented, *_with_budget twins, forbid
# unsafe): exits non-zero on any violation.
lint-repo:
	$(CARGO) run -q --release --example repo_invariants

# The tier-1 gate plus lints, docs and bench compilation.
verify: build test clippy doc bench
	@echo "verify: OK"
