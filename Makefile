# Repo-local CI entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

.PHONY: all build test clippy fmt-check bench bench-smoke examples verify

all: verify

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

bench:
	$(CARGO) check --benches

# Run every bench target once (release profile): exercises the real bench
# code paths and their assertions, and emits machine-readable
# BENCH_<name>.json timing files (DXML_BENCH_DIR overrides the destination).
bench-smoke:
	DXML_BENCH_SMOKE=1 DXML_BENCH_DIR=$(CURDIR) $(CARGO) bench -q

examples:
	$(CARGO) run -q --release --example quickstart
	$(CARGO) run -q --release --example distributed_validation
	$(CARGO) run -q --release --example perfect_typing_words
	$(CARGO) run -q --release --example eurostat_ncpi
	$(CARGO) run -q --release --example perfect_schema

# The tier-1 gate plus lints and bench compilation.
verify: build test clippy bench
	@echo "verify: OK"
