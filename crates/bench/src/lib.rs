//! Deterministic benchmark workloads and a dependency-free timing harness.
//!
//! The workload generators produce *seeded* families of schemas, documents
//! and design problems of controlled size `n`, so every bench run measures
//! the same inputs. The harness ([`fn@bench`]) is a minimal warmup +
//! median-of-iterations timer: the workspace builds offline, so the bench
//! targets are plain `fn main()` programs (`harness = false`) rather than
//! criterion benches; the reporting format is criterion-inspired.
//!
//! Each bench target drives a [`Session`], which collects the results and
//! writes a machine-readable `BENCH_<name>.json` timing file on
//! [`Session::finish`], plus a `TELEMETRY_<name>.json` sidecar
//! snapshotting the engine's [`dxml_telemetry`] counters and histograms
//! for the run. Environment variables controlling the harness:
//!
//! * `DXML_BENCH_SMOKE=1` — run every case for a single iteration (the
//!   `make bench-smoke` CI entry point: exercises the real code paths and
//!   assertions without the timing cost);
//! * `DXML_BENCH_DIR=<dir>` — where to write the JSON files (default: the
//!   current directory);
//! * `DXML_TELEMETRY=1` — enable telemetry collection so the sidecars
//!   carry real data (`make bench-smoke` sets it; timing runs leave it
//!   unset so the gated medians measure the disabled path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use dxml_automata::{RFormalism, Regex, RSpec, Symbol};
use dxml_core::{BoxDesignProblem, DesignProblem, DistributedDoc};
use dxml_schema::{RDtd, REdtd};
use dxml_tree::generate::SplitRng;
use dxml_tree::XTree;

// ----------------------------------------------------------------------
// Workloads
// ----------------------------------------------------------------------

/// Element name `e<i>` of a generated family.
pub fn elem(i: usize) -> Symbol {
    Symbol::new(format!("e{i}"))
}

/// A seeded chain-like DTD with `n` element names `e0…e(n-1)` and varied
/// deterministic content models (`eN` is always leaf-only, so the language
/// is never empty). The same `(n, seed)` always yields the same DTD, and
/// every content model is one-unambiguous, so the family is usable for all
/// four formalisms `R`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn dtd_family(formalism: RFormalism, n: usize, seed: u64) -> RDtd {
    assert!(n >= 1, "need at least one element");
    let mut rng = SplitRng::new(seed ^ (n as u64).wrapping_mul(0x9E37_79B9));
    let mut dtd = RDtd::new(formalism, elem(0));
    for i in 0..n.saturating_sub(1) {
        let a = Regex::sym(elem(i + 1));
        let distinct = i + 2 < n;
        let b = Regex::sym(elem(if distinct { i + 2 } else { i + 1 }));
        // Shapes whose symbols are pairwise distinct are always
        // deterministic; near the end of the chain (where `b` would collide
        // with `a`) fall back to single-symbol shapes.
        let re = match rng.below(4) {
            0 if distinct => Regex::concat(vec![a, b.opt()]),
            1 => a.star(),
            2 if distinct => Regex::concat(vec![a.plus(), b.star()]),
            3 if distinct => Regex::alt(vec![a, b]),
            _ => a.opt(),
        };
        let spec = RSpec::from_regex(formalism, re).expect("generated content models are dREs");
        dtd.set_rule(elem(i), spec);
    }
    dtd
}

/// A valid document of the `(n, seed)` DTD family, grown by repeatedly
/// materialising the shortest content word of each element (deterministic).
///
/// # Panics
///
/// Never in practice: family languages are non-empty by construction.
pub fn doc_for(dtd: &RDtd) -> XTree {
    dtd.sample_tree().expect("family languages are non-empty")
}

/// A design problem over the `(n, seed)` family: the target is the family
/// DTD itself; `fns` function symbols `f0…` each return forests of `e1`-trees
/// (the content of the start symbol's first child), which keeps well-typed
/// and ill-typed variants one rule-tweak apart.
///
/// # Panics
///
/// Never in practice: the generated kernel and schemas satisfy every
/// constructor invariant by construction.
pub fn design_workload(n: usize, fns: usize, seed: u64) -> (DesignProblem, DistributedDoc) {
    let target = dtd_family(RFormalism::Nre, n.max(3), seed);
    // The family rules seen from `e1`: a schema for the subtrees the
    // functions return and for the kernel's own fixed `e1` subtree.
    let mut e1_schema = RDtd::new(RFormalism::Nre, elem(1));
    for (name, content) in target.rules() {
        if name != target.start() {
            e1_schema.set_rule(*name, content.clone());
        }
    }
    // Kernel: the start element with one complete `e1` subtree followed by
    // one docking point per function.
    let mut kernel = XTree::leaf(elem(0));
    let fun_names: Vec<Symbol> = (0..fns).map(|i| Symbol::new(format!("f{i}"))).collect();
    let e1_tree = e1_schema.sample_tree().expect("family languages are non-empty");
    kernel.graft(0, &e1_tree);
    for f in &fun_names {
        kernel.add_child(0, *f);
    }
    let mut problem = DesignProblem::new({
        // Target start content: e1 followed by any number of e1 — accepts
        // whatever the functions contribute as e1-forests.
        let mut t = target.clone();
        t.set_rule(elem(0), RSpec::Nre(Regex::sym(elem(1)).plus()));
        t
    });
    for f in &fun_names {
        // Each function returns documents r(e1*) over the same family rules.
        let mut schema = RDtd::new(RFormalism::Nre, "r");
        schema.set_rule("r", RSpec::Nre(Regex::sym(elem(1)).star()));
        for (name, content) in e1_schema.rules() {
            schema.set_rule(*name, content.clone());
        }
        problem.add_function(*f, schema);
    }
    let doc = DistributedDoc::new(kernel, fun_names).expect("kernel invariants hold");
    (problem, doc)
}

/// A genuinely specialised (non-DTD-definable) EDTD target of size `n`:
/// the root requires its `a`-children to be typed `x1 x2 … xn`, where the
/// specialisation `xi` of `a` demands a single `bi` leaf. No DTD can
/// distinguish the positions, since every child carries the same label `a`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn box_target(n: usize) -> REdtd {
    assert!(n >= 1, "need at least one specialisation");
    let mut target = REdtd::new(RFormalism::Nre, "s", "s");
    let mut root = Vec::with_capacity(n);
    for i in 0..n {
        let spec = Symbol::new(format!("x{i}"));
        target.add_specialization(spec, "a");
        target.set_rule(spec, RSpec::Nre(Regex::sym(elem(i))));
        root.push(Regex::Sym(spec));
    }
    target.set_rule("s", RSpec::Nre(Regex::concat(root)));
    target
}

/// A box-design workload of size `n`: the [`box_target`] with a kernel
/// storing the first `n/2` children `a(e<i>)` locally and docking the rest
/// at a single call `f`, whose EDTD schema supplies exactly the missing
/// specialised trees — so the design typechecks, and the perfect schema of
/// `f` is non-trivial but unique.
///
/// # Panics
///
/// Never in practice: the generated kernel satisfies every constructor
/// invariant by construction.
pub fn box_workload(n: usize) -> (BoxDesignProblem, DistributedDoc) {
    let n = n.max(2);
    let split = n / 2;
    let mut kernel = XTree::leaf(Symbol::new("s"));
    for i in 0..split {
        let a = kernel.add_child(0, Symbol::new("a"));
        kernel.add_child(a, elem(i));
    }
    kernel.add_child(0, Symbol::new("f"));
    let mut schema = REdtd::new(RFormalism::Nre, "r", "r");
    let mut forest = Vec::with_capacity(n - split);
    for i in split..n {
        let spec = Symbol::new(format!("y{i}"));
        schema.add_specialization(spec, "a");
        schema.set_rule(spec, RSpec::Nre(Regex::sym(elem(i))));
        forest.push(Regex::Sym(spec));
    }
    schema.set_rule("r", RSpec::Nre(Regex::concat(forest)));
    let problem = BoxDesignProblem::new(box_target(n)).with_function("f", schema);
    let doc = DistributedDoc::new(kernel, ["f"]).expect("kernel invariants hold");
    (problem, doc)
}

/// The paper's Figure 3 Eurostat type, as a dRE-DTD — the realistic
/// fixed-shape corpus member shared by the `schema_lint` example and the
/// cost-calibration suite.
///
/// # Panics
///
/// Never in practice: the embedded W3C DTD text always parses.
pub fn eurostat_figure3() -> RDtd {
    RDtd::parse_w3c(
        RFormalism::Dre,
        r#"<!ELEMENT eurostat (averages, nationalIndex*)>
           <!ELEMENT averages (Good, index+)+>
           <!ELEMENT nationalIndex (country, Good, (index | (value, year)))>
           <!ELEMENT index (value, year)>
           <!ELEMENT country (#PCDATA)>
           <!ELEMENT Good (#PCDATA)>
           <!ELEMENT value (#PCDATA)>
           <!ELEMENT year (#PCDATA)>"#,
    )
    .expect("Figure 3 parses as a dRE-DTD")
}

/// The adversarial suffix-counting family as a DTD: the start element's
/// content model is `(a|b)* a (a|b)^{n-1}`, whose minimal DFA — and hence
/// subset construction — needs at least `2^n` states. The shortest
/// accepted child word `a b^{n-1}` exercises every rule, so
/// [`RDtd::sample_tree`] yields a covering document: the workload the
/// fuzz smoke-test uses to prove a `DX014`-flagged schema really trips
/// its zero-headroom recommended budget.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn adversarial_dtd(n: usize) -> RDtd {
    assert!(n >= 1, "the window needs at least the pivot");
    let ab = || Regex::alt(vec![Regex::sym("a"), Regex::sym("b")]);
    let mut parts = vec![ab().star(), Regex::sym("a")];
    parts.extend((1..n).map(|_| ab()));
    let mut dtd = RDtd::new(RFormalism::Nre, "s");
    dtd.set_rule("s", RSpec::Nre(Regex::concat(parts)));
    dtd.add_element("a");
    dtd.add_element("b");
    dtd
}

// ----------------------------------------------------------------------
// Timing harness
// ----------------------------------------------------------------------

/// The timing result of one benchmark case.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Case label, e.g. `typecheck/n=16`.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u32,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
}

impl BenchResult {
    /// One-line report in a criterion-like format.
    pub fn report(&self) -> String {
        format!(
            "{:<40} time: [median {:>12?}  mean {:>12?}]  ({} iters)",
            self.name, self.median, self.mean, self.iters
        )
    }
}

/// Whether the harness runs in smoke mode (`DXML_BENCH_SMOKE` set): every
/// case is clamped to a single iteration, so CI exercises the real bench
/// code paths and their assertions without the timing cost.
pub fn smoke() -> bool {
    std::env::var_os("DXML_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Times `f` (after a warmup run) over `iters` iterations and prints a
/// one-line report. The closure's result is returned from the last iteration
/// to keep the work observable (and the call un-elided). In smoke mode
/// ([`smoke`]) the iteration count is clamped to 1.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> BenchResult {
    assert!(iters > 0);
    let iters = if smoke() { 1 } else { iters };
    let _warmup = std::hint::black_box(f());
    let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed());
        std::hint::black_box(out);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / iters;
    let result = BenchResult { name: name.to_string(), iters, median, mean };
    println!("{}", result.report());
    result
}

/// Prints a section header for a bench program.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

// ----------------------------------------------------------------------
// Sessions: result collection + machine-readable timing files
// ----------------------------------------------------------------------

/// A bench run that collects every [`BenchResult`] and writes a
/// machine-readable `BENCH_<name>.json` file on [`Session::finish`],
/// together with a `TELEMETRY_<name>.json` sidecar snapshotting the
/// process-global [`dxml_telemetry`] registry. The sidecar carries real
/// data only when collection is on (`DXML_TELEMETRY=1`, as `make
/// bench-smoke` sets it); in timing runs it stays all-zero so the gated
/// medians measure the disabled path.
pub struct Session {
    name: String,
    results: Vec<BenchResult>,
}

impl Session {
    /// Starts a session for the bench target `name` (the file stem of the
    /// emitted `BENCH_<name>.json`). Zeroes the telemetry registry so the
    /// sidecar reflects this target's run alone (each bench target is its
    /// own process).
    pub fn new(name: &str) -> Session {
        dxml_telemetry::reset();
        Session { name: name.to_string(), results: Vec::new() }
    }

    /// Runs one case through [`fn@bench`] and records the result.
    pub fn bench<R>(&mut self, name: &str, iters: u32, f: impl FnMut() -> R) -> BenchResult {
        let result = bench(name, iters, f);
        self.results.push(result.clone());
        result
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders all recorded results as a JSON document.
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    r#"    {{"name":{},"iters":{},"median_ns":{},"mean_ns":{}}}"#,
                    json_string(&r.name),
                    r.iters,
                    r.median.as_nanos(),
                    r.mean.as_nanos()
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            json_string(&self.name),
            smoke(),
            cases.join(",\n")
        )
    }

    /// Writes `BENCH_<name>.json` into `DXML_BENCH_DIR` (default `.`) and
    /// prints where it went.
    pub fn finish(self) {
        let dir = std::env::var("DXML_BENCH_DIR").unwrap_or_else(|_| ".".into());
        self.write_to(std::path::Path::new(&dir));
    }

    /// Writes `BENCH_<name>.json` and the `TELEMETRY_<name>.json` sidecar
    /// into `dir` (created if missing).
    ///
    /// # Panics
    ///
    /// Panics when the output directory or either file cannot be written.
    pub fn write_to(self, dir: &std::path::Path) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create bench output dir {}: {e}", dir.display()));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let sidecar = dir.join(format!("TELEMETRY_{}.json", self.name));
        std::fs::write(&sidecar, dxml_telemetry::Snapshot::take().to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", sidecar.display()));
        println!("\ntimings written to {} (telemetry sidecar alongside)", path.display());
    }
}

/// Minimal JSON string rendering (quotes, backslashes and control
/// characters escaped) — enough for bench case names, without a JSON
/// dependency the offline build cannot fetch.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtd_family_is_deterministic_and_nonempty() {
        for n in [1, 2, 5, 12] {
            let a = dtd_family(RFormalism::Nre, n, 7);
            let b = dtd_family(RFormalism::Nre, n, 7);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "n={n} not deterministic");
            assert!(!a.language_is_empty(), "n={n} family is empty");
            assert!(a.accepts(&doc_for(&a)), "n={n} sample invalid");
            assert_eq!(a.alphabet().len(), n);
        }
        let c = dtd_family(RFormalism::Nre, 5, 8);
        let d = dtd_family(RFormalism::Nre, 5, 9);
        assert_ne!(format!("{c:?}"), format!("{d:?}"), "seed has no effect");
    }

    #[test]
    fn dtd_family_supports_all_formalisms() {
        for f in RFormalism::ALL {
            let dtd = dtd_family(f, 6, 3);
            assert_eq!(dtd.formalism(), f);
            assert!(!dtd.language_is_empty());
        }
    }

    #[test]
    fn design_workload_typechecks() {
        let (problem, doc) = design_workload(5, 2, 11);
        assert_eq!(doc.num_calls(), 2);
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(problem.verify_local(&doc).unwrap().is_valid());
    }

    #[test]
    fn box_workload_typechecks_and_synthesises() {
        let (problem, doc) = box_workload(6);
        assert_eq!(doc.num_calls(), 1);
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let solved = problem.clone().with_function("f", perfect);
        assert!(solved.typecheck(&doc).unwrap().is_valid());
        // The target is genuinely specialised: two specialisations of `a`.
        assert!(box_target(4).specializations_of(&Symbol::new("a")).len() >= 2);
    }

    #[test]
    fn harness_reports_sane_numbers() {
        let r = bench("noop", 16, || 1 + 1);
        assert!(r.iters == 16 || (smoke() && r.iters == 1));
        assert!(r.mean >= r.median / 64);
        assert!(!r.report().is_empty());
    }

    #[test]
    fn session_renders_machine_readable_json() {
        let mut s = Session::new("unit");
        s.bench("case/a", 4, || 1 + 1);
        s.bench("case/\"quoted\"", 4, || 2 + 2);
        assert_eq!(s.results().len(), 2);
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"unit\""));
        assert!(json.contains("\"name\":\"case/a\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"median_ns\":"));
        // Brackets balance — the cheap well-formedness check available
        // without a JSON parser in the dependency-free build.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn session_writes_the_timing_file() {
        // Exercised via `write_to` rather than `finish`: mutating the
        // process environment (`DXML_BENCH_DIR`) would race with sibling
        // tests reading it on other threads.
        let dir = std::env::temp_dir().join("dxml_bench_test");
        let mut s = Session::new("unit_file");
        s.bench("case", 2, || ());
        s.write_to(&dir);
        let path = dir.join("BENCH_unit_file.json");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"bench\": \"unit_file\""));
        std::fs::remove_file(path).unwrap();
        // The telemetry sidecar rides along, valid JSON with every metric
        // name present (all-zero here — collection is off in unit tests).
        let sidecar = dir.join("TELEMETRY_unit_file.json");
        let telemetry = std::fs::read_to_string(&sidecar).unwrap();
        assert!(telemetry.contains("\"counters\""));
        assert!(telemetry.contains("\"stream.docs\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                telemetry.matches(open).count(),
                telemetry.matches(close).count(),
                "unbalanced {open}{close} in telemetry sidecar"
            );
        }
        std::fs::remove_file(sidecar).unwrap();
    }
}
