//! Workload generators for the benchmark harness (to be filled in).
