//! Diffs freshly emitted `BENCH_<name>.json` timing files against committed
//! baselines and fails on gross warm-path regressions.
//!
//! ```text
//! bench_compare <baseline_dir> <current_dir> [threshold]
//! ```
//!
//! For every `BENCH_*.json` in `baseline_dir`, the tool loads the matching
//! file from `current_dir` and compares the **warm-path medians** — the
//! cases whose name contains `warm`, plus the `*_interned` cases of the
//! `symbol_interning` target (the cache-hit / dense-id paths, which are the
//! stable, machine-variance-tolerant signals; cold paths determinise from
//! scratch and are too noisy to gate on). A current median more than
//! `threshold`× (default 2×) the baseline median is a regression and fails
//! the run with exit code 1. Missing current files fail too — a bench
//! target silently disappearing is how perf trajectories die.
//!
//! Baselines live in `baselines/` at the repo root and are refreshed by
//! running `make bench-baselines` on the reference machine; CI runs
//! `make bench-compare`.
//!
//! The parser handles exactly the format `dxml_bench::Session::to_json`
//! emits (one case object per line) — the build is offline, so no JSON
//! dependency.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One parsed bench case.
struct Case {
    name: String,
    median_ns: u128,
}

/// A parsed `BENCH_<name>.json` file.
struct BenchFile {
    smoke: bool,
    cases: Vec<Case>,
}

/// Extracts the string value following `"key":` on `line`, if present.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}

/// Extracts the unsigned integer following `"key":` on `line`, if present.
fn field_u128(line: &str, key: &str) -> Option<u128> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn parse_bench_file(path: &Path) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let smoke = text.contains("\"smoke\": true");
    let mut cases = Vec::new();
    for line in text.lines() {
        if let (Some(name), Some(median_ns)) =
            (field_str(line, "name"), field_u128(line, "median_ns"))
        {
            cases.push(Case { name: name.to_string(), median_ns });
        }
    }
    if cases.is_empty() {
        return Err(format!("{} contains no bench cases", path.display()));
    }
    Ok(BenchFile { smoke, cases })
}

/// Whether a case's median gates the comparison: the warm (cache-hit)
/// paths, the interned dense-id paths, the bitset frontier paths and the
/// one-pass streaming-validation paths. Cold paths re-determinise from
/// scratch and vary too much across machines to gate CI on.
fn is_gated(case_name: &str) -> bool {
    case_name.contains("warm")
        || case_name.contains("_interned/")
        || case_name.contains("_bitset/")
        || case_name.contains("_stream/")
}

fn baseline_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn run(baseline_dir: &Path, current_dir: &Path, threshold: f64) -> Result<(), String> {
    let baselines = baseline_files(baseline_dir)?;
    if baselines.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", baseline_dir.display()));
    }
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for baseline_path in &baselines {
        let file_name = baseline_path.file_name().expect("baseline has a name");
        let current_path = current_dir.join(file_name);
        let baseline = parse_bench_file(baseline_path)?;
        let current = parse_bench_file(&current_path).map_err(|e| {
            format!("{e} — did the bench target stop emitting its timing file?")
        })?;
        if baseline.smoke || current.smoke {
            return Err(format!(
                "{}: smoke-mode timings (1 iteration) cannot be compared; \
                 run the benches without DXML_BENCH_SMOKE",
                file_name.to_string_lossy()
            ));
        }
        for base_case in baseline.cases.iter().filter(|c| is_gated(&c.name)) {
            let Some(cur_case) = current.cases.iter().find(|c| c.name == base_case.name) else {
                regressions.push(format!(
                    "{}: warm case `{}` disappeared",
                    file_name.to_string_lossy(),
                    base_case.name
                ));
                continue;
            };
            compared += 1;
            let ratio = cur_case.median_ns as f64 / base_case.median_ns.max(1) as f64;
            let verdict = if ratio > threshold { "REGRESSION" } else { "ok" };
            println!(
                "{:<14} {:<45} baseline {:>12} ns   current {:>12} ns   x{ratio:.2}",
                verdict,
                base_case.name,
                base_case.median_ns,
                cur_case.median_ns
            );
            if ratio > threshold {
                regressions.push(format!(
                    "{}: `{}` regressed {ratio:.2}× (baseline {} ns, current {} ns)",
                    file_name.to_string_lossy(),
                    base_case.name,
                    base_case.median_ns,
                    cur_case.median_ns
                ));
            }
        }
    }
    println!("\nbench_compare: {compared} warm-path medians compared against {} files", baselines.len());
    if regressions.is_empty() {
        println!("bench_compare: no median regressed beyond {threshold}×");
        Ok(())
    } else {
        Err(format!(
            "{} warm-path regression(s) beyond {threshold}×:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_dir, current_dir) = match (args.get(1), args.get(2)) {
        (Some(b), Some(c)) => (PathBuf::from(b), PathBuf::from(c)),
        _ => {
            eprintln!("usage: bench_compare <baseline_dir> <current_dir> [threshold]");
            return ExitCode::FAILURE;
        }
    };
    let threshold: f64 = match args.get(3) {
        None => 2.0,
        Some(t) => match t.parse() {
            Ok(v) if v > 1.0 => v,
            _ => {
                eprintln!("bench_compare: threshold must be a number > 1.0, got `{t}`");
                return ExitCode::FAILURE;
            }
        },
    };
    match run(&baseline_dir, &current_dir, threshold) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let line = r#"    {"name":"box_typecheck_warm/n=16","iters":5,"median_ns":123456,"mean_ns":130000}"#;
        assert_eq!(field_str(line, "name"), Some("box_typecheck_warm/n=16"));
        assert_eq!(field_u128(line, "median_ns"), Some(123456));
        assert_eq!(field_u128(line, "iters"), Some(5));
        assert_eq!(field_str(line, "missing"), None);
    }

    #[test]
    fn gating_selects_warm_interned_and_bitset_cases() {
        assert!(is_gated("box_typecheck_warm/n=16"));
        assert!(is_gated("typecheck_warm/n=8"));
        assert!(is_gated("subset_construction_interned/n=32"));
        assert!(is_gated("membership_bitset/n=32"));
        assert!(is_gated("outputs_over_bitset/n=16"));
        assert!(is_gated("definable_dtd_warm/n=12"));
        assert!(is_gated("analyze_box_warm/n=16"));
        assert!(!is_gated("typecheck_cold/n=16"));
        assert!(!is_gated("subset_construction_strings/n=32"));
        assert!(!is_gated("membership_btreeset/n=32"));
        assert!(!is_gated("outputs_over_btreeset/n=16"));
        assert!(!is_gated("perfect_schema/n=16"));
    }
}
