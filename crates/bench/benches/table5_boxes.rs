//! Table 5 (box versions of the design problems, Section 7): typing
//! verification and perfect-schema synthesis against genuinely specialised
//! R-EDTD targets, on the seeded box workload.
//!
//! Besides timing, this target *asserts* the subsystem's contracts: the
//! string route agrees with the tree route on every size, repeated
//! decisions reuse the cached determinised specialised target and the
//! per-function gap languages (pointer identity), and the warm path is
//! never slower than the cold path that has to re-determinise.

use dxml_automata::Symbol;
use dxml_bench::{box_workload, section, smoke, Session};
use dxml_core::BoxDesignProblem;

fn main() {
    let mut session = Session::new("table5_boxes");

    section("table5: box typing verification, growing target size n");
    for n in [4usize, 8, 16] {
        let (problem, doc) = box_workload(n);
        // Contract: the two decision procedures agree (the workload is
        // valid by construction).
        assert!(problem.typecheck(&doc).expect("typecheck runs").is_valid());
        assert!(problem.verify_local(&doc).expect("verify_local runs").is_valid());
        session.bench(&format!("box_typecheck/n={n}"), 5, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
        session.bench(&format!("box_verify_local/n={n}"), 5, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
        // An ill-typed variant: drop the function schema's last tree, so
        // the root word comes up one specialisation short.
        let (short_problem, short_doc) = box_workload(n);
        let broken = BoxDesignProblem::new(short_problem.doc_schema().clone())
            .with_function("f", box_workload(n.saturating_sub(1).max(2)).0.fun_schemas()[&Symbol::new("f")].clone());
        assert!(!broken.typecheck(&short_doc).expect("typecheck runs").is_valid());
        assert!(!broken.verify_local(&short_doc).expect("verify_local runs").is_valid());
        session.bench(&format!("box_refute/n={n}"), 5, || {
            assert!(!broken.verify_local(&short_doc).unwrap().is_valid());
        });
    }

    section("table5: perfect EDTD-schema synthesis, growing target size n");
    for n in [4usize, 8, 16] {
        let (problem, doc) = box_workload(n);
        let schema = problem.perfect_schema(&doc, "f").expect("synthesis succeeds");
        let solved = problem.clone().with_function("f", schema);
        assert!(solved.typecheck(&doc).expect("typecheck runs").is_valid());
        session.bench(&format!("box_perfect_schema/n={n}"), 5, || {
            problem.perfect_schema(&doc, "f").expect("synthesis succeeds").size()
        });
    }

    section("table5: cold vs warm decisions (cached specialised target)");
    for n in [4usize, 8, 16] {
        let (problem, doc) = box_workload(n);
        let cold = session.bench(&format!("box_typecheck_cold/n={n}"), 5, || {
            // A fresh problem per iteration: the OnceLock cache is empty
            // every time, so each call re-determinises the target and
            // re-images the gap languages.
            let mut fresh = BoxDesignProblem::new(problem.doc_schema().clone());
            for (g, schema) in problem.fun_schemas() {
                fresh.add_function(*g, schema.clone());
            }
            assert!(fresh.typecheck(&doc).unwrap().is_valid());
        });
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(problem.target_cache_ready(), "first decision must populate the cache");
        let duta_before = problem.target_cache().duta() as *const _;
        let gaps_before =
            problem.target_cache().forest_states(&Symbol::new("f")).unwrap() as *const _;
        let warm = session.bench(&format!("box_typecheck_warm/n={n}"), 5, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
        assert!(
            std::ptr::eq(duta_before, problem.target_cache().duta() as *const _),
            "repeated decisions must not re-determinise the specialised target (n={n})"
        );
        assert!(
            std::ptr::eq(
                gaps_before,
                problem.target_cache().forest_states(&Symbol::new("f")).unwrap() as *const _
            ),
            "repeated decisions must not re-image the gap languages (n={n})"
        );
        if n == 16 && !smoke() {
            assert!(
                warm.median <= cold.median.saturating_mul(2),
                "warm box decisions ({:?}) are grossly slower than cold ({:?}) at n={n}",
                warm.median,
                cold.median
            );
        }
    }

    session.finish();
}
