//! Table 1 (expressiveness): cost of deciding one-unambiguity — the
//! `one-unamb[R]` oracle separating the dRE column from the others — on
//! expression families of growing size.

use dxml_automata::{dre, Regex};
use dxml_bench::{Session, section};

/// `(a1|…|an)* a1` — one-unambiguous as a language, nondeterministic as
/// written; exercises the BKW procedure on the minimal DFA.
fn hard_expr(n: usize) -> Regex {
    let alts: Vec<Regex> = (0..n).map(|i| Regex::sym(format!("a{i}"))).collect();
    Regex::concat(vec![Regex::alt(alts).star(), Regex::sym("a0")])
}

/// `(a|b)* a (a|b)^k` — the classic non-one-unambiguous family.
fn non_unambiguous(k: usize) -> Regex {
    let ab = || Regex::alt(vec![Regex::sym("a"), Regex::sym("b")]);
    let mut parts = vec![ab().star(), Regex::sym("a")];
    parts.extend((0..k).map(|_| ab()));
    Regex::concat(parts)
}

fn main() {
    let mut session = Session::new("table1_expressiveness");
    section("table1: one-unambiguity of the expression (syntactic test)");
    for n in [4usize, 8, 16, 32] {
        let re = hard_expr(n);
        session.bench(&format!("one_unamb_expr/n={n}"), 50, || dre::one_unambiguous_expr(&re));
    }

    section("table1: one-unambiguity of the language (BKW on minimal DFA)");
    for n in [2usize, 4, 8] {
        let re = hard_expr(n);
        session.bench(&format!("one_unamb_lang/pos/n={n}"), 10, || {
            dre::one_unambiguous_language(&re.to_nfa())
        });
    }
    for k in [1usize, 2, 3] {
        let re = non_unambiguous(k);
        session.bench(&format!("one_unamb_lang/neg/k={k}"), 10, || {
            assert!(!dre::one_unambiguous_language(&re.to_nfa()));
        });
    }

    session.finish();
}
