//! Table 3 (existence column): emptiness / witness-existence checks — the
//! building block of consistency decisions — on the seeded DTD family.

use dxml_automata::RFormalism;
use dxml_bench::{Session, dtd_family, section};

fn main() {
    let mut session = Session::new("table3_existence");
    section("table3: language emptiness and witness extraction");
    for n in [4usize, 8, 16, 32, 64] {
        let dtd = dtd_family(RFormalism::Nre, n, 77);
        session.bench(&format!("language_is_empty/n={n}"), 30, || dtd.language_is_empty());
        session.bench(&format!("sample_tree/n={n}"), 30, || {
            dtd.sample_tree().expect("family is non-empty").size()
        });
    }

    section("table3: schema equivalence (Proposition 4.1 route)");
    for n in [4usize, 8, 16] {
        let a = dtd_family(RFormalism::Nre, n, 77);
        let b = dtd_family(RFormalism::Nre, n, 77);
        let c = dtd_family(RFormalism::Nre, n, 78);
        session.bench(&format!("equivalent/eq/n={n}"), 10, || assert!(a.equivalent(&b)));
        session.bench(&format!("equivalent/neq/n={n}"), 10, || a.equivalent(&c));
    }

    session.finish();
}
