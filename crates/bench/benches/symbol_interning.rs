//! Symbol interning: the dense-id automata hot paths against the seed's
//! string-keyed representation.
//!
//! The workload is the table-2/3/4 DTD family: the union-closure of its
//! content models is exactly the automaton shape the verification and
//! synthesis loops determinise over and over. Two implementations run the
//! same subset construction on the same language:
//!
//! * **interned** — the real [`dxml_automata`] path: `Symbol` as a dense
//!   `u32` id, sorted adjacency vectors, hashed subset index;
//! * **strings** — a faithful in-bench reimplementation of the *seed*
//!   representation this PR replaced: `Arc<str>` symbols ordered by text,
//!   `BTreeMap<Option<Sym>, BTreeSet<usize>>` transitions per state, a
//!   `BTreeMap`-indexed subset construction, and the seed's
//!   clone-per-lookup `step`.
//!
//! Besides timing, this target *asserts* the tentpole's win: at the largest
//! size the string-keyed median must be at least 2× the interned median
//! (the acceptance bar of the interning change), mirroring how
//! `table4_perfect` asserts its caching contract.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use dxml_automata::{Nfa, RFormalism, Symbol};
use dxml_bench::{dtd_family, elem, section, smoke, Session};

/// The seed's symbol: a refcounted string ordered by text.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Sym(Arc<str>);

/// The seed's NFA representation: one `BTreeMap<Option<Sym>, BTreeSet<usize>>`
/// per state (`None` = ε), string comparisons on every lookup.
struct SeedNfa {
    start: usize,
    finals: BTreeSet<usize>,
    trans: Vec<BTreeMap<Option<Sym>, BTreeSet<usize>>>,
}

impl SeedNfa {
    /// Converts from the real automaton (outside the timed region).
    fn of(nfa: &Nfa) -> SeedNfa {
        let mut out = SeedNfa {
            start: nfa.start(),
            finals: nfa.finals().clone(),
            trans: vec![BTreeMap::new(); nfa.num_states()],
        };
        for (q, lbl, t) in nfa.transitions() {
            let key = lbl.map(|s| Sym(Arc::from(s.as_str())));
            out.trans[q].entry(key).or_default().insert(t);
        }
        out
    }

    fn alphabet(&self) -> BTreeSet<Sym> {
        self.trans
            .iter()
            .flat_map(|m| m.keys())
            .filter_map(Clone::clone)
            .collect()
    }

    /// Seed `Nfa::epsilon_closure`, verbatim modulo names.
    fn epsilon_closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = set.clone();
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(q) = stack.pop() {
            if let Some(next) = self.trans[q].get(&None) {
                for &t in next {
                    if closure.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        closure
    }

    /// Seed `Nfa::step`, including its clone-per-lookup key construction.
    fn step(&self, set: &BTreeSet<usize>, sym: &Sym) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &q in set {
            if let Some(ts) = self.trans[q].get(&Some(sym.clone())) {
                next.extend(ts.iter().copied());
            }
        }
        self.epsilon_closure(&next)
    }

    /// Seed `Dfa::from_nfa`: BFS over reachable subsets with a
    /// `BTreeMap`-of-sets index, producing string-keyed DFA transitions.
    /// Returns (states, transitions) so the work stays observable.
    fn determinize(&self) -> (usize, usize) {
        let alphabet = self.alphabet();
        let start_set = self.epsilon_closure(&BTreeSet::from([self.start]));
        let mut index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut dfa_trans: Vec<BTreeMap<Sym, usize>> = vec![BTreeMap::new()];
        let mut num_finals = 0usize;
        index.insert(start_set.clone(), 0);
        let mut queue = VecDeque::from([start_set]);
        while let Some(set) = queue.pop_front() {
            let id = index[&set];
            if set.iter().any(|q| self.finals.contains(q)) {
                num_finals += 1;
            }
            for sym in &alphabet {
                let next = self.step(&set, sym);
                if next.is_empty() {
                    continue;
                }
                let next_id = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = dfa_trans.len();
                        dfa_trans.push(BTreeMap::new());
                        index.insert(next.clone(), i);
                        queue.push_back(next.clone());
                        i
                    }
                };
                dfa_trans[id].insert(sym.clone(), next_id);
            }
        }
        std::hint::black_box(num_finals);
        (dfa_trans.len(), dfa_trans.iter().map(BTreeMap::len).sum())
    }

    /// Seed `Nfa::accepts`.
    fn accepts(&self, word: &[Sym]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for sym in word {
            if current.is_empty() {
                break;
            }
            current = self.step(&current, sym);
        }
        current.iter().any(|q| self.finals.contains(q))
    }
}

/// The hot-loop language of the table workloads: the starred union of every
/// content model of the `(n, seed)` DTD family — the automaton shape the
/// design procedures feed to the subset construction — with the family's
/// compressed `e<i>` names expanded to the paper's element-name lengths
/// (`nationalIndex_e<i>`, the Figure-3 naming style the compact family
/// abbreviates). The ε-transitions of the union are eliminated up front:
/// the seed and the interned path eliminate them identically, and the
/// subset-construction loop proper is what this target measures.
fn family_language(n: usize) -> Nfa {
    let target = dtd_family(RFormalism::Nre, n, 11);
    let contents: Vec<Nfa> = target
        .alphabet()
        .iter()
        .map(|a| target.content(a).to_nfa())
        .collect();
    Nfa::union_all(contents.iter())
        .star()
        .map_symbols(|s| Symbol::new(format!("nationalIndex_{s}")))
        .eps_free()
}

/// A long valid-ish word over the family alphabet for the membership case.
fn probe_word(n: usize, len: usize) -> Vec<Symbol> {
    (0..len)
        .map(|i| Symbol::new(format!("nationalIndex_{}", elem(1 + (i % n.saturating_sub(1).max(1))))))
        .collect()
}

fn main() {
    let mut session = Session::new("symbol_interning");

    section("symbol_interning: subset construction, interned ids vs seed strings");
    let mut medians: BTreeMap<usize, (std::time::Duration, std::time::Duration)> = BTreeMap::new();
    for n in [8usize, 16, 24, 32] {
        let lang = family_language(n);
        let seed = SeedNfa::of(&lang);
        // Both representations determinise the same language.
        let interned_states = lang.to_dfa().num_states();
        let (string_states, _) = seed.determinize();
        assert_eq!(
            interned_states, string_states,
            "interned and string-keyed subset constructions must agree (n={n})"
        );
        let interned = session.bench(&format!("subset_construction_interned/n={n}"), 15, || {
            lang.to_dfa().num_states()
        });
        let strings = session.bench(&format!("subset_construction_strings/n={n}"), 15, || {
            seed.determinize()
        });
        medians.insert(n, (interned.median, strings.median));
    }

    section("symbol_interning: word membership on the family language");
    for n in [16usize, 24] {
        let lang = family_language(n);
        let seed = SeedNfa::of(&lang);
        let word = probe_word(n, 512);
        let seed_word: Vec<Sym> = word.iter().map(|s| Sym(Arc::from(s.as_str()))).collect();
        assert_eq!(lang.accepts(&word), seed.accepts(&seed_word));
        session.bench(&format!("membership_interned/n={n}"), 15, || lang.accepts(&word));
        session.bench(&format!("membership_strings/n={n}"), 15, || seed.accepts(&seed_word));
    }

    // The acceptance bar of the interning tentpole: on the largest table
    // workload, the dense-id hot loop is at least 2× faster than the
    // seed-equivalent string-keyed path (cold, same language, same
    // algorithm shape).
    if !smoke() {
        let &(interned, strings) = medians.get(&32).expect("n=32 case ran");
        assert!(
            strings >= interned.saturating_mul(2),
            "interned subset construction ({interned:?}) must be ≥2× faster than the \
             string-keyed seed path ({strings:?}) at n=32"
        );
    }

    session.finish();
}
