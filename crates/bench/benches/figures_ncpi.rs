//! The paper's running Eurostat NCPI scenario (Figures 1–4) end to end:
//! parse the global type, validate materialised documents and typecheck the
//! distributed design, at growing document sizes.

use std::collections::BTreeMap;

use dxml_automata::{RFormalism, Symbol};
use dxml_bench::{Session, section};
use dxml_core::{DesignProblem, DistributedDoc};
use dxml_schema::RDtd;
use dxml_tree::term::parse_forest;

const EUROSTAT: &str = "eurostat -> averages, nationalIndex*\n\
                        averages -> (Good, index+)+\n\
                        nationalIndex -> country, Good, (index | value, year)\n\
                        index -> value, year";

const OFFICE: &str = "natResult -> nationalIndex*\n\
                      nationalIndex -> country, Good, index\n\
                      index -> value, year";

fn main() {
    let mut session = Session::new("figures_ncpi");
    section("figures: parsing and validation of the NCPI document");
    session.bench("parse_dtd/eurostat", 100, || RDtd::parse(RFormalism::Nre, EUROSTAT).unwrap().size());

    let target = RDtd::parse(RFormalism::Nre, EUROSTAT).unwrap();
    for entries in [10usize, 100, 1000] {
        let mut results = BTreeMap::new();
        let forest = parse_forest(
            &"nationalIndex(country Good index(value year)) ".repeat(entries),
        )
        .unwrap();
        results.insert(Symbol::new("fNCP"), forest);
        let doc =
            DistributedDoc::parse("eurostat(averages(Good index(value year)) fNCP)", ["fNCP"])
                .unwrap();
        let materialised = doc.materialize(&results).unwrap();
        session.bench(&format!("validate/entries={entries}"), 20, || {
            assert!(target.accepts(&materialised));
        });
    }

    section("figures: typing the distributed NCPI design");
    let office = RDtd::parse(RFormalism::Nre, OFFICE).unwrap();
    for calls in [1usize, 4, 16] {
        let kernel = format!(
            "eurostat(averages(Good index(value year)) {})",
            (0..calls).map(|i| format!("f{i}")).collect::<Vec<_>>().join(" ")
        );
        let funs: Vec<String> = (0..calls).map(|i| format!("f{i}")).collect();
        let doc = DistributedDoc::parse(&kernel, funs.clone()).unwrap();
        let mut problem = DesignProblem::new(target.clone());
        for f in &funs {
            problem.add_function(f.as_str(), office.clone());
        }
        session.bench(&format!("typecheck/calls={calls}"), 10, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
        session.bench(&format!("verify_local/calls={calls}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
    }

    session.finish();
}
