//! Membership frontiers: the dense-bitset state-set engine against the
//! seed's `BTreeSet<usize>` frontiers.
//!
//! Two set-shaped hot loops run side by side on the same inputs:
//!
//! * **NFA membership** on the table-family frontier language (the starred
//!   union of the family's content models, ε-eliminated — the shape the
//!   design procedures step over and over): the real
//!   [`Nfa::accepts`] path (bitset frontiers) vs a faithful in-bench
//!   reimplementation of the *seed* path this PR replaced — the same
//!   interned symbols and sorted dense adjacency, but `BTreeSet<usize>`
//!   frontiers with the seed's collect-a-stack ε-closure;
//! * **`Duta::outputs_over`** on the `box_workload` targets (the Moore-
//!   machine image behind `verify_local`): the real bitset product BFS vs
//!   the seed's BFS over `(config, BTreeSet<usize>)` pairs keyed in a
//!   `BTreeSet`.
//!
//! Besides timing, this target *asserts* the tentpole's win: at the largest
//! table-family size the seed `BTreeSet` median must be at least 2× the
//! bitset median (the acceptance bar of the state-set change), mirroring
//! how `symbol_interning` asserts the interning bar.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use dxml_automata::{Nfa, RFormalism, Symbol};
use dxml_bench::{box_workload, dtd_family, section, smoke, Session};
use dxml_tree::uta::Duta;

// ----------------------------------------------------------------------
// The seed frontier: BTreeSet<usize> sets over the dense adjacency
// ----------------------------------------------------------------------

/// The seed's membership path, verbatim modulo names: interned symbols and
/// per-state sorted `(local id, successor)` adjacency exactly like the real
/// [`Nfa`], but every frontier is a `BTreeSet<usize>` and the ε-closure
/// collects its work stack unconditionally — the representation the bitset
/// engine replaced.
struct SeedFrontier {
    start: usize,
    finals: BTreeSet<usize>,
    sym_index: BTreeMap<Symbol, u32>,
    trans: Vec<Vec<(u32, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl SeedFrontier {
    /// Converts from the real automaton (outside the timed region).
    fn of(nfa: &Nfa) -> SeedFrontier {
        let mut sym_index: BTreeMap<Symbol, u32> = BTreeMap::new();
        let mut out = SeedFrontier {
            start: nfa.start(),
            finals: nfa.finals().clone(),
            sym_index: BTreeMap::new(),
            trans: vec![Vec::new(); nfa.num_states()],
            eps: vec![Vec::new(); nfa.num_states()],
        };
        for (q, lbl, t) in nfa.transitions() {
            match lbl {
                None => out.eps[q].push(t),
                Some(sym) => {
                    let next = sym_index.len() as u32;
                    let sid = *sym_index.entry(*sym).or_insert(next);
                    out.trans[q].push((sid, t));
                }
            }
        }
        for v in &mut out.trans {
            v.sort_unstable();
        }
        for v in &mut out.eps {
            v.sort_unstable();
        }
        out.sym_index = sym_index;
        out
    }

    /// Seed `Nfa::epsilon_closure_inplace` (always collects the stack).
    fn epsilon_closure(&self, mut closure: BTreeSet<usize>) -> BTreeSet<usize> {
        let mut stack: Vec<usize> = closure.iter().copied().collect();
        while let Some(q) = stack.pop() {
            for &t in &self.eps[q] {
                if closure.insert(t) {
                    stack.push(t);
                }
            }
        }
        closure
    }

    fn succ_slice(&self, q: usize, sid: u32) -> &[(u32, usize)] {
        let v = &self.trans[q];
        let lo = v.partition_point(|&(s, _)| s < sid);
        let hi = lo + v[lo..].partition_point(|&(s, _)| s == sid);
        &v[lo..hi]
    }

    /// Seed `Nfa::step_local`.
    fn step_local(&self, set: &BTreeSet<usize>, sid: u32) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &q in set {
            next.extend(self.succ_slice(q, sid).iter().map(|&(_, t)| t));
        }
        self.epsilon_closure(next)
    }

    /// Seed `Nfa::accepts`.
    fn accepts(&self, word: &[u32]) -> bool {
        let mut current = self.epsilon_closure(BTreeSet::from([self.start]));
        for &sid in word {
            if current.is_empty() {
                break;
            }
            current = self.step_local(&current, sid);
        }
        current.iter().any(|q| self.finals.contains(q))
    }
}

// ----------------------------------------------------------------------
// Workloads
// ----------------------------------------------------------------------

/// The table-family frontier language: the starred union of every content
/// model of the `(n, seed)` DTD family with the element names collapsed
/// onto a 3-letter base alphabet (`e<i>` ↦ `x<i%3>`), ε-eliminated. The
/// collapse models the specialised-name collisions of the box reduction —
/// many specialised names share a base label — and is what makes the union
/// genuinely nondeterministic: one step moves **every** branch expecting
/// that base letter, so the frontier grows with `n` exactly like the state
/// sets inside the subset constructions and `outputs_over` products.
fn family_language(n: usize) -> Nfa {
    let target = dtd_family(RFormalism::Nre, n, 11);
    let contents: Vec<Nfa> = target
        .alphabet()
        .iter()
        .map(|a| target.content(a).to_nfa())
        .collect();
    let collapse = |s: &Symbol| {
        let i: usize = s.as_str().trim_start_matches('e').parse().unwrap_or(0);
        Symbol::new(format!("x{}", i % 3))
    };
    Nfa::union_all(contents.iter())
        .star()
        .map_symbols(collapse)
        .eps_free()
}

/// A long probe word over the collapsed base alphabet.
fn probe_word(len: usize) -> Vec<Symbol> {
    (0..len).map(|i| Symbol::new(format!("x{}", i % 3))).collect()
}

fn letter_of(sym: &Symbol) -> Option<usize> {
    sym.as_str().strip_prefix("#s").and_then(|t| t.parse().ok())
}

/// The seed reimplementation of [`Duta::outputs_over`]: the same product
/// BFS, but with `BTreeSet<usize>` frontiers and a `BTreeSet`-keyed seen
/// set, the machine consumed through its public transition view.
fn seed_outputs_over(
    duta: &Duta,
    delta: &BTreeMap<(usize, usize), usize>,
    label: &Symbol,
    seed: &SeedFrontier,
    moves: &[(Symbol, usize, u32)],
) -> BTreeMap<usize, Vec<Symbol>> {
    // One BFS state of the seed product: (machine config, BTreeSet frontier).
    type Pair = (usize, BTreeSet<usize>);
    let machine = duta.machine(label).expect("workload label has a machine");
    let start = (machine.start(), seed.epsilon_closure(BTreeSet::from([seed.start])));
    let mut outputs: BTreeMap<usize, Vec<Symbol>> = BTreeMap::new();
    let mut seen: BTreeSet<Pair> = BTreeSet::from([start.clone()]);
    let mut queue: VecDeque<(Pair, Vec<Symbol>)> = VecDeque::from([(start, Vec::new())]);
    while let Some(((config, set), witness)) = queue.pop_front() {
        if set.iter().any(|q| seed.finals.contains(q)) {
            outputs.entry(machine.output(config)).or_insert_with(|| witness.clone());
        }
        for &(sym, letter, sid) in moves {
            let next_config = match delta.get(&(config, letter)) {
                Some(&c) => c,
                None => continue,
            };
            let next_set = seed.step_local(&set, sid);
            if next_set.is_empty() {
                continue;
            }
            let state = (next_config, next_set);
            if seen.insert(state.clone()) {
                let mut w = witness.clone();
                w.push(sym);
                queue.push_back((state, w));
            }
        }
    }
    outputs
}

fn main() {
    let mut session = Session::new("membership_frontier");

    section("membership_frontier: NFA membership, bitset vs seed BTreeSet frontiers");
    let mut medians: BTreeMap<usize, (Duration, Duration)> = BTreeMap::new();
    for n in [8usize, 16, 24, 32] {
        let lang = family_language(n);
        let seed = SeedFrontier::of(&lang);
        let word = probe_word(512);
        let seed_word: Vec<u32> = word
            .iter()
            .map(|s| seed.sym_index.get(s).copied().unwrap_or(u32::MAX))
            .collect();
        assert_eq!(
            lang.accepts(&word),
            seed.accepts(&seed_word),
            "bitset and BTreeSet membership must agree (n={n})"
        );
        let bitset = session.bench(&format!("membership_bitset/n={n}"), 25, || {
            lang.accepts(&word)
        });
        let btreeset = session.bench(&format!("membership_btreeset/n={n}"), 25, || {
            seed.accepts(&seed_word)
        });
        medians.insert(n, (bitset.median, btreeset.median));
    }

    section("membership_frontier: Duta::outputs_over image, bitset vs seed BTreeSet pairs");
    for n in [4usize, 8, 16] {
        let (problem, doc) = box_workload(n);
        // Build the cache (and the gap language) outside the timed region.
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        let cache = problem.target_cache();
        let duta = cache.duta();
        let f = Symbol::new("f");
        let word_lang = cache.forest_states(&f).expect("workload declares f").clone();
        let label = Symbol::new("s");
        let machine = duta.machine(&label).expect("target types the root");
        let delta: BTreeMap<(usize, usize), usize> =
            machine.transitions().map(|(c, l, t)| ((c, l), t)).collect();
        let seed = SeedFrontier::of(&word_lang);
        let moves: Vec<(Symbol, usize, u32)> = word_lang
            .alphabet()
            .iter()
            .filter_map(|&sym| {
                Some((sym, letter_of(&sym)?, seed.sym_index.get(&sym).copied()?))
            })
            .collect();
        // Byte-identical images (subset states and witness words) from both
        // representations.
        let real = duta.outputs_over(&label, &word_lang, letter_of);
        let want = seed_outputs_over(duta, &delta, &label, &seed, &moves);
        assert_eq!(real, want, "bitset and BTreeSet outputs_over must agree (n={n})");
        session.bench(&format!("outputs_over_bitset/n={n}"), 15, || {
            duta.outputs_over(&label, &word_lang, letter_of).len()
        });
        session.bench(&format!("outputs_over_btreeset/n={n}"), 15, || {
            seed_outputs_over(duta, &delta, &label, &seed, &moves).len()
        });
    }

    // The acceptance bar of the state-set tentpole: on the largest
    // table-family workload, the bitset membership frontier is at least 2×
    // faster than the seed-equivalent BTreeSet path (same adjacency, same
    // algorithm shape, only the set representation differs).
    if !smoke() {
        let &(bitset, btreeset) = medians.get(&32).expect("n=32 case ran");
        assert!(
            btreeset >= bitset.saturating_mul(2),
            "bitset membership frontier ({bitset:?}) must be ≥2× faster than the seed \
             BTreeSet path ({btreeset:?}) at n=32"
        );
    }

    session.finish();
}
