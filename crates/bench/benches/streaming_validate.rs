//! Streaming one-pass SDTD validation against the materialise-then-validate
//! route, plus batch throughput in documents per second.
//!
//! Three corpus shapes stress different resources:
//!
//! * **deep** — a single 𝑂(depth) chain: the streaming pass holds one frame
//!   per open element, the tree route materialises every node first;
//! * **wide** — a flat Eurostat-style fan-out of `nationalIndex` records;
//! * **eurostat** — the Figure-1 document shape, mixed depth and width.
//!
//! The `*_stream/` cases are the one-pass [`StreamValidator`] over the raw
//! XML string; the `*_tree/` cases are `parse_xml` + [`RSdtd::validate`] on
//! the same string. Both routes return byte-identical verdicts (asserted
//! before timing; the differential test suite pins this exhaustively).
//!
//! Besides timing, this target *asserts* the tentpole's win in non-smoke
//! runs: on the largest deep and wide corpora the streaming median must be
//! at least 2× faster than the materialising route. The batch section
//! reports end-to-end documents/second over all cores, and the stats
//! section reports the peak frame depth and peak buffered child labels —
//! the streaming pass's actual memory footprint.

use dxml_automata::RFormalism;
use dxml_bench::{section, smoke, Session};
use dxml_core::validate_batch;
use dxml_schema::{RSdtd, StreamValidator};
use dxml_tree::xml::parse_xml;

/// The recursive chain schema for the deep corpus.
fn deep_sdtd() -> RSdtd {
    RSdtd::parse(RFormalism::Nre, "a -> a?").unwrap()
}

/// A `depth`-deep chain document.
fn deep_doc(depth: usize) -> String {
    format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth))
}

/// The Eurostat-flavoured schema of the paper's running example
/// (Figure 1): averages and per-country national index records, with
/// context-dependent `index` specialisations.
fn eurostat_sdtd() -> RSdtd {
    RSdtd::parse(
        RFormalism::Nre,
        "eurostat -> averages~1*, nationalIndex~2*\n\
         averages~1 -> Good, index~1\n\
         nationalIndex~2 -> country, Good, index~2\n\
         index~1 -> value\n\
         index~2 -> value, year",
    )
    .unwrap()
}

/// A flat document with `n` national-index records under the root.
fn wide_doc(n: usize) -> String {
    let mut out = String::from("<eurostat>");
    for _ in 0..n {
        out.push_str(
            "<nationalIndex><country/><Good/><index><value/><year/></index></nationalIndex>",
        );
    }
    out.push_str("</eurostat>");
    out
}

/// A mixed-shape document: some averages, then national-index records.
fn eurostat_doc(n: usize) -> String {
    let mut out = String::from("<eurostat>");
    for _ in 0..n / 4 {
        out.push_str("<averages><Good/><index><value/></index></averages>");
    }
    for _ in 0..n {
        out.push_str(
            "<nationalIndex><country/><Good/><index><value/><year/></index></nationalIndex>",
        );
    }
    out.push_str("</eurostat>");
    out
}

/// One corpus case: stream vs tree on the same document, medians returned.
fn run_pair(
    session: &mut Session,
    validator: &StreamValidator,
    sdtd: &RSdtd,
    shape: &str,
    size: usize,
    doc: &str,
) -> (std::time::Duration, std::time::Duration) {
    let stream_verdict = validator.validate(doc);
    let tree_verdict = parse_xml(doc).map_err(Into::into).and_then(|t| sdtd.validate(&t));
    assert_eq!(stream_verdict, tree_verdict, "routes disagree on {shape}/{size}");
    let stream = session.bench(&format!("validate_stream/{shape}/n={size}"), 11, || {
        validator.validate(doc)
    });
    let tree = session.bench(&format!("validate_tree/{shape}/n={size}"), 11, || {
        parse_xml(doc).map_err(Into::into).and_then(|t| sdtd.validate(&t))
    });
    (stream.median, tree.median)
}

fn main() {
    let mut session = Session::new("streaming_validate");
    let scale = if smoke() { 50 } else { 1_000 };

    section("streaming_validate: deep chains (O(depth) frames vs materialised tree)");
    let deep = deep_sdtd();
    let deep_validator = StreamValidator::new(&deep);
    let mut largest_deep = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for factor in [1usize, 10, 50] {
        let depth = scale * factor;
        let doc = deep_doc(depth);
        largest_deep = run_pair(&mut session, &deep_validator, &deep, "deep", depth, &doc);
    }

    section("streaming_validate: wide Eurostat fan-outs");
    let euro = eurostat_sdtd();
    let euro_validator = StreamValidator::new(&euro);
    let mut largest_wide = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for factor in [1usize, 4, 16] {
        let n = scale * factor;
        let doc = wide_doc(n);
        largest_wide = run_pair(&mut session, &euro_validator, &euro, "wide", n, &doc);
    }

    section("streaming_validate: mixed Eurostat documents");
    for factor in [1usize, 8] {
        let n = scale * factor;
        let doc = eurostat_doc(n);
        run_pair(&mut session, &euro_validator, &euro, "eurostat", n, &doc);
    }

    section("streaming_validate: batch throughput (docs/sec, all cores)");
    let batch_docs: Vec<String> = (0..if smoke() { 8 } else { 256 })
        .map(|i| eurostat_doc(scale / 2 + i % 7))
        .collect();
    let batch = session.bench(&format!("validate_batch/docs={}", batch_docs.len()), 7, || {
        validate_batch(&euro, &batch_docs)
    });
    let docs_per_sec = batch_docs.len() as f64 / batch.median.as_secs_f64();
    println!(
        "batch throughput: {} docs in {:?} median → {docs_per_sec:.0} docs/sec",
        batch_docs.len(),
        batch.median
    );

    section("streaming_validate: streaming memory footprint");
    for (shape, doc) in [("deep", deep_doc(scale * 50)), ("wide", wide_doc(scale * 16))] {
        let validator = if shape == "deep" { &deep_validator } else { &euro_validator };
        let (verdict, stats) = validator.validate_with_stats(&doc);
        assert!(verdict.is_ok());
        println!(
            "{shape}: {} bytes of XML, peak depth {}, peak buffered child labels {}",
            doc.len(),
            stats.peak_depth,
            stats.peak_buffered
        );
    }

    // The acceptance bar of the streaming tentpole: on the largest deep and
    // wide corpora the one-pass route is at least 2× faster than
    // materialise-then-validate.
    if !smoke() {
        for (shape, (stream, tree)) in [("deep", largest_deep), ("wide", largest_wide)] {
            assert!(
                tree >= stream.saturating_mul(2),
                "streaming validation ({stream:?}) must be ≥2× faster than the \
                 materialising route ({tree:?}) on the largest {shape} corpus"
            );
        }
    }

    session.finish();
}
