//! Unlimited-path overhead of the resource-governance layer.
//!
//! Budget checks are compiled into every governed hot loop unconditionally;
//! the contract is that with the default unlimited budget each check
//! collapses to one `Option` discriminant branch — no atomics, no clock.
//! The `*_warm` cases run the ungoverned public APIs (which delegate to the
//! governed implementations with the unlimited budget) and gate against the
//! committed `baselines/BENCH_governance_overhead.json` through
//! `bench_compare` — an unlimited-path regression beyond the usual 2×
//! threshold fails `make bench-compare` exactly like a regression in the
//! engine itself.
//!
//! The `governed_*` cases rerun the same workloads under a generous finite
//! budget (relaxed `fetch_add` per step). They are deliberately *not* gated
//! (no `warm` in the name): they document the governed-path cost in the
//! timing files without constraining it. The `trip_*` cases pin that tiny
//! budgets abort promptly instead of running to completion.

use std::time::Duration;

use dxml_automata::limits::faults;
use dxml_automata::{AutomataError, Budget, Dfa, Regex, Resource};
use dxml_bench::{design_workload, section, Session};
use dxml_core::DesignError;
use dxml_schema::{RSdtd, StreamValidator};

/// A wide streaming corpus: `n` flat records under one root.
fn stream_workload(n: usize) -> (RSdtd, StreamValidator, String) {
    let sdtd = RSdtd::parse(dxml_automata::RFormalism::Nre, "s -> r*\nr -> a, b?").unwrap();
    let mut doc = String::from("<s>");
    for i in 0..n {
        doc.push_str(if i % 2 == 0 { "<r><a/></r>" } else { "<r><a/><b/></r>" });
    }
    doc.push_str("</s>");
    let validator = StreamValidator::new(&sdtd);
    (sdtd, validator, doc)
}

/// A budget none of the workloads below can exhaust.
fn generous() -> Budget {
    Budget::unlimited()
        .with_step_quota(u64::MAX / 2)
        .with_state_quota(u64::MAX / 2)
        .with_node_quota(u64::MAX / 2)
        .with_deadline(Duration::from_secs(3600))
}

fn main() {
    let mut session = Session::new("governance_overhead");

    // The gated section: the ungoverned APIs, i.e. the unlimited budget.
    // These medians are the committed unlimited-path baseline.
    section("unlimited budget: governed hot loops at baseline speed");
    for n in [8usize, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        // Warm the problem caches once so the gated cases measure the
        // governed steady state, not the one-off determinisation.
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        session.bench(&format!("verify_local_warm/n={n}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
        session.bench(&format!("typecheck_warm/n={n}"), 10, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
    }
    for n in [256usize, 1024] {
        let (_, validator, doc) = stream_workload(n);
        session.bench(&format!("stream_warm/n={n}"), 10, || {
            assert!(validator.validate(&doc).is_ok());
        });
    }
    // The cold determinisation path, unlimited.
    let blowup = Regex::parse("(a|b)* a (a|b) (a|b) (a|b) (a|b) (a|b) (a|b) (a|b)")
        .unwrap()
        .to_nfa();
    session.bench("determinize_warm/2^8", 10, || {
        assert!(Dfa::from_nfa(&blowup).num_states() >= 256);
    });

    // The comparison section: the same workloads under a finite budget —
    // reported, not gated.
    section("finite budget: the same workloads, counters armed");
    for n in [8usize, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        let budget = generous();
        session.bench(&format!("governed_verify_local/n={n}"), 10, || {
            assert!(problem.verify_local_with_budget(&doc, &budget).unwrap().is_valid());
        });
        let budget = generous();
        session.bench(&format!("governed_typecheck/n={n}"), 10, || {
            assert!(problem.typecheck_with_budget(&doc, &budget).unwrap().is_valid());
        });
    }
    for n in [256usize, 1024] {
        let (sdtd, _, doc) = stream_workload(n);
        let validator = StreamValidator::new(&sdtd);
        let budget = generous();
        session.bench(&format!("governed_stream/n={n}"), 10, || {
            assert!(validator.validate_with_budget(&doc, &budget).is_ok());
        });
    }
    let budget = generous();
    session.bench("governed_determinize/2^8", 10, || {
        assert!(Dfa::from_nfa_with_budget(&blowup, &budget).unwrap().num_states() >= 256);
    });

    // Trips must be prompt: a tiny budget aborts the blowup construction
    // long before it would finish, and the error is typed.
    section("fault injection: tiny budgets abort promptly");
    session.bench("trip_determinize/steps=64", 20, || {
        assert!(matches!(
            Dfa::from_nfa_with_budget(&blowup, &faults::budget_tripping_after(64)),
            Err(AutomataError::BudgetExceeded { resource: Resource::Steps, .. })
        ));
    });
    let (problem, doc) = design_workload(8, 2, 11);
    session.bench("trip_typecheck/expired_deadline", 20, || {
        assert!(matches!(
            problem.typecheck_with_budget(&doc, &faults::expired_deadline()),
            Err(DesignError::BudgetExceeded { resource: Resource::Deadline, .. })
        ));
    });

    session.finish();
}
