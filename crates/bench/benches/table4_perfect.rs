//! Table 4 (perfect typing, Section 6): perfect-schema synthesis on the
//! seeded design workload, and the effect of the cached determinised
//! target on repeated typechecking.
//!
//! Besides timing, this target *asserts* the caching contract: repeated
//! `typecheck` calls on the same problem reuse the very same determinised
//! target (pointer identity), and a warm call is never slower than a cold
//! one that has to determinise from scratch.

use dxml_bench::{design_workload, section, smoke, Session};
use dxml_core::DesignProblem;

fn main() {
    let mut session = Session::new("table4_perfect");

    section("table4: perfect-schema synthesis, growing schema size n");
    for n in [4usize, 8, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        let f = doc.called_functions().into_iter().next().expect("workload has calls");
        // The synthesised schema must solve the design it was derived from.
        let schema = problem.perfect_schema(&doc, f).expect("synthesis succeeds");
        let solved = problem.clone().with_function(f, schema);
        assert!(solved.typecheck(&doc).expect("typecheck runs").is_valid());
        session.bench(&format!("perfect_schema/n={n}"), 5, || {
            problem.perfect_schema(&doc, f).expect("synthesis succeeds").size()
        });
    }

    section("table4: cold vs warm typecheck (cached determinised target)");
    for n in [4usize, 8, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        let cold = session.bench(&format!("typecheck_cold/n={n}"), 5, || {
            // A fresh problem per iteration: the OnceLock target cache is
            // empty every time, so each call re-determinises.
            let mut fresh = DesignProblem::new(problem.doc_schema().clone());
            for (g, schema) in problem.fun_schemas() {
                fresh.add_function(*g, schema.clone());
            }
            assert!(fresh.typecheck(&doc).unwrap().is_valid());
        });
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(problem.target_cache_ready(), "first typecheck must populate the cache");
        let before = problem.target_cache().duta() as *const _;
        let warm = session.bench(&format!("typecheck_warm/n={n}"), 5, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
        let after = problem.target_cache().duta() as *const _;
        assert!(
            std::ptr::eq(before, after),
            "repeated typecheck must not re-determinise the target (n={n})"
        );
        // With the cache in place the warm path skips the determinisation
        // entirely; at the largest size the difference must be visible.
        if n == 16 && !smoke() {
            assert!(
                warm.median <= cold.median,
                "warm typecheck ({:?}) slower than cold ({:?}) at n={n}: target \
                 determinisation is being repeated",
                warm.median,
                cold.median
            );
        }
    }

    section("table4: extension automaton memoised per (problem, document)");
    for n in [8usize, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        let cold = session.bench(&format!("extension_cold/n={n}"), 5, || {
            // A fresh problem per iteration: the per-document memo is empty
            // every time, so each call rebuilds the extension automaton.
            let mut fresh = DesignProblem::new(problem.doc_schema().clone());
            for (g, schema) in problem.fun_schemas() {
                fresh.add_function(*g, schema.clone());
            }
            fresh.extension_nuta(&doc).unwrap().size()
        });
        let first = problem.extension_nuta(&doc).unwrap();
        let warm = session.bench(&format!("extension_warm/n={n}"), 5, || {
            problem.extension_nuta(&doc).unwrap().size()
        });
        // Back-to-back decisions on the same document hand back the very
        // same automaton.
        assert!(
            std::sync::Arc::ptr_eq(&first, &problem.extension_nuta(&doc).unwrap()),
            "repeated decisions must not rebuild the extension automaton (n={n})"
        );
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(
            std::sync::Arc::ptr_eq(&first, &problem.extension_nuta(&doc).unwrap()),
            "typecheck must go through the per-document memo (n={n})"
        );
        if n == 16 && !smoke() {
            assert!(
                warm.median <= cold.median,
                "warm extension lookup ({:?}) slower than a cold rebuild ({:?}) at n={n}",
                warm.median,
                cold.median
            );
        }
    }

    session.finish();
}
