//! Static analysis: the exact definability decision procedures and the
//! diagnostic passes of `dxml-analysis` over the bench workloads.
//!
//! Cases (all warm — the procedures have no caches, every call does its
//! full closure construction plus equivalence check):
//!
//! * `definable_dtd_warm/n=..` — [`dtd_definable`] on the table-family DTD
//!   seen as an EDTD: the *definable* path, where the candidate closure is
//!   equivalent and a witness schema is returned;
//! * `definable_box_warm/n=..` — [`dtd_definable`] on the genuinely
//!   specialised [`box_target`]: the *refuting* path, where the candidate
//!   strictly grows and the equivalence check produces a counterexample;
//! * `sdtd_definable_warm/n=..` — [`sdtd_definable`] on the same two
//!   shapes (the box target is position-guided, so it is not single-type
//!   definable either);
//! * `analyze_design_warm/n=..` / `analyze_box_warm/n=..` — the full
//!   diagnostic passes over the design workloads (clean corpora: the
//!   passes must come back empty, asserted below).

use dxml_analysis::{analyze_box_design, analyze_design, dtd_definable, sdtd_definable, Severity};
use dxml_bench::{box_target, box_workload, design_workload, dtd_family, section, Session};
use dxml_automata::RFormalism;

fn main() {
    let mut session = Session::new("schema_analysis");

    section("schema_analysis: definability decision procedures");
    for n in [4usize, 8, 12] {
        let family = dtd_family(RFormalism::Nre, n, 7).to_edtd();
        // The family is a plain DTD: both procedures must find witnesses.
        let witness = dtd_definable(&family).expect("DTD languages are DTD-definable");
        assert!(witness.to_edtd().equivalent(&family), "witness must be equivalent");
        assert!(sdtd_definable(&family).is_some(), "DTD languages are SDTD-definable");
        session.bench(&format!("definable_dtd_warm/n={n}"), 15, || {
            dtd_definable(&family).is_some()
        });
        session.bench(&format!("sdtd_definable_warm/n={n}"), 15, || {
            sdtd_definable(&family).is_some()
        });
    }
    for n in [2usize, 4, 6] {
        let target = box_target(n);
        // Position-guided specialisation: refutable in both classes.
        assert!(dtd_definable(&target).is_none(), "box targets are not DTD-definable");
        assert!(sdtd_definable(&target).is_none(), "box targets are not SDTD-definable");
        session.bench(&format!("definable_box_warm/n={n}"), 15, || {
            dtd_definable(&target).is_none()
        });
    }

    section("schema_analysis: diagnostic passes over the design workloads");
    for n in [8usize, 16, 32] {
        let (problem, doc) = design_workload(n, 3, 7);
        let report = analyze_design(&problem, &doc);
        assert!(
            !report.iter().any(|d| d.severity == Severity::Error),
            "the bench design corpus must stay error-free: {report:?}"
        );
        session.bench(&format!("analyze_design_warm/n={n}"), 15, || {
            analyze_design(&problem, &doc).len()
        });
    }
    for n in [4usize, 8, 16] {
        let (problem, doc) = box_workload(n);
        let report = analyze_box_design(&problem, &doc);
        assert!(
            !report.iter().any(|d| d.severity == Severity::Error),
            "the bench box corpus must stay error-free: {report:?}"
        );
        session.bench(&format!("analyze_box_warm/n={n}"), 15, || {
            analyze_box_design(&problem, &doc).len()
        });
    }

    session.finish();
}
