//! Disabled-path overhead of the telemetry layer.
//!
//! The instrumentation is compiled into every hot path unconditionally; the
//! contract is that with the gate off each record operation collapses to a
//! relaxed atomic load plus one predictable branch. This target pins that
//! contract the same way the other bench targets pin theirs: the `*_warm`
//! cases run table-family workloads with collection explicitly **off** and
//! gate against the committed `baselines/BENCH_telemetry_overhead.json`
//! through `bench_compare` — a disabled-path regression beyond the usual 2×
//! threshold fails `make bench-compare` exactly like a regression in the
//! engine itself.
//!
//! The `enabled_*` cases rerun the same workloads with collection on. They
//! are deliberately *not* gated (no `warm` in the name): they document the
//! enabled-path cost in the timing files without constraining it.

use dxml_bench::{design_workload, section, Session};
use dxml_schema::{RSdtd, StreamValidator};
use dxml_telemetry as telemetry;

/// A wide streaming corpus: `n` flat records under one root.
fn stream_workload(n: usize) -> (StreamValidator, String) {
    let sdtd = RSdtd::parse(dxml_automata::RFormalism::Nre, "s -> r*\nr -> a, b?").unwrap();
    let mut doc = String::from("<s>");
    for i in 0..n {
        doc.push_str(if i % 2 == 0 { "<r><a/></r>" } else { "<r><a/><b/></r>" });
    }
    doc.push_str("</s>");
    (StreamValidator::new(&sdtd), doc)
}

fn main() {
    let mut session = Session::new("telemetry_overhead");

    // The gated section: collection OFF — these medians are the committed
    // disabled-path baseline of the whole instrumentation layer.
    telemetry::set_enabled(false);
    section("telemetry off: instrumented hot paths at baseline speed");
    for n in [8usize, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        // Warm the problem caches once so the gated cases measure the
        // instrumented steady state, not the one-off determinisation.
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        session.bench(&format!("verify_local_off_warm/n={n}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
        session.bench(&format!("typecheck_off_warm/n={n}"), 10, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
    }
    for n in [256usize, 1024] {
        let (validator, doc) = stream_workload(n);
        session.bench(&format!("stream_off_warm/n={n}"), 10, || {
            assert!(validator.validate(&doc).is_ok());
        });
    }
    // The record path itself, disabled: must be branch-cheap.
    session.bench("record_off_warm/count+observe", 20, || {
        for _ in 0..10_000 {
            telemetry::count(telemetry::Metric::StreamEvents, 1);
            telemetry::observe(telemetry::Hist::StreamDocEvents, 42);
        }
    });
    let off_snapshot = telemetry::Snapshot::take();
    assert_eq!(
        off_snapshot.nonzero_metrics(),
        0,
        "disabled-path cases must not record anything"
    );

    // The comparison section: collection ON — reported, not gated.
    telemetry::set_enabled(true);
    section("telemetry on: the same workloads with collection enabled");
    for n in [8usize, 16] {
        let (problem, doc) = design_workload(n, 2, 11);
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        session.bench(&format!("enabled_verify_local/n={n}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
    }
    for n in [256usize, 1024] {
        let (validator, doc) = stream_workload(n);
        session.bench(&format!("enabled_streaming/n={n}"), 10, || {
            assert!(validator.validate(&doc).is_ok());
        });
    }
    session.bench("enabled_record/count+observe", 20, || {
        for _ in 0..10_000 {
            telemetry::count(telemetry::Metric::StreamEvents, 1);
            telemetry::observe(telemetry::Hist::StreamDocEvents, 42);
        }
    });
    let on_snapshot = telemetry::Snapshot::take();
    assert!(
        on_snapshot.nonzero_metrics() >= 5,
        "enabled cases must actually record (got {} non-zero metrics)",
        on_snapshot.nonzero_metrics()
    );
    println!("\n{}", on_snapshot.render());

    session.finish();
}
