fn main() {}
