//! Ablation: the global tree-automaton route to typing verification
//! (extension automaton + inclusion — the precursor of the paper's *perfect
//! automaton* construction of Section 6) against the string-inclusion local
//! route, on well-typed and ill-typed variants of the seeded workload.

use dxml_automata::{Regex, RSpec};
use dxml_bench::{Session, design_workload, elem, section};

fn main() {
    let mut session = Session::new("ablation_perfect_automaton");
    section("ablation: well-typed workloads (both routes must accept)");
    for n in [4usize, 8, 16] {
        let (problem, doc) = design_workload(n, 2, 5);
        session.bench(&format!("tree_route/valid/n={n}"), 10, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
        session.bench(&format!("string_route/valid/n={n}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
    }

    section("ablation: ill-typed workloads (both routes must refute)");
    for n in [4usize, 8, 16] {
        let (mut problem, doc) = design_workload(n, 2, 5);
        // Break one function schema: its forests may start with the start
        // element itself, which the target content model forbids.
        let f = doc.called_functions().into_iter().next().expect("workload has calls");
        let mut broken = problem.fun_schema(&f).expect("workload declares all schemas").clone();
        broken.set_rule("r", RSpec::Nre(Regex::sym(elem(0)).plus()));
        broken.set_rule(elem(0), RSpec::Nre(Regex::Epsilon));
        problem.add_function(f, broken);
        session.bench(&format!("tree_route/invalid/n={n}"), 10, || {
            assert!(!problem.typecheck(&doc).unwrap().is_valid());
        });
        session.bench(&format!("string_route/invalid/n={n}"), 10, || {
            assert!(!problem.verify_local(&doc).unwrap().is_valid());
        });
    }

    section("ablation: extension-automaton construction alone");
    for n in [4usize, 8, 16, 32] {
        let (problem, doc) = design_workload(n, 2, 5);
        session.bench(&format!("extension_nuta/n={n}"), 20, || {
            // `extension_nuta` is memoised per (problem, doc) since PR 3: a
            // fresh problem per iteration keeps this a *construction*
            // measurement, not a cache lookup (that path is timed as
            // `extension_warm` in table4_perfect).
            let mut fresh = dxml_core::DesignProblem::new(problem.doc_schema().clone());
            for (g, schema) in problem.fun_schemas() {
                fresh.add_function(*g, schema.clone());
            }
            fresh.extension_nuta(&doc).unwrap().size()
        });
    }

    session.finish();
}
