//! Table 3 (verification column): typing verification of distributed
//! documents — the tree-automaton inclusion route vs the string-inclusion
//! local route — over the seeded design workload of growing size.

use dxml_bench::{Session, design_workload, section};

fn main() {
    let mut session = Session::new("table3_verification");
    section("table3: typing verification, growing schema size n");
    for n in [4usize, 8, 16, 32] {
        let (problem, doc) = design_workload(n, 2, 11);
        session.bench(&format!("typecheck/n={n}"), 10, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
        session.bench(&format!("verify_local/n={n}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
    }

    section("table3: typing verification, growing number of calls");
    for fns in [1usize, 2, 4, 8] {
        let (problem, doc) = design_workload(8, fns, 13);
        session.bench(&format!("typecheck/fns={fns}"), 10, || {
            assert!(problem.typecheck(&doc).unwrap().is_valid());
        });
        session.bench(&format!("verify_local/fns={fns}"), 10, || {
            assert!(problem.verify_local(&doc).unwrap().is_valid());
        });
    }

    session.finish();
}
