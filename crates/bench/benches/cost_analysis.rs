//! Static cost analysis: the `dxml-analysis::cost` predictor itself.
//!
//! Two jobs. First, **calibration guards**: before any timing, the cases
//! re-assert the model's contract — `lower ≤ actual ≤ upper` against the
//! telemetry counters a real determinisation / inclusion run records, the
//! `DX014` flagging of the adversarial suffix-counting family, and the
//! admit/trip behaviour of `recommend_budget` — so a regression in the
//! model fails the bench run before it can poison the baseline. (The full
//! corpus-wide sweep lives in `tests/cost_calibration.rs`; this re-checks
//! the pivotal shapes in release mode.)
//!
//! Second, **timing** (all warm — the predictor is pure structural
//! arithmetic with no caches): the analysis must stay orders of magnitude
//! cheaper than the work it predicts, which is what makes it usable as an
//! admission gate.
//!
//! * `content_cost_warm/n=..` — [`content_model_cost`] over every rule of
//!   the table-family DTD;
//! * `suffix_detect_warm/n=..` — [`suffix_counting`] detection on the
//!   adversarial family (the worst case: the shape matches, so every
//!   window position is inspected);
//! * `design_cost_warm/n=..` — the composed [`design_cost`] model over the
//!   design workload;
//! * `box_cost_warm/n=..` — [`box_design_cost`] over the box workload;
//! * `recommend_budget_warm/n=..` — quota synthesis on top of the design
//!   model.

use dxml_analysis::{
    analyze_schema, box_design_cost, content_model_cost, design_cost, inclusion_cost,
    recommend_budget, recommend_budget_with_headroom, suffix_counting, AnySchema,
};
use dxml_automata::{equiv, Dfa, RFormalism, Regex, RSpec};
use dxml_bench::{
    adversarial_dtd, box_workload, design_workload, dtd_family, eurostat_figure3, section, Session,
};
use dxml_core::{DesignError, DesignProblem, DistributedDoc};
use dxml_telemetry::{self as telemetry, Metric, Snapshot};

/// Re-asserts the calibration contract on the pivotal shapes: the Figure 3
/// DTD (realistic), the adversarial family (worst case) and the budget
/// admit/trip pair derived from it.
fn calibration_guards() {
    telemetry::set_enabled(true);
    let mut specs: Vec<(String, RSpec)> =
        DesignProblem::new(eurostat_figure3()).content_models();
    specs.extend(DesignProblem::new(adversarial_dtd(8)).content_models());
    for (loc, spec) in specs {
        let cost = content_model_cost(&spec);
        telemetry::reset();
        let _dfa = Dfa::from_nfa(&spec.to_nfa());
        let snap = Snapshot::take();
        assert!(
            cost.subset_states.contains(snap.counter(Metric::SubsetStates)),
            "{loc}: dfa.subset_states outside predicted {}",
            cost.subset_states
        );
        assert!(
            cost.subset_steps.contains(snap.counter(Metric::SubsetTransitions)),
            "{loc}: dfa.subset_transitions outside predicted {}",
            cost.subset_steps
        );

        let nfa = spec.to_nfa();
        let icost = inclusion_cost(&nfa, &nfa);
        telemetry::reset();
        assert!(equiv::included(&nfa, &nfa).is_ok(), "{loc}: self-inclusion must hold");
        let snap = Snapshot::take();
        assert!(
            icost.bfs_states_if_included.contains(snap.counter(Metric::EquivBfsStates)),
            "{loc}: equiv.bfs_states outside included-bracket {}",
            icost.bfs_states_if_included
        );
        assert!(
            icost.bfs_steps_if_included.contains(snap.counter(Metric::EquivBfsTransitions)),
            "{loc}: equiv.bfs_transitions outside included-bracket {}",
            icost.bfs_steps_if_included
        );
    }
    telemetry::set_enabled(false);

    // The adversarial family is flagged with its proved 2^n floor …
    let problem = DesignProblem::new(adversarial_dtd(10));
    let report = analyze_schema(AnySchema::Dtd(problem.doc_schema()));
    assert!(
        report.iter().any(|d| d.code == "DX014" && d.message.contains("1024")),
        "adversarial_dtd(10) must be flagged DX014 with the 2^10 bound"
    );

    // … and the derived budgets behave: zero headroom trips on a covering
    // document, the default headroom admits it.
    let doc = DistributedDoc::parse("s(a b b b b b b b b b)", std::iter::empty::<&str>())
        .expect("the covering document parses");
    match problem.verify_local_with_budget(&doc, &recommend_budget_with_headroom(&problem, 0.0)) {
        Err(DesignError::BudgetExceeded { .. }) => {}
        other => panic!("expected a trip below the proved floor, got {other:?}"),
    }
    problem
        .verify_local_with_budget(&doc, &recommend_budget(&problem))
        .expect("the default-headroom budget admits the adversarial run");
}

fn main() {
    let mut session = Session::new("cost_analysis");

    section("cost_analysis: calibration guards");
    calibration_guards();
    println!("  predictions bracket actuals; DX014 + budget admit/trip hold");

    section("cost_analysis: predictor timing");
    for n in [4usize, 8, 12] {
        let specs = DesignProblem::new(dtd_family(RFormalism::Nre, n, 7)).content_models();
        session.bench(&format!("content_cost_warm/n={n}"), 50, || {
            specs.iter().map(|(_, s)| content_model_cost(s).subset_states.upper).max()
        });
    }
    for n in [8usize, 16, 32] {
        let re = {
            let ab = || Regex::alt(vec![Regex::sym("a"), Regex::sym("b")]);
            let mut parts = vec![ab().star(), Regex::sym("a")];
            parts.extend((1..n).map(|_| ab()));
            Regex::concat(parts)
        };
        session.bench(&format!("suffix_detect_warm/n={n}"), 50, || {
            suffix_counting(&re).expect("the family matches").dfa_lower_bound
        });
    }
    for n in [8usize, 16, 32] {
        let (problem, _) = design_workload(n, 3, 7);
        session.bench(&format!("design_cost_warm/n={n}"), 25, || {
            design_cost(&problem).states.upper
        });
        session.bench(&format!("recommend_budget_warm/n={n}"), 25, || {
            recommend_budget(&problem)
        });
    }
    for n in [4usize, 8, 16] {
        let (problem, _) = box_workload(n);
        session.bench(&format!("box_cost_warm/n={n}"), 25, || {
            box_design_cost(&problem).states.upper
        });
    }

    session.finish();
}
