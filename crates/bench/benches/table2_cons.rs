//! Table 2 (construction sizes): size and construction cost of the derived
//! objects of a DTD — the tree automaton, the vertical automaton `dual(τ)`
//! and the reduction — on the seeded family of growing size `n`.

use dxml_automata::RFormalism;
use dxml_bench::{Session, dtd_family, section};

fn main() {
    let mut session = Session::new("table2_cons");
    section("table2: schema-derived constructions on the seeded family");
    for n in [4usize, 8, 16, 32, 64] {
        let dtd = dtd_family(RFormalism::Nre, n, 2009);
        println!("n={n}: |type| = {}", dtd.size());
        session.bench(&format!("to_nuta/n={n}"), 20, || dtd.to_nuta().size());
        session.bench(&format!("dual/n={n}"), 20, || dtd.dual().num_states());
        session.bench(&format!("reduce/n={n}"), 20, || dtd.reduce().size());
        session.bench(&format!("is_reduced/n={n}"), 20, || dtd.is_reduced());
    }

    section("table2: determinisation of the tree automaton");
    for n in [4usize, 8, 12] {
        let dtd = dtd_family(RFormalism::Nre, n, 2009);
        let nuta = dtd.to_nuta();
        session.bench(&format!("determinize/n={n}"), 5, || {
            nuta.determinize(dtd.alphabet()).num_states()
        });
    }

    session.finish();
}
