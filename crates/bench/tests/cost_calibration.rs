//! Differential calibration of the static cost model (`dxml-analysis`'s
//! `cost` module) against the engine's telemetry counters.
//!
//! The cost model predicts, per content model, a `[lower … upper]` bracket
//! on the `dfa.subset_states` / `dfa.subset_transitions` a determinisation
//! will record, and per inclusion check a bracket on `equiv.bfs_states` /
//! `equiv.bfs_transitions`. These tests run the real engine over the full
//! bench corpus with telemetry on and assert `lower ≤ actual ≤ upper` for
//! every schema — the calibration contract of the model. Two budget tests
//! close the loop: `recommend_budget` must admit every corpus workload,
//! while the zero-headroom budget must trip on the adversarial
//! suffix-counting family it is derived from.
//!
//! The telemetry registry is process-global, so every test takes the same
//! mutex and resets the counters itself.

use std::sync::{Mutex, MutexGuard, OnceLock};

use dxml_analysis::{
    analyze_schema, content_model_cost, inclusion_cost, recommend_box_budget,
    recommend_budget, recommend_budget_with_headroom, AnySchema,
};
use dxml_automata::{equiv, Dfa, RFormalism, RSpec};
use dxml_bench::{adversarial_dtd, box_workload, design_workload, dtd_family, eurostat_figure3};
use dxml_core::{DesignError, DesignProblem, DistributedDoc};
use dxml_telemetry::{self as telemetry, Metric, Snapshot};

/// Serialises the tests touching the process-global telemetry registry.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Every content model of the bench corpus, labelled, plus the adversarial
/// suffix-counting family at a size that is still cheap to determinise.
fn corpus_specs() -> Vec<(String, RSpec)> {
    let mut specs = Vec::new();
    let mut push_all = |tag: &str, models: Vec<(String, RSpec)>| {
        specs.extend(models.into_iter().map(|(loc, s)| (format!("{tag}: {loc}"), s)));
    };
    push_all("eurostat", DesignProblem::new(eurostat_figure3()).content_models());
    for formalism in RFormalism::ALL {
        let dtd = dtd_family(formalism, 12, 7);
        push_all(&format!("dtd_family({formalism})"), DesignProblem::new(dtd).content_models());
    }
    let (problem, _) = design_workload(12, 3, 7);
    push_all("design_workload", problem.content_models());
    let (problem, _) = box_workload(6);
    push_all("box_workload", problem.content_models());
    push_all("adversarial(8)", DesignProblem::new(adversarial_dtd(8)).content_models());
    specs
}

#[test]
fn subset_construction_stays_within_the_predicted_bracket() {
    let _guard = telemetry_lock();
    telemetry::set_enabled(true);
    let specs = corpus_specs();
    assert!(specs.len() >= 40, "the corpus should exercise the model broadly");
    for (loc, spec) in specs {
        let cost = content_model_cost(&spec);
        telemetry::reset();
        let _dfa = Dfa::from_nfa(&spec.to_nfa());
        let snap = Snapshot::take();
        let states = snap.counter(Metric::SubsetStates);
        let steps = snap.counter(Metric::SubsetTransitions);
        assert!(
            cost.subset_states.contains(states),
            "{loc}: dfa.subset_states = {states} outside predicted {}",
            cost.subset_states
        );
        assert!(
            cost.subset_steps.contains(steps),
            "{loc}: dfa.subset_transitions = {steps} outside predicted {}",
            cost.subset_steps
        );
    }
    telemetry::set_enabled(false);
}

#[test]
fn product_bfs_stays_within_the_predicted_bracket() {
    let _guard = telemetry_lock();
    telemetry::set_enabled(true);
    for (loc, spec) in corpus_specs() {
        let nfa = spec.to_nfa();
        let cost = inclusion_cost(&nfa, &nfa);
        telemetry::reset();
        assert!(equiv::included(&nfa, &nfa).is_ok(), "{loc}: self-inclusion must hold");
        let snap = Snapshot::take();
        let popped = snap.counter(Metric::EquivBfsStates);
        let edges = snap.counter(Metric::EquivBfsTransitions);
        let states_delta = snap.counter(Metric::SubsetStates);
        // Self-inclusion determinises the same NFA twice, so the general
        // (two-sided) subset bracket applies to the recorded total.
        assert!(
            cost.subset_states.contains(states_delta),
            "{loc}: dfa.subset_states = {states_delta} outside predicted {}",
            cost.subset_states
        );
        // The verdict-free brackets always apply …
        assert!(
            cost.bfs_states.contains(popped),
            "{loc}: equiv.bfs_states = {popped} outside predicted {}",
            cost.bfs_states
        );
        assert!(
            cost.bfs_steps.contains(edges),
            "{loc}: equiv.bfs_transitions = {edges} outside predicted {}",
            cost.bfs_steps
        );
        // … and since the inclusion holds, so do the tighter conditional
        // ones.
        assert!(
            cost.bfs_states_if_included.contains(popped),
            "{loc}: equiv.bfs_states = {popped} outside included-bracket {}",
            cost.bfs_states_if_included
        );
        assert!(
            cost.bfs_steps_if_included.contains(edges),
            "{loc}: equiv.bfs_transitions = {edges} outside included-bracket {}",
            cost.bfs_steps_if_included
        );
    }
    telemetry::set_enabled(false);
}

#[test]
fn recommended_budget_admits_every_corpus_workload() {
    let _guard = telemetry_lock();
    let (problem, doc) = design_workload(12, 3, 7);
    let budget = recommend_budget(&problem);
    problem
        .typecheck_with_budget(&doc, &budget)
        .expect("the recommended budget admits the design-workload typecheck");
    problem
        .verify_local_with_budget(&doc, &budget)
        .expect("the recommended budget admits the design-workload verification");

    let (problem, doc) = box_workload(6);
    let budget = recommend_box_budget(&problem);
    problem
        .typecheck_with_budget(&doc, &budget)
        .expect("the recommended box budget admits the box-workload typecheck");
    problem
        .verify_local_with_budget(&doc, &budget)
        .expect("the recommended box budget admits the box-workload verification");

    let problem = DesignProblem::new(eurostat_figure3());
    let doc = DistributedDoc::parse(
        "eurostat(averages(Good index(value year)))",
        std::iter::empty::<&str>(),
    )
    .expect("the eurostat document parses");
    let budget = recommend_budget(&problem);
    problem
        .verify_local_with_budget(&doc, &budget)
        .expect("the recommended budget admits the eurostat verification");
}

#[test]
fn zero_headroom_budget_trips_on_the_adversarial_family() {
    let _guard = telemetry_lock();
    let problem = DesignProblem::new(adversarial_dtd(10));

    // The lint flags the family with the proved 2^10 lower bound …
    let report = analyze_schema(AnySchema::Dtd(problem.doc_schema()));
    let dx014 = report
        .iter()
        .find(|d| d.code == "DX014")
        .expect("the adversarial family is flagged predicted-exponential");
    assert!(dx014.message.contains("1024"), "the 2^10 bound is named: {}", dx014.message);

    // … and a budget scaled to just below that proved floor must trip on a
    // covering document (one `s` node forces the content-model subset
    // construction), while the default-headroom budget admits the same run.
    let children: Vec<&str> = std::iter::once("a").chain(std::iter::repeat("b").take(9)).collect();
    let doc = DistributedDoc::parse(
        &format!("s({})", children.join(" ")),
        std::iter::empty::<&str>(),
    )
    .expect("the covering document parses");
    let tripping = recommend_budget_with_headroom(&problem, 0.0);
    match problem.verify_local_with_budget(&doc, &tripping) {
        Err(DesignError::BudgetExceeded { .. }) => {}
        other => panic!("expected a budget trip below the proved floor, got {other:?}"),
    }
    let admitted = recommend_budget(&problem);
    problem
        .verify_local_with_budget(&doc, &admitted)
        .expect("the default-headroom budget admits the adversarial run");
}
