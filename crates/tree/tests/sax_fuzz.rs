//! Fuzz-shaped tests for the streaming parser: adversarial byte strings must
//! never panic or abort — every input yields either a clean event stream or a
//! located `Err`. The same property is checked through `parse_xml`, and the
//! two routes must agree on well-formedness.

use dxml_tree::generate::SplitRng;
use dxml_tree::sax::{SaxEvent, SaxParser};
use dxml_tree::xml::parse_xml;

/// Random strings biased heavily toward markup metacharacters and multibyte
/// sequences, so tag/attribute/comment state machines get exercised at their
/// edges far more often than with uniform noise.
fn adversarial_string(rng: &mut SplitRng, len: usize) -> String {
    let pool: Vec<char> = "<>/=\"'!?-abAB \n\t²é🙂~.:_".chars().collect();
    let mut s = String::new();
    while s.chars().count() < len {
        s.push(*rng.pick(&pool));
    }
    s
}

/// Drains the parser, checking stream invariants event by event.
fn drain(input: &str) -> Result<Vec<SaxEvent>, dxml_automata::AutomataError> {
    let mut parser = SaxParser::new(input);
    let mut events = Vec::new();
    let mut depth = 0usize;
    while let Some(ev) = parser.next_event()? {
        match ev {
            SaxEvent::Open(_) => depth += 1,
            SaxEvent::Close => {
                assert!(depth > 0, "Close without matching Open on {input:?}");
                depth -= 1;
            }
        }
        events.push(ev);
    }
    assert_eq!(depth, 0, "parser finished with unclosed elements on {input:?}");
    Ok(events)
}

#[test]
fn adversarial_inputs_error_cleanly_and_routes_agree() {
    let mut rng = SplitRng::new(0xFEED_FACE);
    for _ in 0..4_000 {
        let len = 1 + rng.below(60);
        let input = adversarial_string(&mut rng, len);
        let stream = drain(&input);
        let tree = parse_xml(&input);
        assert_eq!(
            stream.is_ok(),
            tree.is_ok(),
            "stream and tree routes disagree on {input:?}: {stream:?} vs {tree:?}"
        );
        if let (Ok(events), Ok(t)) = (&stream, &tree) {
            let opens = events.iter().filter(|e| matches!(e, SaxEvent::Open(_))).count();
            assert_eq!(opens, t.size(), "event count vs tree size on {input:?}");
        }
    }
}

#[test]
fn truncations_of_valid_documents_never_panic() {
    let doc = r#"<?xml version="1.0"?><!-- c --><s a="1>2" b='<'><x><y/>text</x><z/></s>"#;
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let _ = drain(&doc[..cut]);
        let _ = parse_xml(&doc[..cut]);
    }
}

#[test]
fn exhausted_parser_stays_exhausted_after_errors() {
    for input in ["<a><b>", "<a x=\"1>", "</a>", "<", "<a></b>"] {
        let mut parser = SaxParser::new(input);
        let mut err_seen = false;
        for _ in 0..64 {
            match parser.next_event() {
                Err(_) => err_seen = true,
                Ok(None) => break,
                Ok(Some(_)) => assert!(!err_seen, "event after error on {input:?}"),
            }
        }
        assert!(err_seen, "{input:?} should fail");
        assert!(matches!(parser.next_event(), Ok(None)), "fuse must hold on {input:?}");
    }
}
