//! Differential property tests for the bitset membership frontiers of the
//! tree layer: on random nUTAs, the determinised automaton's observables —
//! bottom-up runs and the `Duta::outputs_over` Moore-machine image (subset
//! states **and** shortest witness words) — must be byte-identical to a
//! `BTreeSet<usize>` reference reimplementation of the seed algorithms.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dxml_automata::{Nfa, Symbol};
use dxml_tree::generate::{random_trees, TreeGenConfig};
use dxml_tree::uta::{Duta, Nuta};

/// A small deterministic xorshift generator (no rand crate offline).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// A random content NFA over the given state symbols.
fn random_content(rng: &mut Rng, states: &[Symbol]) -> Nfa {
    let n = 1 + rng.below(4);
    let mut nfa = Nfa::new(n, 0);
    for _ in 0..rng.below(2 * n + 2) {
        let from = rng.below(n);
        let to = rng.below(n);
        if rng.chance(10) {
            nfa.add_epsilon(from, to);
        } else {
            nfa.add_transition(from, states[rng.below(states.len())], to);
        }
    }
    for q in 0..n {
        if rng.chance(40) {
            nfa.set_final(q);
        }
    }
    nfa
}

/// A random nUTA over 3 labels and up to 4 states with random content
/// models and finals.
fn random_nuta(rng: &mut Rng) -> Nuta {
    let labels: Vec<Symbol> = ["la", "lb", "lc"].map(Symbol::new).to_vec();
    let states: Vec<Symbol> = (0..1 + rng.below(4)).map(|i| Symbol::new(format!("q{i}"))).collect();
    let mut a = Nuta::new();
    for q in &states {
        for l in &labels {
            if rng.chance(55) {
                a.set_rule(*q, *l, random_content(rng, &states));
            }
        }
        if rng.chance(40) {
            a.set_final(*q);
        }
    }
    // Always register every label so the universe is stable.
    for l in &labels {
        if a.labels().iter().all(|x| x != l) {
            a.set_rule(states[0], *l, Nfa::empty());
        }
    }
    a
}

fn state_sym(i: usize) -> Symbol {
    Symbol::new(format!("#s{i}"))
}

fn letter_of(sym: &Symbol) -> Option<usize> {
    sym.as_str().strip_prefix("#s").and_then(|t| t.parse().ok())
}

/// The seed's `BTreeSet` view of a word automaton (for the reference
/// product BFS).
struct RefNfa {
    start: usize,
    finals: BTreeSet<usize>,
    trans: Vec<BTreeMap<Option<Symbol>, BTreeSet<usize>>>,
}

impl RefNfa {
    fn of(nfa: &Nfa) -> RefNfa {
        let mut out = RefNfa {
            start: nfa.start(),
            finals: nfa.finals().clone(),
            trans: vec![BTreeMap::new(); nfa.num_states()],
        };
        for (q, lbl, t) in nfa.transitions() {
            out.trans[q].entry(lbl.copied()).or_default().insert(t);
        }
        out
    }

    fn epsilon_closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = set.clone();
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(q) = stack.pop() {
            if let Some(next) = self.trans[q].get(&None) {
                for &t in next {
                    if closure.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        closure
    }

    fn step(&self, set: &BTreeSet<usize>, sym: &Symbol) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &q in set {
            if let Some(ts) = self.trans[q].get(&Some(*sym)) {
                next.extend(ts.iter().copied());
            }
        }
        self.epsilon_closure(&next)
    }
}

/// The seed reimplementation of [`Duta::outputs_over`]: the same product
/// BFS (FIFO queue, text-order moves, first witness wins) over
/// `(machine config, BTreeSet frontier)` pairs, with the machine consumed
/// through its public transition view.
fn reference_outputs_over(
    duta: &Duta,
    label: &Symbol,
    word_lang: &Nfa,
) -> BTreeMap<usize, Vec<Symbol>> {
    let machine = match duta.machine(label) {
        Some(m) => m,
        None => return BTreeMap::new(),
    };
    let delta: BTreeMap<(usize, usize), usize> =
        machine.transitions().map(|(c, l, n)| ((c, l), n)).collect();
    let word = RefNfa::of(word_lang);
    let moves: Vec<(Symbol, usize)> = word_lang
        .alphabet()
        .iter()
        .filter_map(|&sym| letter_of(&sym).map(|letter| (sym, letter)))
        .collect();
    // One BFS state of the seed product: (machine config, BTreeSet frontier).
    type Pair = (usize, BTreeSet<usize>);
    let start = (machine.start(), word.epsilon_closure(&BTreeSet::from([word.start])));
    let mut outputs: BTreeMap<usize, Vec<Symbol>> = BTreeMap::new();
    let mut seen: BTreeSet<Pair> = BTreeSet::from([start.clone()]);
    let mut queue: VecDeque<(Pair, Vec<Symbol>)> = VecDeque::from([(start, Vec::new())]);
    while let Some(((config, set), witness)) = queue.pop_front() {
        if set.iter().any(|q| word.finals.contains(q)) {
            outputs.entry(machine.output(config)).or_insert_with(|| witness.clone());
        }
        for &(sym, letter) in &moves {
            let next_config = match delta.get(&(config, letter)) {
                Some(&c) => c,
                None => continue,
            };
            let next_set = word.step(&set, &sym);
            if next_set.is_empty() {
                continue;
            }
            let state = (next_config, next_set);
            if seen.insert(state.clone()) {
                let mut w = witness.clone();
                w.push(sym);
                queue.push_back((state, w));
            }
        }
    }
    outputs
}

#[test]
fn outputs_over_images_match_the_btreeset_reference() {
    let mut rng = Rng(0x007_0075 ^ 0xdead_beef);
    let mut nonempty_images = 0usize;
    for case in 0..120 {
        let nuta = random_nuta(&mut rng);
        let labels = nuta.labels().clone();
        let duta = nuta.determinize(&labels);
        let n = duta.num_states();
        let state_syms: Vec<Symbol> = (0..n).map(state_sym).collect();
        for label in &labels {
            let word_lang = random_content(&mut rng, &state_syms);
            let real = duta.outputs_over(label, &word_lang, letter_of);
            let want = reference_outputs_over(&duta, label, &word_lang);
            assert_eq!(real, want, "case {case}: outputs_over diverged under `{label}`");
            nonempty_images += usize::from(!real.is_empty());
        }
    }
    assert!(nonempty_images > 60, "the family must exercise non-trivial images ({nonempty_images})");
}

#[test]
fn random_determinisations_agree_with_the_nondeterministic_run() {
    let mut rng = Rng(0x7bee_5eed ^ 0x1234_5678);
    for case in 0..40 {
        let nuta = random_nuta(&mut rng);
        let labels = nuta.labels().clone();
        let duta = nuta.determinize(&labels);
        let config = TreeGenConfig::new(&labels, 3, 3);
        for tree in random_trees(case as u64 + 17, &config, 60) {
            assert_eq!(
                nuta.accepts(&tree),
                duta.accepts(&tree),
                "case {case}: membership diverged on {tree}"
            );
        }
    }
}
