//! `RDtd::accepts` (direct per-node validation) must agree with
//! `RDtd::to_uta().accepts` (the bottom-up tree-automaton run) — and with the
//! determinised automaton — on pseudo-random generated trees.
//!
//! This is the cross-layer oracle the design algorithms rely on: the typing
//! check trusts that the automaton view of a DTD is its validation view.

use dxml_automata::{RFormalism, Symbol};
use dxml_schema::RDtd;
use dxml_tree::generate::{random_trees, TreeGenConfig};
use dxml_tree::term::parse_term;

fn dtds() -> Vec<RDtd> {
    vec![
        // The Eurostat NCPI type of Figure 3.
        RDtd::parse(
            RFormalism::Nre,
            "eurostat -> averages, nationalIndex*\n\
             averages -> (Good, index+)+\n\
             nationalIndex -> country, Good, (index | value, year)\n\
             index -> value, year",
        )
        .unwrap(),
        // Recursive: binary-ish trees of a/b.
        RDtd::parse(RFormalism::Nre, "a -> (a | b)*\nb -> a?").unwrap(),
        // Flat with options.
        RDtd::parse(RFormalism::Dre, "s -> x?, y*, z").unwrap(),
        // An unreduced DTD (junk rule never satisfiable).
        RDtd::parse(RFormalism::Nre, "s -> a* | junk, junk\njunk -> junk").unwrap(),
    ]
}

#[test]
fn validation_agrees_with_uta_on_generated_trees() {
    for (i, dtd) in dtds().iter().enumerate() {
        let uta = dtd.to_uta();
        let config = TreeGenConfig::new(dtd.alphabet(), 4, 4);
        for (j, tree) in random_trees(0xD7D + i as u64, &config, 300).iter().enumerate() {
            assert_eq!(
                dtd.accepts(tree),
                uta.accepts(tree),
                "dtd {i}, tree {j}: {tree}"
            );
        }
    }
}

#[test]
fn validation_agrees_with_determinised_uta() {
    for (i, dtd) in dtds().iter().enumerate() {
        let uta = dtd.to_uta();
        let duta = uta.determinize(dtd.alphabet());
        let config = TreeGenConfig::new(dtd.alphabet(), 3, 3);
        for tree in random_trees(0xBEEF + i as u64, &config, 150) {
            assert_eq!(dtd.accepts(&tree), duta.accepts(&tree), "dtd {i}, tree {tree}");
        }
    }
}

#[test]
fn agreement_on_trees_with_foreign_labels() {
    // Trees drawn from a larger alphabet than the DTD's: both views must
    // reject labels the schema does not know.
    let dtd = RDtd::parse(RFormalism::Nre, "s -> a*").unwrap();
    let uta = dtd.to_uta();
    let mut alphabet = dtd.alphabet().clone();
    alphabet.insert(Symbol::new("alien"));
    let config = TreeGenConfig::new(&alphabet, 3, 3);
    for tree in random_trees(31337, &config, 200) {
        assert_eq!(dtd.accepts(&tree), uta.accepts(&tree), "tree {tree}");
    }
    assert!(!uta.accepts(&parse_term("s(alien)").unwrap()));
}

#[test]
fn positive_samples_are_accepted_by_both() {
    // sample_tree is drawn from the automaton side; the validation side must
    // agree, giving at least one guaranteed-positive case per DTD.
    for (i, dtd) in dtds().iter().enumerate() {
        let sample = dtd.sample_tree().unwrap_or_else(|| panic!("dtd {i} is non-empty"));
        assert!(dtd.accepts(&sample), "dtd {i}: sample {sample} rejected by validation");
        assert!(dtd.to_uta().accepts(&sample), "dtd {i}: sample {sample} rejected by uta");
    }
}
