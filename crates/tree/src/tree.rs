//! Finite ordered unranked labelled trees.
//!
//! The accessors mirror Section 2.1.1 of the paper: for a node `x` of a tree
//! `t` we can ask for `parent(x)`, `children(x)`, `tree_t(x)` (the subtree
//! rooted at `x`), `lab(x)`, `anc-str(x)` (labels from the root down to `x`)
//! and `child-str(x)` (labels of the children in left-to-right order). The
//! size `‖t‖` is the number of nodes.

use std::fmt;

use dxml_automata::Symbol;

/// Identifier of a node inside an [`XTree`] arena.
pub type NodeId = usize;

#[derive(Clone, Debug, PartialEq, Eq)]
struct NodeData {
    label: Symbol,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A finite ordered unranked tree with [`Symbol`] labels, stored in an arena.
///
/// The root is always node `0`. Node identifiers are stable under
/// [`XTree::add_child`] but not across structural editing operations such as
/// [`XTree::replace_with_forest`], which rebuild the arena.
#[derive(Clone)]
pub struct XTree {
    nodes: Vec<NodeData>,
}

/// A forest: an ordered sequence of trees. The paper's extension operation
/// replaces a function node by the forest of trees directly connected to the
/// root of the document returned by the resource.
pub type XForest = Vec<XTree>;

impl XTree {
    /// Creates a single-node tree with the given root label.
    pub fn leaf(label: impl Into<Symbol>) -> XTree {
        XTree {
            nodes: vec![NodeData { label: label.into(), parent: None, children: Vec::new() }],
        }
    }

    /// Creates a tree with the given root label and subtrees.
    pub fn node(label: impl Into<Symbol>, children: Vec<XTree>) -> XTree {
        let mut tree = XTree::leaf(label);
        for child in children {
            tree.graft(0, &child);
        }
        tree
    }

    /// The root node (always `0`).
    pub fn root(&self) -> NodeId {
        0
    }

    /// The number of nodes `‖t‖`.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The label of a node.
    pub fn label(&self, node: NodeId) -> &Symbol {
        &self.nodes[node].label
    }

    /// The label of the root.
    pub fn root_label(&self) -> &Symbol {
        self.label(0)
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node].parent
    }

    /// The children of a node, in left-to-right order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node].children
    }

    /// Whether a node is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node].children.is_empty()
    }

    /// `child-str(x)`: the labels of the children of `x` in left-to-right
    /// order.
    pub fn child_str(&self, node: NodeId) -> Vec<Symbol> {
        self.nodes[node].children.iter().map(|&c| self.nodes[c].label).collect()
    }

    /// `anc-str(x)`: the labels on the path from the root down to `x`
    /// (inclusive).
    pub fn anc_str(&self, node: NodeId) -> Vec<Symbol> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            path.push(self.nodes[n].label);
            cur = self.nodes[n].parent;
        }
        path.reverse();
        path
    }

    /// Adds a child with the given label as the new last child of `parent`,
    /// returning its node id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of the tree.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<Symbol>) -> NodeId {
        assert!(parent < self.nodes.len(), "invalid parent node");
        let id = self.nodes.len();
        self.nodes.push(NodeData { label: label.into(), parent: Some(parent), children: Vec::new() });
        self.nodes[parent].children.push(id);
        id
    }

    /// Grafts a copy of `subtree` as the new last child of `parent`,
    /// returning the id of the copied root.
    pub fn graft(&mut self, parent: NodeId, subtree: &XTree) -> NodeId {
        let root_id = self.add_child(parent, *subtree.root_label());
        self.graft_children(root_id, subtree, subtree.root());
        root_id
    }

    fn graft_children(&mut self, target: NodeId, source: &XTree, source_node: NodeId) {
        // Iterative so grafting (and everything built on it: `node`,
        // `subtree`, `graft`) copes with arbitrarily deep sources. All
        // children of a source node are appended before descending, so
        // sibling order is preserved regardless of stack order.
        let mut stack = vec![(target, source_node)];
        while let Some((into, from)) = stack.pop() {
            for &child in source.children(from) {
                let new_id = self.add_child(into, *source.label(child));
                stack.push((new_id, child));
            }
        }
    }

    /// `tree_t(x)`: the subtree rooted at `node`, as a fresh tree.
    pub fn subtree(&self, node: NodeId) -> XTree {
        let mut out = XTree::leaf(*self.label(node));
        out.graft_children(0, self, node);
        out
    }

    /// The nodes in document (pre-) order.
    pub fn document_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// The nodes in bottom-up order (every node appears after all of its
    /// children) — convenient for the bottom-up runs of tree automata.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order = self.document_order();
        order.reverse();
        order
    }

    /// The leaves in document order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.document_order().into_iter().filter(|&n| self.is_leaf(n)).collect()
    }

    /// All nodes carrying the given label, in document order.
    pub fn nodes_labelled(&self, label: &Symbol) -> Vec<NodeId> {
        self.document_order().into_iter().filter(|&n| self.label(n) == label).collect()
    }

    /// The set of labels used in the tree.
    pub fn labels(&self) -> dxml_automata::Alphabet {
        self.nodes.iter().map(|n| n.label).collect()
    }

    /// The depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        // Document order visits parents before children, so each node's
        // depth is available from its parent's — no recursion.
        let mut depths = vec![1usize; self.nodes.len()];
        let mut max = 1;
        for n in self.document_order() {
            if let Some(p) = self.nodes[n].parent {
                depths[n] = depths[p] + 1;
                max = max.max(depths[n]);
            }
        }
        max
    }

    /// Replaces every node whose label satisfies `is_target` by the forest
    /// produced by `replacement` for that node, rebuilding the tree.
    ///
    /// This is the *materialisation* primitive: the extension
    /// `ext_T(t1..tn)` of a kernel replaces each function node `fi` by the
    /// forest of trees directly connected to the root of `ti` (Section 2.3).
    /// Target nodes must be leaves (as function nodes are).
    ///
    /// # Panics
    ///
    /// Panics if the root itself satisfies `is_target`: a kernel's root is
    /// never a function node.
    pub fn replace_with_forest(
        &self,
        is_target: impl Fn(&Symbol) -> bool,
        mut replacement: impl FnMut(&Symbol) -> XForest,
    ) -> XTree {
        fn rec(
            source: &XTree,
            node: NodeId,
            out: &mut XTree,
            out_parent: NodeId,
            is_target: &impl Fn(&Symbol) -> bool,
            replacement: &mut impl FnMut(&Symbol) -> XForest,
        ) {
            for &child in source.children(node) {
                let label = source.label(child);
                if is_target(label) {
                    assert!(
                        source.is_leaf(child),
                        "replace_with_forest: target node `{label}` is not a leaf"
                    );
                    for tree in replacement(label) {
                        out.graft(out_parent, &tree);
                    }
                } else {
                    let new_id = out.add_child(out_parent, *label);
                    rec(source, child, out, new_id, is_target, replacement);
                }
            }
        }
        assert!(
            !is_target(self.root_label()),
            "replace_with_forest: the root cannot be a function node"
        );
        let mut out = XTree::leaf(*self.root_label());
        rec(self, 0, &mut out, 0, &is_target, &mut replacement);
        out
    }

    /// Replaces the subtree rooted at `node` by the subtree `new`, returning
    /// a fresh tree. Used by the closure-property checks (subtree exchange).
    pub fn with_subtree_replaced(&self, node: NodeId, new: &XTree) -> XTree {
        fn rec(source: &XTree, n: NodeId, target: NodeId, new: &XTree, out: &mut XTree, out_node: NodeId) {
            for &child in source.children(n) {
                if child == target {
                    out.graft(out_node, new);
                } else {
                    let id = out.add_child(out_node, *source.label(child));
                    rec(source, child, target, new, out, id);
                }
            }
        }
        if node == 0 {
            return new.clone();
        }
        let mut out = XTree::leaf(*self.root_label());
        rec(self, 0, node, new, &mut out, 0);
        out
    }

    /// Relabels every node through `f`, returning a fresh tree. Used to apply
    /// the specialisation-erasing morphism `µ` to witness trees.
    pub fn map_labels(&self, mut f: impl FnMut(&Symbol) -> Symbol) -> XTree {
        let mut out = self.clone();
        for node in &mut out.nodes {
            node.label = f(&node.label);
        }
        out
    }
}

impl PartialEq for XTree {
    fn eq(&self, other: &Self) -> bool {
        if self.nodes.len() != other.nodes.len() {
            return false;
        }
        let mut stack = vec![(0, 0)];
        while let Some((na, nb)) = stack.pop() {
            if self.label(na) != other.label(nb)
                || self.children(na).len() != other.children(nb).len()
            {
                return false;
            }
            stack.extend(self.children(na).iter().copied().zip(other.children(nb).iter().copied()));
        }
        true
    }
}

impl Eq for XTree {}

impl fmt::Debug for XTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::term::to_term(self))
    }
}

impl fmt::Display for XTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::term::to_term(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XTree {
        // s(a f1 b(f2))  — the kernel T0 of Section 2.2.1
        XTree::node(
            "s",
            vec![XTree::leaf("a"), XTree::leaf("f1"), XTree::node("b", vec![XTree::leaf("f2")])],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.size(), 5);
        assert_eq!(t.root_label().as_str(), "s");
        assert_eq!(t.child_str(t.root()), vec!["a".into(), "f1".into(), "b".into()]);
        let b = t.nodes_labelled(&"b".into())[0];
        assert_eq!(t.child_str(b), vec![Symbol::new("f2")]);
        assert_eq!(t.anc_str(b), vec![Symbol::new("s"), Symbol::new("b")]);
        let f2 = t.nodes_labelled(&"f2".into())[0];
        assert_eq!(t.anc_str(f2), vec![Symbol::new("s"), Symbol::new("b"), Symbol::new("f2")]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.leaves().len(), 3);
        assert!(t.is_leaf(f2));
        assert_eq!(t.parent(b), Some(t.root()));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn subtree_and_equality() {
        let t = sample();
        let b = t.nodes_labelled(&"b".into())[0];
        let sub = t.subtree(b);
        assert_eq!(sub, XTree::node("b", vec![XTree::leaf("f2")]));
        assert_ne!(sub, XTree::leaf("b"));
        assert_eq!(t, sample());
    }

    #[test]
    fn document_and_bottom_up_order() {
        let t = sample();
        let order = t.document_order();
        assert_eq!(order[0], t.root());
        let labels: Vec<&str> = order.iter().map(|&n| t.label(n).as_str()).collect();
        assert_eq!(labels, vec!["s", "a", "f1", "b", "f2"]);
        let bu = t.bottom_up_order();
        // every node appears after its children
        for (i, &n) in bu.iter().enumerate() {
            for &c in t.children(n) {
                assert!(bu.iter().position(|&x| x == c).unwrap() < i);
            }
        }
    }

    #[test]
    fn replace_with_forest_materialises_extension() {
        // The example from Section 2.3: T0 = s(a f1 b(f2)), f1 returns
        // s1(c(dd)) and f2 returns s2(d(ef)); the extension is
        // s(a c(dd) b(d(ef))).
        let t = sample();
        let ext = t.replace_with_forest(
            |l| l.as_str().starts_with('f'),
            |l| {
                if l.as_str() == "f1" {
                    vec![XTree::node("c", vec![XTree::leaf("d"), XTree::leaf("d")])]
                } else {
                    vec![XTree::node("d", vec![XTree::leaf("e"), XTree::leaf("f")])]
                }
            },
        );
        let expected = XTree::node(
            "s",
            vec![
                XTree::leaf("a"),
                XTree::node("c", vec![XTree::leaf("d"), XTree::leaf("d")]),
                XTree::node("b", vec![XTree::node("d", vec![XTree::leaf("e"), XTree::leaf("f")])]),
            ],
        );
        assert_eq!(ext, expected);
    }

    #[test]
    fn replace_with_empty_and_multi_tree_forest() {
        let t = XTree::node("s", vec![XTree::leaf("f1")]);
        let empty = t.replace_with_forest(|l| l.as_str() == "f1", |_| vec![]);
        assert_eq!(empty, XTree::leaf("s"));
        let multi = t.replace_with_forest(
            |l| l.as_str() == "f1",
            |_| vec![XTree::leaf("a"), XTree::leaf("b")],
        );
        assert_eq!(multi, XTree::node("s", vec![XTree::leaf("a"), XTree::leaf("b")]));
    }

    #[test]
    fn subtree_replacement_and_relabelling() {
        let t = sample();
        let a = t.nodes_labelled(&"a".into())[0];
        let replaced = t.with_subtree_replaced(a, &XTree::node("x", vec![XTree::leaf("y")]));
        assert_eq!(replaced.nodes_labelled(&"x".into()).len(), 1);
        assert_eq!(replaced.size(), 6);
        let upper = t.map_labels(|l| Symbol::new(l.as_str().to_uppercase()));
        assert_eq!(upper.root_label().as_str(), "S");
        assert_eq!(upper.size(), t.size());
    }
}
