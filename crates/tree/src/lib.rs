//! Unranked ordered labelled trees (abstract XML documents) and unranked
//! tree automata.
//!
//! Following Section 2.1.1 of *Distributed XML Design*, an XML document is
//! abstracted as a finite ordered unranked tree with labels from an alphabet
//! `Σ`; values (`#PCDATA`) are ignored. This crate provides:
//!
//! * [`XTree`] — an arena-based tree with the node accessors used by the
//!   paper (`child-str`, `anc-str`, `tree_t(x)`, document order);
//! * [`term`] — a parser/printer for the paper's term notation
//!   (`s(a f1 b(f2))`);
//! * [`sax`] — a streaming SAX-style event layer: an iterative pull parser
//!   yielding `Open`/`Close` events with `O(depth)` memory, the event source
//!   for one-pass streaming validation;
//! * [`xml`] — a minimal element-only XML parser and serialiser built on the
//!   event layer, so that the examples can ingest and emit actual XML
//!   documents;
//! * [`generate`] — deterministic pseudo-random tree generation for property
//!   tests and benchmark workloads;
//! * [`uta`] — nondeterministic unranked tree automata (`nUTA`,
//!   Section 2.1.3), membership, emptiness, bottom-up determinisation
//!   ([`uta::Duta`]), inclusion and equivalence with counter-example trees.
//!   These are the oracles behind `equiv[S]` for the EDTD/SDTD schema
//!   languages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod sax;
pub mod term;
pub mod tree;
pub mod uta;
pub mod xml;

pub use sax::{SaxEvent, SaxParser};
pub use tree::{NodeId, XForest, XTree};
pub use uta::{Duta, Nuta};
