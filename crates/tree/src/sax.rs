//! A streaming SAX-style event layer over element-only XML.
//!
//! The single-type restriction of the paper's R-SDTDs (Section 3) admits
//! *deterministic top-down* typing: a document can be validated in one
//! streaming pass with memory proportional to its depth, not its size. This
//! module provides the event source for that pass: [`SaxParser`], an
//! iterative (explicit-stack, no recursion) pull parser yielding
//! [`SaxEvent::Open`]/[`SaxEvent::Close`] events over element-only XML.
//!
//! The parser handles exactly the dialect [`crate::xml`] has always
//! accepted — start/end/self-closing tags, comments, processing
//! instructions, the XML declaration, attributes and text content (the last
//! three skipped) — and [`crate::xml::parse_xml`] is reimplemented on top of
//! it, so the two agree byte for byte. Unlike the recursive parser it
//! replaces, it
//!
//! * never recurses, so arbitrarily deep documents parse without native
//!   stack growth (a configurable [depth limit](SaxParser::with_depth_limit)
//!   bounds the explicit stack instead);
//! * decodes element names as UTF-8 characters rather than raw bytes, so
//!   multibyte names parse instead of panicking;
//! * tracks quote state while skipping attributes, so `>` inside a quoted
//!   attribute value does not terminate the tag.
//!
//! Memory while parsing is `O(depth)`: one [`Symbol`] per open element (for
//! end-tag matching), nothing per sibling.

use dxml_automata::{AutomataError, Symbol};

/// Default bound on element nesting depth: far beyond any sane document,
/// small enough that the open-element stack of adversarial input stays a
/// few megabytes instead of exhausting memory.
pub const DEFAULT_DEPTH_LIMIT: usize = 1 << 20;

/// One event of the element structure of a document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaxEvent {
    /// A start tag (or the opening half of a self-closing tag).
    Open(Symbol),
    /// The end tag matching the most recent unclosed [`SaxEvent::Open`].
    /// The parser guarantees proper nesting, so the event needs no name.
    Close,
}

/// An iterative pull parser producing the [`SaxEvent`] stream of an
/// element-only XML document.
///
/// Call [`SaxParser::next_event`] until it returns `Ok(None)` (clean end of
/// document) or an error; the [`Iterator`] impl adapts the same method for
/// `for`-loops and combinators. After an error the parser is exhausted and
/// yields nothing further.
pub struct SaxParser<'a> {
    input: &'a str,
    pos: usize,
    /// Names of the currently open elements (for end-tag matching).
    open: Vec<Symbol>,
    depth_limit: usize,
    /// Greatest `open.len()` reached so far — the peak event-buffer size,
    /// reported by throughput benchmarks.
    peak_depth: usize,
    /// A self-closing tag was opened; the next event is its `Close`.
    pending_close: bool,
    /// A root element has been completely closed.
    seen_root: bool,
    /// An error was returned; the stream is exhausted.
    failed: bool,
}

impl<'a> SaxParser<'a> {
    /// Creates a parser over `input` with the [`DEFAULT_DEPTH_LIMIT`].
    pub fn new(input: &'a str) -> SaxParser<'a> {
        SaxParser::with_depth_limit(input, DEFAULT_DEPTH_LIMIT)
    }

    /// Creates a parser that rejects documents nested deeper than
    /// `depth_limit` elements with a located error instead of growing its
    /// stack without bound.
    pub fn with_depth_limit(input: &'a str, depth_limit: usize) -> SaxParser<'a> {
        SaxParser {
            input,
            pos: 0,
            open: Vec::new(),
            depth_limit,
            peak_depth: 0,
            pending_close: false,
            seen_root: false,
            failed: false,
        }
    }

    /// The current byte offset into the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The number of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// The greatest nesting depth seen so far — proportional to the peak
    /// memory the parser (and any streaming consumer stacked on it) holds.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The next event, `Ok(None)` at the clean end of the document.
    ///
    /// Errors are located ([`AutomataError::RegexParse`] with the byte
    /// offset); after an error every subsequent call returns `Ok(None)`.
    pub fn next_event(&mut self) -> Result<Option<SaxEvent>, AutomataError> {
        if self.failed {
            return Ok(None);
        }
        match self.advance() {
            Ok(ev) => Ok(ev),
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<SaxEvent>, AutomataError> {
        if self.pending_close {
            self.pending_close = false;
            return Ok(Some(self.close_top()));
        }
        self.skip_misc();
        if self.pos >= self.input.len() {
            return match self.open.last() {
                Some(name) => Err(self.error(&format!("unterminated element <{name}>"))),
                None if !self.seen_root => Err(self.error("expected '<'")),
                None => Ok(None),
            };
        }
        if self.seen_root && self.open.is_empty() {
            return Err(self.error("unexpected content after the root element"));
        }
        if self.starts_with("</") {
            if self.open.is_empty() {
                return Err(self.error("closing tag without a matching open element"));
            }
            self.pos += 2;
            let close = self.parse_name()?;
            let name = *self.open.last().expect("checked non-empty above");
            if close != name {
                return Err(self.error(&format!("mismatched closing tag </{close}> for <{name}>")));
            }
            self.skip_ws();
            if !self.starts_with(">") {
                return Err(self.error("expected '>' after closing tag name"));
            }
            self.pos += 1;
            return Ok(Some(self.close_top()));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let self_closing = self.skip_attributes(&name)?;
        if self.open.len() >= self.depth_limit {
            return Err(self.error(&format!(
                "element nesting exceeds the depth limit of {}",
                self.depth_limit
            )));
        }
        self.open.push(name);
        self.peak_depth = self.peak_depth.max(self.open.len());
        self.pending_close = self_closing;
        Ok(Some(SaxEvent::Open(name)))
    }

    /// Pops the innermost open element and returns its `Close` event.
    fn close_top(&mut self) -> SaxEvent {
        self.open.pop();
        if self.open.is_empty() {
            self.seen_root = true;
        }
        SaxEvent::Close
    }

    fn error(&self, message: &str) -> AutomataError {
        AutomataError::RegexParse { message: format!("XML: {message}"), position: self.pos }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input.as_bytes()[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skips whitespace, text content, comments, processing instructions and
    /// the XML declaration, stopping at the next tag (or end of input). Text
    /// is skipped at the top level too, matching what `parse_xml` has always
    /// accepted; afterwards the cursor sits on `<` or at the end of input.
    fn skip_misc(&mut self) {
        let bytes = self.input.as_bytes();
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.find_sub("-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = bytes.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match self.find_sub("?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = bytes.len();
                        return;
                    }
                }
            } else if self.pos < bytes.len() && bytes[self.pos] != b'<' {
                // Text content: skip to the next tag.
                while self.pos < bytes.len() && bytes[self.pos] != b'<' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn find_sub(&self, s: &str) -> Option<usize> {
        let needle = s.as_bytes();
        let haystack = self.input.as_bytes();
        (self.pos..haystack.len().saturating_sub(needle.len() - 1))
            .find(|&i| haystack[i..].starts_with(needle))
    }

    /// Parses an element name, decoding UTF-8 characters properly — a
    /// multibyte letter is one name character, never a sequence of
    /// byte-casted surrogates (the seed parser classified raw continuation
    /// bytes like `0xB2` as alphanumeric and then panicked slicing the name
    /// mid-character).
    fn parse_name(&mut self) -> Result<Symbol, AutomataError> {
        let rest = &self.input[self.pos..];
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '~') {
                len = i + c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            return Err(self.error("expected an element name"));
        }
        let name = &rest[..len];
        self.pos += len;
        Symbol::try_new(name)
    }

    /// Skips attributes up to the end of the tag, tracking quote state so a
    /// `>` inside a quoted attribute value does not terminate the tag
    /// (`<a x="1>2">` parses as one element with one attribute). Returns
    /// whether the tag is self-closing.
    fn skip_attributes(&mut self, name: &Symbol) -> Result<bool, AutomataError> {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b'>' => {
                    self.pos += 1;
                    return Ok(false);
                }
                b'/' if bytes.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    return Ok(true);
                }
                quote @ (b'"' | b'\'') => {
                    let value_start = self.pos;
                    self.pos += 1;
                    while self.pos < bytes.len() && bytes[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= bytes.len() {
                        self.pos = value_start;
                        return Err(self.error("unterminated attribute value"));
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        Err(self.error(&format!("unterminated start tag <{name}>")))
    }
}

impl Iterator for SaxParser<'_> {
    type Item = Result<SaxEvent, AutomataError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<SaxEvent>, AutomataError> {
        SaxParser::new(input).collect()
    }

    fn open(name: &str) -> SaxEvent {
        SaxEvent::Open(Symbol::new(name))
    }

    #[test]
    fn event_stream_of_a_simple_document() {
        let evs = events("<a><b/><c></c></a>").unwrap();
        assert_eq!(
            evs,
            vec![
                open("a"),
                open("b"),
                SaxEvent::Close,
                open("c"),
                SaxEvent::Close,
                SaxEvent::Close,
            ]
        );
    }

    #[test]
    fn misc_content_is_skipped() {
        let evs = events(
            "<?xml version=\"1.0\"?><!-- hi --><a>text<b/>more<!-- inner --></a><!-- bye -->",
        )
        .unwrap();
        assert_eq!(evs, vec![open("a"), open("b"), SaxEvent::Close, SaxEvent::Close]);
    }

    #[test]
    fn quoted_attribute_values_may_contain_gt() {
        let evs = events(r#"<a x="1>2" y='3>4'><b z="/>"/></a>"#).unwrap();
        assert_eq!(evs, vec![open("a"), open("b"), SaxEvent::Close, SaxEvent::Close]);
    }

    #[test]
    fn multibyte_element_names_parse() {
        // The seed parser classified the continuation bytes of `é`/`²` as
        // alphanumeric byte-by-byte and panicked slicing mid-character.
        let evs = events("<café><möbius²/></café>").unwrap();
        assert_eq!(
            evs,
            vec![open("café"), open("möbius²"), SaxEvent::Close, SaxEvent::Close]
        );
    }

    #[test]
    fn multibyte_boundary_is_an_error_not_a_panic() {
        // A name starting with a non-name character errs cleanly.
        assert!(events("<‰a/>").is_err());
        // Emoji are not alphanumeric: name parsing stops at `a` and the
        // emoji is skipped with the (discarded) attribute region.
        assert_eq!(events("<a🙂/>").unwrap(), vec![open("a"), SaxEvent::Close]);
    }

    #[test]
    fn depth_limit_is_enforced() {
        let doc = format!("{}x{}", "<a>".repeat(40), "</a>".repeat(40));
        assert!(SaxParser::with_depth_limit(&doc, 40)
            .collect::<Result<Vec<_>, _>>()
            .is_ok());
        let err = SaxParser::with_depth_limit(&doc, 39)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(err.to_string().contains("depth limit"), "{err}");
    }

    #[test]
    fn error_cases() {
        for bad in [
            "",
            "plain text",
            "<a>",
            "<a><b></a>",
            "<a/><b/>",
            "</a>",
            "<a></a><b/>",
            "<a",
            "<a x=\"unterminated/></a>",
            "<>",
        ] {
            assert!(events(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn top_level_text_is_tolerated() {
        // Parity with the seed `parse_xml`: non-markup outside the root is
        // skipped like any other text content.
        assert_eq!(events("junk <a/> more junk").unwrap(), vec![open("a"), SaxEvent::Close]);
    }

    #[test]
    fn parser_is_exhausted_after_an_error() {
        let mut p = SaxParser::new("<a><b></a>");
        let mut saw_err = false;
        for item in p.by_ref() {
            if item.is_err() {
                saw_err = true;
            }
        }
        assert!(saw_err);
        assert_eq!(p.next_event().unwrap(), None);
    }

    #[test]
    fn peak_depth_tracks_nesting() {
        let mut p = SaxParser::new("<a><b><c/></b><d/></a>");
        while p.next_event().unwrap().is_some() {}
        assert_eq!(p.peak_depth(), 3);
        assert_eq!(p.depth(), 0);
    }
}
