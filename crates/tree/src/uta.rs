//! Unranked tree automata (Section 2.1.3).
//!
//! A *nondeterministic unranked tree automaton* (nUTA) is a quadruple
//! `⟨K, Σ, Δ, F⟩` where `Δ` maps pairs `(state, label)` to [`Nfa`]s over the
//! state set: a tree is accepted iff there is an assignment `µ` of states to
//! nodes such that `µ(root) ∈ F` and for every node `x`, the word
//! `µ(children(x))` is accepted by `Δ(µ(x), lab(x))` (with ε for leaves).
//!
//! States are [`Symbol`]s, which makes nUTAs the direct operational model of
//! the paper's R-EDTDs (states = specialised element names). The module
//! provides:
//!
//! * membership ([`Nuta::accepts`]) via the bottom-up possible-state-set run;
//! * emptiness with witness trees ([`Nuta::inhabited_witnesses`]);
//! * bottom-up determinisation ([`Duta`], the dUTAs of the paper) via the
//!   reachable-subset construction, with per-label Moore machines over
//!   subset states;
//! * inclusion and equivalence of tree languages with counter-example trees
//!   ([`included`], [`equivalent`]) — the oracles behind `equiv[S]` for
//!   SDTDs and EDTDs (Theorem 4.7).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dxml_automata::{Alphabet, AutomataError, Budget, FxHashMap, FxHashSet, Nfa, StateSet, Symbol};

use crate::tree::XTree;

/// A nondeterministic unranked tree automaton whose states are [`Symbol`]s.
#[derive(Clone)]
pub struct Nuta {
    states: BTreeSet<Symbol>,
    finals: BTreeSet<Symbol>,
    labels: Alphabet,
    /// `(state, label) → content NFA over state symbols`.
    delta: BTreeMap<(Symbol, Symbol), Nfa>,
    /// `label → states with a rule for it` (sorted): the bottom-up run
    /// consults only the states that can type a node's label instead of
    /// scanning the whole state set per node.
    by_label: BTreeMap<Symbol, Vec<Symbol>>,
}

impl Nuta {
    /// Creates an automaton with no states.
    pub fn new() -> Nuta {
        Nuta {
            states: BTreeSet::new(),
            finals: BTreeSet::new(),
            labels: Alphabet::new(),
            delta: BTreeMap::new(),
            by_label: BTreeMap::new(),
        }
    }

    /// Adds a state (idempotent).
    pub fn add_state(&mut self, state: impl Into<Symbol>) {
        self.states.insert(state.into());
    }

    /// Marks a state as final (adds it if missing).
    pub fn set_final(&mut self, state: impl Into<Symbol>) {
        let s = state.into();
        self.states.insert(s);
        self.finals.insert(s);
    }

    /// Sets the content automaton for `(state, label)`. The content NFA reads
    /// *state* symbols. Adding a rule registers the state and the label.
    pub fn set_rule(&mut self, state: impl Into<Symbol>, label: impl Into<Symbol>, content: Nfa) {
        let s = state.into();
        let l = label.into();
        self.states.insert(s);
        self.labels.insert(l);
        let states = self.by_label.entry(l).or_default();
        if let Err(pos) = states.binary_search(&s) {
            states.insert(pos, s);
        }
        self.delta.insert((s, l), content);
    }

    /// The states.
    pub fn states(&self) -> &BTreeSet<Symbol> {
        &self.states
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<Symbol> {
        &self.finals
    }

    /// The tree-node labels for which at least one rule exists.
    pub fn labels(&self) -> &Alphabet {
        &self.labels
    }

    /// The content automaton for `(state, label)` if a rule exists.
    pub fn rule(&self, state: &Symbol, label: &Symbol) -> Option<&Nfa> {
        self.delta.get(&(*state, *label))
    }

    /// Iterates over all rules.
    pub fn rules(&self) -> impl Iterator<Item = (&Symbol, &Symbol, &Nfa)> {
        self.delta.iter().map(|((s, l), nfa)| (s, l, nfa))
    }

    /// Total size: number of states plus the sizes of all content automata.
    pub fn size(&self) -> usize {
        self.states.len()
            + self
                .delta
                .values()
                .map(|nfa| nfa.num_states() + nfa.num_transitions())
                .sum::<usize>()
    }

    /// A copy of the automaton with a different set of final states
    /// (useful to obtain the language of trees "rooted at" a particular
    /// state, like the paper's `τ(ã)` of Lemma 3.4).
    pub fn with_finals(&self, finals: impl IntoIterator<Item = Symbol>) -> Nuta {
        let mut out = self.clone();
        out.finals = finals.into_iter().collect();
        for f in &out.finals {
            out.states.insert(*f);
        }
        out
    }

    // ------------------------------------------------------------------
    // Runs
    // ------------------------------------------------------------------

    /// Whether `content` accepts some word `w1…wk` with `wi ∈ child_sets[i]`.
    fn content_accepts_over_sets(content: &Nfa, child_sets: &[&BTreeSet<Symbol>]) -> bool {
        let mut current = content.start_closure();
        let mut next = StateSet::empty(content.num_states());
        for set in child_sets {
            content.step_all_into(&current, set.iter(), &mut next);
            if next.is_empty() {
                return false;
            }
            std::mem::swap(&mut current, &mut next);
        }
        current.iter().any(|q| content.is_final(q))
    }

    /// The bottom-up possible-state run: for each node (indexed by
    /// [`crate::tree::NodeId`]) the set of states the automaton can assign to
    /// it.
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (the by-label index listing a
    /// state without a rule).
    pub fn run(&self, tree: &XTree) -> Vec<BTreeSet<Symbol>> {
        let mut possible: Vec<BTreeSet<Symbol>> = vec![BTreeSet::new(); tree.size()];
        for node in tree.bottom_up_order() {
            let label = tree.label(node);
            let child_sets: Vec<&BTreeSet<Symbol>> =
                tree.children(node).iter().map(|&c| &possible[c]).collect();
            let mut states = BTreeSet::new();
            // Only the states with a rule for this label can type the node.
            for q in self.by_label.get(label).map_or(&[][..], Vec::as_slice) {
                let content = self.rule(q, label).expect("by_label lists only ruled states");
                if Self::content_accepts_over_sets(content, &child_sets) {
                    states.insert(*q);
                }
            }
            possible[node] = states;
        }
        possible
    }

    /// Whether the automaton accepts the tree.
    pub fn accepts(&self, tree: &XTree) -> bool {
        let possible = self.run(tree);
        possible[tree.root()].iter().any(|q| self.finals.contains(q))
    }

    // ------------------------------------------------------------------
    // Emptiness
    // ------------------------------------------------------------------

    /// For every *inhabited* state `q` (a state to which some tree can be
    /// assigned), a witness tree. The language is empty iff no final state is
    /// inhabited.
    pub fn inhabited_witnesses(&self) -> BTreeMap<Symbol, XTree> {
        let mut witnesses: BTreeMap<Symbol, XTree> = BTreeMap::new();
        loop {
            let mut changed = false;
            for ((state, label), content) in &self.delta {
                if witnesses.contains_key(state) {
                    continue;
                }
                // Restrict the content automaton to currently inhabited
                // states and look for a shortest accepted word.
                let restricted = content.filter_symbols(|s| witnesses.contains_key(s));
                if let Some(word) = restricted.shortest_accepted() {
                    let children: Vec<XTree> = word.iter().map(|s| witnesses[s].clone()).collect();
                    witnesses.insert(*state, XTree::node(*label, children));
                    changed = true;
                }
            }
            if !changed {
                return witnesses;
            }
        }
    }

    /// Whether the tree language is empty.
    pub fn is_empty(&self) -> bool {
        let witnesses = self.inhabited_witnesses();
        !self.finals.iter().any(|f| witnesses.contains_key(f))
    }

    /// A tree in the language, if any.
    pub fn sample_tree(&self) -> Option<XTree> {
        let witnesses = self.inhabited_witnesses();
        self.finals.iter().find_map(|f| witnesses.get(f).cloned())
    }

    /// Determinises the automaton over the given label universe.
    pub fn determinize(&self, labels: &Alphabet) -> Duta {
        Duta::from_nuta(self, labels)
    }

    /// Governed variant of [`Nuta::determinize`]: the subset construction
    /// charges the budget and aborts with [`AutomataError::BudgetExceeded`]
    /// when it trips.
    pub fn determinize_with_budget(
        &self,
        labels: &Alphabet,
        budget: &Budget,
    ) -> Result<Duta, AutomataError> {
        Duta::from_nuta_with_budget(self, labels, budget)
    }
}

impl Default for Nuta {
    fn default() -> Self {
        Nuta::new()
    }
}

impl fmt::Debug for Nuta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Nuta(states={:?}, finals={:?})", self.states, self.finals)?;
        for ((s, l), nfa) in &self.delta {
            writeln!(f, "  Δ({s}, {l}) = <{} states>", nfa.num_states())?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Determinisation
// ----------------------------------------------------------------------

/// A per-label Moore machine of the determinised automaton: its states are
/// the reachable *configurations* of the simultaneous subset simulation of
/// all content automata for that label; reading a child subset-state advances
/// every component, and the output of a configuration is the subset of
/// original states whose content automaton is in an accepting configuration.
#[derive(Clone, Debug)]
pub struct LabelMachine {
    start: usize,
    /// `trans[config]`: sorted `(child subset index, next config)` pairs —
    /// the dense-adjacency analogue of the automata crate's transition
    /// storage (at most one entry per letter, found by binary search).
    trans: Vec<Vec<(usize, usize)>>,
    /// `output[config] = subset index`.
    output: Vec<usize>,
}

impl LabelMachine {
    /// The initial configuration.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Deterministic transition on a child subset index.
    ///
    /// # Panics
    ///
    /// Panics if the transition was never materialised (the determinisation
    /// fixpoint makes every machine total over the discovered letters).
    pub fn step(&self, config: usize, child_subset: usize) -> usize {
        self.step_opt(config, child_subset)
            .expect("label machine is total over discovered subset letters")
    }

    /// [`LabelMachine::step`] returning `None` on a missing transition.
    fn step_opt(&self, config: usize, child_subset: usize) -> Option<usize> {
        let v = &self.trans[config];
        v.binary_search_by_key(&child_subset, |&(l, _)| l).ok().map(|pos| v[pos].1)
    }

    /// The subset-state produced for a node whose children produced
    /// `children` (in order).
    pub fn output_for(&self, children: &[usize]) -> usize {
        let mut config = self.start;
        for &c in children {
            config = self.step(config, c);
        }
        self.output[config]
    }

    /// The subset-state index a configuration outputs (the Moore output).
    pub fn output(&self, config: usize) -> usize {
        self.output[config]
    }

    /// Number of configurations.
    pub fn num_configs(&self) -> usize {
        self.output.len()
    }

    /// Iterates over the deterministic transitions as
    /// `(config, child_subset, next_config)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.trans
            .iter()
            .enumerate()
            .flat_map(|(c, v)| v.iter().map(move |&(letter, next)| (c, letter, next)))
    }
}

/// A bottom-up deterministic unranked tree automaton obtained by
/// determinising an [`Nuta`]: its states are the reachable subsets of the
/// original state set; every tree over the label universe has exactly one
/// run.
#[derive(Clone)]
pub struct Duta {
    subsets: Vec<BTreeSet<Symbol>>,
    witnesses: Vec<XTree>,
    finals_orig: BTreeSet<Symbol>,
    labels: Alphabet,
    machines: BTreeMap<Symbol, LabelMachine>,
}

impl Duta {
    /// Determinises `nuta` over the label universe `labels` (which should
    /// contain at least `nuta.labels()`; extra labels yield the empty subset
    /// for every node carrying them).
    ///
    /// # Panics
    ///
    /// Never in practice: the unlimited budget cannot trip.
    pub fn from_nuta(nuta: &Nuta, labels: &Alphabet) -> Duta {
        Duta::from_nuta_with_budget(nuta, labels, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// Governed variant of [`Duta::from_nuta`]: every `(label, config,
    /// subset letter)` expansion of the fixpoint charges one budget step and
    /// every discovered subset state charges the state quota; the
    /// construction aborts with [`AutomataError::BudgetExceeded`] when the
    /// budget trips, leaving no partial automaton behind.
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (a ruled `(state, label)` pair
    /// without its content automaton).
    pub fn from_nuta_with_budget(
        nuta: &Nuta,
        labels: &Alphabet,
        budget: &Budget,
    ) -> Result<Duta, AutomataError> {
        budget.check_interrupts()?;
        let labels = labels.union(nuta.labels());
        // Per label: the list of states with a rule and their ε-free content
        // automata.
        struct Building {
            states_with_rule: Vec<Symbol>,
            nfas: Vec<Nfa>,
            configs: Vec<Vec<StateSet>>,
            config_index: FxHashMap<Vec<StateSet>, usize>,
            config_paths: Vec<Vec<usize>>,
            /// Sorted `(letter, next config)` adjacency per config; letters
            /// are discovered in increasing order, so plain pushes keep the
            /// vectors sorted.
            trans: Vec<Vec<(usize, usize)>>,
            output: Vec<usize>,
        }
        let mut building: BTreeMap<Symbol, Building> = BTreeMap::new();
        for label in &labels {
            let states_with_rule: Vec<Symbol> = nuta
                .states()
                .iter()
                .filter(|q| nuta.rule(q, label).is_some())
                .cloned()
                .collect();
            let nfas: Vec<Nfa> = states_with_rule
                .iter()
                .map(|q| nuta.rule(q, label).unwrap().eps_free())
                .collect();
            building.insert(
                *label,
                Building {
                    states_with_rule,
                    nfas,
                    configs: Vec::new(),
                    config_index: FxHashMap::default(),
                    config_paths: Vec::new(),
                    trans: Vec::new(),
                    output: Vec::new(),
                },
            );
        }

        let mut subsets: Vec<BTreeSet<Symbol>> = Vec::new();
        let mut subset_index: BTreeMap<BTreeSet<Symbol>, usize> = BTreeMap::new();
        let mut witnesses: Vec<XTree> = Vec::new();

        // Helper closures operate through explicit arguments to appease the
        // borrow checker.
        fn config_output(b: &Building, config: &[StateSet]) -> BTreeSet<Symbol> {
            b.states_with_rule
                .iter()
                .zip(&b.nfas)
                .zip(config)
                .filter(|((_, nfa), comp)| comp.iter().any(|s| nfa.is_final(s)))
                .map(|((q, _), _)| *q)
                .collect()
        }

        // Seed: the start configuration of each label (its output is the
        // subset assigned to a leaf with that label).
        for (label, b) in &mut building {
            let start_config: Vec<StateSet> =
                b.nfas.iter().map(Nfa::start_closure).collect();
            b.configs.push(start_config.clone());
            b.config_index.insert(start_config.clone(), 0);
            b.config_paths.push(Vec::new());
            b.trans.push(Vec::new());
            let out = config_output(b, &start_config);
            let idx = match subset_index.entry(out.clone()) {
                std::collections::btree_map::Entry::Occupied(e) => *e.get(),
                std::collections::btree_map::Entry::Vacant(slot) => {
                    budget.grow_states(1)?;
                    subsets.push(out);
                    witnesses.push(XTree::leaf(*label));
                    *slot.insert(subsets.len() - 1)
                }
            };
            b.output.push(idx);
        }

        // Fixpoint: expand every (label, config, subset letter) combination.
        loop {
            let mut changed = false;
            let num_subsets = subsets.len();
            for (label, b) in &mut building {
                // Per-component scratch frontiers reused across every
                // (config, letter) expansion of this label; only genuinely
                // new configurations are cloned out of them.
                let mut scratch: Vec<StateSet> =
                    b.nfas.iter().map(|nfa| StateSet::empty(nfa.num_states())).collect();
                let mut config_id = 0;
                while config_id < b.configs.len() {
                    for letter in 0..num_subsets {
                        if b.trans[config_id]
                            .binary_search_by_key(&letter, |&(l, _)| l)
                            .is_ok()
                        {
                            continue;
                        }
                        changed = true;
                        budget.step()?;
                        // Advance every component by "any state in the letter
                        // subset".
                        for (slot, (nfa, comp)) in
                            scratch.iter_mut().zip(b.nfas.iter().zip(&b.configs[config_id]))
                        {
                            nfa.step_all_into(comp, &subsets[letter], slot);
                        }
                        let next_id = match b.config_index.get(&scratch) {
                            Some(&i) => i,
                            None => {
                                let i = b.configs.len();
                                b.configs.push(scratch.clone());
                                b.config_index.insert(scratch.clone(), i);
                                let mut path = b.config_paths[config_id].clone();
                                path.push(letter);
                                b.config_paths.push(path);
                                b.trans.push(Vec::new());
                                let out = config_output(b, &scratch);
                                let idx = match subset_index.entry(out.clone()) {
                                    std::collections::btree_map::Entry::Occupied(e) => *e.get(),
                                    std::collections::btree_map::Entry::Vacant(slot) => {
                                        budget.grow_states(1)?;
                                        let children: Vec<XTree> = b.config_paths[i]
                                            .iter()
                                            .map(|&l| witnesses[l].clone())
                                            .collect();
                                        subsets.push(out);
                                        witnesses.push(XTree::node(*label, children));
                                        *slot.insert(subsets.len() - 1)
                                    }
                                };
                                b.output.push(idx);
                                i
                            }
                        };
                        let v = &mut b.trans[config_id];
                        match v.binary_search_by_key(&letter, |&(l, _)| l) {
                            Ok(pos) => v[pos].1 = next_id,
                            Err(pos) => v.insert(pos, (letter, next_id)),
                        }
                    }
                    config_id += 1;
                }
            }
            if !changed && subsets.len() == num_subsets {
                break;
            }
        }

        let machines = building
            .into_iter()
            .map(|(label, b)| {
                (label, LabelMachine { start: 0, trans: b.trans, output: b.output })
            })
            .collect();

        Ok(Duta {
            subsets,
            witnesses,
            finals_orig: nuta.finals().clone(),
            labels,
            machines,
        })
    }

    /// The number of subset states.
    pub fn num_states(&self) -> usize {
        self.subsets.len()
    }

    /// The subset of original states represented by subset state `i`.
    pub fn subset(&self, i: usize) -> &BTreeSet<Symbol> {
        &self.subsets[i]
    }

    /// All subset states, in discovery order.
    pub fn subsets(&self) -> &[BTreeSet<Symbol>] {
        &self.subsets
    }

    /// A tree whose run ends in subset state `i`.
    pub fn witness(&self, i: usize) -> &XTree {
        &self.witnesses[i]
    }

    /// Whether subset state `i` is accepting (contains an original final
    /// state).
    pub fn is_final(&self, i: usize) -> bool {
        self.subsets[i].iter().any(|q| self.finals_orig.contains(q))
    }

    /// The label universe the automaton was determinised over.
    pub fn labels(&self) -> &Alphabet {
        &self.labels
    }

    /// The per-label Moore machine.
    pub fn machine(&self, label: &Symbol) -> Option<&LabelMachine> {
        self.machines.get(label)
    }

    /// The unique bottom-up run: the subset state of every node
    /// (`None` if the tree uses a label outside the universe).
    pub fn run(&self, tree: &XTree) -> Option<Vec<usize>> {
        let mut states = vec![0usize; tree.size()];
        for node in tree.bottom_up_order() {
            let machine = self.machines.get(tree.label(node))?;
            let children: Vec<usize> = tree.children(node).iter().map(|&c| states[c]).collect();
            states[node] = machine.output_for(&children);
        }
        Some(states)
    }

    /// Whether the automaton accepts the tree. Agrees with the originating
    /// [`Nuta`] on every tree over the label universe.
    pub fn accepts(&self, tree: &XTree) -> bool {
        match self.run(tree) {
            Some(states) => self.is_final(states[tree.root()]),
            None => false,
        }
    }

    /// The content language of subset state `i` under `label`, as an NFA over
    /// subset-state symbols produced by `namer`. A word `S1…Sk` is accepted
    /// iff a node labelled `label` whose children have subset states
    /// `S1…Sk` gets subset state `i`. Used by the R-EDTD normalisation
    /// (Lemma 4.10).
    pub fn content_nfa(&self, i: usize, label: &Symbol, namer: impl Fn(usize) -> Symbol) -> Nfa {
        let machine = match self.machines.get(label) {
            Some(m) => m,
            None => return Nfa::empty(),
        };
        let mut nfa = Nfa::new(machine.num_configs(), machine.start);
        for (config, letter, next) in machine.transitions() {
            nfa.add_transition(config, namer(letter), next);
        }
        for (config, &out) in machine.output.iter().enumerate() {
            if out == i {
                nfa.set_final(config);
            }
        }
        nfa
    }

    /// The accepting subset states (those containing an original final
    /// state).
    pub fn accepting_states(&self) -> BTreeSet<usize> {
        (0..self.subsets.len()).filter(|&i| self.is_final(i)).collect()
    }

    /// The index of the *empty* subset state (the state of trees that admit
    /// no typing at all), if it is reachable.
    pub fn empty_subset(&self) -> Option<usize> {
        self.subsets.iter().position(BTreeSet::is_empty)
    }

    /// Every subset state achievable by some tree whose root carries
    /// `label`: the Moore outputs of all reachable configurations of the
    /// label's machine. Every subset state of the automaton is inhabited by
    /// construction (see [`Duta::witness`]), so all letters are available as
    /// children.
    pub fn label_outputs(&self, label: &Symbol) -> BTreeSet<usize> {
        let machine = match self.machines.get(label) {
            Some(m) => m,
            None => return BTreeSet::new(),
        };
        let mut seen = StateSet::singleton(machine.num_configs(), machine.start);
        let mut queue = VecDeque::from([machine.start]);
        while let Some(config) = queue.pop_front() {
            for &(_letter, next) in &machine.trans[config] {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen.iter().map(|c| machine.output[c]).collect()
    }

    /// The inhabited `(label, subset state)` pairs: for every label of the
    /// universe, the subset states achievable by trees rooted at it. These
    /// are exactly the specialised names of the normalised R-EDTD of
    /// Lemma 4.10 (one per pair), and the sets the kernel boxes of
    /// Section 7 are made of.
    pub fn inhabited_label_states(&self) -> BTreeMap<Symbol, BTreeSet<usize>> {
        self.labels
            .iter()
            .map(|l| (*l, self.label_outputs(l)))
            .collect()
    }

    /// The image of a word language under a label's Moore machine: for each
    /// subset state `i` achievable as `machine.output_for(w)` for some word
    /// `w ∈ [word_lang]` (reading the symbols of `word_lang` through
    /// `letter_of`), a *shortest* such witness word.
    ///
    /// Symbols for which `letter_of` returns `None` (symbols that denote no
    /// subset state) contribute no transition, so words using them are
    /// unrealizable. An unknown label yields the empty map.
    ///
    /// This is the specialised-label validation primitive of the Section-7
    /// reduction: the children of a kernel node form a word-with-box-gaps
    /// language over subset states, and typing verification asks which
    /// subset states the node itself can reach.
    ///
    /// # Panics
    ///
    /// Never in practice: the unlimited budget cannot trip.
    pub fn outputs_over(
        &self,
        label: &Symbol,
        word_lang: &Nfa,
        letter_of: impl Fn(&Symbol) -> Option<usize>,
    ) -> BTreeMap<usize, Vec<Symbol>> {
        self.outputs_over_with_budget(label, word_lang, letter_of, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// Governed variant of [`Duta::outputs_over`]: the product BFS charges
    /// one budget step per popped pair and aborts with
    /// [`AutomataError::BudgetExceeded`] when the budget trips.
    pub fn outputs_over_with_budget(
        &self,
        label: &Symbol,
        word_lang: &Nfa,
        letter_of: impl Fn(&Symbol) -> Option<usize>,
        budget: &Budget,
    ) -> Result<BTreeMap<usize, Vec<Symbol>>, AutomataError> {
        let machine = match self.machines.get(label) {
            Some(m) => m,
            None => return Ok(BTreeMap::new()),
        };
        // Resolve each alphabet symbol's subset-state letter *and* its
        // local id in the word automaton once, outside the BFS — symbols
        // denoting no subset state never move the product, and the frontier
        // steps below never re-hash a symbol.
        let moves: Vec<(Symbol, usize, u32)> = word_lang
            .alphabet()
            .iter()
            .filter_map(|&sym| {
                let letter = letter_of(&sym)?;
                let sid = word_lang.sym_id(&sym)?;
                Some((sym, letter, sid))
            })
            .collect();
        let finals = word_lang.finals_set();
        let start = (machine.start, word_lang.start_closure());
        // One BFS state: (machine configuration, NFA frontier bitset). The
        // frontiers here are content-model sized (inline bitsets), so the
        // step allocates nothing and a reuse buffer would only add clones.
        type Pair = (usize, StateSet);
        let mut outputs: BTreeMap<usize, Vec<Symbol>> = BTreeMap::new();
        let mut seen: FxHashSet<Pair> = FxHashSet::from_iter([start.clone()]);
        let mut queue: VecDeque<(Pair, Vec<Symbol>)> = VecDeque::from([(start, Vec::new())]);
        while let Some(((config, set), word)) = queue.pop_front() {
            budget.step()?;
            if set.intersects(&finals) {
                outputs.entry(machine.output[config]).or_insert_with(|| word.clone());
            }
            for &(sym, letter, sid) in &moves {
                let next_config = match machine.step_opt(config, letter) {
                    Some(c) => c,
                    None => continue,
                };
                let next_set = word_lang.step_local(&set, sid);
                if next_set.is_empty() {
                    continue;
                }
                let state = (next_config, next_set);
                if seen.insert(state.clone()) {
                    let mut w = word.clone();
                    w.push(sym);
                    queue.push_back((state, w));
                }
            }
        }
        Ok(outputs)
    }
}

impl fmt::Debug for Duta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Duta({} subset states over {} labels)", self.subsets.len(), self.labels.len())?;
        for (i, s) in self.subsets.iter().enumerate() {
            writeln!(f, "  S{i} = {:?}{}", s, if self.is_final(i) { " (final)" } else { "" })?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Inclusion / equivalence
// ----------------------------------------------------------------------

/// All pairs `(subset state of a, subset state of b)` jointly reachable by
/// some tree over `a`'s label universe, each with a witness tree.
///
/// `b` may have been determinised over a *smaller* label universe than `a`
/// (the point of caching a determinised target across inclusion checks): a
/// label unknown to `b` sends the `b`-component to a virtual dead state,
/// rendered as `None`, which propagates upward — exactly the semantics of
/// [`Duta::run`] returning `None` on out-of-universe labels. Labels in
/// `b`'s universe but outside `a`'s are not explored; trees using them are
/// rejected by `a` and therefore irrelevant both as counterexamples and as
/// subtrees of counterexamples.
fn reachable_pairs(
    a: &Duta,
    b: &Duta,
    budget: &Budget,
) -> Result<Vec<(usize, Option<usize>, XTree)>, AutomataError> {
    let labels = a.labels().clone();
    let mut pairs: Vec<(usize, Option<usize>, XTree)> = Vec::new();
    let mut pair_index: BTreeSet<(usize, Option<usize>)> = BTreeSet::new();
    loop {
        let snapshot_len = pairs.len();
        for label in &labels {
            let ma = match a.machine(label) {
                Some(ma) => ma,
                None => continue,
            };
            let mb = b.machine(label);
            // BFS over configurations of the synchronous product, using the
            // currently known pairs as letters. A `None` configuration on
            // the `b` side is the dead state.
            let start = (ma.start(), mb.map(LabelMachine::start));
            let mut seen: BTreeMap<(usize, Option<usize>), Vec<usize>> = BTreeMap::new();
            seen.insert(start, Vec::new());
            let mut queue = VecDeque::from([start]);
            while let Some((ca, cb)) = queue.pop_front() {
                budget.step()?;
                let path = seen[&(ca, cb)].clone();
                let out = (
                    ma.output[ca],
                    match (cb, mb) {
                        (Some(cb), Some(mb)) => Some(mb.output[cb]),
                        _ => None,
                    },
                );
                if pair_index.insert(out) {
                    let children: Vec<XTree> =
                        path.iter().map(|&p| pairs[p].2.clone()).collect();
                    pairs.push((out.0, out.1, XTree::node(*label, children)));
                }
                for (letter, (pa, pb, _)) in pairs.iter().enumerate().take(snapshot_len) {
                    let next_b = match (cb, pb, mb) {
                        (Some(cb), Some(pb), Some(mb)) => Some(mb.step(cb, *pb)),
                        _ => None,
                    };
                    let next = (ma.step(ca, *pa), next_b);
                    if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(next) {
                        let mut next_path = path.clone();
                        next_path.push(letter);
                        slot.insert(next_path);
                        queue.push_back(next);
                    }
                }
            }
        }
        if pairs.len() == snapshot_len {
            return Ok(pairs);
        }
    }
}

/// Checks `[a] ⊆ [b]` as tree languages; on failure returns a tree accepted
/// by `a` but not by `b`.
pub fn included(a: &Nuta, b: &Nuta) -> Result<(), XTree> {
    included_in_duta(a, &b.determinize(b.labels()))
}

/// Checks `[a] ⊆ [db]` against an already-determinised right-hand side; on
/// failure returns a tree accepted by `a` but not by `db`.
///
/// This is the entry point for callers that check many left-hand sides
/// against the same target (typing verification, perfect-schema synthesis):
/// the expensive determinisation of the target happens once, outside.
///
/// # Panics
///
/// Never in practice: the unlimited budget cannot trip.
pub fn included_in_duta(a: &Nuta, db: &Duta) -> Result<(), XTree> {
    included_in_duta_with_budget(a, db, &Budget::unlimited())
        .expect("the unlimited budget never trips")
}

/// Governed variant of [`included_in_duta`]. The outer `Result` reports
/// resource governance ([`AutomataError::BudgetExceeded`]); the inner one is
/// the inclusion verdict with its counterexample tree.
pub fn included_in_duta_with_budget(
    a: &Nuta,
    db: &Duta,
    budget: &Budget,
) -> Result<Result<(), XTree>, AutomataError> {
    budget.check_interrupts()?;
    let da = a.determinize_with_budget(a.labels(), budget)?;
    for (ia, ib, witness) in reachable_pairs(&da, db, budget)? {
        if da.is_final(ia) && !ib.is_some_and(|i| db.is_final(i)) {
            return Ok(Err(witness));
        }
    }
    Ok(Ok(()))
}

/// Checks `[a] = [b]` as tree languages; on failure returns a distinguishing
/// tree together with the side (`true` = accepted by `a` only).
///
/// # Panics
///
/// Never in practice: the unlimited budget cannot trip.
pub fn equivalent(a: &Nuta, b: &Nuta) -> Result<(), (XTree, bool)> {
    let labels = a.labels().union(b.labels());
    let da = a.determinize(&labels);
    let db = b.determinize(&labels);
    let pairs = reachable_pairs(&da, &db, &Budget::unlimited())
        .expect("the unlimited budget never trips");
    for (ia, ib, witness) in pairs {
        // Both sides are determinised over the same universe, so the dead
        // state never arises and `ib` is always `Some`.
        let b_final = ib.is_some_and(|i| db.is_final(i));
        match (da.is_final(ia), b_final) {
            (true, false) => return Err((witness, true)),
            (false, true) => return Err((witness, false)),
            _ => {}
        }
    }
    Ok(())
}

/// Convenience boolean wrappers.
pub fn is_included(a: &Nuta, b: &Nuta) -> bool {
    included(a, b).is_ok()
}

/// Whether the two automata accept the same tree language.
pub fn is_equivalent(a: &Nuta, b: &Nuta) -> bool {
    equivalent(a, b).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_trees, TreeGenConfig};
    use crate::term::parse_term;
    use dxml_automata::Regex;

    /// Content model from an identifier-mode regular expression whose
    /// symbols are state names.
    fn content(re: &str) -> Nfa {
        Regex::parse(re).unwrap().to_nfa()
    }

    /// The language of trees `s((a b)*)` where `a` and `b` are leaves.
    fn ab_star_automaton() -> Nuta {
        let mut a = Nuta::new();
        a.set_rule("qs", "s", content("(qa qb)*"));
        a.set_rule("qa", "a", Nfa::epsilon());
        a.set_rule("qb", "b", Nfa::epsilon());
        a.set_final("qs");
        a
    }

    #[test]
    fn membership_basic() {
        let a = ab_star_automaton();
        assert!(a.accepts(&parse_term("s").unwrap()));
        assert!(a.accepts(&parse_term("s(a b)").unwrap()));
        assert!(a.accepts(&parse_term("s(a b a b)").unwrap()));
        assert!(!a.accepts(&parse_term("s(a a)").unwrap()));
        assert!(!a.accepts(&parse_term("s(b a)").unwrap()));
        assert!(!a.accepts(&parse_term("a").unwrap()));
        assert!(!a.accepts(&parse_term("s(a b(a))").unwrap()));
    }

    #[test]
    fn nondeterministic_specialisation() {
        // s(x x) where one x must contain b and the other must contain c,
        // in either order — genuinely nondeterministic at the x level.
        let mut a = Nuta::new();
        let mut c = Nfa::new(4, 0);
        c.add_transition(0, "x1", 1);
        c.add_transition(1, "x2", 3);
        c.add_transition(0, "x2", 2);
        c.add_transition(2, "x1", 3);
        c.set_final(3);
        a.set_rule("qs", "s", c);
        a.set_rule("x1", "x", Nfa::symbol("qb"));
        a.set_rule("x2", "x", Nfa::symbol("qc"));
        a.set_rule("qb", "b", Nfa::epsilon());
        a.set_rule("qc", "c", Nfa::epsilon());
        a.set_final("qs");

        assert!(a.accepts(&parse_term("s(x(b) x(c))").unwrap()));
        assert!(a.accepts(&parse_term("s(x(c) x(b))").unwrap()));
        assert!(!a.accepts(&parse_term("s(x(b) x(b))").unwrap()));
        assert!(!a.accepts(&parse_term("s(x(b))").unwrap()));
    }

    #[test]
    fn emptiness_and_witnesses() {
        let a = ab_star_automaton();
        assert!(!a.is_empty());
        assert_eq!(a.sample_tree(), Some(parse_term("s").unwrap()));

        // An automaton whose only rule needs an uninhabited state.
        let mut e = Nuta::new();
        e.set_rule("qs", "s", Nfa::symbol("qmissing"));
        e.set_final("qs");
        assert!(e.is_empty());
        assert_eq!(e.sample_tree(), None);

        // Mutual recursion that never bottoms out is empty too.
        let mut m = Nuta::new();
        m.set_rule("p", "a", Nfa::symbol("q"));
        m.set_rule("q", "a", Nfa::symbol("p"));
        m.set_final("p");
        assert!(m.is_empty());
    }

    #[test]
    fn with_finals_selects_subtree_language() {
        let a = ab_star_automaton();
        let leaves_only = a.with_finals([Symbol::new("qa")]);
        assert!(leaves_only.accepts(&parse_term("a").unwrap()));
        assert!(!leaves_only.accepts(&parse_term("s(a b)").unwrap()));
    }

    #[test]
    fn determinisation_agrees_with_nuta() {
        let automata = vec![ab_star_automaton()];
        for a in &automata {
            let labels = a.labels().clone();
            let d = a.determinize(&labels);
            let config = TreeGenConfig::new(&labels, 3, 4);
            for tree in random_trees(11, &config, 200) {
                assert_eq!(a.accepts(&tree), d.accepts(&tree), "tree {tree}");
            }
            // Hand-picked trees as well.
            for src in ["s", "s(a b)", "s(a b a b)", "s(a a)", "a", "b", "s(s)"] {
                let t = parse_term(src).unwrap();
                assert_eq!(a.accepts(&t), d.accepts(&t), "tree {src}");
            }
        }
    }

    #[test]
    fn determinisation_of_nondeterministic_automaton() {
        let mut a = Nuta::new();
        let mut c = Nfa::new(4, 0);
        c.add_transition(0, "x1", 1);
        c.add_transition(1, "x2", 3);
        c.add_transition(0, "x2", 2);
        c.add_transition(2, "x1", 3);
        c.set_final(3);
        a.set_rule("qs", "s", c);
        a.set_rule("x1", "x", Nfa::symbol("qb"));
        a.set_rule("x2", "x", Nfa::symbol("qc"));
        a.set_rule("qb", "b", Nfa::epsilon());
        a.set_rule("qc", "c", Nfa::epsilon());
        a.set_final("qs");
        let d = a.determinize(a.labels());
        for src in ["s(x(b) x(c))", "s(x(c) x(b))", "s(x(b) x(b))", "s(x(c) x(c))", "s(x(b))"] {
            let t = parse_term(src).unwrap();
            assert_eq!(a.accepts(&t), d.accepts(&t), "tree {src}");
        }
        // Subset states must include a state where both x1 and x2 are
        // possible (an x node whose child is... none: impossible; but an x
        // with a b child yields {x1} and with a c child yields {x2}).
        assert!(d.subsets().iter().any(|s| s.contains(&Symbol::new("x1"))));
        assert!(d.subsets().iter().any(|s| s.contains(&Symbol::new("x2"))));
    }

    #[test]
    fn inclusion_and_equivalence_with_witnesses() {
        // L1 = s(a*), L2 = s((aa)*)
        let mut l1 = Nuta::new();
        l1.set_rule("qs", "s", Nfa::symbol("qa").star());
        l1.set_rule("qa", "a", Nfa::epsilon());
        l1.set_final("qs");
        let mut l2 = Nuta::new();
        l2.set_rule("qs", "s", Nfa::literal(&[Symbol::new("qa"), Symbol::new("qa")]).star());
        l2.set_rule("qa", "a", Nfa::epsilon());
        l2.set_final("qs");

        assert!(is_included(&l2, &l1));
        assert!(!is_included(&l1, &l2));
        let witness = included(&l1, &l2).unwrap_err();
        assert!(l1.accepts(&witness));
        assert!(!l2.accepts(&witness));

        let (w, in_first) = equivalent(&l1, &l2).unwrap_err();
        assert!(in_first);
        assert!(l1.accepts(&w) && !l2.accepts(&w));

        // Equivalence of syntactically different automata for the same
        // language: s(a*) vs s(a* a?) written differently.
        let mut l3 = Nuta::new();
        l3.set_rule("qs", "s", Nfa::symbol("qa").star().concat(&Nfa::symbol("qa").optional()));
        l3.set_rule("qa", "a", Nfa::epsilon());
        l3.set_final("qs");
        assert!(is_equivalent(&l1, &l3));
    }

    #[test]
    fn included_in_duta_handles_out_of_universe_labels() {
        // Target: s(a*) — determinised only over its own labels {s, a}.
        let mut target = Nuta::new();
        target.set_rule("qs", "s", Nfa::symbol("qa").star());
        target.set_rule("qa", "a", Nfa::epsilon());
        target.set_final("qs");
        let dt = target.determinize(target.labels());

        // Left side within the universe: s(aa) ⊆ target.
        let mut ok = Nuta::new();
        ok.set_rule("qs", "s", Nfa::literal(&[Symbol::new("qa"), Symbol::new("qa")]));
        ok.set_rule("qa", "a", Nfa::epsilon());
        ok.set_final("qs");
        assert!(included_in_duta(&ok, &dt).is_ok());

        // Left side using a label the target was never determinised over:
        // s(a x) must yield a counterexample containing the foreign label.
        let mut bad = Nuta::new();
        bad.set_rule("qs", "s", Nfa::literal(&[Symbol::new("qa"), Symbol::new("qx")]));
        bad.set_rule("qa", "a", Nfa::epsilon());
        bad.set_rule("qx", "x", Nfa::epsilon());
        bad.set_final("qs");
        let witness = included_in_duta(&bad, &dt).unwrap_err();
        assert!(bad.accepts(&witness));
        assert!(!target.accepts(&witness));

        // And a root-level foreign label alone is already a counterexample.
        let mut foreign = Nuta::new();
        foreign.set_rule("qt", "t", Nfa::epsilon());
        foreign.set_final("qt");
        let w2 = included_in_duta(&foreign, &dt).unwrap_err();
        assert_eq!(w2, parse_term("t").unwrap());
    }

    #[test]
    fn equivalence_distinguishes_different_alphabets() {
        let mut l1 = Nuta::new();
        l1.set_rule("qs", "s", Nfa::epsilon());
        l1.set_final("qs");
        let mut l2 = Nuta::new();
        l2.set_rule("qt", "t", Nfa::epsilon());
        l2.set_final("qt");
        let (w, _) = equivalent(&l1, &l2).unwrap_err();
        assert!(l1.accepts(&w) != l2.accepts(&w));
        assert!(!is_included(&l1, &l2));
    }

    #[test]
    fn label_outputs_and_inhabited_pairs() {
        let a = ab_star_automaton();
        let d = a.determinize(a.labels());
        // An `a` leaf types to {qa}; an `a` with children to the empty
        // subset — exactly two achievable states for the label.
        let qa = Symbol::new("qa");
        let a_outs = d.label_outputs(&Symbol::new("a"));
        assert_eq!(a_outs.len(), 2);
        assert!(a_outs.iter().any(|&i| d.subset(i).contains(&qa)));
        assert!(a_outs.iter().any(|&i| d.subset(i).is_empty()));
        // `s` can be typed qs (with a valid (ab)* child word) or not at all.
        let s_outs = d.label_outputs(&Symbol::new("s"));
        assert!(s_outs.iter().any(|&i| d.subset(i).contains(&Symbol::new("qs"))));
        assert!(s_outs.iter().any(|&i| d.subset(i).is_empty()));
        assert!(d.empty_subset().is_some());
        let pairs = d.inhabited_label_states();
        assert_eq!(pairs[&Symbol::new("b")].len(), 2);
        assert!(pairs[&Symbol::new("a")].iter().all(|i| !d.is_final(*i)));
        assert!(d.label_outputs(&Symbol::new("zz")).is_empty());
        // Accepting states are exactly the qs-containing subsets.
        for i in d.accepting_states() {
            assert!(d.subset(i).contains(&Symbol::new("qs")));
        }
    }

    #[test]
    fn outputs_over_images_a_word_language() {
        let a = ab_star_automaton();
        let d = a.determinize(a.labels());
        let state_sym = |i: usize| Symbol::new(format!("#s{i}"));
        let letter_of = |s: &Symbol| s.as_str().strip_prefix("#s").and_then(|t| t.parse().ok());
        let sa = *d.label_outputs(&Symbol::new("a")).iter().next().unwrap();
        let sb = *d.label_outputs(&Symbol::new("b")).iter().next().unwrap();
        // Children words (Sa Sb)*: the only output is the accepting state.
        let good = Nfa::literal(&[state_sym(sa), state_sym(sb)]).star();
        let outs = d.outputs_over(&Symbol::new("s"), &good, letter_of);
        assert!(outs.keys().all(|&i| d.is_final(i)));
        // Shortest witness is the empty word (a leaf s is valid).
        assert_eq!(outs.values().next().unwrap().len(), 0);
        // Children words (Sa Sb)* Sa: only the empty subset is achievable.
        let bad = good.concat(&Nfa::symbol(state_sym(sa)));
        let outs2 = d.outputs_over(&Symbol::new("s"), &bad, letter_of);
        assert_eq!(outs2.len(), 1);
        let (&o, w) = outs2.iter().next().unwrap();
        assert!(d.subset(o).is_empty());
        assert_eq!(w.len(), 1, "shortest witness is the single word Sa");
        // Symbols that denote no subset state make words unrealizable.
        let foreign = Nfa::symbol("not-a-state");
        assert!(d.outputs_over(&Symbol::new("s"), &foreign, letter_of).is_empty());
        // Unknown labels have no machine.
        assert!(d.outputs_over(&Symbol::new("zz"), &good, letter_of).is_empty());
    }

    #[test]
    fn content_nfa_of_determinisation() {
        let a = ab_star_automaton();
        let d = a.determinize(a.labels());
        // Find the subset state containing qs.
        let (qs_idx, _) = d
            .subsets()
            .iter()
            .enumerate()
            .find(|(_, s)| s.contains(&Symbol::new("qs")))
            .expect("qs subset must be reachable");
        let namer = |i: usize| Symbol::new(format!("S{i}"));
        let content = d.content_nfa(qs_idx, &Symbol::new("s"), namer);
        assert!(!content.is_empty());
        // The content language accepts the empty word (a leaf s gets qs).
        assert!(content.accepts(&[]));
    }
}
