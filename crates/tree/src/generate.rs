//! Deterministic pseudo-random tree generation.
//!
//! Used by property tests and by the benchmark workloads to produce families
//! of documents of controlled size. A small xorshift generator keeps the
//! crate dependency-free and the output reproducible from a seed.

use dxml_automata::{Alphabet, Symbol};

use crate::tree::XTree;

/// A tiny deterministic pseudo-random number generator (xorshift64*).
#[derive(Clone, Debug)]
pub struct SplitRng {
    state: u64,
}

impl SplitRng {
    /// Creates a generator from a seed (zero is mapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        SplitRng { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A pseudo-random value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A pseudo-random boolean with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Picks a random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Parameters controlling random tree generation.
#[derive(Clone, Debug)]
pub struct TreeGenConfig {
    /// Labels to draw from.
    pub labels: Vec<Symbol>,
    /// Maximum depth of the generated tree.
    pub max_depth: usize,
    /// Maximum number of children per node.
    pub max_children: usize,
    /// Probability (out of 100) that a non-maximal-depth node gets children.
    pub branch_chance: usize,
}

impl TreeGenConfig {
    /// A configuration drawing labels from the given alphabet.
    pub fn new(alphabet: &Alphabet, max_depth: usize, max_children: usize) -> Self {
        TreeGenConfig {
            labels: alphabet.to_vec(),
            max_depth,
            max_children,
            branch_chance: 70,
        }
    }
}

/// Generates a pseudo-random tree according to `config`.
///
/// # Panics
///
/// Panics if `config.labels` is empty.
pub fn random_tree(rng: &mut SplitRng, config: &TreeGenConfig) -> XTree {
    assert!(!config.labels.is_empty(), "need at least one label");
    fn grow(rng: &mut SplitRng, config: &TreeGenConfig, tree: &mut XTree, node: usize, depth: usize) {
        if depth >= config.max_depth || !rng.chance(config.branch_chance, 100) {
            return;
        }
        let n_children = rng.below(config.max_children + 1);
        for _ in 0..n_children {
            let label = *rng.pick(&config.labels);
            let child = tree.add_child(node, label);
            grow(rng, config, tree, child, depth + 1);
        }
    }
    let mut tree = XTree::leaf(*rng.pick(&config.labels));
    grow(rng, config, &mut tree, 0, 1);
    tree
}

/// Generates `count` pseudo-random trees.
pub fn random_trees(seed: u64, config: &TreeGenConfig, count: usize) -> Vec<XTree> {
    let mut rng = SplitRng::new(seed);
    (0..count).map(|_| random_tree(&mut rng, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = TreeGenConfig::new(&Alphabet::from_chars("abc"), 4, 3);
        let a = random_trees(42, &config, 5);
        let b = random_trees(42, &config, 5);
        assert_eq!(a, b);
        let c = random_trees(43, &config, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn generation_respects_bounds() {
        let config = TreeGenConfig::new(&Alphabet::from_chars("ab"), 3, 2);
        for tree in random_trees(7, &config, 50) {
            assert!(tree.depth() <= 3, "tree too deep: {tree}");
            for node in tree.document_order() {
                assert!(tree.children(node).len() <= 2);
                assert!(tree.label(node).as_str() == "a" || tree.label(node).as_str() == "b");
            }
        }
    }

    #[test]
    fn rng_utilities() {
        let mut rng = SplitRng::new(1);
        let x = rng.below(10);
        assert!(x < 10);
        let picked = *rng.pick(&[1, 2, 3]);
        assert!([1, 2, 3].contains(&picked));
        // zero seed does not get stuck
        let mut z = SplitRng::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
