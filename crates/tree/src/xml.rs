//! A minimal element-only XML parser and serialiser.
//!
//! The paper abstracts XML documents to their element structure, ignoring
//! attributes and character data. This module offers just enough XML syntax
//! for the examples to read and write real documents: start tags, end tags,
//! self-closing tags, comments and text nodes (text is skipped). Attributes
//! are parsed and discarded.
//!
//! Parsing is a thin materialising wrapper over the streaming event layer in
//! [`crate::sax`]: the tree is assembled from [`SaxEvent`]s with an explicit
//! node stack, and serialisation walks an explicit work stack, so neither
//! direction recurses — documents nested 100 000 elements deep parse and
//! print without native stack growth (bounded only by the parser's
//! [depth limit](crate::sax::DEFAULT_DEPTH_LIMIT)).

use dxml_automata::AutomataError;

use crate::sax::{SaxEvent, SaxParser, DEFAULT_DEPTH_LIMIT};
use crate::tree::{NodeId, XTree};

/// Parses an XML document into its element-structure tree. Text content,
/// attributes, comments, processing instructions and the XML declaration are
/// skipped. Nesting is bounded by [`DEFAULT_DEPTH_LIMIT`]; use
/// [`parse_xml_with_limit`] to choose a different bound.
pub fn parse_xml(input: &str) -> Result<XTree, AutomataError> {
    parse_xml_with_limit(input, DEFAULT_DEPTH_LIMIT)
}

/// [`parse_xml`] with an explicit bound on element nesting depth; deeper
/// documents return a located error instead of exhausting memory.
pub fn parse_xml_with_limit(input: &str, depth_limit: usize) -> Result<XTree, AutomataError> {
    let mut parser = SaxParser::with_depth_limit(input, depth_limit);
    let mut tree: Option<XTree> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    while let Some(event) = parser.next_event()? {
        match event {
            SaxEvent::Open(name) => match (&mut tree, stack.last()) {
                (Some(t), Some(&parent)) => stack.push(t.add_child(parent, name)),
                (slot @ None, _) => {
                    let root = XTree::leaf(name);
                    stack.push(root.root());
                    *slot = Some(root);
                }
                (Some(_), None) => unreachable!("SaxParser rejects content after the root"),
            },
            SaxEvent::Close => {
                stack.pop();
            }
        }
    }
    tree.ok_or_else(|| AutomataError::RegexParse {
        message: "XML: expected a root element".into(),
        position: input.len(),
    })
}

/// Serialises the element structure of a tree as XML, indented two spaces per
/// level. The walk is iterative, so arbitrarily deep trees print without
/// native stack growth.
pub fn to_xml(tree: &XTree) -> String {
    enum Step {
        Visit(NodeId, usize),
        CloseTag(NodeId, usize),
    }
    let mut out = String::new();
    let mut stack = vec![Step::Visit(tree.root(), 0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Visit(node, depth) => {
                let indent = "  ".repeat(depth);
                let label = tree.label(node);
                if tree.is_leaf(node) {
                    out.push_str(&format!("{indent}<{label}/>\n"));
                } else {
                    out.push_str(&format!("{indent}<{label}>\n"));
                    stack.push(Step::CloseTag(node, depth));
                    for &c in tree.children(node).iter().rev() {
                        stack.push(Step::Visit(c, depth + 1));
                    }
                }
            }
            Step::CloseTag(node, depth) => {
                let indent = "  ".repeat(depth);
                let label = tree.label(node);
                out.push_str(&format!("{indent}</{label}>\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;

    #[test]
    fn parse_simple_document() {
        let xml = "<eurostat><averages><Good/><index><value/><year/></index></averages></eurostat>";
        let t = parse_xml(xml).unwrap();
        assert_eq!(
            t,
            parse_term("eurostat(averages(Good index(value year)))").unwrap()
        );
    }

    #[test]
    fn parse_with_declaration_comments_and_text() {
        let xml = r#"<?xml version="1.0"?>
            <!-- national consumer price index -->
            <nationalIndex>
              <country>France</country>
              <Good>food</Good>
              <index><value>104.2</value><year>2008</year></index>
            </nationalIndex>"#;
        let t = parse_xml(xml).unwrap();
        assert_eq!(
            t,
            parse_term("nationalIndex(country Good index(value year))").unwrap()
        );
    }

    #[test]
    fn attributes_are_ignored() {
        let t = parse_xml(r#"<a x="1" y="2"><b z="3"/></a>"#).unwrap();
        assert_eq!(t, parse_term("a(b)").unwrap());
    }

    #[test]
    fn quoted_attribute_values_may_contain_gt() {
        // The seed parser stopped at the first `>` even inside a quoted
        // value, mis-tokenising the rest of the document.
        let t = parse_xml(r#"<a x="1>2"><b y='3>4'/></a>"#).unwrap();
        assert_eq!(t, parse_term("a(b)").unwrap());
    }

    #[test]
    fn multibyte_names_parse_instead_of_panicking() {
        let t = parse_xml("<café><crème²/></café>").unwrap();
        assert_eq!(t.size(), 2);
        assert_eq!(t.root_label().as_str(), "café");
        let back = parse_xml(&to_xml(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_through_serialisation() {
        let t = parse_term("s(a(b c) d(e) f)").unwrap();
        let xml = to_xml(&t);
        let back = parse_xml(&xml).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn error_cases() {
        assert!(parse_xml("<a><b></a>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("plain text").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
    }

    #[test]
    fn depth_limit_errors_cleanly() {
        let doc = format!("{}<x/>{}", "<a>".repeat(64), "</a>".repeat(64));
        assert!(parse_xml_with_limit(&doc, 65).is_ok());
        let err = parse_xml_with_limit(&doc, 10).unwrap_err();
        assert!(err.to_string().contains("depth limit"), "{err}");
    }

    #[test]
    fn hundred_thousand_deep_document_parses() {
        // The seed parser recursed per level and aborted with a stack
        // overflow long before this depth.
        let depth = 100_000;
        let doc = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
        let t = parse_xml(&doc).unwrap();
        assert_eq!(t.size(), depth);
        assert_eq!(t.depth(), depth);
    }

    #[test]
    fn deep_document_roundtrips_through_serialisation() {
        // The serialiser indents two spaces per level, so output size is
        // quadratic in depth; roundtrip at a depth that keeps the document
        // small while still far beyond any recursive serialiser's stack.
        let depth = 10_000;
        let doc = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
        let t = parse_xml(&doc).unwrap();
        let back = parse_xml(&to_xml(&t)).unwrap();
        assert_eq!(t, back);
    }
}
