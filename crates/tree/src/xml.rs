//! A minimal element-only XML parser and serialiser.
//!
//! The paper abstracts XML documents to their element structure, ignoring
//! attributes and character data. This module offers just enough XML syntax
//! for the examples to read and write real documents: start tags, end tags,
//! self-closing tags, comments and text nodes (text is skipped). Attributes
//! are parsed and discarded.

use dxml_automata::{AutomataError, Symbol};

use crate::tree::XTree;

/// Parses an XML document into its element-structure tree. Text content,
/// attributes, comments, processing instructions and the XML declaration are
/// skipped.
pub fn parse_xml(input: &str) -> Result<XTree, AutomataError> {
    let mut parser = XmlParser { input: input.as_bytes(), pos: 0 };
    parser.skip_misc();
    let tree = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos != parser.input.len() {
        return Err(parser.error("unexpected content after the root element"));
    }
    Ok(tree)
}

/// Serialises the element structure of a tree as XML, indented two spaces per
/// level.
pub fn to_xml(tree: &XTree) -> String {
    fn rec(tree: &XTree, node: usize, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let label = tree.label(node);
        if tree.is_leaf(node) {
            out.push_str(&format!("{indent}<{label}/>\n"));
        } else {
            out.push_str(&format!("{indent}<{label}>\n"));
            for &c in tree.children(node) {
                rec(tree, c, depth + 1, out);
            }
            out.push_str(&format!("{indent}</{label}>\n"));
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), 0, &mut out);
    out
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl XmlParser<'_> {
    fn error(&self, message: &str) -> AutomataError {
        AutomataError::RegexParse { message: format!("XML: {message}"), position: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skips whitespace, text content, comments, processing instructions and
    /// the XML declaration.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.find("-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<?") {
                match self.find("?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.pos < self.input.len() && self.input[self.pos] != b'<' {
                // text content: skip to the next tag
                while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn find(&self, s: &str) -> Option<usize> {
        let needle = s.as_bytes();
        (self.pos..self.input.len().saturating_sub(needle.len() - 1))
            .find(|&i| self.input[i..].starts_with(needle))
    }

    fn parse_name(&mut self) -> Result<Symbol, AutomataError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos] as char;
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' || c == '~' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an element name"));
        }
        Symbol::try_new(std::str::from_utf8(&self.input[start..self.pos]).unwrap())
    }

    fn parse_element(&mut self) -> Result<XTree, AutomataError> {
        if !self.starts_with("<") {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        // Skip attributes up to '>' or '/>'.
        while self.pos < self.input.len() && self.input[self.pos] != b'>' && !self.starts_with("/>") {
            self.pos += 1;
        }
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok(XTree::leaf(name));
        }
        if !self.starts_with(">") {
            return Err(self.error("expected '>'"));
        }
        self.pos += 1;
        let mut children = Vec::new();
        loop {
            self.skip_misc();
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.error(&format!("mismatched closing tag </{close}> for <{name}>")));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(self.error("expected '>' after closing tag name"));
                }
                self.pos += 1;
                break;
            }
            if self.pos >= self.input.len() {
                return Err(self.error(&format!("unterminated element <{name}>")));
            }
            children.push(self.parse_element()?);
        }
        Ok(XTree::node(name, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;

    #[test]
    fn parse_simple_document() {
        let xml = "<eurostat><averages><Good/><index><value/><year/></index></averages></eurostat>";
        let t = parse_xml(xml).unwrap();
        assert_eq!(
            t,
            parse_term("eurostat(averages(Good index(value year)))").unwrap()
        );
    }

    #[test]
    fn parse_with_declaration_comments_and_text() {
        let xml = r#"<?xml version="1.0"?>
            <!-- national consumer price index -->
            <nationalIndex>
              <country>France</country>
              <Good>food</Good>
              <index><value>104.2</value><year>2008</year></index>
            </nationalIndex>"#;
        let t = parse_xml(xml).unwrap();
        assert_eq!(
            t,
            parse_term("nationalIndex(country Good index(value year))").unwrap()
        );
    }

    #[test]
    fn attributes_are_ignored() {
        let t = parse_xml(r#"<a x="1" y="2"><b z="3"/></a>"#).unwrap();
        assert_eq!(t, parse_term("a(b)").unwrap());
    }

    #[test]
    fn roundtrip_through_serialisation() {
        let t = parse_term("s(a(b c) d(e) f)").unwrap();
        let xml = to_xml(&t);
        let back = parse_xml(&xml).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn error_cases() {
        assert!(parse_xml("<a><b></a>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("plain text").is_err());
        assert!(parse_xml("<a/><b/>").is_err());
    }
}
