//! The paper's term notation for trees: `s(a f1 b(f2))`.
//!
//! A term is an identifier optionally followed by a parenthesised,
//! whitespace- or comma-separated list of child terms. This is the notation
//! used throughout the paper for kernels and example documents
//! (e.g. `T0 = s(a f1 b(f2))`, `s0(a(b) f1 a(c))`).

use dxml_automata::{AutomataError, Symbol};

use crate::tree::{XForest, XTree};

/// Parses a tree from term notation.
///
/// Identifiers consist of alphanumeric characters, `_`, `~` and `#`;
/// children are separated by whitespace or commas.
pub fn parse_term(input: &str) -> Result<XTree, AutomataError> {
    let mut parser = TermParser { input: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let tree = parser.parse_tree()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(AutomataError::RegexParse {
            message: "unexpected trailing input after term".into(),
            position: parser.pos,
        });
    }
    Ok(tree)
}

/// Parses a forest: a whitespace/comma separated sequence of terms
/// (used for the results of resource calls, which are forests attached under
/// a root).
pub fn parse_forest(input: &str) -> Result<XForest, AutomataError> {
    let mut parser = TermParser { input: input.as_bytes(), pos: 0 };
    let mut forest = Vec::new();
    loop {
        parser.skip_ws();
        if parser.pos == parser.input.len() {
            break;
        }
        forest.push(parser.parse_tree()?);
    }
    Ok(forest)
}

/// Prints a tree in term notation.
pub fn to_term(tree: &XTree) -> String {
    fn rec(tree: &XTree, node: usize, out: &mut String) {
        out.push_str(tree.label(node).as_str());
        let children = tree.children(node);
        if !children.is_empty() {
            out.push('(');
            for (i, &c) in children.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                rec(tree, c, out);
            }
            out.push(')');
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), &mut out);
    out
}

struct TermParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl TermParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_whitespace() || self.input[self.pos] == b',')
        {
            self.pos += 1;
        }
    }

    fn parse_ident(&mut self) -> Result<Symbol, AutomataError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos] as char;
            if c.is_alphanumeric() || c == '_' || c == '~' || c == '#' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(AutomataError::RegexParse {
                message: "expected an identifier".into(),
                position: self.pos,
            });
        }
        Symbol::try_new(std::str::from_utf8(&self.input[start..self.pos]).unwrap())
    }

    fn parse_tree(&mut self) -> Result<XTree, AutomataError> {
        let label = self.parse_ident()?;
        self.skip_ws();
        let mut children = Vec::new();
        if self.pos < self.input.len() && self.input[self.pos] == b'(' {
            self.pos += 1;
            loop {
                self.skip_ws();
                if self.pos >= self.input.len() {
                    return Err(AutomataError::RegexParse {
                        message: "unterminated '(' in term".into(),
                        position: self.pos,
                    });
                }
                if self.input[self.pos] == b')' {
                    self.pos += 1;
                    break;
                }
                children.push(self.parse_tree()?);
            }
        }
        Ok(XTree::node(label, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        for src in ["s", "s(a b c)", "s(a f1 b(f2))", "s0(a(b) f1 a(c))", "eurostat(averages(Good index) nationalIndex(country Good index))"] {
            let t = parse_term(src).unwrap();
            let printed = to_term(&t);
            let t2 = parse_term(&printed).unwrap();
            assert_eq!(t, t2, "roundtrip for {src}");
        }
    }

    #[test]
    fn parse_matches_manual_construction() {
        let t = parse_term("s(a f1 b(f2))").unwrap();
        let manual = XTree::node(
            "s",
            vec![XTree::leaf("a"), XTree::leaf("f1"), XTree::node("b", vec![XTree::leaf("f2")])],
        );
        assert_eq!(t, manual);
    }

    #[test]
    fn commas_are_accepted_as_separators() {
        let t = parse_term("s(a, b, c)").unwrap();
        assert_eq!(t.child_str(t.root()).len(), 3);
    }

    #[test]
    fn forest_parsing() {
        let f = parse_forest("a(b) c d(e f)").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[0], parse_term("a(b)").unwrap());
        assert_eq!(f[2].size(), 3);
        assert!(parse_forest("").unwrap().is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("s(a").is_err());
        assert!(parse_term("s)a(").is_err());
        assert!(parse_term("s(a) b").is_err());
    }
}
