//! The paper's term notation for trees: `s(a f1 b(f2))`.
//!
//! A term is an identifier optionally followed by a parenthesised,
//! whitespace- or comma-separated list of child terms. This is the notation
//! used throughout the paper for kernels and example documents
//! (e.g. `T0 = s(a f1 b(f2))`, `s0(a(b) f1 a(c))`).

use dxml_automata::{AutomataError, Symbol};

use crate::tree::{XForest, XTree};

/// Parses a tree from term notation.
///
/// Identifiers consist of alphanumeric characters, `_`, `~` and `#`;
/// children are separated by whitespace or commas.
pub fn parse_term(input: &str) -> Result<XTree, AutomataError> {
    let mut parser = TermParser { input, pos: 0 };
    parser.skip_ws();
    let tree = parser.parse_tree()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(AutomataError::RegexParse {
            message: "unexpected trailing input after term".into(),
            position: parser.pos,
        });
    }
    Ok(tree)
}

/// Parses a forest: a whitespace/comma separated sequence of terms
/// (used for the results of resource calls, which are forests attached under
/// a root).
pub fn parse_forest(input: &str) -> Result<XForest, AutomataError> {
    let mut parser = TermParser { input, pos: 0 };
    let mut forest = Vec::new();
    loop {
        parser.skip_ws();
        if parser.pos == parser.input.len() {
            break;
        }
        forest.push(parser.parse_tree()?);
    }
    Ok(forest)
}

/// Prints a tree in term notation. The walk is iterative, so arbitrarily
/// deep trees print without native stack growth.
pub fn to_term(tree: &XTree) -> String {
    enum Step {
        Visit(usize),
        Punct(&'static str),
    }
    let mut out = String::new();
    let mut stack = vec![Step::Visit(tree.root())];
    while let Some(step) = stack.pop() {
        match step {
            Step::Visit(node) => {
                out.push_str(tree.label(node).as_str());
                let children = tree.children(node);
                if !children.is_empty() {
                    out.push('(');
                    stack.push(Step::Punct(")"));
                    for (i, &c) in children.iter().enumerate().rev() {
                        stack.push(Step::Visit(c));
                        if i > 0 {
                            stack.push(Step::Punct(" "));
                        }
                    }
                }
            }
            Step::Punct(p) => out.push_str(p),
        }
    }
    out
}

struct TermParser<'a> {
    input: &'a str,
    pos: usize,
}

impl TermParser<'_> {
    fn byte(&self, pos: usize) -> Option<u8> {
        self.input.as_bytes().get(pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.byte(self.pos) {
            if b.is_ascii_whitespace() || b == b',' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Parses an identifier, decoding UTF-8 characters properly (the seed
    /// classified raw bytes, so a multibyte letter's continuation bytes
    /// counted as alphanumeric and the final slice panicked mid-character).
    fn parse_ident(&mut self) -> Result<Symbol, AutomataError> {
        let rest = &self.input[self.pos..];
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            if c.is_alphanumeric() || matches!(c, '_' | '~' | '#') {
                len = i + c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            return Err(AutomataError::RegexParse {
                message: "expected an identifier".into(),
                position: self.pos,
            });
        }
        let ident = &rest[..len];
        self.pos += len;
        Symbol::try_new(ident)
    }

    /// Parses one term iteratively, growing the arena in place: each
    /// identifier is attached to the innermost open node as soon as it is
    /// read, so deep terms cost neither native stack nor repeated subtree
    /// copies.
    fn parse_tree(&mut self) -> Result<XTree, AutomataError> {
        let label = self.parse_ident()?;
        let mut tree = XTree::leaf(label);
        self.skip_ws();
        if self.byte(self.pos) != Some(b'(') {
            return Ok(tree);
        }
        self.pos += 1;
        let mut open = vec![tree.root()];
        while let Some(&parent) = open.last() {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Err(AutomataError::RegexParse {
                    message: "unterminated '(' in term".into(),
                    position: self.pos,
                });
            }
            if self.byte(self.pos) == Some(b')') {
                self.pos += 1;
                open.pop();
                continue;
            }
            let child_label = self.parse_ident()?;
            let child = tree.add_child(parent, child_label);
            self.skip_ws();
            if self.byte(self.pos) == Some(b'(') {
                self.pos += 1;
                open.push(child);
            }
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        for src in ["s", "s(a b c)", "s(a f1 b(f2))", "s0(a(b) f1 a(c))", "eurostat(averages(Good index) nationalIndex(country Good index))"] {
            let t = parse_term(src).unwrap();
            let printed = to_term(&t);
            let t2 = parse_term(&printed).unwrap();
            assert_eq!(t, t2, "roundtrip for {src}");
        }
    }

    #[test]
    fn parse_matches_manual_construction() {
        let t = parse_term("s(a f1 b(f2))").unwrap();
        let manual = XTree::node(
            "s",
            vec![XTree::leaf("a"), XTree::leaf("f1"), XTree::node("b", vec![XTree::leaf("f2")])],
        );
        assert_eq!(t, manual);
    }

    #[test]
    fn commas_are_accepted_as_separators() {
        let t = parse_term("s(a, b, c)").unwrap();
        assert_eq!(t.child_str(t.root()).len(), 3);
    }

    #[test]
    fn forest_parsing() {
        let f = parse_forest("a(b) c d(e f)").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[0], parse_term("a(b)").unwrap());
        assert_eq!(f[2].size(), 3);
        assert!(parse_forest("").unwrap().is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("s(a").is_err());
        assert!(parse_term("s)a(").is_err());
        assert!(parse_term("s(a) b").is_err());
    }

    #[test]
    fn multibyte_identifiers_parse_instead_of_panicking() {
        let t = parse_term("élan(crème²)").unwrap();
        assert_eq!(t.root_label().as_str(), "élan");
        assert_eq!(parse_term(&to_term(&t)).unwrap(), t);
    }

    #[test]
    fn hundred_thousand_deep_term_roundtrips() {
        // Both the parser and the printer were recursive in the seed and
        // aborted with a stack overflow at this depth.
        let depth = 100_000;
        let src = format!("{}a{}", "a(".repeat(depth - 1), ")".repeat(depth - 1));
        let t = parse_term(&src).unwrap();
        assert_eq!(t.size(), depth);
        assert_eq!(to_term(&t), src);
    }
}
