//! 8-thread consistency suite: counter totals are exact, histogram bucket
//! data never tears, and concurrent snapshots are internally consistent.
//!
//! This file is its own test binary, so it owns the process-global gate and
//! registry; the tests within serialize through `#[test]` + a lock-free
//! design (each test resets the registry and quiesces its own threads).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};
use std::thread;

use dxml_telemetry as telemetry;
use telemetry::{Hist, Metric, Snapshot};

const THREADS: usize = 8;

/// The registry is process-global, so tests in this binary must not
/// interleave their reset/record/assert cycles.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn counter_totals_are_exact_across_threads() {
    let _guard = lock();
    telemetry::set_enabled(true);
    telemetry::reset();

    const PER_THREAD: u64 = 10_000;
    let barrier = Barrier::new(THREADS);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    telemetry::count(Metric::StreamEvents, 1);
                    telemetry::count(Metric::BatchDocs, (t as u64 + i) % 3);
                }
            });
        }
    });

    let snap = Snapshot::take();
    assert_eq!(
        snap.counter(Metric::StreamEvents),
        THREADS as u64 * PER_THREAD,
        "relaxed increments must never lose a count"
    );
    // Sum of (t + i) % 3 over all threads and iterations, computed serially.
    let expected: u64 = (0..THREADS as u64)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t + i) % 3))
        .sum();
    assert_eq!(snap.counter(Metric::BatchDocs), expected);
    telemetry::set_enabled(false);
}

#[test]
fn histogram_buckets_and_sums_are_exact_across_threads() {
    let _guard = lock();
    telemetry::set_enabled(true);
    telemetry::reset();

    // Each thread observes the same deterministic value sequence; totals
    // must come out exactly THREADS times the serial expectation.
    let values: Vec<u64> = (0..2_000u64).map(|i| (i * i + 7) % 1_024).collect();
    let barrier = Barrier::new(THREADS);
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let barrier = &barrier;
            let values = &values;
            scope.spawn(move || {
                barrier.wait();
                for &v in values {
                    telemetry::observe(Hist::EquivBfsExplored, v);
                }
            });
        }
    });

    let snap = Snapshot::take();
    let hs = snap.histogram(Hist::EquivBfsExplored);
    assert_eq!(hs.count, (THREADS * values.len()) as u64);
    let serial_sum: u64 = values.iter().sum();
    assert_eq!(hs.sum, THREADS as u64 * serial_sum);
    // Per-bucket counts must match a serial replay exactly.
    let mut expected = [0u64; 65];
    for &v in &values {
        let k = (u64::BITS - v.leading_zeros()) as usize;
        expected[k] += THREADS as u64;
    }
    assert_eq!(hs.buckets, expected);
    telemetry::set_enabled(false);
}

#[test]
fn snapshots_taken_mid_flight_never_tear() {
    let _guard = lock();
    telemetry::set_enabled(true);
    telemetry::reset();

    // Writers bump two counters in lockstep and observe into one histogram;
    // a reader thread snapshots continuously. Every snapshot must satisfy
    // the invariants: histogram count == bucket total (by construction),
    // monotone counters, and no counter exceeding the final total.
    let stop = AtomicBool::new(false);
    const PER_THREAD: u64 = 50_000;
    thread::scope(|scope| {
        for _ in 0..THREADS - 1 {
            scope.spawn(|| {
                for i in 0..PER_THREAD {
                    telemetry::count(Metric::SubsetStates, 1);
                    telemetry::observe(Hist::SubsetDfaStates, i % 64);
                }
            });
        }
        scope.spawn(|| {
            let mut last = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = Snapshot::take();
                let c = snap.counter(Metric::SubsetStates);
                assert!(c >= last, "counters must be monotone across snapshots");
                last = c;
                let hs = snap.histogram(Hist::SubsetDfaStates);
                // count is derived from buckets, so this is an identity; the
                // load-bearing check is that it never exceeds what writers
                // could have produced and sum stays plausible for buckets.
                assert_eq!(hs.count, hs.buckets.iter().sum::<u64>());
                assert!(hs.count <= (THREADS as u64 - 1) * PER_THREAD);
                assert!(hs.sum <= (THREADS as u64 - 1) * PER_THREAD * 63);
            }
        });
        // Scope joins the writers; signal the reader once they are done by
        // spawning a watcher that flips the flag after the writers' work is
        // observable complete.
        scope.spawn(|| {
            loop {
                let done = Snapshot::take().counter(Metric::SubsetStates)
                    == (THREADS as u64 - 1) * PER_THREAD;
                if done {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                thread::yield_now();
            }
        });
    });

    let final_snap = Snapshot::take();
    assert_eq!(
        final_snap.counter(Metric::SubsetStates),
        (THREADS as u64 - 1) * PER_THREAD
    );
    assert_eq!(
        final_snap.histogram(Hist::SubsetDfaStates).count,
        (THREADS as u64 - 1) * PER_THREAD
    );
    telemetry::set_enabled(false);
}

#[test]
fn spans_are_thread_local() {
    let _guard = lock();
    telemetry::set_enabled(true);
    telemetry::reset();

    let barrier = Barrier::new(THREADS);
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..200 {
                    let _outer = telemetry::span(telemetry::SpanKind::Typecheck);
                    let _inner = telemetry::span(telemetry::SpanKind::VerifyLocal);
                    // Depth reflects only this thread's stack, never a
                    // neighbour's.
                    assert_eq!(telemetry::span_depth(), 2);
                    assert_eq!(
                        telemetry::current_span(),
                        Some(telemetry::SpanKind::VerifyLocal)
                    );
                }
                assert_eq!(telemetry::span_depth(), 0);
            });
        }
    });

    let snap = Snapshot::take();
    assert_eq!(snap.counter(Metric::SpanEntered), THREADS as u64 * 400);
    assert_eq!(
        snap.histogram(Hist::SpanTypecheckNs).count,
        THREADS as u64 * 200
    );
    telemetry::set_enabled(false);
}
