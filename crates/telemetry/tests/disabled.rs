//! Disabled-mode guarantee: with the gate off, record operations mutate
//! nothing — no counter, no bucket, no span stack.
//!
//! This file is its own test binary (own process), so the single test can
//! trust that nothing else flips the gate underneath it.

use std::thread;

use dxml_telemetry as telemetry;
use telemetry::{Hist, Metric, Snapshot};

#[test]
fn disabled_mode_mutates_nothing() {
    telemetry::set_enabled(false);
    telemetry::reset();

    // Hammer every record path from several threads while disabled.
    thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for i in 0..5_000u64 {
                    for m in Metric::ALL {
                        telemetry::count(m, i % 7 + 1);
                    }
                    for h in Hist::ALL {
                        telemetry::observe(h, i);
                    }
                    let _span = telemetry::span(telemetry::SpanKind::ValidateStream);
                    assert_eq!(telemetry::span_depth(), 0, "disabled span must not push");
                    assert_eq!(telemetry::current_span(), None);
                }
            });
        }
    });

    let snap = Snapshot::take();
    assert!(!snap.enabled);
    for m in Metric::ALL {
        assert_eq!(snap.counter(m), 0, "counter {} mutated while disabled", m.name());
    }
    for h in Hist::ALL {
        let hs = snap.histogram(h);
        assert_eq!(hs.count, 0, "histogram {} mutated while disabled", h.name());
        assert_eq!(hs.sum, 0);
        assert!(hs.buckets.iter().all(|&b| b == 0));
    }
    assert_eq!(snap.nonzero_metrics(), 0);
}
