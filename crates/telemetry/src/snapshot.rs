//! Point-in-time copies of the registry, renderable as text or JSON.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::metrics::{bucket_upper, registry, Hist, Metric, BUCKETS};

/// One histogram's state at snapshot time.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Number of observations, derived by summing the buckets — so the
    /// count always agrees with the bucket data even for a snapshot taken
    /// while writers are live.
    pub count: u64,
    /// Sum of all observed values (may trail `count` by in-flight writers;
    /// exact once they quiesce).
    pub sum: u64,
    /// Per-bucket observation counts; bucket 0 holds zeros, bucket `k ≥ 1`
    /// holds values in `[2^(k-1), 2^k)`.
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The exclusive upper bound of the smallest bucket prefix holding at
    /// least `q` (0.0–1.0) of the observations — a log2-resolution quantile.
    /// `None` when the histogram is empty or the quantile lands in the
    /// overflow bucket.
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(k);
            }
        }
        None
    }
}

/// A point-in-time copy of every counter and histogram in the registry.
///
/// Individual values are read with relaxed loads, so each value is
/// internally consistent (never torn); a snapshot taken while writers are
/// live is a valid lower bound of each metric, and exact once they quiesce.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Whether the gate was on when the snapshot was taken.
    pub enabled: bool,
    counters: [u64; Metric::ALL.len()],
    hists: Vec<HistSnapshot>,
}

impl Snapshot {
    /// Copies the current state of the registry.
    pub fn take() -> Snapshot {
        let reg = registry();
        let counters = std::array::from_fn(|i| reg.counters[i].load(Ordering::Relaxed));
        let hists = reg
            .hists
            .iter()
            .map(|cell| {
                let buckets: [u64; BUCKETS] =
                    std::array::from_fn(|k| cell.buckets[k].load(Ordering::Relaxed));
                HistSnapshot {
                    count: buckets.iter().sum(),
                    sum: cell.sum.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        Snapshot {
            enabled: crate::enabled(),
            counters,
            hists,
        }
    }

    /// The value of one counter.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// One histogram's state.
    pub fn histogram(&self, hist: Hist) -> &HistSnapshot {
        &self.hists[hist as usize]
    }

    /// How many distinct metrics (counters or histograms) are non-zero.
    pub fn nonzero_metrics(&self) -> usize {
        let counters = Metric::ALL.iter().filter(|m| self.counter(**m) > 0).count();
        let hists = Hist::ALL.iter().filter(|h| self.histogram(**h).count > 0).count();
        counters + hists
    }

    /// Renders a rustc-style text report: aligned `name: value` lines for
    /// the non-zero counters, then one line per non-empty histogram with
    /// count, mean and the log2 p50/p99 upper bounds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry snapshot ({})",
            if self.enabled { "enabled" } else { "disabled" }
        );
        let live: Vec<Metric> = Metric::ALL
            .iter()
            .copied()
            .filter(|m| self.counter(*m) > 0)
            .collect();
        let width = live.iter().map(|m| m.name().len()).max().unwrap_or(0);
        for m in &live {
            let _ = writeln!(out, "  {:<width$}  {}", m.name(), self.counter(*m));
        }
        if live.is_empty() {
            out.push_str("  (no non-zero counters)\n");
        }
        let mut any_hist = false;
        for h in Hist::ALL {
            let hs = self.histogram(h);
            if hs.count == 0 {
                continue;
            }
            any_hist = true;
            let p50 = hs
                .quantile_upper(0.50)
                .map_or_else(|| "overflow".to_string(), |u| format!("<{u}"));
            let p99 = hs
                .quantile_upper(0.99)
                .map_or_else(|| "overflow".to_string(), |u| format!("<{u}"));
            let _ = writeln!(
                out,
                "  {}: count={} mean={:.1} p50{} p99{}",
                h.name(),
                hs.count,
                hs.mean(),
                p50,
                p99
            );
        }
        if !any_hist {
            out.push_str("  (no histogram observations)\n");
        }
        out
    }

    /// Serialises the full snapshot as JSON: every counter (zero or not)
    /// under `"counters"`, every histogram under `"histograms"` with its
    /// derived count, sum and sparse `[lower_bound, n]` bucket pairs. This
    /// is the format of the `TELEMETRY_<name>.json` bench sidecars.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"enabled\": {},", self.enabled);
        out.push_str("  \"counters\": {\n");
        for (i, m) in Metric::ALL.iter().enumerate() {
            let comma = if i + 1 < Metric::ALL.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{comma}", m.name(), self.counter(*m));
        }
        out.push_str("  },\n");
        out.push_str("  \"histograms\": {\n");
        for (i, h) in Hist::ALL.iter().enumerate() {
            let hs = self.histogram(*h);
            let pairs: Vec<String> = hs
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(k, n)| {
                    // The lower bound of bucket 0 (zeros) and bucket 1
                    // (value 1) are 0 and 1; bucket k ≥ 1 starts at 2^(k-1).
                    let lower = if k == 0 { 0 } else { 1u64 << (k - 1) };
                    format!("[{lower}, {n}]")
                })
                .collect();
            let comma = if i + 1 < Hist::ALL.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}{comma}",
                h.name(),
                hs.count,
                hs.sum,
                pairs.join(", ")
            );
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{count, observe};

    #[test]
    fn snapshot_reflects_records_and_renders() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        count(Metric::EquivBfsRuns, 3);
        for v in [0u64, 1, 1, 5, 130] {
            observe(Hist::EquivBfsExplored, v);
        }
        let snap = Snapshot::take();
        assert_eq!(snap.counter(Metric::EquivBfsRuns), 3);
        let hs = snap.histogram(Hist::EquivBfsExplored);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 137);
        assert_eq!(hs.buckets[0], 1); // the zero
        assert_eq!(hs.buckets[1], 2); // the ones
        assert_eq!(hs.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(hs.buckets[8], 1); // 130 ∈ [128, 256)
        assert!((hs.mean() - 27.4).abs() < 1e-9);
        assert_eq!(hs.quantile_upper(0.5), Some(2));
        assert_eq!(hs.quantile_upper(1.0), Some(256));
        assert_eq!(snap.nonzero_metrics(), 2);

        let text = snap.render();
        assert!(text.contains("equiv.bfs_runs"));
        assert!(text.contains("count=5"));

        let json = snap.to_json();
        assert!(json.contains("\"equiv.bfs_runs\": 3"));
        assert!(json.contains("\"count\": 5, \"sum\": 137"));
        assert!(json.contains("[128, 1]"));
        crate::set_enabled(false);
    }

    #[test]
    fn empty_snapshot_is_well_formed() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        crate::reset();
        let snap = Snapshot::take();
        assert_eq!(snap.nonzero_metrics(), 0);
        assert!(snap.render().contains("no non-zero counters"));
        let json = snap.to_json();
        // Every metric name must appear even when zero.
        for m in Metric::ALL {
            assert!(json.contains(m.name()), "missing {}", m.name());
        }
        for h in Hist::ALL {
            assert!(json.contains(h.name()), "missing {}", h.name());
        }
    }
}
