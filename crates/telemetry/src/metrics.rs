//! The metric registry: enum-indexed atomic counters and log-scale
//! histograms.
//!
//! Every metric the workspace records is a variant of [`Metric`] (counters)
//! or [`Hist`] (histograms); the backing storage is one flat array of
//! `AtomicU64`s per kind, indexed by the enum discriminant — recording is an
//! array index plus one relaxed `fetch_add`, with no locks, no allocation
//! and no hashing. The closed enum is deliberate: the workspace is a single
//! codebase, so the metric universe is known statically, which is what makes
//! the disabled path (one load, one branch) and the enabled path (one RMW)
//! this cheap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of histogram buckets: bucket 0 counts zeros, bucket `k ≥ 1`
/// counts values `v` with `2^(k-1) ≤ v < 2^k`, up to bucket 64 for values
/// of `2^63` and above.
pub(crate) const BUCKETS: usize = 65;

/// A monotonically increasing counter.
///
/// The variant order is the storage order; [`Metric::ALL`] iterates it.
/// See the [crate docs](crate) for the full name table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[non_exhaustive]
pub enum Metric {
    /// Distinct symbols allocated in the global intern table.
    SymbolsInterned,
    /// Bytes of leaked symbol text plus per-record overhead.
    InternTableBytes,
    /// Intern-shard lock acquisitions that found the lock already held.
    InternShardContention,
    /// `Dfa::from_nfa` subset constructions run.
    SubsetConstructions,
    /// Subset states created across all constructions.
    SubsetStates,
    /// `(state set, symbol)` steps explored by subset constructions.
    SubsetTransitions,
    /// Product-BFS searches run by the inclusion/equivalence oracles.
    EquivBfsRuns,
    /// Product state pairs popped across all searches.
    EquivBfsStates,
    /// Product edges traversed across all searches.
    EquivBfsTransitions,
    /// Cold `TargetCache` builds (DTD targets).
    TargetCacheBuilds,
    /// Cold `BoxTargetCache` builds (EDTD targets).
    BoxTargetCacheBuilds,
    /// Residual-DFA memo misses: machines actually determinised.
    ResidualDfaBuilds,
    /// Residual-DFA memo hits.
    ResidualDfaHits,
    /// Extension-automaton FIFO memo hits.
    ExtMemoHits,
    /// Extension-automaton FIFO memo misses (automaton rebuilt).
    ExtMemoMisses,
    /// Documents validated by `StreamValidator`.
    StreamDocs,
    /// SAX events consumed across all streaming validations.
    StreamEvents,
    /// Streaming validations that ended in a schema violation.
    StreamViolations,
    /// `validate_batch` invocations.
    BatchRuns,
    /// Workers spawned across all batch runs.
    BatchWorkers,
    /// Documents claimed by batch workers.
    BatchDocs,
    /// Documents a worker claimed beyond its even share of the batch.
    BatchSteals,
    /// RAII spans entered.
    SpanEntered,
    /// Budget quota trips (step/state/node/depth quotas exceeded).
    LimitsBudgetTrips,
    /// Wall-clock deadline trips.
    LimitsDeadlineTrips,
    /// Cooperative cancellations observed by governed loops.
    LimitsCancellations,
}

impl Metric {
    /// Every counter, in storage order.
    pub const ALL: [Metric; 26] = [
        Metric::SymbolsInterned,
        Metric::InternTableBytes,
        Metric::InternShardContention,
        Metric::SubsetConstructions,
        Metric::SubsetStates,
        Metric::SubsetTransitions,
        Metric::EquivBfsRuns,
        Metric::EquivBfsStates,
        Metric::EquivBfsTransitions,
        Metric::TargetCacheBuilds,
        Metric::BoxTargetCacheBuilds,
        Metric::ResidualDfaBuilds,
        Metric::ResidualDfaHits,
        Metric::ExtMemoHits,
        Metric::ExtMemoMisses,
        Metric::StreamDocs,
        Metric::StreamEvents,
        Metric::StreamViolations,
        Metric::BatchRuns,
        Metric::BatchWorkers,
        Metric::BatchDocs,
        Metric::BatchSteals,
        Metric::SpanEntered,
        Metric::LimitsBudgetTrips,
        Metric::LimitsDeadlineTrips,
        Metric::LimitsCancellations,
    ];

    /// The stable, dotted metric name (the key used in reports and the
    /// `TELEMETRY_<name>.json` sidecars).
    pub fn name(self) -> &'static str {
        match self {
            Metric::SymbolsInterned => "interner.symbols_interned",
            Metric::InternTableBytes => "interner.table_bytes",
            Metric::InternShardContention => "interner.shard_contention",
            Metric::SubsetConstructions => "dfa.subset_constructions",
            Metric::SubsetStates => "dfa.subset_states",
            Metric::SubsetTransitions => "dfa.subset_transitions",
            Metric::EquivBfsRuns => "equiv.bfs_runs",
            Metric::EquivBfsStates => "equiv.bfs_states",
            Metric::EquivBfsTransitions => "equiv.bfs_transitions",
            Metric::TargetCacheBuilds => "design.target_cache_builds",
            Metric::BoxTargetCacheBuilds => "boxes.target_cache_builds",
            Metric::ResidualDfaBuilds => "cache.residual_dfa_builds",
            Metric::ResidualDfaHits => "cache.residual_dfa_hits",
            Metric::ExtMemoHits => "design.ext_memo_hits",
            Metric::ExtMemoMisses => "design.ext_memo_misses",
            Metric::StreamDocs => "stream.docs",
            Metric::StreamEvents => "stream.events",
            Metric::StreamViolations => "stream.violations",
            Metric::BatchRuns => "batch.runs",
            Metric::BatchWorkers => "batch.workers",
            Metric::BatchDocs => "batch.docs",
            Metric::BatchSteals => "batch.steals",
            Metric::SpanEntered => "span.entered",
            Metric::LimitsBudgetTrips => "limits.budget_trips",
            Metric::LimitsDeadlineTrips => "limits.deadline_trips",
            Metric::LimitsCancellations => "limits.cancellations",
        }
    }
}

/// A log-scale (power-of-two bucket) histogram.
///
/// The variant order is the storage order; [`Hist::ALL`] iterates it. The
/// `Span*` variants are the latency sinks of the [`crate::SpanKind`] spans.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[non_exhaustive]
pub enum Hist {
    /// States of each determinised DFA (`Dfa::from_nfa` output size).
    SubsetDfaStates,
    /// Product pairs explored per inclusion/equivalence search.
    EquivBfsExplored,
    /// SAX events per streaming validation.
    StreamDocEvents,
    /// Peak open-element depth per streaming validation.
    StreamDocDepth,
    /// Documents validated per batch worker.
    BatchWorkerDocs,
    /// `typecheck` wall time, nanoseconds.
    SpanTypecheckNs,
    /// `verify_local` wall time, nanoseconds.
    SpanVerifyLocalNs,
    /// `perfect_schema` wall time, nanoseconds.
    SpanPerfectSchemaNs,
    /// One streaming validation's wall time, nanoseconds.
    SpanValidateStreamNs,
    /// Cold DTD target-cache build wall time, nanoseconds.
    SpanTargetCacheBuildNs,
    /// Cold EDTD target-cache build wall time, nanoseconds.
    SpanBoxTargetCacheBuildNs,
    /// Whole `validate_batch` wall time, nanoseconds.
    SpanBatchNs,
}

impl Hist {
    /// Every histogram, in storage order.
    pub const ALL: [Hist; 12] = [
        Hist::SubsetDfaStates,
        Hist::EquivBfsExplored,
        Hist::StreamDocEvents,
        Hist::StreamDocDepth,
        Hist::BatchWorkerDocs,
        Hist::SpanTypecheckNs,
        Hist::SpanVerifyLocalNs,
        Hist::SpanPerfectSchemaNs,
        Hist::SpanValidateStreamNs,
        Hist::SpanTargetCacheBuildNs,
        Hist::SpanBoxTargetCacheBuildNs,
        Hist::SpanBatchNs,
    ];

    /// The stable, dotted histogram name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SubsetDfaStates => "dfa.subset_dfa_states",
            Hist::EquivBfsExplored => "equiv.bfs_explored",
            Hist::StreamDocEvents => "stream.doc_events",
            Hist::StreamDocDepth => "stream.doc_depth",
            Hist::BatchWorkerDocs => "batch.worker_docs",
            Hist::SpanTypecheckNs => "span.typecheck_ns",
            Hist::SpanVerifyLocalNs => "span.verify_local_ns",
            Hist::SpanPerfectSchemaNs => "span.perfect_schema_ns",
            Hist::SpanValidateStreamNs => "span.validate_stream_ns",
            Hist::SpanTargetCacheBuildNs => "span.target_cache_build_ns",
            Hist::SpanBoxTargetCacheBuildNs => "span.box_target_cache_build_ns",
            Hist::SpanBatchNs => "span.batch_ns",
        }
    }
}

/// One histogram's storage: per-bucket counts plus the running sum of all
/// observed values. The observation count is *derived* from the buckets (a
/// snapshot sums them), so bucket data and count can never disagree.
pub(crate) struct HistCell {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) sum: AtomicU64,
}

/// The process-wide registry: one cell per enum variant.
pub(crate) struct Registry {
    pub(crate) counters: [AtomicU64; Metric::ALL.len()],
    pub(crate) hists: [HistCell; Hist::ALL.len()],
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: std::array::from_fn(|_| AtomicU64::new(0)),
        hists: std::array::from_fn(|_| HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }),
    })
}

/// The bucket index of a value: 0 for 0, otherwise `⌊log2 v⌋ + 1`.
pub(crate) fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The exclusive upper bound of bucket `k` (`None` for the overflow bucket,
/// whose bound would not fit in a `u64`).
pub(crate) fn bucket_upper(k: usize) -> Option<u64> {
    if k >= BUCKETS - 1 {
        None
    } else {
        Some(1u64 << k)
    }
}

/// Adds `n` to a counter. A no-op (one relaxed load, one branch) while the
/// gate is off.
#[inline]
pub fn count(metric: Metric, n: u64) {
    if crate::enabled() {
        registry().counters[metric as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Records one observation into a histogram. A no-op while the gate is off.
#[inline]
pub fn observe(hist: Hist, value: u64) {
    if crate::enabled() {
        let cell = &registry().hists[hist as usize];
        cell.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Zeroes every counter and histogram (the gate is left as it is). Used by
/// the bench harness so each target's `TELEMETRY_<name>.json` sidecar
/// reflects that target's run alone, and by tests.
pub fn reset() {
    let reg = registry();
    for c in &reg.counters {
        c.store(0, Ordering::Relaxed);
    }
    for h in &reg.hists {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), Some(1));
        assert_eq!(bucket_upper(10), Some(1024));
        assert_eq!(bucket_upper(64), None);
        // Every value below a bucket's upper bound maps at or below it.
        for v in [0u64, 1, 7, 8, 100, 1 << 40] {
            if let Some(upper) = bucket_upper(bucket_of(v)) {
                assert!(v < upper, "value {v} outside its bucket");
            }
        }
    }

    #[test]
    fn names_are_unique_and_ordered_like_all() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "metric names must be unique");
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "ALL must list variants in storage order");
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "ALL must list variants in storage order");
        }
    }

    #[test]
    fn count_and_observe_respect_the_gate() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        reset();
        count(Metric::StreamDocs, 5);
        observe(Hist::StreamDocDepth, 9);
        let reg = registry();
        assert_eq!(reg.counters[Metric::StreamDocs as usize].load(Ordering::Relaxed), 0);
        assert_eq!(
            reg.hists[Hist::StreamDocDepth as usize].sum.load(Ordering::Relaxed),
            0
        );
        crate::set_enabled(true);
        count(Metric::StreamDocs, 5);
        observe(Hist::StreamDocDepth, 9);
        assert_eq!(reg.counters[Metric::StreamDocs as usize].load(Ordering::Relaxed), 5);
        assert_eq!(
            reg.hists[Hist::StreamDocDepth as usize].sum.load(Ordering::Relaxed),
            9
        );
        crate::set_enabled(false);
        reset();
        assert_eq!(reg.counters[Metric::StreamDocs as usize].load(Ordering::Relaxed), 0);
    }
}
