//! Zero-dependency, lock-free instrumentation for the distributed XML
//! design workspace.
//!
//! The engine's offline decisions (determinisation, residual synthesis,
//! cache builds) and its online hot paths (streaming validation, batch
//! fan-out, the symbol interner) report what they did through this crate:
//! **atomic counters**, **log-scale histograms** and **RAII spans**, all
//! behind one global on/off gate. The registry this workspace builds in is
//! offline, so the layer is deliberately `std`-only — no `tracing`, no
//! `metrics`, no allocation on the record paths.
//!
//! # The gate
//!
//! Telemetry is **off by default**. When off, every record operation is a
//! relaxed atomic load plus one predictable branch — cheap enough that the
//! instrumentation stays compiled into the hot paths gated by the committed
//! `bench_compare` baselines (pinned by the `telemetry_overhead` bench
//! target). It is switched:
//!
//! * by the environment: `DXML_TELEMETRY=1` (or any value other than `0`,
//!   `off`, `false` or the empty string) enables collection at the first
//!   record or query; unset or one of those values keeps it off;
//! * programmatically: [`set_enabled`] overrides the environment at runtime
//!   (the bench harness enables collection for its `TELEMETRY_<name>.json`
//!   sidecars this way).
//!
//! # Metric name table
//!
//! Counters ([`Metric`], recorded with [`count`]):
//!
//! | name | meaning |
//! |------|---------|
//! | `interner.symbols_interned` | distinct symbols allocated in the global intern table |
//! | `interner.table_bytes` | bytes of leaked symbol text + record overhead |
//! | `interner.shard_contention` | intern-shard lock acquisitions that found the lock held |
//! | `dfa.subset_constructions` | `Dfa::from_nfa` subset constructions run |
//! | `dfa.subset_states` | subset states created across all constructions |
//! | `dfa.subset_transitions` | `(state set, symbol)` steps explored |
//! | `equiv.bfs_runs` | product-BFS searches (inclusion/equivalence oracles) |
//! | `equiv.bfs_states` | product state pairs popped across all searches |
//! | `equiv.bfs_transitions` | product edges traversed across all searches |
//! | `design.target_cache_builds` | cold `TargetCache` builds (DTD targets) |
//! | `boxes.target_cache_builds` | cold `BoxTargetCache` builds (EDTD targets) |
//! | `cache.residual_dfa_builds` | residual-DFA memo misses (machines determinised) |
//! | `cache.residual_dfa_hits` | residual-DFA memo hits |
//! | `design.ext_memo_hits` | extension-automaton FIFO memo hits |
//! | `design.ext_memo_misses` | extension-automaton FIFO memo misses (rebuilds) |
//! | `stream.docs` | documents validated by `StreamValidator` |
//! | `stream.events` | SAX events consumed across all streaming runs |
//! | `stream.violations` | streaming validations that ended in a schema error |
//! | `batch.runs` | `validate_batch` invocations |
//! | `batch.workers` | workers spawned across all batch runs |
//! | `batch.docs` | documents claimed by batch workers |
//! | `batch.steals` | documents claimed beyond a worker's even share |
//! | `span.entered` | RAII spans entered |
//! | `limits.budget_trips` | budget quota trips (step/state/node/depth quotas) |
//! | `limits.deadline_trips` | wall-clock deadline trips |
//! | `limits.cancellations` | cooperative cancellations observed by governed loops |
//!
//! Histograms ([`Hist`], recorded with [`observe`]; buckets are powers of
//! two — bucket `k` counts values `v` with `2^(k-1) ≤ v < 2^k`, bucket 0
//! counts zeros):
//!
//! | name | unit | meaning |
//! |------|------|---------|
//! | `dfa.subset_dfa_states` | states | size of each determinised DFA |
//! | `equiv.bfs_explored` | pairs | product pairs explored per search |
//! | `stream.doc_events` | events | SAX events per streaming validation |
//! | `stream.doc_depth` | depth | peak open-element depth per document |
//! | `batch.worker_docs` | docs | documents validated per batch worker |
//! | `span.typecheck_ns` | ns | `DesignProblem`/`BoxDesignProblem::typecheck` wall time |
//! | `span.verify_local_ns` | ns | `verify_local` wall time |
//! | `span.perfect_schema_ns` | ns | `perfect_schema` wall time |
//! | `span.validate_stream_ns` | ns | one streaming validation wall time |
//! | `span.target_cache_build_ns` | ns | cold DTD target-cache build wall time |
//! | `span.box_target_cache_build_ns` | ns | cold EDTD target-cache build wall time |
//! | `span.batch_ns` | ns | whole `validate_batch` wall time |
//!
//! # Span semantics
//!
//! [`span`] pushes a [`SpanKind`] onto a **thread-local span stack** and
//! returns a guard; dropping the guard pops the stack and records the
//! span's wall time into its latency histogram (`span.<kind>_ns`). Spans
//! nest freely within a thread ([`span_depth`] reports the current nesting;
//! [`current_span`] the innermost kind); each span records its *inclusive*
//! time — child spans are not subtracted. When the gate is off a span is a
//! no-op guard: nothing is pushed, no clock is read.
//!
//! # Reading the data
//!
//! [`Snapshot::take`] copies every counter and histogram at one point in
//! time. Counter totals are exact once the writing threads have quiesced
//! (relaxed increments, no locks — nothing is ever lost); a snapshot taken
//! mid-flight is a consistent lower bound and never tears a single counter.
//! The snapshot renders as a rustc-style text report ([`Snapshot::render`])
//! or as JSON ([`Snapshot::to_json`]) — the format behind the
//! `TELEMETRY_<name>.json` sidecars the bench harness emits next to each
//! `BENCH_<name>.json`.
//!
//! ```
//! use dxml_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! telemetry::count(telemetry::Metric::StreamDocs, 1);
//! telemetry::observe(telemetry::Hist::StreamDocDepth, 12);
//! {
//!     let _span = telemetry::span(telemetry::SpanKind::Typecheck);
//!     // … work …
//! }
//! let snap = telemetry::Snapshot::take();
//! assert!(snap.counter(telemetry::Metric::StreamDocs) >= 1);
//! assert!(snap.to_json().contains("stream.doc_depth"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod snapshot;
mod span;

pub use metrics::{count, observe, reset, Hist, Metric};
pub use snapshot::{HistSnapshot, Snapshot};
pub use span::{current_span, span, span_depth, Span, SpanKind};

use std::sync::atomic::{AtomicU8, Ordering};

/// Gate states: unresolved (consult the environment on first use), or
/// explicitly off/on.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static GATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether telemetry collection is on. The steady-state cost is one relaxed
/// atomic load and a branch; the first call resolves the `DXML_TELEMETRY`
/// environment variable.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Resolves the gate from `DXML_TELEMETRY` (cold path of [`enabled`]).
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var_os("DXML_TELEMETRY").is_some_and(|v| {
        !(v.is_empty() || v == "0" || v == "off" || v == "false")
    });
    // A racing `set_enabled` wins: only replace the UNINIT state.
    let resolved = if on { ON } else { OFF };
    match GATE.compare_exchange(UNINIT, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => on,
        Err(current) => current == ON,
    }
}

/// Turns collection on or off at runtime, overriding the environment. The
/// switch is process-wide and takes effect for every subsequent record
/// operation; data already collected is kept (use [`reset`] to zero it).
pub fn set_enabled(on: bool) {
    GATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Serialises the crate's own unit tests: the gate and the registry are
/// process-global, so tests that flip the gate or compare counter deltas
/// must not interleave. (Integration tests live in separate binaries and
/// own their process.)
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_flips_and_records_follow() {
        let _guard = test_lock();
        set_enabled(false);
        assert!(!enabled());
        let before = Snapshot::take().counter(Metric::SpanEntered);
        {
            let _s = span(SpanKind::Typecheck);
            assert_eq!(span_depth(), 0, "disabled spans must not touch the stack");
        }
        assert_eq!(Snapshot::take().counter(Metric::SpanEntered), before);

        set_enabled(true);
        assert!(enabled());
        {
            let _s = span(SpanKind::Typecheck);
            assert_eq!(span_depth(), 1);
            assert_eq!(current_span(), Some(SpanKind::Typecheck));
        }
        assert_eq!(span_depth(), 0);
        assert!(Snapshot::take().counter(Metric::SpanEntered) > before);
        set_enabled(false);
    }
}
