//! RAII spans on a thread-local span stack.
//!
//! A span marks one timed region of engine work. Entering a span pushes its
//! [`SpanKind`] onto the current thread's stack and starts a wall clock;
//! dropping the guard pops the stack and records the elapsed nanoseconds
//! into the kind's latency histogram (`span.<kind>_ns`). Times are
//! *inclusive* — a parent span's recording covers its children. When the
//! gate is off the guard is inert: no stack push, no clock read.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::{count, observe, Hist, Metric};

/// The timed regions the engine instruments. Each kind owns one latency
/// histogram (see [`SpanKind::hist`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[non_exhaustive]
pub enum SpanKind {
    /// `DesignProblem::typecheck` / `BoxDesignProblem::typecheck`.
    Typecheck,
    /// `verify_local` on either problem kind.
    VerifyLocal,
    /// `perfect_schema` synthesis.
    PerfectSchema,
    /// One `StreamValidator` document validation.
    ValidateStream,
    /// Cold `TargetCache` build (DTD targets).
    TargetCacheBuild,
    /// Cold `BoxTargetCache` build (EDTD targets).
    BoxTargetCacheBuild,
    /// One whole `validate_batch` run.
    ValidateBatch,
}

impl SpanKind {
    /// The latency histogram this span kind records into.
    pub fn hist(self) -> Hist {
        match self {
            SpanKind::Typecheck => Hist::SpanTypecheckNs,
            SpanKind::VerifyLocal => Hist::SpanVerifyLocalNs,
            SpanKind::PerfectSchema => Hist::SpanPerfectSchemaNs,
            SpanKind::ValidateStream => Hist::SpanValidateStreamNs,
            SpanKind::TargetCacheBuild => Hist::SpanTargetCacheBuildNs,
            SpanKind::BoxTargetCacheBuild => Hist::SpanBoxTargetCacheBuildNs,
            SpanKind::ValidateBatch => Hist::SpanBatchNs,
        }
    }

    /// The span's name (the histogram name minus the `span.`/`_ns` wrap).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Typecheck => "typecheck",
            SpanKind::VerifyLocal => "verify_local",
            SpanKind::PerfectSchema => "perfect_schema",
            SpanKind::ValidateStream => "validate_stream",
            SpanKind::TargetCacheBuild => "target_cache_build",
            SpanKind::BoxTargetCacheBuild => "box_target_cache_build",
            SpanKind::ValidateBatch => "batch",
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<SpanKind>> = const { RefCell::new(Vec::new()) };
}

/// A live span guard returned by [`span`]. Dropping it ends the span.
///
/// The guard is `!Send` by construction (it belongs to the thread whose
/// stack it pushed) and inert when telemetry was disabled at entry.
#[must_use = "a span measures the scope it is held for; dropping it immediately records ~0ns"]
pub struct Span {
    live: Option<(SpanKind, Instant)>,
    // RefCell is !Sync, and holding a *const makes the guard !Send without
    // unsafe impls; the span must be dropped on the thread that opened it.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Enters a span of the given kind on the current thread. No-op (returns an
/// inert guard) when the gate is off.
#[inline]
pub fn span(kind: SpanKind) -> Span {
    if !crate::enabled() {
        return Span {
            live: None,
            _not_send: std::marker::PhantomData,
        };
    }
    STACK.with(|s| s.borrow_mut().push(kind));
    count(Metric::SpanEntered, 1);
    Span {
        live: Some((kind, Instant::now())),
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((kind, started)) = self.live.take() {
            let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards drop in LIFO order within a thread, so the top is
                // ours; pop defensively in case a guard was moved across a
                // scope boundary and outlived a later span (not expected).
                if stack.last() == Some(&kind) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|k| *k == kind) {
                    stack.remove(pos);
                }
            });
            observe(kind.hist(), elapsed);
        }
    }
}

/// How many spans are open on the current thread.
pub fn span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// The innermost open span on the current thread, if any.
pub fn current_span() -> Option<SpanKind> {
    STACK.with(|s| s.borrow().last().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _outer = span(SpanKind::Typecheck);
            assert_eq!(current_span(), Some(SpanKind::Typecheck));
            {
                let _inner = span(SpanKind::VerifyLocal);
                assert_eq!(span_depth(), 2);
                assert_eq!(current_span(), Some(SpanKind::VerifyLocal));
            }
            assert_eq!(span_depth(), 1);
            assert_eq!(current_span(), Some(SpanKind::Typecheck));
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(current_span(), None);
        let snap = crate::Snapshot::take();
        assert_eq!(snap.counter(Metric::SpanEntered), 2);
        assert_eq!(snap.histogram(Hist::SpanTypecheckNs).count, 1);
        assert_eq!(snap.histogram(Hist::SpanVerifyLocalNs).count, 1);
        crate::set_enabled(false);
    }

    #[test]
    fn every_kind_maps_to_a_distinct_histogram() {
        let kinds = [
            SpanKind::Typecheck,
            SpanKind::VerifyLocal,
            SpanKind::PerfectSchema,
            SpanKind::ValidateStream,
            SpanKind::TargetCacheBuild,
            SpanKind::BoxTargetCacheBuild,
            SpanKind::ValidateBatch,
        ];
        let mut hists: Vec<Hist> = kinds.iter().map(|k| k.hist()).collect();
        let total = hists.len();
        hists.sort_by_key(|h| *h as usize);
        hists.dedup();
        assert_eq!(hists.len(), total);
        for k in kinds {
            assert!(k.hist().name().contains(k.name()));
        }
    }
}
