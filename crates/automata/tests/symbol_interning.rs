//! Property tests for the interned [`Symbol`] representation: everything a
//! string-keyed `Symbol` observably did — ordering, hashing, `Debug`,
//! specialisation, the parsers' view — must be preserved by the `u32`-id
//! representation, and the global intern table must behave under
//! cross-thread contention.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use dxml_automata::{Regex, Symbol};

/// A small deterministic xorshift generator (no rand crate offline).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A pool of texts exercising the interesting shapes: empty, single chars,
/// identifiers, shared prefixes, specialised names (`~`), nested `~`,
/// numeric suffixes that collide textually with `specialize` output.
fn text_pool() -> Vec<String> {
    let mut pool: Vec<String> = [
        "", "a", "b", "ab", "ba", "abc", "a_b", "A", "Z", "zz",
        "eurostat", "nationalIndex", "averages", "e0", "e1", "e10", "e2",
        "a~0", "a~1", "a~10", "a~2", "ab~1", "a~1~2", "~", "~1", "x~y",
        "#k0", "#s12", "f$a",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let mut rng = Rng(0x5eed_cafe);
    for _ in 0..200 {
        let len = rng.below(12);
        let s: String = (0..len)
            .map(|_| {
                let alphabet = b"abcxyz019_~";
                alphabet[rng.below(alphabet.len())] as char
            })
            .collect();
        pool.push(s);
    }
    pool.sort();
    pool.dedup();
    pool
}

fn std_hash<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[test]
fn ordering_matches_the_string_keyed_seed() {
    let pool = text_pool();
    for a in &pool {
        for b in &pool {
            let (sa, sb) = (Symbol::new(a), Symbol::new(b));
            assert_eq!(sa.cmp(&sb), a.as_str().cmp(b.as_str()), "ordering of {a:?} vs {b:?}");
            assert_eq!(sa == sb, a == b, "equality of {a:?} vs {b:?}");
            assert_eq!(sa.partial_cmp(&sb), a.as_str().partial_cmp(b.as_str()));
        }
    }
    // Sorted containers iterate in text order, exactly as before.
    let symbols: BTreeSet<Symbol> = pool.iter().map(Symbol::new).collect();
    let texts: Vec<&str> = symbols.iter().map(Symbol::as_str).collect();
    let mut expected: Vec<&str> = pool.iter().map(String::as_str).collect();
    expected.sort();
    assert_eq!(texts, expected);
}

#[test]
fn hash_is_consistent_with_equality() {
    let pool = text_pool();
    for a in &pool {
        for b in &pool {
            let (sa, sb) = (Symbol::new(a), Symbol::new(b));
            if sa == sb {
                assert_eq!(std_hash(&sa), std_hash(&sb), "equal symbols must hash equal: {a:?}");
            }
        }
    }
    // A HashSet of symbols behaves like a HashSet of their texts.
    let symbols: HashSet<Symbol> = pool.iter().map(Symbol::new).collect();
    let texts: HashSet<&str> = pool.iter().map(String::as_str).collect();
    assert_eq!(symbols.len(), texts.len());
    for t in &texts {
        assert!(symbols.contains(&Symbol::new(t)));
    }
}

#[test]
fn debug_and_display_render_the_text() {
    for t in text_pool() {
        let s = Symbol::new(&t);
        assert_eq!(format!("{s:?}"), t, "Debug must render the bare text");
        assert_eq!(format!("{s}"), t, "Display must render the bare text");
        assert_eq!(s.as_str(), t);
    }
}

#[test]
fn specialize_base_name_roundtrips() {
    for t in text_pool() {
        let s = Symbol::new(&t);
        for i in [0usize, 1, 7, 10, 123] {
            let spec = s.specialize(i);
            // The textual contract: specialisation is `~`-concatenation …
            assert_eq!(spec.as_str(), format!("{t}~{i}"));
            // … it is interchangeable with interning the text directly …
            assert_eq!(spec, Symbol::new(format!("{t}~{i}")));
            // … it is always specialised, and peeling one layer returns the
            // base (the `~` collision rule: base_name cuts at the *last* ~).
            assert!(spec.is_specialized());
            assert_eq!(spec.base_name(), s);
        }
        // base_name of an unspecialised name is the name itself.
        match t.rfind('~') {
            None => {
                assert!(!s.is_specialized(), "{t:?}");
                assert_eq!(s.base_name(), s);
            }
            Some(idx) => {
                assert!(s.is_specialized(), "{t:?}");
                assert_eq!(s.base_name().as_str(), &t[..idx]);
            }
        }
    }
}

#[test]
fn parser_produced_symbols_agree_with_interning() {
    // Identifier-mode regexes accept `~` in names, so parser-produced
    // specialised names must be *the same symbols* as specialize() output.
    let re = Regex::parse("nat~1, nat~2*").unwrap();
    let nat = Symbol::new("nat");
    let alphabet = re.to_nfa().alphabet();
    assert!(alphabet.contains(&nat.specialize(1)));
    assert!(alphabet.contains(&nat.specialize(2)));
    for sym in alphabet.iter() {
        assert_eq!(sym.base_name(), nat, "{sym}");
    }
    // Words accept interchangeably.
    assert!(re.accepts(&[nat.specialize(1), nat.specialize(2)]));
    assert!(re.accepts(&[Symbol::new("nat~1")]));
    assert!(!re.accepts(&[nat]));
}

#[test]
fn compact_symbols_are_copy_and_share_backing_text() {
    let a = Symbol::new("copy_semantics_probe");
    let b = a; // Copy, not move
    assert_eq!(a, b);
    assert!(std::ptr::eq(a.as_str(), b.as_str()), "copies resolve to the same interned text");
    assert!(std::ptr::eq(
        a.as_str(),
        Symbol::new(String::from("copy_semantics_probe")).as_str()
    ));
    assert_eq!(a.id(), b.id());
    assert!(std::mem::size_of::<Symbol>() <= 4, "Symbol must stay a dense u32 id");
}

#[test]
fn cross_thread_interning_is_consistent() {
    // Many threads intern overlapping name families concurrently; every
    // thread must end up with identical ids (hence identical backing text)
    // for identical strings, and specialisation links must agree.
    const THREADS: usize = 8;
    const NAMES: usize = 200;
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut out = Vec::with_capacity(NAMES);
                for i in 0..NAMES {
                    // Overlapping families: every thread interns the same
                    // names, in a thread-dependent order.
                    let i = (i + t * 37) % NAMES;
                    let base = Symbol::new(format!("stress_{}", i % 50));
                    let spec = base.specialize(i % 11);
                    assert_eq!(spec.base_name(), base);
                    out.push((i, base.id(), spec.id()));
                }
                out
            })
        })
        .collect();
    let mut reference: Vec<Vec<(usize, u32, u32)>> =
        handles.into_iter().map(|h| h.join().expect("stress thread panicked")).collect();
    for per_thread in &mut reference {
        per_thread.sort();
        per_thread.dedup();
    }
    for window in reference.windows(2) {
        assert_eq!(window[0], window[1], "threads disagree on interned ids");
    }
    // And the ids resolve to the expected texts after the dust settles.
    for i in 0..50 {
        assert_eq!(Symbol::new(format!("stress_{i}")).as_str(), format!("stress_{i}"));
    }
}

#[test]
fn interning_survives_a_panicking_interleaving() {
    // Half of the 8 threads panic midway through interning the same name
    // family the other half keeps interning. A panicking thread must never
    // wedge later symbol creation (the interner recovers poisoned locks:
    // its tables are append-only, so no panic can leave them torn), and the
    // survivors' ids must stay consistent.
    const THREADS: usize = 8;
    const FAMILY: usize = 40;
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..100 {
                    let name = format!("panic_stress_{}", (i + t * 13) % FAMILY);
                    let s = Symbol::new(&name);
                    assert_eq!(s.as_str(), name);
                    assert_eq!(s.specialize(i % 5).base_name(), s);
                    if t % 2 == 0 && i == 50 {
                        // Unwind without invoking the global panic hook
                        // (keeps the test output clean without touching
                        // process-global state other tests rely on).
                        std::panic::resume_unwind(Box::new(
                            "mid-intern interleaving panic (deliberate, test-only)",
                        ));
                    }
                }
            })
        })
        .collect();
    let panicked = handles.into_iter().map(std::thread::JoinHandle::join).filter(Result::is_err).count();
    assert_eq!(panicked, THREADS / 2, "exactly the even threads panic");
    // Symbol creation still works after the panicking interleaving, through
    // both the infallible and the fallible entry points, with stable ids.
    for i in 0..FAMILY {
        let name = format!("panic_stress_{i}");
        let s = Symbol::new(&name);
        assert_eq!(Symbol::try_new(&name).unwrap(), s);
        assert_eq!(s.as_str(), name);
    }
}
