//! Seeded property-style tests over random small NFAs (no third-party
//! dependencies): determinisation/minimisation preserve membership, and the
//! boolean/rational operations satisfy their algebraic laws on all words up
//! to length 5.

use dxml_automata::equiv::{included, is_equivalent, is_included};
use dxml_automata::{Alphabet, Dfa, Nfa, Symbol};

/// The xorshift64* generator used across the workspace for reproducibility.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }
}

fn sigma() -> Vec<Symbol> {
    vec![Symbol::new("a"), Symbol::new("b")]
}

/// A random NFA with up to 5 states over {a, b}, with ~2 transitions per
/// state, a sprinkling of ε-transitions and ~2 final states.
fn random_nfa(rng: &mut Rng) -> Nfa {
    let n = 1 + rng.below(5);
    let mut nfa = Nfa::new(n, rng.below(n));
    let sigma = sigma();
    for q in 0..n {
        for sym in &sigma {
            if rng.chance(2, 3) {
                nfa.add_transition(q, *sym, rng.below(n));
            }
        }
        if rng.chance(1, 5) {
            nfa.add_epsilon(q, rng.below(n));
        }
        if rng.chance(2, 5) {
            nfa.set_final(q);
        }
    }
    nfa
}

/// All words over {a, b} of length ≤ 5 (63 words).
fn all_words_up_to_5() -> Vec<Vec<Symbol>> {
    let sigma = sigma();
    let mut words: Vec<Vec<Symbol>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
    for _ in 0..5 {
        let mut next = Vec::new();
        for w in &frontier {
            for s in &sigma {
                let mut w2 = w.clone();
                w2.push(*s);
                next.push(w2);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

#[test]
fn determinize_then_minimize_preserves_membership() {
    let words = all_words_up_to_5();
    let mut rng = Rng::new(2009);
    for case in 0..60 {
        let nfa = random_nfa(&mut rng);
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimize();
        for w in &words {
            let expected = nfa.accepts(w);
            assert_eq!(dfa.accepts(w), expected, "case {case}: determinize changed membership");
            assert_eq!(min.accepts(w), expected, "case {case}: minimize changed membership");
        }
        // Minimisation never grows the automaton.
        assert!(min.num_states() <= dfa.complete(&dfa.alphabet()).num_states() + 1);
    }
}

#[test]
fn inclusion_in_union_always_holds() {
    let mut rng = Rng::new(42);
    for case in 0..60 {
        let a = random_nfa(&mut rng);
        let b = random_nfa(&mut rng);
        let union = a.union(&b);
        assert!(is_included(&a, &union), "case {case}: a ⊈ a ∪ b");
        assert!(is_included(&b, &union), "case {case}: b ⊈ a ∪ b");
        // And the intersection is included in both components.
        let inter = a.intersect(&b);
        assert!(is_included(&inter, &a), "case {case}: a ∩ b ⊈ a");
        assert!(is_included(&inter, &b), "case {case}: a ∩ b ⊈ b");
    }
}

#[test]
fn inclusion_counterexamples_are_genuine() {
    let mut rng = Rng::new(7);
    let mut refuted = 0;
    for _ in 0..80 {
        let a = random_nfa(&mut rng);
        let b = random_nfa(&mut rng);
        match included(&a, &b) {
            Ok(()) => {
                // Verified against brute-force enumeration up to length 5.
                for w in all_words_up_to_5() {
                    assert!(!a.accepts(&w) || b.accepts(&w), "inclusion verdict wrong on short word");
                }
            }
            Err(ce) => {
                refuted += 1;
                assert!(a.accepts(&ce.word) && !b.accepts(&ce.word), "bogus counterexample");
                assert!(ce.in_first);
            }
        }
    }
    assert!(refuted > 0, "the random family should refute some inclusions");
}

#[test]
fn complement_laws() {
    let alphabet = Alphabet::from_chars("ab");
    let words = all_words_up_to_5();
    let mut rng = Rng::new(1234);
    for case in 0..40 {
        let a = random_nfa(&mut rng);
        let comp = a.complement(&alphabet);
        for w in &words {
            assert_eq!(a.accepts(w), !comp.accepts(w), "case {case}: complement flipped wrong");
        }
        // a ∪ ā is universal, a ∩ ā is empty.
        assert!(a.union(&comp).is_universal(&alphabet), "case {case}");
        assert!(a.intersect(&comp).is_empty(), "case {case}");
        // Double complement is the identity (as a language).
        assert!(is_equivalent(&comp.complement(&alphabet), &a), "case {case}");
    }
}

#[test]
fn eps_free_and_trim_preserve_language() {
    let words = all_words_up_to_5();
    let mut rng = Rng::new(99);
    for case in 0..60 {
        let a = random_nfa(&mut rng);
        let ef = a.eps_free();
        assert!(!ef.has_epsilon());
        let t = a.trim();
        for w in &words {
            assert_eq!(a.accepts(w), ef.accepts(w), "case {case}: eps_free changed membership");
            assert_eq!(a.accepts(w), t.accepts(w), "case {case}: trim changed membership");
        }
    }
}

#[test]
fn shortest_accepted_is_shortest() {
    let mut rng = Rng::new(5);
    for case in 0..60 {
        let a = random_nfa(&mut rng);
        match a.shortest_accepted() {
            None => assert!(a.is_empty(), "case {case}: no witness but non-empty"),
            Some(w) => {
                assert!(a.accepts(&w), "case {case}: witness rejected");
                for shorter in all_words_up_to_5().iter().filter(|v| v.len() < w.len()) {
                    assert!(
                        w.len() > 5 || !a.accepts(shorter),
                        "case {case}: shorter accepted word exists"
                    );
                }
            }
        }
    }
}
