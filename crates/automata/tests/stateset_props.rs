//! Differential property tests for the dense-bitset state-set engine: on
//! random NFAs, every observable of the hot paths — subset-state numbering,
//! DFA transitions, shortest witness words, membership — must be
//! **byte-identical** to a `BTreeSet<usize>`-based reference
//! reimplementation of the seed algorithms (the representation this PR
//! replaced). The reference mirrors the real code shape exactly: text-order
//! alphabet scans, FIFO subset discovery, first-witness-wins.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dxml_automata::{Dfa, Nfa, Symbol};

/// A small deterministic xorshift generator (no rand crate offline).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// A random NFA: up to `max_states` states over `alphabet`, with random
/// symbol and ε transitions and random finals. The shapes deliberately
/// include unreachable states, dead states and empty-final automata.
fn random_nfa(rng: &mut Rng, max_states: usize, alphabet: &[Symbol]) -> Nfa {
    let n = 1 + rng.below(max_states);
    let mut nfa = Nfa::new(n, 0);
    let transitions = rng.below(3 * n + 2);
    for _ in 0..transitions {
        let from = rng.below(n);
        let to = rng.below(n);
        if rng.chance(15) {
            nfa.add_epsilon(from, to);
        } else {
            nfa.add_transition(from, alphabet[rng.below(alphabet.len())], to);
        }
    }
    for q in 0..n {
        if rng.chance(25) {
            nfa.set_final(q);
        }
    }
    nfa
}

/// The seed's state-set representation of the same automaton:
/// `BTreeMap<Option<Symbol>, BTreeSet<usize>>` per state, rebuilt from the
/// public transition view, with the seed's clone-heavy set stepping.
struct RefNfa {
    start: usize,
    finals: BTreeSet<usize>,
    trans: Vec<BTreeMap<Option<Symbol>, BTreeSet<usize>>>,
}

impl RefNfa {
    fn of(nfa: &Nfa) -> RefNfa {
        let mut out = RefNfa {
            start: nfa.start(),
            finals: nfa.finals().clone(),
            trans: vec![BTreeMap::new(); nfa.num_states()],
        };
        for (q, lbl, t) in nfa.transitions() {
            out.trans[q].entry(lbl.copied()).or_default().insert(t);
        }
        out
    }

    fn alphabet(&self) -> BTreeSet<Symbol> {
        self.trans.iter().flat_map(|m| m.keys()).filter_map(|k| *k).collect()
    }

    fn epsilon_closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = set.clone();
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(q) = stack.pop() {
            if let Some(next) = self.trans[q].get(&None) {
                for &t in next {
                    if closure.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        closure
    }

    fn step(&self, set: &BTreeSet<usize>, sym: &Symbol) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &q in set {
            if let Some(ts) = self.trans[q].get(&Some(*sym)) {
                next.extend(ts.iter().copied());
            }
        }
        self.epsilon_closure(&next)
    }

    fn start_set(&self) -> BTreeSet<usize> {
        self.epsilon_closure(&BTreeSet::from([self.start]))
    }

    fn is_accepting_set(&self, set: &BTreeSet<usize>) -> bool {
        set.iter().any(|q| self.finals.contains(q))
    }

    /// Seed `Dfa::from_nfa`, producing the canonical rendering the test
    /// compares: state count, final ids and `(from, symbol, to)` triples —
    /// numbering by BFS discovery, symbols scanned in text order.
    fn determinize(&self) -> (usize, BTreeSet<usize>, BTreeSet<(usize, Symbol, usize)>) {
        let alphabet = self.alphabet();
        let start = self.start_set();
        let mut index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::from([(start.clone(), 0)]);
        let mut num_states = 1usize;
        let mut finals = BTreeSet::new();
        let mut triples = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(set) = queue.pop_front() {
            let id = index[&set];
            if self.is_accepting_set(&set) {
                finals.insert(id);
            }
            for sym in &alphabet {
                let next = self.step(&set, sym);
                if next.is_empty() {
                    continue;
                }
                let next_id = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = num_states;
                        num_states += 1;
                        index.insert(next.clone(), i);
                        queue.push_back(next);
                        i
                    }
                };
                triples.insert((id, *sym, next_id));
            }
        }
        (num_states, finals, triples)
    }

    /// Seed `Nfa::shortest_accepted`: BFS over `BTreeSet` frontiers with a
    /// text-order symbol scan, so the witness is the lexicographically
    /// least among the shortest.
    fn shortest_accepted(&self) -> Option<Vec<Symbol>> {
        let alphabet = self.alphabet();
        let start = self.start_set();
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::from([start.clone()]);
        let mut queue: VecDeque<(BTreeSet<usize>, Vec<Symbol>)> =
            VecDeque::from([(start, Vec::new())]);
        while let Some((set, word)) = queue.pop_front() {
            if self.is_accepting_set(&set) {
                return Some(word);
            }
            for sym in &alphabet {
                let next = self.step(&set, sym);
                if next.is_empty() {
                    continue;
                }
                if seen.insert(next.clone()) {
                    let mut w = word.clone();
                    w.push(*sym);
                    queue.push_back((next, w));
                }
            }
        }
        None
    }

    fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.start_set();
        for sym in word {
            if current.is_empty() {
                break;
            }
            current = self.step(&current, sym);
        }
        self.is_accepting_set(&current)
    }
}

/// Renders the real subset construction the same way as
/// [`RefNfa::determinize`].
fn render_dfa(dfa: &Dfa) -> (usize, BTreeSet<usize>, BTreeSet<(usize, Symbol, usize)>) {
    let triples = dfa.transitions().map(|(q, s, t)| (q, *s, t)).collect();
    (dfa.num_states(), dfa.finals().clone(), triples)
}

#[test]
fn subset_state_numbering_is_byte_identical_to_the_btreeset_reference() {
    let alphabet: Vec<Symbol> = ["a", "b", "c", "d"].map(Symbol::new).to_vec();
    let mut rng = Rng(0xb17_5e75);
    for case in 0..300 {
        let nfa = random_nfa(&mut rng, 9, &alphabet);
        let reference = RefNfa::of(&nfa);
        let real = render_dfa(&Dfa::from_nfa(&nfa));
        let want = reference.determinize();
        assert_eq!(real, want, "case {case}: subset construction diverged on {nfa:?}");
    }
}

#[test]
fn witness_words_are_byte_identical_to_the_btreeset_reference() {
    let alphabet: Vec<Symbol> = ["a", "b", "c"].map(Symbol::new).to_vec();
    let mut rng = Rng(0x517_ee55);
    let mut accepted = 0;
    for case in 0..300 {
        let nfa = random_nfa(&mut rng, 8, &alphabet);
        let reference = RefNfa::of(&nfa);
        let real = nfa.shortest_accepted();
        let want = reference.shortest_accepted();
        assert_eq!(real, want, "case {case}: witness diverged on {nfa:?}");
        accepted += usize::from(real.is_some());
    }
    assert!(accepted > 50, "the family must exercise non-empty languages ({accepted})");
}

#[test]
fn membership_frontier_agrees_with_the_btreeset_reference() {
    let alphabet: Vec<Symbol> = ["a", "b", "c"].map(Symbol::new).to_vec();
    let mut rng = Rng(0xf07_73a1);
    for case in 0..150 {
        let nfa = random_nfa(&mut rng, 10, &alphabet);
        let reference = RefNfa::of(&nfa);
        for len in 0..8 {
            let word: Vec<Symbol> =
                (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect();
            assert_eq!(
                nfa.accepts(&word),
                reference.accepts(&word),
                "case {case}: membership diverged on {word:?} in {nfa:?}"
            );
        }
    }
}

#[test]
fn derived_procedures_agree_with_the_reference_language() {
    // eps_free, trim and to_dfa all reshape the automaton through the
    // bitset paths; the language must be untouched.
    let alphabet: Vec<Symbol> = ["a", "b"].map(Symbol::new).to_vec();
    let mut rng = Rng(0xde1_ab17);
    for case in 0..100 {
        let nfa = random_nfa(&mut rng, 7, &alphabet);
        let reference = RefNfa::of(&nfa);
        let ef = nfa.eps_free();
        let trimmed = nfa.trim();
        let dfa = nfa.to_dfa();
        for len in 0..6 {
            let word: Vec<Symbol> =
                (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect();
            let want = reference.accepts(&word);
            assert_eq!(ef.accepts(&word), want, "case {case}: eps_free diverged on {word:?}");
            assert_eq!(trimmed.accepts(&word), want, "case {case}: trim diverged on {word:?}");
            assert_eq!(dfa.accepts(&word), want, "case {case}: to_dfa diverged on {word:?}");
        }
        assert_eq!(nfa.is_empty(), reference.shortest_accepted().is_none(), "case {case}");
    }
}
