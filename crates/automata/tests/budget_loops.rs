//! Resource-governance integration: governed loops trip deterministically
//! on adversarial inputs, unwind cleanly, agree with the ungoverned paths
//! when the budget is generous, and record their trips in the telemetry
//! registry. This test owns its process (integration tests build as
//! separate binaries), so flipping the global telemetry gate here cannot
//! interfere with any other test binary.

use dxml_automata::equiv::{equivalent, equivalent_with_budget, included, included_with_budget};
use dxml_automata::limits::faults;
use dxml_automata::{AutomataError, Budget, Dfa, Nfa, Regex, Resource};
use dxml_telemetry as telemetry;

/// The classic subset-blowup family: `(a|b)* a (a|b)^{n-1}` is an
/// `(n+1)`-state NFA whose minimal DFA has `2^n` states — the adversarial
/// input class budgets exist for.
fn blowup_nfa(n: usize) -> Nfa {
    let mut src = String::from("(a|b)* a");
    for _ in 0..n.saturating_sub(1) {
        src.push_str(" (a|b)");
    }
    Regex::parse(&src).unwrap().to_nfa()
}

/// A budget no test in this file can exhaust.
fn generous() -> Budget {
    Budget::unlimited().with_step_quota(50_000_000).with_state_quota(1_000_000)
}

#[test]
fn generous_budget_is_byte_identical_to_unbudgeted() {
    let nfa = blowup_nfa(8);
    let free = Dfa::from_nfa(&nfa);
    let governed = Dfa::from_nfa_with_budget(&nfa, &generous()).unwrap();
    assert_eq!(free, governed, "budget checks must not perturb state numbering");
}

#[test]
fn governed_inclusion_agrees_with_ungoverned() {
    let a = Regex::parse("a (a|b)*").unwrap().to_nfa();
    let b = Regex::parse("(a|b)*").unwrap().to_nfa();
    assert!(included_with_budget(&a, &b, &generous()).unwrap().is_ok());
    assert!(included(&a, &b).is_ok());
    // The failing direction produces the same counterexample word.
    let governed = included_with_budget(&b, &a, &generous()).unwrap().unwrap_err();
    let free = included(&b, &a).unwrap_err();
    assert_eq!(governed.word, free.word);
    assert_eq!(governed.in_first, free.in_first);
    // Equivalence agrees too.
    assert!(equivalent_with_budget(&a, &a, &generous()).unwrap().is_ok());
    assert!(equivalent_with_budget(&a, &b, &generous()).unwrap().is_err());
}

#[test]
fn state_quota_trips_on_subset_blowup_and_retry_succeeds() {
    let nfa = blowup_nfa(10); // minimal DFA: 2^10 states
    let tight = Budget::unlimited().with_state_quota(64);
    match Dfa::from_nfa_with_budget(&nfa, &tight) {
        Err(AutomataError::BudgetExceeded { resource: Resource::States, limit: 64, spent }) => {
            assert!(spent > 64);
        }
        other => panic!("expected a states trip, got {other:?}"),
    }
    // The trip leaves no residue: a fresh, larger budget completes and the
    // result is identical to the free construction.
    let big = Budget::unlimited().with_state_quota(1 << 12);
    let governed = Dfa::from_nfa_with_budget(&nfa, &big).unwrap();
    assert_eq!(governed, Dfa::from_nfa(&nfa));
}

#[test]
fn step_quota_trips_the_product_walks() {
    let a = blowup_nfa(6);
    let b = blowup_nfa(5);
    assert!(matches!(
        included_with_budget(&a, &b, &faults::budget_tripping_after(3)),
        Err(AutomataError::BudgetExceeded { resource: Resource::Steps, limit: 3, .. })
    ));
    assert!(matches!(
        equivalent_with_budget(&a, &b, &faults::budget_tripping_after(3)),
        Err(AutomataError::BudgetExceeded { resource: Resource::Steps, .. })
    ));
}

#[test]
fn expired_deadline_and_cancellation_trip_before_any_work() {
    let a = blowup_nfa(4);
    assert!(matches!(
        included_with_budget(&a, &a, &faults::expired_deadline()),
        Err(AutomataError::BudgetExceeded { resource: Resource::Deadline, .. })
    ));
    assert!(matches!(
        equivalent_with_budget(&a, &a, &faults::cancelled()),
        Err(AutomataError::BudgetExceeded { resource: Resource::Cancelled, .. })
    ));
    assert!(matches!(
        Dfa::from_nfa_with_budget(&a, &faults::cancelled()),
        Err(AutomataError::BudgetExceeded { resource: Resource::Cancelled, .. })
    ));
}

#[test]
fn residual_walks_respect_the_budget() {
    let d = Dfa::from_nfa(&blowup_nfa(5));
    let eps = Nfa::epsilon();
    assert!(matches!(
        d.universal_context_residual_with_budget(&eps, &eps, &faults::budget_tripping_after(2)),
        Err(AutomataError::BudgetExceeded { resource: Resource::Steps, .. })
    ));
    // A generous governed run agrees with the free construction.
    let free = d.universal_context_residual(&eps, &eps);
    let governed = d.universal_context_residual_with_budget(&eps, &eps, &generous()).unwrap();
    assert!(equivalent(&free, &governed).is_ok());
    // The uniform residual trips too.
    let contexts = [Nfa::epsilon(), Nfa::epsilon(), Nfa::epsilon()];
    assert!(matches!(
        d.uniform_context_residual_with_budget(&contexts, &faults::budget_tripping_after(1)),
        Err(AutomataError::BudgetExceeded { .. })
    ));
}

#[test]
fn shared_budget_pools_quotas_across_clones() {
    // Two determinisations drawing from one pool: the pair trips where
    // either alone would fit.
    let nfa = blowup_nfa(7); // 128 subset states each
    let solo = Budget::unlimited().with_state_quota(200);
    assert!(Dfa::from_nfa_with_budget(&nfa, &solo).is_ok());
    let shared = Budget::unlimited().with_state_quota(200);
    let clone = shared.clone();
    assert!(Dfa::from_nfa_with_budget(&nfa, &shared).is_ok());
    assert!(matches!(
        Dfa::from_nfa_with_budget(&nfa, &clone),
        Err(AutomataError::BudgetExceeded { resource: Resource::States, .. })
    ));
    assert!(clone.states_spent() > 200);
}

#[test]
fn trips_are_recorded_in_the_telemetry_registry() {
    telemetry::set_enabled(true);
    let nfa = blowup_nfa(8);
    let _ = Dfa::from_nfa_with_budget(&nfa, &Budget::unlimited().with_state_quota(4));
    let _ = Dfa::from_nfa_with_budget(&nfa, &faults::expired_deadline());
    let _ = Dfa::from_nfa_with_budget(&nfa, &faults::cancelled());
    let snapshot = telemetry::Snapshot::take();
    assert!(
        snapshot.counter(telemetry::Metric::LimitsBudgetTrips) >= 1,
        "quota trips must count limits.budget_trips:\n{}",
        snapshot.render()
    );
    assert!(
        snapshot.counter(telemetry::Metric::LimitsDeadlineTrips) >= 1,
        "deadline trips must count limits.deadline_trips:\n{}",
        snapshot.render()
    );
    assert!(
        snapshot.counter(telemetry::Metric::LimitsCancellations) >= 1,
        "cancellations must count limits.cancellations:\n{}",
        snapshot.render()
    );
}
