//! Content-model specifications in the four formalisms of the paper.
//!
//! Throughout the paper, `R` ranges over **nFA**, **dFA**, **nRE** and
//! **dRE**, the four mechanisms used to describe the regular languages
//! serving as content models of DTDs/SDTDs/EDTDs. [`RSpec`] packages a
//! content model in any of these formalisms behind a uniform API so that the
//! schema types can be parameterised by [`RFormalism`] exactly as the paper's
//! `R-DTD` / `R-SDTD` / `R-EDTD` are.

use std::fmt;

use crate::dfa::Dfa;
use crate::dre;
use crate::equiv;
use crate::error::AutomataError;
use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::{Alphabet, Symbol, Word};

/// The formalism used to describe content models: the paper's parameter `R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum RFormalism {
    /// Nondeterministic finite automata.
    Nfa,
    /// Deterministic finite automata.
    Dfa,
    /// (Possibly nondeterministic) regular expressions.
    Nre,
    /// Deterministic (one-unambiguous) regular expressions.
    Dre,
}

impl RFormalism {
    /// All four formalisms, in the order used by the paper's tables.
    pub const ALL: [RFormalism; 4] = [RFormalism::Nfa, RFormalism::Nre, RFormalism::Dfa, RFormalism::Dre];

    /// Whether the formalism is deterministic (dFA or dRE).
    pub fn is_deterministic(self) -> bool {
        matches!(self, RFormalism::Dfa | RFormalism::Dre)
    }

    /// Whether the formalism is expression-based (nRE or dRE).
    pub fn is_expression(self) -> bool {
        matches!(self, RFormalism::Nre | RFormalism::Dre)
    }
}

impl fmt::Display for RFormalism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RFormalism::Nfa => "nFA",
            RFormalism::Dfa => "dFA",
            RFormalism::Nre => "nRE",
            RFormalism::Dre => "dRE",
        };
        write!(f, "{name}")
    }
}

/// A content model (an `R-type` in the paper's terminology): a regular
/// language given in one of the four formalisms.
#[derive(Clone, Debug)]
pub enum RSpec {
    /// A language given by a nondeterministic automaton.
    Nfa(Nfa),
    /// A language given by a deterministic automaton.
    Dfa(Dfa),
    /// A language given by a (possibly nondeterministic) regular expression.
    Nre(Regex),
    /// A language given by a deterministic regular expression.
    Dre(Regex),
}

impl RSpec {
    /// Wraps a regular expression as an `nRE` content model.
    pub fn nre(re: Regex) -> RSpec {
        RSpec::Nre(re)
    }

    /// Wraps a regular expression as a `dRE` content model, verifying
    /// one-unambiguity of the expression.
    pub fn dre(re: Regex) -> Result<RSpec, AutomataError> {
        if dre::one_unambiguous_expr(&re) {
            Ok(RSpec::Dre(re))
        } else {
            Err(AutomataError::NotDeterministic(re.to_string()))
        }
    }

    /// Wraps an NFA as an `nFA` content model.
    pub fn nfa(nfa: Nfa) -> RSpec {
        RSpec::Nfa(nfa)
    }

    /// Wraps a DFA as a `dFA` content model.
    pub fn dfa(dfa: Dfa) -> RSpec {
        RSpec::Dfa(dfa)
    }

    /// Parses a content model from the DTD-style identifier syntax
    /// ([`Regex::parse`]) in the requested formalism. For `dRE` the
    /// expression must be deterministic; for the automaton formalisms the
    /// expression is translated.
    pub fn parse(formalism: RFormalism, input: &str) -> Result<RSpec, AutomataError> {
        let re = Regex::parse(input)?;
        RSpec::from_regex(formalism, re)
    }

    /// Parses a content model from the character syntax
    /// ([`Regex::parse_chars`]) in the requested formalism.
    pub fn parse_chars(formalism: RFormalism, input: &str) -> Result<RSpec, AutomataError> {
        let re = Regex::parse_chars(input)?;
        RSpec::from_regex(formalism, re)
    }

    /// Converts a regular expression into the requested formalism.
    pub fn from_regex(formalism: RFormalism, re: Regex) -> Result<RSpec, AutomataError> {
        Ok(match formalism {
            RFormalism::Nre => RSpec::Nre(re),
            RFormalism::Dre => return RSpec::dre(re),
            RFormalism::Nfa => RSpec::Nfa(re.to_nfa()),
            RFormalism::Dfa => RSpec::Dfa(Dfa::from_nfa(&re.to_nfa())),
        })
    }

    /// The formalism this content model is expressed in.
    pub fn formalism(&self) -> RFormalism {
        match self {
            RSpec::Nfa(_) => RFormalism::Nfa,
            RSpec::Dfa(_) => RFormalism::Dfa,
            RSpec::Nre(_) => RFormalism::Nre,
            RSpec::Dre(_) => RFormalism::Dre,
        }
    }

    /// The language as an [`Nfa`] (the internal lingua franca).
    pub fn to_nfa(&self) -> Nfa {
        match self {
            RSpec::Nfa(a) => a.clone(),
            RSpec::Dfa(d) => d.to_nfa(),
            RSpec::Nre(r) | RSpec::Dre(r) => r.to_nfa(),
        }
    }

    /// Whether the content model accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        match self {
            RSpec::Nfa(a) => a.accepts(word),
            RSpec::Dfa(d) => d.accepts(word),
            RSpec::Nre(r) | RSpec::Dre(r) => r.accepts(word),
        }
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.to_nfa().is_empty()
    }

    /// Whether ε belongs to the language.
    pub fn accepts_epsilon(&self) -> bool {
        self.accepts(&[])
    }

    /// The set of symbols appearing in the specification.
    pub fn alphabet(&self) -> Alphabet {
        match self {
            RSpec::Nfa(a) => a.alphabet(),
            RSpec::Dfa(d) => d.alphabet(),
            RSpec::Nre(r) | RSpec::Dre(r) => r.alphabet(),
        }
    }

    /// A size measure (number of states or expression nodes), used in the
    /// `typeT(τn)` size experiments of Table 2.
    pub fn size(&self) -> usize {
        match self {
            RSpec::Nfa(a) => a.num_states() + a.num_transitions(),
            RSpec::Dfa(d) => d.num_states() + d.transitions().count(),
            RSpec::Nre(r) | RSpec::Dre(r) => r.size(),
        }
    }

    /// Language equivalence with another content model.
    pub fn equivalent(&self, other: &RSpec) -> bool {
        equiv::is_equivalent(&self.to_nfa(), &other.to_nfa())
    }

    /// Language inclusion in another content model.
    pub fn included_in(&self, other: &RSpec) -> bool {
        equiv::is_included(&self.to_nfa(), &other.to_nfa())
    }

    /// Whether the language of this content model is *expressible* in the
    /// target formalism. Every regular language is expressible as an nFA, dFA
    /// or nRE; only one-unambiguous languages are expressible as dREs
    /// (Proposition 3.6).
    pub fn expressible_in(&self, formalism: RFormalism) -> bool {
        match formalism {
            RFormalism::Nfa | RFormalism::Dfa | RFormalism::Nre => true,
            RFormalism::Dre => dre::one_unambiguous_language(&self.to_nfa()),
        }
    }

    /// Converts to the requested formalism if possible; fails only for dRE
    /// targets when the language is not one-unambiguous. Note that the
    /// conversion to dRE yields an automaton-backed specification whose
    /// *language* is one-unambiguous rather than a syntactic expression —
    /// constructing an actual expression can incur the exponential blow-up of
    /// Proposition 3.6(3) and is not needed by the design algorithms.
    pub fn convert_to(&self, formalism: RFormalism) -> Result<RSpec, AutomataError> {
        match formalism {
            RFormalism::Nfa => Ok(RSpec::Nfa(self.to_nfa())),
            RFormalism::Dfa => Ok(RSpec::Dfa(Dfa::from_nfa(&self.to_nfa()).minimize())),
            RFormalism::Nre => Ok(self.clone_as_nre()),
            RFormalism::Dre => {
                if self.expressible_in(RFormalism::Dre) {
                    Ok(RSpec::Dfa(Dfa::from_nfa(&self.to_nfa()).minimize()))
                } else {
                    Err(AutomataError::NotDeterministic(format!("{self}")))
                }
            }
        }
    }

    fn clone_as_nre(&self) -> RSpec {
        match self {
            RSpec::Nre(r) | RSpec::Dre(r) => RSpec::Nre(r.clone()),
            other => RSpec::Nfa(other.to_nfa()),
        }
    }

    /// Some word accepted by this content model (shortest), if any.
    pub fn sample_word(&self) -> Option<Word> {
        self.to_nfa().shortest_accepted()
    }
}

impl fmt::Display for RSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RSpec::Nre(r) | RSpec::Dre(r) => write!(f, "{r}"),
            RSpec::Nfa(a) => write!(f, "<nFA with {} states>", a.num_states()),
            RSpec::Dfa(d) => write!(f, "<dFA with {} states>", d.num_states()),
        }
    }
}

impl PartialEq for RSpec {
    /// Content models compare by *language*, which is what every use in the
    /// design algorithms needs.
    fn eq(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Eq for RSpec {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::word_chars;

    #[test]
    fn formalism_properties() {
        assert!(RFormalism::Dfa.is_deterministic());
        assert!(RFormalism::Dre.is_deterministic());
        assert!(!RFormalism::Nfa.is_deterministic());
        assert!(RFormalism::Nre.is_expression());
        assert!(!RFormalism::Dfa.is_expression());
        assert_eq!(RFormalism::ALL.len(), 4);
        assert_eq!(format!("{}", RFormalism::Dre), "dRE");
    }

    #[test]
    fn parse_in_each_formalism() {
        for f in RFormalism::ALL {
            let spec = RSpec::parse_chars(f, "a*bc*").unwrap();
            assert_eq!(spec.formalism(), f);
            assert!(spec.accepts(&word_chars("aabcc")));
            assert!(!spec.accepts(&word_chars("ca")));
        }
    }

    #[test]
    fn dre_rejects_nondeterministic_expressions() {
        assert!(RSpec::parse_chars(RFormalism::Dre, "(a|b)*a").is_err());
        assert!(RSpec::parse_chars(RFormalism::Nre, "(a|b)*a").is_ok());
    }

    #[test]
    fn language_equality_and_inclusion() {
        let a = RSpec::parse_chars(RFormalism::Nre, "a*bc*c*").unwrap();
        let b = RSpec::parse_chars(RFormalism::Dfa, "a*bc*").unwrap();
        assert!(a.equivalent(&b));
        assert_eq!(a, b);
        let c = RSpec::parse_chars(RFormalism::Nfa, "a*b").unwrap();
        assert!(c.included_in(&a));
        assert!(!a.included_in(&c));
    }

    #[test]
    fn expressibility_in_dre() {
        let ends_with_a = RSpec::parse_chars(RFormalism::Nre, "(a|b)*a").unwrap();
        assert!(ends_with_a.expressible_in(RFormalism::Dre));
        let second_to_last = RSpec::parse_chars(RFormalism::Nre, "(a|b)*a(a|b)").unwrap();
        assert!(!second_to_last.expressible_in(RFormalism::Dre));
        assert!(second_to_last.convert_to(RFormalism::Dre).is_err());
        assert!(second_to_last.convert_to(RFormalism::Dfa).is_ok());
    }

    #[test]
    fn size_and_samples() {
        let spec = RSpec::parse_chars(RFormalism::Nre, "(ab)+").unwrap();
        assert!(spec.size() >= 3);
        assert_eq!(spec.sample_word(), Some(word_chars("ab")));
        assert!(!spec.is_empty_language());
        assert!(!spec.accepts_epsilon());
        let eps = RSpec::parse_chars(RFormalism::Nre, "a*").unwrap();
        assert!(eps.accepts_epsilon());
    }
}
