//! Quotients and residuals of regular languages.
//!
//! These are the string-level building blocks of the *perfect automaton*
//! construction of Section 6: the most permissive content model a function
//! may use at a docking point is a residual of the target content model by
//! the languages realizable to its left and right.
//!
//! Three operations are provided on [`Nfa`]s:
//!
//! * [`Nfa::left_quotient`] — the existential left quotient
//!   `P⁻¹L = { w : ∃u ∈ P, u·w ∈ L }`;
//! * [`Nfa::right_quotient`] — the existential right quotient
//!   `L·S⁻¹ = { w : ∃v ∈ S, w·v ∈ L }`;
//! * [`Nfa::universal_context_residual`] — the *universal* two-sided
//!   residual `{ w : ∀u ∈ P, ∀v ∈ S, u·w·v ∈ L }`, which is exactly the set
//!   of words a docking point may contribute when the words to its left and
//!   right range over `P` and `S` and the whole child word must stay in `L`.
//!
//! All three are effective: the result is an automaton over the union of the
//! involved alphabets. In particular, when `P` (or `S`) is the empty
//! language the universal residual is vacuously `Σ*` over that union — the
//! caller decides what to intersect it with.
//!
//! The universal residuals start by determinising the subject language. A
//! caller that takes many residuals of the *same* language by varying
//! contexts (the refute-and-refine synthesis loops re-enter here thousands
//! of times) should determinise once and use the [`Dfa`] entry points
//! [`Dfa::universal_context_residual`] / [`Dfa::uniform_context_residual`]
//! instead — the `Nfa` methods are thin wrappers over them.

use std::collections::VecDeque;

use crate::dfa::Dfa;
use crate::error::AutomataError;
use crate::hash::{FxHashMap, FxHashSet};
use crate::limits::Budget;
use crate::nfa::{Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::Alphabet;

impl Nfa {
    /// The existential left quotient `P⁻¹[self] = { w : ∃u ∈ [P], u·w ∈
    /// [self] }`.
    ///
    /// # Panics
    ///
    /// Never in practice: the unlimited budget cannot trip.
    pub fn left_quotient(&self, prefixes: &Nfa) -> Nfa {
        let d = Dfa::from_nfa(self);
        let entry = states_reachable_via(&d, prefixes, &Budget::unlimited())
            .expect("the unlimited budget never trips");
        // The quotient automaton is `d` with a fresh start state that can
        // silently be in any state some prefix reaches.
        let mut out = d.to_nfa();
        let start = out.add_state();
        out.set_start(start);
        for q in &entry {
            out.add_epsilon(start, q);
        }
        out.trim()
    }

    /// The existential right quotient `[self]·S⁻¹ = { w : ∃v ∈ [S], w·v ∈
    /// [self] }`.
    ///
    /// # Panics
    ///
    /// Never in practice: the unlimited budget cannot trip.
    pub fn right_quotient(&self, suffixes: &Nfa) -> Nfa {
        let d = Dfa::from_nfa(self);
        // `q` is final in the quotient iff some suffix leads from `q` to an
        // accepting state of `d`.
        let mut out = d.to_nfa();
        let finals: Vec<StateId> = out.finals().iter().copied().collect();
        for f in finals {
            out.unset_final(f);
        }
        for q in 0..d.num_states() {
            let reaches = suffix_reaches_final(&d, q, suffixes, &Budget::unlimited())
                .expect("the unlimited budget never trips");
            if reaches {
                out.set_final(q);
            }
        }
        out.trim()
    }

    /// The universal two-sided residual
    /// `{ w : ∀u ∈ [prefixes], ∀v ∈ [suffixes], u·w·v ∈ [self] }`.
    ///
    /// This is the *perfect* content language of a docking point: the words
    /// it may contribute so that **every** combination with realizable left
    /// and right contexts stays inside the target content model. When
    /// `[prefixes]` (or `[suffixes]`) is empty the constraint is vacuous and
    /// the result is `Σ*` over the union of the three alphabets.
    ///
    /// Determinises `self` on every call; see
    /// [`Dfa::universal_context_residual`] to reuse a cached determinisation.
    pub fn universal_context_residual(&self, prefixes: &Nfa, suffixes: &Nfa) -> Nfa {
        Dfa::from_nfa(self).universal_context_residual(prefixes, suffixes)
    }

    /// The **uniform** context residual: the words `w` such that
    /// substituting *the same* `w` into every gap of the context sequence
    /// stays in `[self]` —
    ///
    /// ```text
    /// { w : ∀u₀∈[C₀], …, ∀uₘ∈[Cₘ],  u₀·w·u₁·w·⋯·w·uₘ ∈ [self] }
    /// ```
    ///
    /// for `contexts = [C₀, …, Cₘ]` (so `w` occurs `m = contexts.len()-1`
    /// times; with two contexts this coincides with
    /// [`Nfa::universal_context_residual`]). This is the exact set of
    /// forest words a function may return when it docks *several* times
    /// under the same parent: every docking point receives a forest with
    /// the same root-word language, and every valid forest language is a
    /// subset of this one.
    ///
    /// The construction tracks the state *transformation* `δ_w : Q → Q`
    /// that `w` induces on the completed DFA of `[self]` (the words with
    /// equal transformations are indistinguishable, so the result is
    /// regular); the reachable transformation monoid is at most `|Q|^|Q|`
    /// but stays tiny for the content-model DFAs this is used on.
    ///
    /// Determinises `self` on every call; see
    /// [`Dfa::uniform_context_residual`] to reuse a cached determinisation.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` has fewer than two entries (no gap to fill).
    pub fn uniform_context_residual(&self, contexts: &[Nfa]) -> Nfa {
        Dfa::from_nfa(self).uniform_context_residual(contexts)
    }
}

impl Dfa {
    /// [`Nfa::universal_context_residual`] against an already-determinised
    /// subject language: `self` must recognise the subject (partial
    /// transition functions are fine — completion over the union of the
    /// alphabets happens here).
    ///
    /// This is the memoisation-friendly entry point: the synthesis loops
    /// determinise each content model once per problem and take residuals by
    /// many different contexts.
    ///
    /// # Panics
    ///
    /// Never in practice: the unlimited budget cannot trip.
    pub fn universal_context_residual(&self, prefixes: &Nfa, suffixes: &Nfa) -> Nfa {
        self.universal_context_residual_with_budget(prefixes, suffixes, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// Governed variant of [`Dfa::universal_context_residual`]: the
    /// set-simulation and the context reachability walks charge the budget
    /// and abort with [`AutomataError::BudgetExceeded`] when it trips.
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (a completed DFA missing an
    /// alphabet symbol).
    pub fn universal_context_residual_with_budget(
        &self,
        prefixes: &Nfa,
        suffixes: &Nfa,
        budget: &Budget,
    ) -> Result<Nfa, AutomataError> {
        budget.check_interrupts()?;
        let sigma = self
            .alphabet()
            .union(&prefixes.alphabet())
            .union(&suffixes.alphabet());
        let d = self.complete(&sigma);
        let ids = d.resolve_alphabet(&sigma);
        // States the target DFA can be in after reading any realizable
        // prefix. `w` must be good from *all* of them simultaneously.
        let entry = states_reachable_via(&d, prefixes, budget)?;
        // States from which every realizable suffix still accepts.
        let safe = states_where_all_suffixes_accept(&d, suffixes, budget)?;
        // Deterministic set-simulation: track the set of states the entry
        // set evolves into; accept iff it is entirely safe. The empty entry
        // set (no realizable prefix) is vacuously safe, yielding Σ*.
        let n = d.num_states();
        let mut sets: Vec<StateSet> = vec![entry.clone()];
        let mut index: FxHashMap<StateSet, usize> = FxHashMap::default();
        index.insert(entry, 0);
        let mut out = Nfa::new(1, 0);
        let mut queue = VecDeque::from([0usize]);
        budget.grow_states(1)?;
        while let Some(id) = queue.pop_front() {
            if sets[id].iter().all(|q| safe.contains(q)) {
                out.set_final(id);
            }
            for &(sym, sid) in &ids {
                budget.step()?;
                let sid = sid.expect("completed DFA mentions every alphabet symbol");
                let next = StateSet::from_iter(
                    n,
                    sets[id].iter().filter_map(|q| d.delta_local(q, sid)),
                );
                let next_id = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        budget.grow_states(1)?;
                        let i = out.add_state();
                        sets.push(next.clone());
                        index.insert(next, i);
                        queue.push_back(i);
                        i
                    }
                };
                out.add_transition(id, sym, next_id);
            }
        }
        Ok(out.trim())
    }

    /// [`Nfa::uniform_context_residual`] against an already-determinised
    /// subject language (see [`Dfa::universal_context_residual`] for the
    /// caching rationale).
    ///
    /// # Panics
    ///
    /// Panics if `contexts` has fewer than two entries (no gap to fill).
    pub fn uniform_context_residual(&self, contexts: &[Nfa]) -> Nfa {
        self.uniform_context_residual_with_budget(contexts, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// Governed variant of [`Dfa::uniform_context_residual`]: the
    /// transformation-monoid enumeration and the context reachability walks
    /// charge the budget and abort with [`AutomataError::BudgetExceeded`]
    /// when it trips.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` has fewer than two entries (no gap to fill).
    pub fn uniform_context_residual_with_budget(
        &self,
        contexts: &[Nfa],
        budget: &Budget,
    ) -> Result<Nfa, AutomataError> {
        assert!(contexts.len() >= 2, "uniform_context_residual needs at least two contexts");
        budget.check_interrupts()?;
        let mut sigma = self.alphabet();
        for c in contexts {
            sigma = sigma.union(&c.alphabet());
        }
        let d = self.complete(&sigma);
        let ids = d.resolve_alphabet(&sigma);
        let n = d.num_states();
        // Per inner context: the set-valued reachability map
        // q ↦ {δ*(q, u) : u ∈ [Cᵢ]} (the last context acts as a suffix
        // filter instead).
        let mut inner: Vec<Vec<StateSet>> = Vec::with_capacity(contexts.len() - 1);
        for c in &contexts[..contexts.len() - 1] {
            let mut maps = Vec::with_capacity(n);
            for q in 0..n {
                maps.push(states_reachable_via_from(&d, q, c, budget)?);
            }
            inner.push(maps);
        }
        // After the final `w`, every possible state must accept under *all*
        // words of the last context.
        let safe = states_where_all_suffixes_accept(&d, &contexts[contexts.len() - 1], budget)?;
        let accepts = |t: &[StateId]| -> bool {
            // Propagate the set of possible states through u₀ w u₁ w ⋯ w,
            // alternating context reachability and the transformation `t`.
            let mut possible: StateSet = inner[0][d.start()].clone();
            for r in inner.iter().skip(1) {
                let mut next = StateSet::empty(n);
                for q in &possible {
                    next.union_with(&r[t[q]]);
                }
                possible = next;
            }
            possible.iter().map(|q| t[q]).all(|q| safe.contains(q))
        };
        // Enumerate the reachable transformation monoid.
        let identity: Vec<StateId> = (0..n).collect();
        let mut trans: Vec<Vec<StateId>> = vec![identity.clone()];
        let mut index: FxHashMap<Vec<StateId>, usize> = FxHashMap::default();
        index.insert(identity, 0);
        let mut out = Nfa::new(1, 0);
        let mut queue = VecDeque::from([0usize]);
        budget.grow_states(1)?;
        while let Some(id) = queue.pop_front() {
            if accepts(&trans[id]) {
                out.set_final(id);
            }
            for &(sym, sid) in &ids {
                budget.step()?;
                let sid = sid.expect("completed DFA mentions every alphabet symbol");
                let next: Vec<StateId> = trans[id]
                    .iter()
                    .map(|&q| d.delta_local(q, sid).expect("completed DFA is total"))
                    .collect();
                let next_id = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        budget.grow_states(1)?;
                        let i = out.add_state();
                        trans.push(next.clone());
                        index.insert(next, i);
                        queue.push_back(i);
                        i
                    }
                };
                out.add_transition(id, sym, next_id);
            }
        }
        Ok(out.trim())
    }
}

/// The set `{ δ*(q₀, u) : u ∈ [prefixes] }` of states of `d` reachable by
/// reading some word of `[prefixes]` from the start state.
fn states_reachable_via(
    d: &Dfa,
    prefixes: &Nfa,
    budget: &Budget,
) -> Result<StateSet, AutomataError> {
    states_reachable_via_from(d, d.start(), prefixes, budget)
}

/// The set `{ δ*(q, u) : u ∈ [lang] }` of states of `d` reachable by
/// reading some word of `[lang]` from the state `q`.
fn states_reachable_via_from(
    d: &Dfa,
    q: StateId,
    prefixes: &Nfa,
    budget: &Budget,
) -> Result<StateSet, AutomataError> {
    // The product only moves on symbols both machines know; resolve the
    // local ids of the shared alphabet once.
    let ids = shared_ids(d, prefixes);
    let p_finals = prefixes.finals_set();
    let p0 = prefixes.start_closure();
    let start = (p0, q);
    let mut seen: FxHashSet<(StateSet, StateId)> = FxHashSet::from_iter([start.clone()]);
    let mut queue = VecDeque::from([start]);
    let mut out = StateSet::empty(d.num_states());
    while let Some((pset, q)) = queue.pop_front() {
        budget.step()?;
        if pset.intersects(&p_finals) {
            out.insert(q);
        }
        for &(dsid, psid) in &ids {
            let pnext = prefixes.step_local(&pset, psid);
            if pnext.is_empty() {
                continue;
            }
            let qnext = match d.delta_local(q, dsid) {
                Some(t) => t,
                None => continue,
            };
            let state = (pnext, qnext);
            if seen.insert(state.clone()) {
                queue.push_back(state);
            }
        }
    }
    Ok(out)
}

/// The set of states `q` of `d` such that **every** word of `[suffixes]`
/// read from `q` ends in an accepting state (missing transitions count as
/// rejection). States outside the set admit some suffix that rejects.
fn states_where_all_suffixes_accept(
    d: &Dfa,
    suffixes: &Nfa,
    budget: &Budget,
) -> Result<StateSet, AutomataError> {
    let mut out = StateSet::empty(d.num_states());
    for q in 0..d.num_states() {
        if !suffix_rejects_somewhere(d, q, suffixes, budget)? {
            out.insert(q);
        }
    }
    Ok(out)
}

/// Whether some word of `[suffixes]` read from `q` fails to accept in `d`.
fn suffix_rejects_somewhere(
    d: &Dfa,
    q: StateId,
    suffixes: &Nfa,
    budget: &Budget,
) -> Result<bool, AutomataError> {
    // Unlike the reachability walks, a suffix symbol *unknown* to `d` must
    // still be explored: a missing transition counts as rejection, so the
    // id list covers the whole suffix alphabet with an optional `d` side.
    let ids: Vec<(Option<u32>, u32)> = suffixes
        .alphabet()
        .iter()
        .filter_map(|s| Some((d.sym_id(s), suffixes.sym_id(s)?)))
        .collect();
    let s_finals = suffixes.finals_set();
    let s0 = suffixes.start_closure();
    let start = (s0, Some(q));
    let mut seen: FxHashSet<(StateSet, Option<StateId>)> = FxHashSet::from_iter([start.clone()]);
    let mut queue = VecDeque::from([start]);
    while let Some((sset, dq)) = queue.pop_front() {
        budget.step()?;
        let suffix_ends_here = sset.intersects(&s_finals);
        let accepts = dq.is_some_and(|t| d.is_final(t));
        if suffix_ends_here && !accepts {
            return Ok(true);
        }
        for &(dsid, ssid) in &ids {
            let snext = suffixes.step_local(&sset, ssid);
            if snext.is_empty() {
                continue;
            }
            let dnext = dq.and_then(|t| dsid.and_then(|sid| d.delta_local(t, sid)));
            let state = (snext, dnext);
            if seen.insert(state.clone()) {
                queue.push_back(state);
            }
        }
    }
    Ok(false)
}

/// Whether some word of `[suffixes]` read from `q` reaches an accepting
/// state of `d`.
fn suffix_reaches_final(
    d: &Dfa,
    q: StateId,
    suffixes: &Nfa,
    budget: &Budget,
) -> Result<bool, AutomataError> {
    let ids = shared_ids(d, suffixes);
    let s_finals = suffixes.finals_set();
    let s0 = suffixes.start_closure();
    let start = (s0, q);
    let mut seen: FxHashSet<(StateSet, StateId)> = FxHashSet::from_iter([start.clone()]);
    let mut queue = VecDeque::from([start]);
    while let Some((sset, dq)) = queue.pop_front() {
        budget.step()?;
        if sset.intersects(&s_finals) && d.is_final(dq) {
            return Ok(true);
        }
        for &(dsid, ssid) in &ids {
            let snext = suffixes.step_local(&sset, ssid);
            if snext.is_empty() {
                continue;
            }
            let dnext = match d.delta_local(dq, dsid) {
                Some(t) => t,
                None => continue,
            };
            let state = (snext, dnext);
            if seen.insert(state.clone()) {
                queue.push_back(state);
            }
        }
    }
    Ok(false)
}

/// The `(dfa local id, nfa local id)` pairs of the symbols both automata
/// mention. In the product walks above, symbols missing from either side
/// never fire (either the context cannot produce them or the subject DFA is
/// partial there and the walk stops anyway), so restricting to the shared
/// alphabet is exact.
fn shared_ids(d: &Dfa, other: &Nfa) -> Vec<(u32, u32)> {
    union_alphabet(d, other)
        .iter()
        .filter_map(|s| Some((d.sym_id(s)?, other.sym_id(s)?)))
        .collect()
}

fn union_alphabet(d: &Dfa, other: &Nfa) -> Alphabet {
    d.alphabet().union(&other.alphabet())
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::is_equivalent;
    use crate::regex::Regex;
    use crate::symbol::word_chars;

    fn re(s: &str) -> Nfa {
        Regex::parse_chars(s).unwrap().to_nfa()
    }

    #[test]
    fn left_quotient_basics() {
        // a⁻¹(ab)* = b(ab)*
        let q = re("(ab)*").left_quotient(&re("a"));
        assert!(is_equivalent(&q, &re("b(ab)*")));
        // (a*)⁻¹(a*b) = a*b
        let q2 = re("a*b").left_quotient(&re("a*"));
        assert!(is_equivalent(&q2, &re("a*b")));
        // Quotient by a disjoint language is empty.
        assert!(re("(ab)*").left_quotient(&re("b")).is_empty());
        // Quotient by the empty language is empty.
        assert!(re("(ab)*").left_quotient(&Nfa::empty()).is_empty());
    }

    #[test]
    fn right_quotient_basics() {
        // (ab)*·b⁻¹ = (ab)*a
        let q = re("(ab)*").right_quotient(&re("b"));
        assert!(is_equivalent(&q, &re("(ab)*a")));
        // (a*b)·b⁻¹ = a*
        let q2 = re("a*b").right_quotient(&re("b"));
        assert!(is_equivalent(&q2, &re("a*")));
        assert!(re("(ab)*").right_quotient(&Nfa::empty()).is_empty());
    }

    #[test]
    fn universal_residual_single_contexts() {
        // {w : a·w ∈ a b*} = b*
        let r = re("ab*").universal_context_residual(&re("a"), &Nfa::epsilon());
        assert!(is_equivalent(&r, &re("b*")));
        // {w : a·w·c ∈ a b* c} = b*
        let r2 = re("ab*c").universal_context_residual(&re("a"), &re("c"));
        assert!(is_equivalent(&r2, &re("b*")));
    }

    #[test]
    fn universal_residual_quantifies_over_all_contexts() {
        // L = aa | bb, prefix ranges over {a}: w must satisfy a·w ∈ L, so
        // w = a only.
        let r = re("aa + bb").universal_context_residual(&re("a"), &Nfa::epsilon());
        assert!(is_equivalent(&r, &re("a")));
        // Prefix ranges over {a, b}: no w works for both.
        let r2 = re("aa + bb").universal_context_residual(&re("a + b"), &Nfa::epsilon());
        assert!(r2.is_empty());
        // L = a*, prefix a*, suffix a*: every a-word works, nothing else.
        let r3 = re("a*").universal_context_residual(&re("a*"), &re("a*"));
        assert!(is_equivalent(&r3, &re("a*")));
        assert!(!r3.accepts(&word_chars("b")));
    }

    #[test]
    fn universal_residual_is_vacuous_on_empty_contexts() {
        // No realizable prefix: every word (over the combined alphabet)
        // qualifies, including words outside the target language.
        let r = re("ab").universal_context_residual(&Nfa::empty(), &Nfa::epsilon());
        assert!(r.accepts(&word_chars("ab")));
        assert!(r.accepts(&word_chars("ba")));
        assert!(r.accepts(&[]));
    }

    #[test]
    fn uniform_residual_single_gap_matches_universal() {
        for (l, pre, suf) in [("ab*c", "a", "c"), ("(ab)*", "a + ab", "ε"), ("aa + bb", "a + b", "ε")] {
            let l = re(l);
            let (p, s) = (re(pre), re(suf));
            let uni = l.uniform_context_residual(&[p.clone(), s.clone()]);
            let fre = l.universal_context_residual(&p, &s);
            assert!(is_equivalent(&uni, &fre), "L={l:?}");
        }
    }

    #[test]
    fn uniform_residual_substitutes_the_same_word_everywhere() {
        let eps = || Nfa::epsilon();
        // {w : w·w ∈ {aa, bb}} = {a, b}: each singleton works on its own.
        let u = re("aa + bb").uniform_context_residual(&[eps(), eps(), eps()]);
        assert!(u.accepts(&word_chars("a")));
        assert!(u.accepts(&word_chars("b")));
        assert!(!u.accepts(&[]));
        assert!(!u.accepts(&word_chars("ab")));
        // {w : w·w ∈ {a}} = ∅ (a single `a` cannot split evenly).
        assert!(re("a").uniform_context_residual(&[eps(), eps(), eps()]).is_empty());
        // {w : w·w ∈ (ab)*} = (ab)*.
        let sq = re("(ab)*").uniform_context_residual(&[eps(), eps(), eps()]);
        assert!(is_equivalent(&sq, &re("(ab)*")));
        // Inner contexts are quantified universally too:
        // {w : ∀v∈{b,bb}: w·v·w ∈ a b+ a} = {a}.
        let mid = re("ab+a").uniform_context_residual(&[eps(), re("b + bb"), eps()]);
        assert!(is_equivalent(&mid, &re("a")));
    }

    #[test]
    fn universal_residual_differs_from_existential_quotient() {
        // L = ab + bb. Existential left quotient by (a|b) is {b};
        // the universal residual by (a|b) is also... a·w∈L gives w=b,
        // b·w∈L gives w=b, so both are {b} here. Distinguish with
        // L = ab + bc: existential gives {b} ∪ {c} = words after a or b;
        // universal demands w work after *both* a and b: empty.
        let l = re("ab + bc");
        let exist = l.left_quotient(&re("a + b"));
        assert!(exist.accepts(&word_chars("b")));
        assert!(exist.accepts(&word_chars("c")));
        let univ = l.universal_context_residual(&re("a + b"), &Nfa::epsilon());
        assert!(univ.is_empty());
    }
}
