//! Dense state sets for the decision-procedure hot paths.
//!
//! Every set-shaped loop of the crate — the subset construction, the
//! quotient/residual walks, the equivalence BFS, the box-slot stepping and
//! (through the tree crate) the `Duta` membership frontiers — carries sets
//! of states of a *fixed, known universe* `0..n`. The seed represented them
//! as `BTreeSet<usize>`, which allocates a tree node per state per step;
//! [`StateSet`] replaces that with a **fixed-width bitset**:
//!
//! * universes of up to [`INLINE_STATES`] states (the tiny content-model
//!   automata that dominate the workloads) live **inline** in two `u64`
//!   words — cloning or stepping such a set allocates nothing at all, which
//!   is the small-automaton fallback role a sorted small-vec would play,
//!   with O(1) membership and branch-free unions on top;
//! * larger universes use one heap `Box<[u64]>` of `⌈n/64⌉` words — still a
//!   single allocation per set instead of one per element.
//!
//! Iteration ([`StateSet::iter`]) is always in **ascending state order**,
//! exactly like `BTreeSet<usize>` iteration, so every construction that
//! derives numbering, witness words or rendered output from set iteration
//! is byte-for-byte unchanged (pinned by the differential property tests in
//! `tests/stateset_props.rs`).
//!
//! Sets are only meaningfully comparable within one universe; `Eq`/`Hash`
//! include the universe so sets of different automata never alias in keyed
//! containers. The cardinality is maintained incrementally, making
//! [`StateSet::len`]/[`StateSet::is_empty`] O(1).

use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of inline words; universes of at most `64 * INLINE_WORDS` states
/// need no heap allocation.
const INLINE_WORDS: usize = 2;

/// The largest universe stored inline (without heap allocation).
pub const INLINE_STATES: usize = 64 * INLINE_WORDS;

/// A set of automaton states drawn from the fixed universe `0..universe()`.
///
/// See the [module docs](self) for the representation contract. The
/// universe is fixed at construction; inserting a state `>= universe()` is
/// a logic error (checked by a debug assertion, out of the release hot
/// path).
#[derive(Clone)]
pub struct StateSet {
    universe: u32,
    len: u32,
    words: Words,
}

#[derive(Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

impl StateSet {
    /// The empty set over the universe `0..universe`.
    ///
    /// # Panics
    ///
    /// Panics if `universe` exceeds `u32::MAX` states.
    pub fn empty(universe: usize) -> StateSet {
        let universe = u32::try_from(universe).expect("state universe exceeds u32");
        let words = if universe as usize <= INLINE_STATES {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0u64; (universe as usize).div_ceil(64)].into_boxed_slice())
        };
        StateSet { universe, len: 0, words }
    }

    /// The singleton `{state}` over `0..universe`.
    pub fn singleton(universe: usize, state: usize) -> StateSet {
        let mut set = StateSet::empty(universe);
        set.insert(state);
        set
    }

    /// Collects an iterator of states into a set over `0..universe`.
    pub fn from_iter(universe: usize, states: impl IntoIterator<Item = usize>) -> StateSet {
        let mut set = StateSet::empty(universe);
        for q in states {
            set.insert(q);
        }
        set
    }

    /// The universe size the set was created with.
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Number of states in the set (O(1): maintained incrementally).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty (O(1)).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(w) => w,
            Words::Heap(w) => w,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(w) => w,
            Words::Heap(w) => w,
        }
    }

    /// Inserts `state`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, state: usize) -> bool {
        debug_assert!(state < self.universe as usize, "state {state} outside universe {}", self.universe);
        let word = &mut self.words_mut()[state >> 6];
        let bit = 1u64 << (state & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        self.len += u32::from(fresh);
        fresh
    }

    /// Whether `state` belongs to the set.
    #[inline]
    pub fn contains(&self, state: usize) -> bool {
        debug_assert!(state < self.universe as usize, "state {state} outside universe {}", self.universe);
        self.words()[state >> 6] & (1u64 << (state & 63)) != 0
    }

    /// Removes every state from the set (keeping the universe).
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
        self.len = 0;
    }

    /// In-place union: `self ∪= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ — sets of different automata are
    /// never unioned.
    pub fn union_with(&mut self, other: &StateSet) {
        assert_eq!(self.universe, other.universe, "union of sets over different universes");
        let mut len = 0u32;
        for (w, o) in self.words_mut().iter_mut().zip(other.words()) {
            *w |= o;
            len += w.count_ones();
        }
        self.len = len;
    }

    /// Whether the two sets share no state.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_disjoint(&self, other: &StateSet) -> bool {
        assert_eq!(self.universe, other.universe, "comparing sets over different universes");
        self.words().iter().zip(other.words()).all(|(a, b)| a & b == 0)
    }

    /// Whether the two sets share at least one state (`!is_disjoint`).
    pub fn intersects(&self, other: &StateSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Iterates over the states in **ascending order** (the iteration
    /// contract every canonical numbering and witness construction relies
    /// on — identical to `BTreeSet<usize>` iteration).
    pub fn iter(&self) -> Iter<'_> {
        let words = self.words();
        Iter { words, index: 0, current: words.first().copied().unwrap_or(0) }
    }
}

/// Ascending iterator over the states of a [`StateSet`].
pub struct Iter<'a> {
    words: &'a [u64],
    index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.index += 1;
            self.current = *self.words.get(self.index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.index << 6) | bit)
    }
}

impl<'a> IntoIterator for &'a StateSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl PartialEq for StateSet {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.words() == other.words()
    }
}

impl Eq for StateSet {}

impl Hash for StateSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.universe);
        for w in self.words() {
            state.write_u64(*w);
        }
    }
}

impl PartialOrd for StateSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StateSet {
    /// A total order for deterministic containers: by universe, then by the
    /// word image. Not the lexicographic order of element sequences —
    /// nothing in the crate derives output from relative set order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.universe
            .cmp(&other.universe)
            .then_with(|| self.words().cmp(other.words()))
    }
}

impl fmt::Debug for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A deterministic xorshift for the differential cases.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn insert_contains_len_roundtrip() {
        for universe in [1usize, 7, 63, 64, 65, 128, 129, 500] {
            let mut set = StateSet::empty(universe);
            let mut reference = BTreeSet::new();
            let mut rng = Rng(universe as u64 + 1);
            for _ in 0..universe * 2 {
                let q = (rng.next() % universe as u64) as usize;
                assert_eq!(set.insert(q), reference.insert(q), "insert {q} (u={universe})");
                assert_eq!(set.len(), reference.len());
            }
            for q in 0..universe {
                assert_eq!(set.contains(q), reference.contains(&q), "contains {q}");
            }
            // Ascending iteration mirrors BTreeSet exactly.
            let got: Vec<usize> = set.iter().collect();
            let want: Vec<usize> = reference.iter().copied().collect();
            assert_eq!(got, want, "iteration order (u={universe})");
            set.clear();
            assert!(set.is_empty());
            assert_eq!(set.iter().count(), 0);
        }
    }

    #[test]
    fn union_and_disjointness_match_reference() {
        for universe in [3usize, 64, 130] {
            let mut rng = Rng(0x5eed + universe as u64);
            for _ in 0..20 {
                let mk = |rng: &mut Rng| {
                    let mut s = StateSet::empty(universe);
                    let mut r = BTreeSet::new();
                    for _ in 0..universe / 2 {
                        let q = (rng.next() % universe as u64) as usize;
                        s.insert(q);
                        r.insert(q);
                    }
                    (s, r)
                };
                let (mut a, mut ra) = mk(&mut rng);
                let (b, rb) = mk(&mut rng);
                assert_eq!(a.is_disjoint(&b), ra.is_disjoint(&rb));
                assert_eq!(a.intersects(&b), !ra.is_disjoint(&rb));
                a.union_with(&b);
                ra.extend(rb.iter().copied());
                assert_eq!(a.len(), ra.len());
                assert_eq!(a.iter().collect::<Vec<_>>(), ra.iter().copied().collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn equality_and_hashing_are_universe_aware() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &StateSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        let a = StateSet::from_iter(10, [1, 3, 7]);
        let b = StateSet::from_iter(10, [3, 7, 1]);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        // Same bits, different universe: distinct keys.
        let c = StateSet::from_iter(200, [1, 3, 7]);
        assert_ne!(a, c);
        assert_ne!(a.cmp(&c), std::cmp::Ordering::Equal, "total order distinguishes universes");
        let mut d = b.clone();
        d.insert(0);
        assert_ne!(a, d);
    }

    #[test]
    fn singleton_and_empty() {
        let s = StateSet::singleton(70, 65);
        assert_eq!(s.len(), 1);
        assert!(s.contains(65));
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![65]);
        assert_eq!(s.universe(), 70);
        assert!(StateSet::empty(1).is_empty());
        assert_eq!(format!("{:?}", StateSet::from_iter(5, [0, 2])), "{0, 2}");
    }
}
