//! Deterministic finite automata (dFAs).
//!
//! A dFA is an nFA whose transition relation is a function `K × Σ → K`
//! (Section 2.1.2). The transition function here is allowed to be *partial*
//! (missing transitions go to an implicit rejecting sink); [`Dfa::complete`]
//! materialises the sink when a total function is needed (for complement).
//!
//! The module provides the subset construction ([`Dfa::from_nfa`]),
//! completion, complementation, partition-refinement minimisation
//! ([`Dfa::minimize`]) and pairwise product. Minimal DFAs are the input of
//! the Brüggemann-Klein/Wood one-unambiguity test in [`crate::dre`].
//!
//! Like [`Nfa`], the transition function is stored densely: a per-automaton
//! symbol index maps each [`Symbol`] to a local `u32`, and every state keeps
//! a sorted `(local symbol, successor)` vector with at most one entry per
//! symbol. `δ(q, a)` is a hash of an interned id plus a binary search —
//! no string is ever compared. The determinism-sensitive search procedures
//! (subset construction, product, shortest-word BFS) still *scan* alphabets
//! in text order so state numbering and witness words stay canonical.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dxml_telemetry as telemetry;

use crate::error::AutomataError;
use crate::hash::FxHashMap;
use crate::limits::Budget;
use crate::nfa::{Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::{Alphabet, Symbol, Word};

/// A deterministic finite automaton with a (possibly partial) transition
/// function.
#[derive(Clone)]
pub struct Dfa {
    num_states: usize,
    start: StateId,
    finals: BTreeSet<StateId>,
    /// Local symbol index → symbol, in first-seen order.
    syms: Vec<Symbol>,
    /// Symbol → local index into `syms`.
    sym_index: FxHashMap<Symbol, u32>,
    /// `trans[q]`: sorted by local symbol, at most one entry per symbol.
    trans: Vec<Vec<(u32, StateId)>>,
}

impl Dfa {
    /// Creates a DFA with `num_states` states, the given start state, no
    /// transitions and no final states.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0` — a DFA always has at least its start
    /// state (see [`Nfa::new`] for the rationale).
    pub fn new(num_states: usize, start: StateId) -> Self {
        assert!(num_states > 0, "a Dfa needs at least one state (the start state)");
        assert!(start < num_states, "start state out of range");
        Dfa {
            num_states,
            start,
            finals: BTreeSet::new(),
            syms: Vec::new(),
            sym_index: FxHashMap::default(),
            trans: vec![Vec::new(); num_states],
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.num_states += 1;
        self.num_states - 1
    }

    /// The local index of `sym`, allocating one if it is new.
    fn local_id(&mut self, sym: Symbol) -> u32 {
        match self.sym_index.get(&sym) {
            Some(&i) => i,
            None => {
                let i = u32::try_from(self.syms.len()).expect("alphabet exceeds u32 indices");
                self.syms.push(sym);
                self.sym_index.insert(sym, i);
                i
            }
        }
    }

    /// Sets the (unique) transition `from --sym--> to`, replacing any
    /// existing transition on the same symbol.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is not a state of the automaton.
    pub fn set_transition(&mut self, from: StateId, sym: impl Into<Symbol>, to: StateId) {
        assert!(from < self.num_states && to < self.num_states);
        let sid = self.local_id(sym.into());
        let v = &mut self.trans[from];
        match v.binary_search_by_key(&sid, |&(s, _)| s) {
            Ok(pos) => v[pos].1 = to,
            Err(pos) => v.insert(pos, (sid, to)),
        }
    }

    /// Marks a state as final.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not a state of the automaton.
    pub fn set_final(&mut self, state: StateId) {
        assert!(state < self.num_states);
        self.finals.insert(state);
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// The (partial) transition `δ(q, a)`.
    pub fn delta(&self, q: StateId, sym: &Symbol) -> Option<StateId> {
        let sid = self.sym_id(sym)?;
        self.delta_local(q, sid)
    }

    // ------------------------------------------------------------------
    // Local-index plumbing (crate-internal hot-path API)
    // ------------------------------------------------------------------

    /// The local index of `sym`, if it appears on any transition.
    pub(crate) fn sym_id(&self, sym: &Symbol) -> Option<u32> {
        self.sym_index.get(sym).copied()
    }

    /// `δ(q, a)` through the local symbol index.
    pub(crate) fn delta_local(&self, q: StateId, sid: u32) -> Option<StateId> {
        let v = &self.trans[q];
        v.binary_search_by_key(&sid, |&(s, _)| s).ok().map(|pos| v[pos].1)
    }

    /// The `(symbol, local id)` pairs of `alphabet` resolved against this
    /// automaton's index, in the iteration (text) order of `alphabet`.
    /// Symbols the automaton never mentions resolve to `None`.
    pub(crate) fn resolve_alphabet(&self, alphabet: &Alphabet) -> Vec<(Symbol, Option<u32>)> {
        alphabet.iter().map(|&s| (s, self.sym_id(&s))).collect()
    }

    /// Iterates over the outgoing transitions of a state (in local-index
    /// order, which is first-seen order — not text order).
    pub fn transitions_from(&self, q: StateId) -> impl Iterator<Item = (&Symbol, StateId)> + '_ {
        self.trans[q].iter().map(|&(s, t)| (&self.syms[s as usize], t))
    }

    /// Iterates over all transitions `(from, symbol, to)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, &Symbol, StateId)> + '_ {
        (0..self.num_states)
            .flat_map(move |q| self.trans[q].iter().map(move |&(s, t)| (q, &self.syms[s as usize], t)))
    }

    /// The alphabet of symbols appearing on transitions.
    pub fn alphabet(&self) -> Alphabet {
        self.syms.iter().copied().collect()
    }

    /// Runs the automaton on `word`, returning the reached state (or `None`
    /// if a transition is missing).
    pub fn run(&self, word: &[Symbol]) -> Option<StateId> {
        let mut q = self.start;
        for sym in word {
            q = self.delta(q, sym)?;
        }
        Some(q)
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.run(word).is_some_and(|q| self.is_final(q))
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.to_nfa().is_empty()
    }

    /// A shortest accepted word, if any.
    pub fn shortest_accepted(&self) -> Option<Word> {
        self.to_nfa().shortest_accepted()
    }

    // ------------------------------------------------------------------
    // Constructions
    // ------------------------------------------------------------------

    /// Subset construction: builds the DFA of reachable state sets of `nfa`.
    ///
    /// # Panics
    ///
    /// Never in practice: the unlimited budget cannot trip.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        Dfa::from_nfa_with_budget(nfa, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// [`Dfa::from_nfa`] under a [`Budget`]: the worst case is exponential
    /// (2^n subset states), so every `(state set, symbol)` expansion counts
    /// one step and every discovered subset state counts against the state
    /// quota. With the unlimited budget the construction is byte-identical
    /// to [`Dfa::from_nfa`].
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (an alphabet symbol of `nfa`
    /// without a local id).
    pub fn from_nfa_with_budget(nfa: &Nfa, budget: &Budget) -> Result<Dfa, AutomataError> {
        budget.check_interrupts()?;
        // Scan symbols in text order (canonical state numbering), step
        // through the NFA's local ids.
        let syms = {
            let mut v: Vec<Symbol> = nfa.alphabet().to_vec();
            v.sort_unstable();
            v
        };
        let sids: Vec<u32> = syms.iter().map(|s| nfa.sym_id(s).expect("alphabet symbol")).collect();
        let finals = nfa.finals_set();
        let start_set = nfa.start_closure();
        let mut index: FxHashMap<StateSet, StateId> = FxHashMap::default();
        let mut dfa = Dfa::new(1, 0);
        index.insert(start_set.clone(), 0);
        budget.grow_states(1)?;
        let mut queue = VecDeque::from([start_set]);
        // Telemetry is flushed once at the end from local tallies, so the
        // loop itself carries no per-step atomic traffic.
        let mut steps: u64 = 0;
        while let Some(set) = queue.pop_front() {
            let id = index[&set];
            if set.intersects(&finals) {
                dfa.set_final(id);
            }
            for (sym, &sid) in syms.iter().zip(&sids) {
                steps += 1;
                budget.step()?;
                let next = nfa.step_local(&set, sid);
                if next.is_empty() {
                    continue;
                }
                let next_id = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        budget.grow_states(1)?;
                        let i = dfa.add_state();
                        index.insert(next.clone(), i);
                        queue.push_back(next);
                        i
                    }
                };
                dfa.set_transition(id, *sym, next_id);
            }
        }
        telemetry::count(telemetry::Metric::SubsetConstructions, 1);
        telemetry::count(telemetry::Metric::SubsetStates, dfa.num_states as u64);
        telemetry::count(telemetry::Metric::SubsetTransitions, steps);
        telemetry::observe(telemetry::Hist::SubsetDfaStates, dfa.num_states as u64);
        Ok(dfa)
    }

    /// Completes the transition function over `alphabet` by adding a
    /// rejecting sink state where needed. The result is total over
    /// `alphabet ∪ alphabet(self)`.
    pub fn complete(&self, alphabet: &Alphabet) -> Dfa {
        let full = alphabet.union(&self.alphabet());
        let mut out = self.clone();
        let needs_sink = (0..out.num_states).any(|q| out.trans[q].len() < full.len());
        if !needs_sink {
            return out;
        }
        let sink = out.add_state();
        for sym in &full {
            let sid = out.local_id(*sym);
            for q in 0..out.num_states {
                if out.delta_local(q, sid).is_none() {
                    let v = &mut out.trans[q];
                    let pos = v.partition_point(|&(s, _)| s < sid);
                    v.insert(pos, (sid, sink));
                }
            }
        }
        out
    }

    /// Complement of a *complete* DFA (flips final states). Use
    /// [`Dfa::complete`] first if the automaton may be partial.
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        out.finals = (0..out.num_states).filter(|q| !self.finals.contains(q)).collect();
        out
    }

    /// Converts to an NFA.
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::new(self.num_states, self.start);
        for (q, sym, t) in self.transitions() {
            nfa.add_transition(q, *sym, t);
        }
        for &f in &self.finals {
            nfa.set_final(f);
        }
        nfa
    }

    /// Restricts to states reachable from the start state.
    pub fn trim_reachable(&self) -> Dfa {
        let mut seen = StateSet::singleton(self.num_states, self.start);
        let mut stack = vec![self.start];
        while let Some(q) = stack.pop() {
            for &(_, t) in &self.trans[q] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        let keep: Vec<StateId> = seen.iter().collect();
        let index: BTreeMap<StateId, StateId> = keep.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let mut out = Dfa::new(keep.len(), index[&self.start]);
        for &q in &keep {
            for (sym, t) in self.transitions_from(q) {
                if let Some(&ti) = index.get(&t) {
                    out.set_transition(index[&q], *sym, ti);
                }
            }
            if self.is_final(q) {
                out.set_final(index[&q]);
            }
        }
        out
    }

    /// Minimises the DFA by partition refinement (Moore's algorithm) after
    /// completing it over its own alphabet and removing unreachable states.
    ///
    /// The result is the canonical minimal *complete* DFA of the language,
    /// except that a useless sink is removed again at the end, so the minimal
    /// automaton of a finite language has no sink state. This matches the
    /// usual "minimal deterministic automaton" the Brüggemann-Klein/Wood
    /// construction works with.
    pub fn minimize(&self) -> Dfa {
        let alphabet = self.alphabet();
        let complete = self.complete(&alphabet).trim_reachable();
        let n = complete.num_states;
        // Initial partition: finals vs non-finals.
        let mut class: Vec<usize> = (0..n).map(|q| usize::from(complete.is_final(q))).collect();
        let mut num_classes = 2;
        loop {
            // Signature of each state: (class, sorted successor classes per symbol)
            let mut signatures: BTreeMap<(usize, Vec<(Symbol, usize)>), usize> = BTreeMap::new();
            let mut new_class = vec![0usize; n];
            for q in 0..n {
                let mut succ: Vec<(Symbol, usize)> = complete
                    .transitions_from(q)
                    .map(|(s, t)| (*s, class[t]))
                    .collect();
                succ.sort();
                let key = (class[q], succ);
                let next_id = signatures.len();
                let id = *signatures.entry(key).or_insert(next_id);
                new_class[q] = id;
            }
            let new_num = signatures.len();
            if new_num == num_classes {
                class = new_class;
                break;
            }
            class = new_class;
            num_classes = new_num;
        }
        let mut out = Dfa::new(num_classes, class[complete.start]);
        for q in 0..n {
            for (sym, t) in complete.transitions_from(q) {
                out.set_transition(class[q], *sym, class[t]);
            }
            if complete.is_final(q) {
                out.set_final(class[q]);
            }
        }
        out.remove_useless_sink()
    }

    /// Removes a non-final state with no path to a final state (the sink
    /// introduced by completion), if present, together with its transitions.
    fn remove_useless_sink(&self) -> Dfa {
        let nfa = self.to_nfa();
        let coreach = nfa.coreachable_to(&nfa.finals_set());
        let keep: Vec<StateId> = (0..self.num_states)
            .filter(|q| coreach.contains(*q) || *q == self.start)
            .collect();
        if keep.len() == self.num_states {
            return self.clone();
        }
        let index: BTreeMap<StateId, StateId> = keep.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let mut out = Dfa::new(keep.len(), index[&self.start]);
        for &q in &keep {
            for (sym, t) in self.transitions_from(q) {
                if let Some(&ti) = index.get(&t) {
                    out.set_transition(index[&q], *sym, ti);
                }
            }
            if self.is_final(q) {
                out.set_final(index[&q]);
            }
        }
        out
    }

    /// Product automaton where acceptance is decided by `accept(f1, f2)`
    /// applied to the two component acceptance flags (so `&&` gives the
    /// intersection, `||` the union, `and not` the difference). Both DFAs are
    /// completed over the union of the alphabets first.
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (a completed DFA missing a
    /// symbol of the union alphabet).
    pub fn product(&self, other: &Dfa, accept: impl Fn(bool, bool) -> bool) -> Dfa {
        let alphabet = self.alphabet().union(&other.alphabet());
        let a = self.complete(&alphabet);
        let b = other.complete(&alphabet);
        // Both components are total over `alphabet` after completion, so
        // every symbol resolves in both.
        let syms: Vec<(Symbol, u32, u32)> = alphabet
            .iter()
            .map(|&s| {
                (
                    s,
                    a.sym_id(&s).expect("completed over alphabet"),
                    b.sym_id(&s).expect("completed over alphabet"),
                )
            })
            .collect();
        let mut index: FxHashMap<(StateId, StateId), StateId> = FxHashMap::default();
        let mut out = Dfa::new(1, 0);
        index.insert((a.start, b.start), 0);
        let mut queue = VecDeque::from([(a.start, b.start)]);
        while let Some((p, q)) = queue.pop_front() {
            let id = index[&(p, q)];
            if accept(a.is_final(p), b.is_final(q)) {
                out.set_final(id);
            }
            for &(sym, sa, sb) in &syms {
                let (tp, tq) = match (a.delta_local(p, sa), b.delta_local(q, sb)) {
                    (Some(tp), Some(tq)) => (tp, tq),
                    _ => continue,
                };
                let tid = match index.get(&(tp, tq)) {
                    Some(&i) => i,
                    None => {
                        let i = out.add_state();
                        index.insert((tp, tq), i);
                        queue.push_back((tp, tq));
                        i
                    }
                };
                out.set_transition(id, sym, tid);
            }
        }
        out
    }
}

impl PartialEq for Dfa {
    /// Structural equality up to the (internal) local symbol numbering.
    fn eq(&self, other: &Self) -> bool {
        if self.num_states != other.num_states
            || self.start != other.start
            || self.finals != other.finals
        {
            return false;
        }
        (0..self.num_states).all(|q| {
            if self.trans[q].len() != other.trans[q].len() {
                return false;
            }
            let canon = |dfa: &Dfa, v: &[(u32, StateId)]| -> Vec<(Symbol, StateId)> {
                let mut out: Vec<(Symbol, StateId)> =
                    v.iter().map(|&(s, t)| (dfa.syms[s as usize], t)).collect();
                out.sort_unstable();
                out
            };
            canon(self, &self.trans[q]) == canon(other, &other.trans[q])
        })
    }
}

impl Eq for Dfa {}

impl fmt::Debug for Dfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dfa(states={}, start={}, finals={:?})", self.num_states, self.start, self.finals)?;
        for (q, s, t) in self.transitions() {
            writeln!(f, "  {q} --{s}--> {t}")?;
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::word_chars;

    fn ab() -> Alphabet {
        Alphabet::from_chars("ab")
    }

    #[test]
    fn subset_construction_preserves_language() {
        // (a|b)*abb — the classic example
        let sigma = Nfa::any_of(["a", "b"]).star();
        let tail = Nfa::literal(&word_chars("abb"));
        let nfa = sigma.concat(&tail);
        let dfa = Dfa::from_nfa(&nfa);
        for w in ["abb", "aabb", "babb", "abab", "", "ab", "abba"] {
            assert_eq!(nfa.accepts(&word_chars(w)), dfa.accepts(&word_chars(w)), "word {w}");
        }
    }

    #[test]
    fn minimize_produces_canonical_size() {
        // (a|b)*abb has a 4-state minimal DFA (without sink).
        let nfa = Nfa::any_of(["a", "b"]).star().concat(&Nfa::literal(&word_chars("abb")));
        let min = Dfa::from_nfa(&nfa).minimize();
        assert_eq!(min.num_states(), 4);
        for w in ["abb", "aabb", "ababb", "", "ab", "ba"] {
            assert_eq!(min.accepts(&word_chars(w)), nfa.accepts(&word_chars(w)), "word {w}");
        }
    }

    #[test]
    fn minimize_merges_equivalent_states() {
        // a|b as two separate branches minimises to 2 states.
        let nfa = Nfa::symbol("a").union(&Nfa::symbol("b"));
        let min = Dfa::from_nfa(&nfa).minimize();
        assert_eq!(min.num_states(), 2);
    }

    #[test]
    fn complement_via_completion() {
        let astar = Nfa::symbol("a").star();
        let dfa = Dfa::from_nfa(&astar).complete(&ab());
        let comp = dfa.complement();
        assert!(!comp.accepts(&[]));
        assert!(comp.accepts(&word_chars("b")));
        assert!(comp.accepts(&word_chars("ab")));
        assert!(!comp.accepts(&word_chars("aaa")));
    }

    #[test]
    fn product_intersection_and_union() {
        let astar_b = Dfa::from_nfa(&Nfa::symbol("a").star().concat(&Nfa::symbol("b")));
        let a_bstar = Dfa::from_nfa(&Nfa::symbol("a").concat(&Nfa::symbol("b").star()));
        let inter = astar_b.product(&a_bstar, |x, y| x && y);
        assert!(inter.accepts(&word_chars("ab")));
        assert!(!inter.accepts(&word_chars("aab")));
        assert!(!inter.accepts(&word_chars("abb")));
        let union = astar_b.product(&a_bstar, |x, y| x || y);
        assert!(union.accepts(&word_chars("aab")));
        assert!(union.accepts(&word_chars("abb")));
        assert!(!union.accepts(&word_chars("ba")));
    }

    #[test]
    fn run_and_partiality() {
        let dfa = Dfa::from_nfa(&Nfa::literal(&word_chars("ab")));
        assert!(dfa.accepts(&word_chars("ab")));
        assert!(!dfa.accepts(&word_chars("ba")));
        assert_eq!(dfa.run(&word_chars("ba")), None);
        assert!(dfa.shortest_accepted().is_some());
        assert!(!dfa.is_empty());
    }
}
