//! A small in-repo FxHash-style hasher for the hot paths.
//!
//! The automata hot loops key `HashMap`s by dense `u32` ids (interned
//! [`crate::Symbol`]s, per-automaton symbol indices, state ids). SipHash —
//! the DoS-resistant default of `std::collections::HashMap` — costs more
//! than the rest of such a lookup put together, and the build is offline, so
//! pulling in `rustc-hash` is not an option. This module reimplements the
//! same multiply-and-rotate construction (the Firefox/rustc "Fx" hash) on
//! top of `std` only.
//!
//! The hasher is **not** collision-resistant against adversarial keys; it is
//! meant for internal ids and interned symbols, never for untrusted input
//! keys of unbounded shape.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the Fx construction (a 64-bit "random-looking" odd
/// constant, the same one rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] in the Fx (rustc/Firefox) style:
/// every machine word is folded in with a rotate-xor-multiply round.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Fold the length in so prefixes hash differently from their
            // zero-padded extensions.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — the container of choice for id-keyed hot
/// paths (symbol indices, subset-construction tables).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (used to pick interner shards).
#[inline]
pub fn fx_hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(fx_hash_str("abc"), fx_hash_str("abc"));
        assert_ne!(fx_hash_str("abc"), fx_hash_str("abd"));
        assert_ne!(fx_hash_str("abc"), fx_hash_str("abc\0"));
        assert_ne!(fx_hash_str(""), fx_hash_str("\0"));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"x"));
        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("a".to_string());
        assert!(s.contains("a"));
    }
}
