//! (Possibly nondeterministic) regular expressions — the paper's `nRE`s.
//!
//! The abstract syntax follows Section 2.1.2:
//!
//! ```text
//! r ::= ε | ∅ | a | (r · r) | (r + r) | r? | r+ | r*
//! ```
//!
//! Two textual syntaxes are supported:
//!
//! * **identifier mode** ([`Regex::parse`]) — symbols are identifiers such as
//!   `nationalIndex`; concatenation is written by juxtaposition or `,` (as in
//!   DTD content models), alternation by `|`, and `+`/`*`/`?` are postfix.
//!   This is the syntax of Figures 3–6 of the paper.
//! * **character mode** ([`Regex::parse_chars`]) — every alphanumeric
//!   character is a symbol, as in the paper's compact examples (`a∗bc∗`,
//!   `(ab)+`, `ab + ba`). A `+` with whitespace before it is alternation,
//!   otherwise it is the postfix iterator; `|` is always alternation.
//!
//! The module provides the Thompson translation to [`Nfa`]s and the Glushkov
//! (position) automaton used by the one-unambiguity test of [`crate::dre`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::AutomataError;
use crate::nfa::Nfa;
use crate::symbol::{Alphabet, Symbol};

/// A regular expression over [`Symbol`]s.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single symbol.
    Sym(Symbol),
    /// Concatenation of the sub-expressions, in order.
    Concat(Vec<Regex>),
    /// Alternation (union) of the sub-expressions.
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// One-or-more `r+`.
    Plus(Box<Regex>),
    /// Optional `r?`.
    Opt(Box<Regex>),
}

impl Regex {
    /// Builds a single-symbol expression.
    pub fn sym(s: impl Into<Symbol>) -> Regex {
        Regex::Sym(s.into())
    }

    /// Concatenation helper that flattens nested concatenations.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Regex::Concat(inner) => flat.extend(inner),
                Regex::Epsilon => {}
                other => flat.push(other),
            }
        }
        match flat.pop() {
            None => Regex::Epsilon,
            Some(last) if flat.is_empty() => last,
            Some(last) => {
                flat.push(last);
                Regex::Concat(flat)
            }
        }
    }

    /// Alternation helper that flattens nested alternations.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Regex::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.pop() {
            None => Regex::Empty,
            Some(last) if flat.is_empty() => last,
            Some(last) => {
                flat.push(last);
                Regex::Alt(flat)
            }
        }
    }

    /// `r*`.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// `r+`.
    pub fn plus(self) -> Regex {
        Regex::Plus(Box::new(self))
    }

    /// `r?`.
    pub fn opt(self) -> Regex {
        Regex::Opt(Box::new(self))
    }

    /// Parses an expression in identifier mode (symbols are identifiers;
    /// see the module documentation).
    pub fn parse(input: &str) -> Result<Regex, AutomataError> {
        Parser::new(input, Mode::Ident)?.parse()
    }

    /// Parses an expression in character mode (every alphanumeric character
    /// is a symbol; see the module documentation).
    pub fn parse_chars(input: &str) -> Result<Regex, AutomataError> {
        Parser::new(input, Mode::Chars)?.parse()
    }

    /// The number of nodes of the expression (a simple size measure).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => 1 + r.size(),
        }
    }

    /// The set of symbols occurring in the expression.
    pub fn alphabet(&self) -> Alphabet {
        let mut out = Alphabet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Alphabet) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => {
                out.insert(*s);
            }
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.collect_symbols(out),
        }
    }

    /// Whether ε belongs to the language.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(r) => r.nullable(),
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Translates to an NFA by the Thompson-style construction (linear size,
    /// uses ε-transitions).
    pub fn to_nfa(&self) -> Nfa {
        match self {
            Regex::Empty => Nfa::empty(),
            Regex::Epsilon => Nfa::epsilon(),
            Regex::Sym(s) => Nfa::symbol(*s),
            Regex::Concat(parts) => parts
                .iter()
                .map(Regex::to_nfa)
                .reduce(|a, b| a.concat(&b))
                .unwrap_or_else(Nfa::epsilon),
            Regex::Alt(parts) => {
                let nfas: Vec<Nfa> = parts.iter().map(Regex::to_nfa).collect();
                Nfa::union_all(nfas.iter())
            }
            Regex::Star(r) => r.to_nfa().star(),
            Regex::Plus(r) => r.to_nfa().plus(),
            Regex::Opt(r) => r.to_nfa().optional(),
        }
    }

    /// The Glushkov (position) automaton of the expression: an ε-free NFA
    /// with one state per symbol occurrence plus an initial state.
    pub fn glushkov(&self) -> Glushkov {
        Glushkov::build(self)
    }

    /// Whether the expression accepts `word` (convenience wrapper over
    /// [`Regex::to_nfa`]).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.to_nfa().accepts(word)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(re: &Regex, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
            // precedence: alt=0, concat=1, postfix=2, atom=3
            let prec = match re {
                Regex::Alt(_) => 0,
                Regex::Concat(_) => 1,
                Regex::Star(_) | Regex::Plus(_) | Regex::Opt(_) => 2,
                _ => 3,
            };
            let need_paren = prec < parent_prec;
            if need_paren {
                write!(f, "(")?;
            }
            match re {
                Regex::Empty => write!(f, "∅")?,
                Regex::Epsilon => write!(f, "ε")?,
                Regex::Sym(s) => write!(f, "{s}")?,
                Regex::Concat(parts) => {
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        rec(p, f, 2)?;
                    }
                }
                Regex::Alt(parts) => {
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        rec(p, f, 1)?;
                    }
                }
                Regex::Star(r) => {
                    rec(r, f, 3)?;
                    write!(f, "*")?;
                }
                Regex::Plus(r) => {
                    rec(r, f, 3)?;
                    write!(f, "+")?;
                }
                Regex::Opt(r) => {
                    rec(r, f, 3)?;
                    write!(f, "?")?;
                }
            }
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(self, f, 0)
    }
}

// ----------------------------------------------------------------------
// Glushkov automaton
// ----------------------------------------------------------------------

/// The Glushkov (position) automaton of a regular expression.
///
/// Positions are numbered `1..=n` in left-to-right order of symbol
/// occurrences; state `0` is the initial state. The expression is
/// *deterministic* (one-unambiguous, a `dRE`) exactly when this automaton is
/// deterministic — see [`Glushkov::is_deterministic`] and [`crate::dre`].
#[derive(Debug, Clone)]
pub struct Glushkov {
    /// The symbol at each position (index 0 is unused).
    pub position_symbols: Vec<Symbol>,
    /// Whether ε belongs to the language.
    pub nullable: bool,
    /// Positions that can start a word.
    pub first: BTreeSet<usize>,
    /// Positions that can end a word.
    pub last: BTreeSet<usize>,
    /// `follow[p]` = positions that can immediately follow position `p`.
    pub follow: Vec<BTreeSet<usize>>,
}

impl Glushkov {
    fn build(re: &Regex) -> Glushkov {
        struct Ctx {
            symbols: Vec<Symbol>,
            follow: Vec<BTreeSet<usize>>,
        }
        struct Info {
            nullable: bool,
            first: BTreeSet<usize>,
            last: BTreeSet<usize>,
        }
        fn go(re: &Regex, ctx: &mut Ctx) -> Info {
            match re {
                Regex::Empty => Info { nullable: false, first: BTreeSet::new(), last: BTreeSet::new() },
                Regex::Epsilon => Info { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() },
                Regex::Sym(s) => {
                    ctx.symbols.push(*s);
                    ctx.follow.push(BTreeSet::new());
                    let p = ctx.symbols.len() - 1; // positions counted from 1 via dummy below
                    Info {
                        nullable: false,
                        first: BTreeSet::from([p]),
                        last: BTreeSet::from([p]),
                    }
                }
                Regex::Concat(parts) => {
                    let mut acc = Info { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() };
                    for part in parts {
                        let info = go(part, ctx);
                        // follow: every last of acc is followed by every first of info
                        for &l in &acc.last {
                            for &fpos in &info.first {
                                ctx.follow[l].insert(fpos);
                            }
                        }
                        if acc.nullable {
                            acc.first.extend(info.first.iter().copied());
                        }
                        if info.nullable {
                            acc.last.extend(info.last.iter().copied());
                        } else {
                            acc.last = info.last;
                        }
                        acc.nullable = acc.nullable && info.nullable;
                    }
                    acc
                }
                Regex::Alt(parts) => {
                    let mut acc = Info { nullable: false, first: BTreeSet::new(), last: BTreeSet::new() };
                    for part in parts {
                        let info = go(part, ctx);
                        acc.nullable = acc.nullable || info.nullable;
                        acc.first.extend(info.first);
                        acc.last.extend(info.last);
                    }
                    acc
                }
                Regex::Star(r) | Regex::Plus(r) => {
                    let info = go(r, ctx);
                    for &l in &info.last {
                        for &fpos in &info.first {
                            ctx.follow[l].insert(fpos);
                        }
                    }
                    Info {
                        nullable: info.nullable || matches!(re, Regex::Star(_)),
                        first: info.first,
                        last: info.last,
                    }
                }
                Regex::Opt(r) => {
                    let info = go(r, ctx);
                    Info { nullable: true, first: info.first, last: info.last }
                }
            }
        }
        let mut ctx = Ctx { symbols: vec![Symbol::new("#start")], follow: vec![BTreeSet::new()] };
        // Positions are indices into ctx.symbols starting at 1; the dummy at
        // index 0 keeps the numbering aligned with the initial state.
        // `go` pushes onto both vectors so positions and follow stay in sync.
        let info = {
            // Temporarily shift: go() uses symbols.len()-1, so with the dummy
            // the first position is 1.
            go(re, &mut ctx)
        };
        Glushkov {
            position_symbols: ctx.symbols,
            nullable: info.nullable || re.nullable(),
            first: info.first,
            last: info.last,
            follow: ctx.follow,
        }
    }

    /// Number of positions (symbol occurrences).
    pub fn num_positions(&self) -> usize {
        self.position_symbols.len() - 1
    }

    /// Whether the Glushkov automaton is deterministic, i.e. whether the
    /// originating expression is one-unambiguous (a `dRE`).
    pub fn is_deterministic(&self) -> bool {
        let distinct_symbols = |positions: &BTreeSet<usize>| {
            let mut seen: BTreeMap<&Symbol, usize> = BTreeMap::new();
            for &p in positions {
                let sym = &self.position_symbols[p];
                if let Some(&other) = seen.get(sym) {
                    if other != p {
                        return false;
                    }
                }
                seen.insert(sym, p);
            }
            true
        };
        if !distinct_symbols(&self.first) {
            return false;
        }
        (1..self.position_symbols.len()).all(|p| distinct_symbols(&self.follow[p]))
    }

    /// The Glushkov automaton as an ε-free [`Nfa`].
    pub fn to_nfa(&self) -> Nfa {
        let n = self.position_symbols.len();
        let mut nfa = Nfa::new(n, 0);
        for &p in &self.first {
            nfa.add_transition(0, self.position_symbols[p], p);
        }
        for p in 1..n {
            for &q in &self.follow[p] {
                nfa.add_transition(p, self.position_symbols[q], q);
            }
        }
        for &p in &self.last {
            nfa.set_final(p);
        }
        if self.nullable {
            nfa.set_final(0);
        }
        nfa
    }
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Ident,
    Chars,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Sym(Symbol),
    LParen,
    RParen,
    Star,
    PostPlus,
    AltOp,
    Question,
    Epsilon,
    EmptySet,
    /// An explicit concatenation separator (`,`, `·` or `.`). Kept as a real
    /// token (rather than skipped at tokenisation time) so that an *empty*
    /// operand — `a,,b`, a trailing `a,` — is a parse error instead of being
    /// silently dropped.
    Sep,
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn new(input: &str, mode: Mode) -> Result<Parser, AutomataError> {
        Ok(Parser {
            tokens: tokenize(input, mode)?,
            pos: 0,
            input_len: input.len(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<(Token, usize)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.input_len, |(_, p)| *p)
    }

    fn parse(mut self) -> Result<Regex, AutomataError> {
        if self.tokens.is_empty() {
            return Ok(Regex::Epsilon);
        }
        let re = self.parse_alt()?;
        if self.pos != self.tokens.len() {
            return Err(AutomataError::RegexParse {
                message: "unexpected trailing input".into(),
                position: self.here(),
            });
        }
        Ok(re)
    }

    fn parse_alt(&mut self) -> Result<Regex, AutomataError> {
        let mut parts = vec![self.parse_concat()?];
        while matches!(self.peek(), Some(Token::AltOp)) {
            self.bump();
            parts.push(self.parse_concat()?);
        }
        Ok(Regex::alt(parts))
    }

    fn at_operand_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Sym(_) | Token::LParen | Token::Epsilon | Token::EmptySet)
        )
    }

    fn parse_concat(&mut self) -> Result<Regex, AutomataError> {
        if !self.at_operand_start() {
            return Err(AutomataError::RegexParse {
                message: "expected a symbol, '(' , ε or ∅".into(),
                position: self.here(),
            });
        }
        let mut parts = vec![self.parse_postfix()?];
        loop {
            if matches!(self.peek(), Some(Token::Sep)) {
                let sep_pos = self.here();
                self.bump();
                if !self.at_operand_start() {
                    return Err(AutomataError::RegexParse {
                        message: "empty operand after explicit concatenation separator".into(),
                        position: if self.pos == self.tokens.len() { sep_pos } else { self.here() },
                    });
                }
                parts.push(self.parse_postfix()?);
            } else if self.at_operand_start() {
                parts.push(self.parse_postfix()?);
            } else {
                break;
            }
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, AutomataError> {
        let mut re = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    re = re.star();
                }
                Some(Token::PostPlus) => {
                    self.bump();
                    re = re.plus();
                }
                Some(Token::Question) => {
                    self.bump();
                    re = re.opt();
                }
                _ => break,
            }
        }
        Ok(re)
    }

    fn parse_atom(&mut self) -> Result<Regex, AutomataError> {
        let position = self.here();
        match self.bump() {
            Some((Token::Sym(s), _)) => Ok(Regex::Sym(s)),
            Some((Token::Epsilon, _)) => Ok(Regex::Epsilon),
            Some((Token::EmptySet, _)) => Ok(Regex::Empty),
            Some((Token::LParen, _)) => {
                let inner = self.parse_alt()?;
                match self.bump() {
                    Some((Token::RParen, _)) => Ok(inner),
                    _ => Err(AutomataError::RegexParse {
                        message: "expected ')'".into(),
                        position: self.here(),
                    }),
                }
            }
            other => Err(AutomataError::RegexParse {
                message: format!("unexpected token {:?}", other.map(|(t, _)| t)),
                position,
            }),
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '~' || c == '#'
}

fn tokenize(input: &str, mode: Mode) -> Result<Vec<(Token, usize)>, AutomataError> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (pos, c) = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            ',' | '·' | '.' => {
                tokens.push((Token::Sep, pos));
                i += 1;
            }
            '(' => {
                tokens.push((Token::LParen, pos));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, pos));
                i += 1;
            }
            '*' | '∗' => {
                tokens.push((Token::Star, pos));
                i += 1;
            }
            '?' => {
                tokens.push((Token::Question, pos));
                i += 1;
            }
            '|' => {
                tokens.push((Token::AltOp, pos));
                i += 1;
            }
            '+' => {
                let preceded_by_space = i > 0 && chars[i - 1].1.is_whitespace();
                let token = match mode {
                    Mode::Ident => Token::PostPlus,
                    Mode::Chars => {
                        if preceded_by_space {
                            Token::AltOp
                        } else {
                            Token::PostPlus
                        }
                    }
                };
                tokens.push((token, pos));
                i += 1;
            }
            'ε' => {
                tokens.push((Token::Epsilon, pos));
                i += 1;
            }
            '∅' => {
                tokens.push((Token::EmptySet, pos));
                i += 1;
            }
            c if is_ident_char(c) => match mode {
                Mode::Chars => {
                    tokens.push((Token::Sym(Symbol::try_new(c.to_string())?), pos));
                    i += 1;
                }
                Mode::Ident => {
                    let start = i;
                    while i < chars.len() && is_ident_char(chars[i].1) {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().map(|(_, c)| *c).collect();
                    match text.as_str() {
                        "eps" | "epsilon" => tokens.push((Token::Epsilon, pos)),
                        "empty" => tokens.push((Token::EmptySet, pos)),
                        _ => tokens.push((Token::Sym(Symbol::try_new(text)?), pos)),
                    }
                }
            },
            _ => {
                return Err(AutomataError::RegexParse {
                    message: format!("unexpected character `{c}`"),
                    position: pos,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{word, word_chars};

    #[test]
    fn parse_chars_basic() {
        let re = Regex::parse_chars("a*bc*").unwrap();
        assert!(re.accepts(&word_chars("b")));
        assert!(re.accepts(&word_chars("aabcc")));
        assert!(!re.accepts(&word_chars("ac")));
    }

    #[test]
    fn parse_chars_plus_disambiguation() {
        // "ab + ba" : alternation (Example 11 of the paper)
        let re = Regex::parse_chars("ab + ba").unwrap();
        assert!(re.accepts(&word_chars("ab")));
        assert!(re.accepts(&word_chars("ba")));
        assert!(!re.accepts(&word_chars("abba")));
        // "a+b+" : concatenation of iterated symbols (Remark 1)
        let re2 = Regex::parse_chars("a+b+").unwrap();
        assert!(re2.accepts(&word_chars("ab")));
        assert!(re2.accepts(&word_chars("aabbb")));
        assert!(!re2.accepts(&word_chars("ba")));
        // "(ab)+" : postfix on a group (Example 5)
        let re3 = Regex::parse_chars("(ab)+").unwrap();
        assert!(re3.accepts(&word_chars("ab")));
        assert!(re3.accepts(&word_chars("abab")));
        assert!(!re3.accepts(&[]));
    }

    #[test]
    fn parse_ident_dtd_style() {
        // Figure 3: eurostat -> averages, nationalIndex*
        let re = Regex::parse("averages, nationalIndex*").unwrap();
        assert!(re.accepts(&word("averages")));
        assert!(re.accepts(&word("averages nationalIndex nationalIndex")));
        assert!(!re.accepts(&word("nationalIndex")));
        // Figure 3: nationalIndex -> country, Good, (index | value, year)
        let re2 = Regex::parse("country, Good, (index | value, year)").unwrap();
        assert!(re2.accepts(&word("country Good index")));
        assert!(re2.accepts(&word("country Good value year")));
        assert!(!re2.accepts(&word("country Good index value")));
        // Figure 5: (Good, index+)+
        let re3 = Regex::parse("(Good, index+)+").unwrap();
        assert!(re3.accepts(&word("Good index")));
        assert!(re3.accepts(&word("Good index index Good index")));
        assert!(!re3.accepts(&word("Good")));
    }

    #[test]
    fn parse_epsilon_and_empty() {
        assert_eq!(Regex::parse("").unwrap(), Regex::Epsilon);
        assert!(Regex::parse("eps").unwrap().accepts(&[]));
        assert!(!Regex::parse("empty").unwrap().accepts(&[]));
        assert!(Regex::parse_chars("ε").unwrap().accepts(&[]));
        assert!(Regex::parse_chars("∅").unwrap().to_nfa().is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::parse("(a").is_err());
        assert!(Regex::parse("a )").is_err());
        assert!(Regex::parse("|").is_err());
    }

    #[test]
    fn empty_operands_are_rejected() {
        // `a,,b` used to silently parse as `a b`; the empty operand between
        // the separators must be an error carrying the offending position.
        match Regex::parse("a,,b") {
            Err(AutomataError::RegexParse { position, .. }) => assert_eq!(position, 2),
            other => panic!("expected a parse error for `a,,b`, got {other:?}"),
        }
        // Trailing separator: the error points at the dangling separator.
        match Regex::parse("a,") {
            Err(AutomataError::RegexParse { position, .. }) => assert_eq!(position, 1),
            other => panic!("expected a parse error for `a,`, got {other:?}"),
        }
        // Leading separator, doubled alternation, parenthesised variants.
        for bad in [",,", ",a", "a, | b", "| |", "a | | b", "(a,)", "a · · b", "a.."] {
            assert!(Regex::parse(bad).is_err(), "`{bad}` must not parse");
            assert!(Regex::parse_chars(bad).is_err(), "`{bad}` must not parse (chars)");
        }
        // The explicit separators still work when used correctly.
        let re = Regex::parse("a, b · c").unwrap();
        assert!(re.accepts(&word("a b c")));
        assert!(Regex::parse_chars("a,b").unwrap().accepts(&word_chars("ab")));
    }

    #[test]
    fn unknown_characters_are_rejected() {
        for bad in ["a @ b", "a;b", "a&b", "a - b"] {
            match Regex::parse(bad) {
                Err(AutomataError::RegexParse { .. }) => {}
                other => panic!("expected a parse error for `{bad}`, got {other:?}"),
            }
        }
    }

    #[test]
    fn nullable_and_alphabet() {
        let re = Regex::parse_chars("a*b?").unwrap();
        assert!(re.nullable());
        assert_eq!(re.alphabet(), Alphabet::from_chars("ab"));
        let re2 = Regex::parse_chars("ab").unwrap();
        assert!(!re2.nullable());
    }

    #[test]
    fn glushkov_matches_thompson() {
        for src in ["a*bc*", "(ab)+", "a?b|c", "(a|b)*a(a|b)", "a+b+", "(ab + ba)*"] {
            let re = Regex::parse_chars(src).unwrap();
            let g = re.glushkov().to_nfa();
            let t = re.to_nfa();
            for w in ["", "a", "b", "ab", "ba", "abab", "aab", "abb", "bab", "aaa"] {
                assert_eq!(
                    g.accepts(&word_chars(w)),
                    t.accepts(&word_chars(w)),
                    "regex {src}, word {w}"
                );
            }
        }
    }

    #[test]
    fn glushkov_determinism() {
        assert!(Regex::parse_chars("a*bc*").unwrap().glushkov().is_deterministic());
        assert!(Regex::parse_chars("(ab)*").unwrap().glushkov().is_deterministic());
        // (a|b)*a is a nondeterministic expression (though the language is
        // one-unambiguous).
        assert!(!Regex::parse_chars("(a|b)*a").unwrap().glushkov().is_deterministic());
        // b*a(b*a)* is an equivalent deterministic expression.
        assert!(Regex::parse_chars("b*a(b*a)*").unwrap().glushkov().is_deterministic());
    }

    #[test]
    fn display_roundtrip() {
        for src in ["a*bc*", "(ab)+", "a?b|c", "(a|b)*a(a|b)"] {
            let re = Regex::parse_chars(src).unwrap();
            let printed = format!("{re}");
            let re2 = Regex::parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
            // Compare languages on a sample of words.
            for w in ["", "a", "b", "c", "ab", "ba", "abc", "abab", "aab"] {
                assert_eq!(
                    re.accepts(&word_chars(w)),
                    re2.accepts(&word_chars(w)),
                    "src {src} word {w}"
                );
            }
        }
    }
}
