//! Nondeterministic finite automata (nFAs) with ε-transitions.
//!
//! This follows Section 2.1.2 of the paper: an nFA is a quintuple
//! `⟨K, Σ, Δ, qs, F⟩` with `Δ ⊆ K × (Σ ∪ {ε}) × K`. States are dense
//! integers `0..num_states`. The module provides the combinators the paper
//! relies on (`A1 · A2`, `A1 ∪ A2`, `A1 ∩ A2`, `A1 − A2`, complement) and the
//! basic decision procedures (membership, emptiness, universality). The
//! state-set reachability helpers (`delta_star_from`, `reachable_from`,
//! `coreachable_to`, `transitions`) are exposed publicly because the perfect
//! automaton construction of Section 6 manipulates the transition structure
//! of the global type directly.
//!
//! # Dense transition storage
//!
//! Transitions are stored against a **per-automaton symbol index**: every
//! [`Symbol`] on a transition gets a dense local `u32` the first time it is
//! added, and each state keeps a sorted adjacency vector of
//! `(local symbol, successor)` pairs (ε-transitions live in a separate
//! per-state list). The invariants the hot paths rely on:
//!
//! * `trans.len() == eps.len() == num_states` at all times — states are
//!   never implicit (see [`Nfa::new`] on the zero-state case);
//! * every adjacency vector is sorted by `(local symbol, successor)` and
//!   deduplicated, so one symbol's successors form a contiguous slice found
//!   by binary search;
//! * a symbol has a local index iff it appears on at least one transition
//!   (transitions are never removed), so [`Nfa::alphabet`] is exactly the
//!   registered index.
//!
//! The subset construction, products, quotients and equivalence checks all
//! iterate these local ids; interned symbol ids only matter at the indexing
//! boundary, and strings are never touched.
//!
//! # State sets
//!
//! Every state-set-shaped value (ε-closures, frontiers, reachability sets)
//! is a [`StateSet`] — a fixed-width dense bitset over the automaton's
//! state universe (see [`crate::stateset`]), iterated in ascending state
//! order exactly like the `BTreeSet<usize>` representation it replaced, so
//! subset-state numbering and witness words are unchanged.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::dfa::Dfa;
use crate::hash::{FxHashMap, FxHashSet};
use crate::stateset::StateSet;
use crate::symbol::{Alphabet, Symbol, Word};

/// A state identifier; states of an [`Nfa`] are `0..nfa.num_states()`.
pub type StateId = usize;

/// Structural metrics of an [`Nfa`], extracted by [`Nfa::metrics`] in
/// polynomial time (no determinisation).
///
/// These are the raw inputs of the static cost model in
/// `dxml-analysis::cost`: every field maps directly onto a term of the
/// subset-construction cost brackets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NfaMetrics {
    /// Number of states `m`. The subset construction builds at most
    /// `2^m − 1` subset states (only non-empty subsets are materialised).
    pub states: usize,
    /// Number of transitions, ε-transitions included.
    pub transitions: usize,
    /// The symbols actually appearing on transitions — exactly the
    /// alphabet the subset construction scans once per popped subset, so
    /// `subset transitions = subset states × alphabet.len()`.
    pub alphabet: Alphabet,
    /// Whether any ε-transition exists (Thompson-built NFAs have them;
    /// Glushkov-built ones never do).
    pub has_epsilon: bool,
    /// Length of a shortest accepted word, or `None` for the empty
    /// language. The subsets visited along a shortest word's run are
    /// pairwise distinct, so the subset DFA has at least
    /// `min_word_len + 1` states when the language is non-empty.
    pub min_word_len: Option<usize>,
}

/// A nondeterministic finite automaton with ε-transitions.
#[derive(Clone)]
pub struct Nfa {
    num_states: usize,
    start: StateId,
    finals: BTreeSet<StateId>,
    /// Local symbol index → symbol, in first-seen order.
    syms: Vec<Symbol>,
    /// Symbol → local index into `syms`.
    sym_index: FxHashMap<Symbol, u32>,
    /// `trans[q]`: sorted, deduplicated `(local symbol, successor)` pairs.
    trans: Vec<Vec<(u32, StateId)>>,
    /// `eps[q]`: sorted, deduplicated ε-successors.
    eps: Vec<Vec<StateId>>,
    /// Whether any ε-transition exists (lets the ε-closure on the frontier
    /// hot path return immediately for ε-free automata).
    has_eps: bool,
}

impl Nfa {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an NFA with `num_states` states (no transitions, no final
    /// states) and the given start state.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0`: an NFA always has at least its start
    /// state, and the dense-index code relies on `states == trans.len()`
    /// with every state id in range. Use [`Nfa::empty`] for the automaton of
    /// the empty language (one state, no finals).
    pub fn new(num_states: usize, start: StateId) -> Self {
        assert!(num_states > 0, "an Nfa needs at least one state (the start state)");
        assert!(start < num_states, "start state out of range");
        Nfa {
            num_states,
            start,
            finals: BTreeSet::new(),
            syms: Vec::new(),
            sym_index: FxHashMap::default(),
            trans: vec![Vec::new(); num_states],
            eps: vec![Vec::new(); num_states],
            has_eps: false,
        }
    }

    /// The automaton recognising the empty language `∅`.
    pub fn empty() -> Self {
        Nfa::new(1, 0)
    }

    /// The automaton recognising only the empty word `{ε}`.
    pub fn epsilon() -> Self {
        let mut a = Nfa::new(1, 0);
        a.set_final(0);
        a
    }

    /// The automaton recognising the single-symbol word `{a}`.
    pub fn symbol(sym: impl Into<Symbol>) -> Self {
        let mut a = Nfa::new(2, 0);
        a.add_transition(0, sym, 1);
        a.set_final(1);
        a
    }

    /// The automaton recognising exactly the given word.
    pub fn literal(word: &[Symbol]) -> Self {
        let mut a = Nfa::new(word.len() + 1, 0);
        for (i, sym) in word.iter().enumerate() {
            a.add_transition(i, *sym, i + 1);
        }
        a.set_final(word.len());
        a
    }

    /// The automaton recognising any *single* symbol from the given set
    /// (the building block of boxes).
    pub fn any_of<I, S>(symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let mut a = Nfa::new(2, 0);
        for s in symbols {
            a.add_transition(0, s, 1);
        }
        a.set_final(1);
        a
    }

    /// The automaton recognising `Σ*` for the given alphabet.
    pub fn sigma_star(alphabet: &Alphabet) -> Self {
        let mut a = Nfa::new(1, 0);
        for s in alphabet {
            a.add_transition(0, *s, 0);
        }
        a.set_final(0);
        a
    }

    /// The automaton recognising `Σ+` for the given alphabet.
    pub fn sigma_plus(alphabet: &Alphabet) -> Self {
        Nfa::sigma_star(alphabet).concat(&Nfa::any_of(alphabet.iter().cloned()))
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.num_states += 1;
        self.num_states - 1
    }

    /// The local index of `sym`, allocating one if it is new.
    fn local_id(&mut self, sym: Symbol) -> u32 {
        match self.sym_index.get(&sym) {
            Some(&i) => i,
            None => {
                let i = u32::try_from(self.syms.len()).expect("alphabet exceeds u32 indices");
                self.syms.push(sym);
                self.sym_index.insert(sym, i);
                i
            }
        }
    }

    /// Adds a transition `from --sym--> to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is not a state of the automaton.
    pub fn add_transition(&mut self, from: StateId, sym: impl Into<Symbol>, to: StateId) {
        assert!(from < self.num_states && to < self.num_states);
        let sid = self.local_id(sym.into());
        let entry = (sid, to);
        let v = &mut self.trans[from];
        if let Err(pos) = v.binary_search(&entry) {
            v.insert(pos, entry);
        }
    }

    /// Adds an ε-transition `from --ε--> to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is not a state of the automaton.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        assert!(from < self.num_states && to < self.num_states);
        let v = &mut self.eps[from];
        if let Err(pos) = v.binary_search(&to) {
            v.insert(pos, to);
            self.has_eps = true;
        }
    }

    /// Marks a state as final.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not a state of the automaton.
    pub fn set_final(&mut self, state: StateId) {
        assert!(state < self.num_states);
        self.finals.insert(state);
    }

    /// Unmarks a state as final.
    pub fn unset_final(&mut self, state: StateId) {
        self.finals.remove(&state);
    }

    /// Changes the start state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not a state of the automaton.
    pub fn set_start(&mut self, state: StateId) {
        assert!(state < self.num_states);
        self.start = state;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total number of transitions (counting each `(q, a, q')` triple once,
    /// ε-transitions included).
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum::<usize>() + self.eps.iter().map(Vec::len).sum::<usize>()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// The final states as a dense [`StateSet`] over the current universe
    /// (built on demand — the hot loops build it once per traversal and
    /// test acceptance with an O(words) intersection).
    pub fn finals_set(&self) -> StateSet {
        StateSet::from_iter(self.num_states, self.finals.iter().copied())
    }

    /// Iterates over all transitions as `(from, label, to)` where a label of
    /// `None` denotes ε.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Option<&Symbol>, StateId)> + '_ {
        (0..self.num_states).flat_map(move |q| {
            self.eps[q]
                .iter()
                .map(move |&t| (q, None, t))
                .chain(self.trans[q].iter().map(move |&(s, t)| (q, Some(&self.syms[s as usize]), t)))
        })
    }

    /// The successor set `Δ(q, a)`.
    pub fn delta(&self, q: StateId, sym: &Symbol) -> StateSet {
        let mut out = StateSet::empty(self.num_states);
        if let Some(sid) = self.sym_id(sym) {
            for &(_, t) in self.succ_slice(q, sid) {
                out.insert(t);
            }
        }
        out
    }

    /// The alphabet of symbols actually appearing on transitions.
    pub fn alphabet(&self) -> Alphabet {
        self.syms.iter().copied().collect()
    }

    /// Whether the automaton has any ε-transition.
    pub fn has_epsilon(&self) -> bool {
        self.has_eps
    }

    /// Extracts the structural [`NfaMetrics`] of the automaton — everything
    /// the static cost model (`dxml-analysis::cost`) needs to bracket a
    /// future [`Dfa::from_nfa`](crate::dfa::Dfa::from_nfa) run, computed in
    /// polynomial time without determinising anything (the only search is
    /// the shortest-word BFS, linear in the transition table).
    pub fn metrics(&self) -> NfaMetrics {
        NfaMetrics {
            states: self.num_states,
            transitions: self.num_transitions(),
            alphabet: self.alphabet(),
            has_epsilon: self.has_eps,
            min_word_len: self.shortest_accepted().map(|w| w.len()),
        }
    }

    // ------------------------------------------------------------------
    // Local-index plumbing (hot-path API)
    // ------------------------------------------------------------------

    /// The local index of `sym`, if it appears on any transition.
    ///
    /// Local indices are **per-automaton**: they are only meaningful as
    /// arguments to [`Nfa::step_local`] on the same automaton. Exposed so
    /// callers stepping the same automaton many times (the `Duta`
    /// membership frontiers in the tree crate) can resolve each symbol once
    /// instead of hashing it per step.
    pub fn sym_id(&self, sym: &Symbol) -> Option<u32> {
        self.sym_index.get(sym).copied()
    }

    /// The sorted `(sym, local id)` pairs of the automaton's alphabet, in
    /// symbol text order — the deterministic iteration order the search
    /// procedures use so witnesses stay lexicographically least.
    pub(crate) fn sorted_syms(&self) -> Vec<(Symbol, u32)> {
        let mut out: Vec<(Symbol, u32)> =
            self.syms.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
        out.sort_unstable();
        out
    }

    /// The contiguous adjacency slice of `q` on local symbol `sid`.
    fn succ_slice(&self, q: StateId, sid: u32) -> &[(u32, StateId)] {
        let v = &self.trans[q];
        let lo = v.partition_point(|&(s, _)| s < sid);
        let hi = lo + v[lo..].partition_point(|&(s, _)| s == sid);
        &v[lo..hi]
    }

    /// One symbol step on a (ε-closed) state set via the local index,
    /// returning the ε-closure of the successor set. The bitset-frontier
    /// primitive behind [`Nfa::step`]; public for callers that resolve
    /// symbol ids once via [`Nfa::sym_id`] and step many times.
    ///
    /// The set must have been created over this automaton's state universe.
    pub fn step_local(&self, set: &StateSet, sid: u32) -> StateSet {
        let mut next = StateSet::empty(self.num_states);
        self.step_local_into(set, sid, &mut next);
        next
    }

    /// [`Nfa::step_local`] into a caller-owned buffer: clears `out`, writes
    /// the ε-closed successor set into it. `StateSet::clear` keeps the heap
    /// words of >-inline-width universes, so frontier loops that step the
    /// same automaton many times can reuse one buffer instead of allocating
    /// a set per step. `out` must have been created over this automaton's
    /// state universe.
    pub fn step_local_into(&self, set: &StateSet, sid: u32, out: &mut StateSet) {
        out.clear();
        for q in set {
            for &(_, t) in self.succ_slice(q, sid) {
                out.insert(t);
            }
        }
        self.epsilon_close_mut(out);
    }

    /// ε-closes `set` in place (the by-value twin of
    /// [`Nfa::epsilon_closure`], saving the clone on the hot paths).
    fn epsilon_closure_inplace(&self, mut closure: StateSet) -> StateSet {
        self.epsilon_close_mut(&mut closure);
        closure
    }

    /// ε-closes the set behind the reference, in place.
    fn epsilon_close_mut(&self, closure: &mut StateSet) {
        if !self.has_eps {
            return;
        }
        let mut stack: Vec<StateId> = closure.iter().collect();
        while let Some(q) = stack.pop() {
            for &t in &self.eps[q] {
                if closure.insert(t) {
                    stack.push(t);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Runs
    // ------------------------------------------------------------------

    /// The ε-closure of a set of states.
    pub fn epsilon_closure(&self, set: &StateSet) -> StateSet {
        self.epsilon_closure_inplace(set.clone())
    }

    /// The ε-closure of the start state: the initial frontier of every run
    /// (`StateSet::singleton` + [`Nfa::epsilon_closure`] in one call).
    pub fn start_closure(&self) -> StateSet {
        self.epsilon_closure_inplace(StateSet::singleton(self.num_states, self.start))
    }

    /// One symbol step on a (ε-closed) state set, returning the ε-closure of
    /// the successor set.
    pub fn step(&self, set: &StateSet, sym: &Symbol) -> StateSet {
        match self.sym_id(sym) {
            Some(sid) => self.step_local(set, sid),
            None => StateSet::empty(self.num_states),
        }
    }

    /// One *multi-symbol* step: the ε-closure of the union of the successor
    /// sets over every symbol of `syms`. Equivalent to unioning
    /// [`Nfa::step`] per symbol, but ε-closes once — the inner loop of
    /// box-slot stepping and of the bottom-up tree-automaton runs, where a
    /// child can contribute any symbol of a set.
    pub fn step_all<'a>(
        &self,
        set: &StateSet,
        syms: impl IntoIterator<Item = &'a Symbol>,
    ) -> StateSet {
        let mut next = StateSet::empty(self.num_states);
        self.step_all_into(set, syms, &mut next);
        next
    }

    /// [`Nfa::step_all`] into a caller-owned buffer: clears `out`, writes
    /// the ε-closed multi-symbol successor set into it. The buffer-reuse
    /// twin for the bottom-up tree-automaton runs, same contract as
    /// [`Nfa::step_local_into`].
    pub fn step_all_into<'a>(
        &self,
        set: &StateSet,
        syms: impl IntoIterator<Item = &'a Symbol>,
        out: &mut StateSet,
    ) {
        out.clear();
        for sym in syms {
            if let Some(sid) = self.sym_id(sym) {
                for q in set {
                    for &(_, t) in self.succ_slice(q, sid) {
                        out.insert(t);
                    }
                }
            }
        }
        self.epsilon_close_mut(out);
    }

    /// The set of states reachable from `set` by reading `word`
    /// (the extended transition relation `Δ*`).
    pub fn delta_star(&self, set: &StateSet, word: &[Symbol]) -> StateSet {
        let mut current = self.epsilon_closure(set);
        let mut next = StateSet::empty(self.num_states);
        for sym in word {
            if current.is_empty() {
                break;
            }
            match self.sym_id(sym) {
                Some(sid) => {
                    self.step_local_into(&current, sid, &mut next);
                    std::mem::swap(&mut current, &mut next);
                }
                None => {
                    current.clear();
                    break;
                }
            }
        }
        current
    }

    /// The set of states reachable from a single state `q` by reading `word`.
    pub fn delta_star_from(&self, q: StateId, word: &[Symbol]) -> StateSet {
        self.delta_star(&StateSet::singleton(self.num_states, q), word)
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.delta_star_from(self.start, word).iter().any(|q| self.finals.contains(&q))
    }

    // ------------------------------------------------------------------
    // Reachability & structure
    // ------------------------------------------------------------------

    /// The set of states reachable (by any transitions, including ε) from the
    /// states in `from`.
    pub fn reachable_from(&self, from: &StateSet) -> StateSet {
        let mut seen = from.clone();
        let mut stack: Vec<StateId> = from.iter().collect();
        while let Some(q) = stack.pop() {
            for &(_, t) in &self.trans[q] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
            for &t in &self.eps[q] {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// The set of states from which some state in `to` is reachable.
    pub fn coreachable_to(&self, to: &StateSet) -> StateSet {
        // Build reverse adjacency.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states];
        for (q, v) in self.trans.iter().enumerate() {
            for &(_, t) in v {
                rev[t].push(q);
            }
        }
        for (q, v) in self.eps.iter().enumerate() {
            for &t in v {
                rev[t].push(q);
            }
        }
        let mut seen = to.clone();
        let mut stack: Vec<StateId> = to.iter().collect();
        while let Some(q) = stack.pop() {
            for &p in &rev[q] {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Whether the language of the automaton is empty.
    pub fn is_empty(&self) -> bool {
        let reach = self.reachable_from(&StateSet::singleton(self.num_states, self.start));
        self.finals.is_empty() || reach.is_disjoint(&self.finals_set())
    }

    /// Whether the language equals `Σ*` over the given alphabet.
    pub fn is_universal(&self, alphabet: &Alphabet) -> bool {
        self.complement(alphabet).is_empty()
    }

    /// A shortest accepted word, if any (breadth-first search over state
    /// sets of the determinised automaton, so the result is genuinely
    /// shortest — and lexicographically least among the shortest, since the
    /// alphabet is scanned in text order).
    pub fn shortest_accepted(&self) -> Option<Word> {
        let syms = self.sorted_syms();
        let finals = self.finals_set();
        let start = self.start_closure();
        let mut queue: VecDeque<(StateSet, Word)> = VecDeque::new();
        let mut seen: FxHashSet<StateSet> = FxHashSet::default();
        queue.push_back((start.clone(), Vec::new()));
        seen.insert(start);
        // One scratch frontier reused across every (set, symbol) expansion;
        // only fresh subsets are cloned out of it into the queue.
        let mut next = StateSet::empty(self.num_states);
        while let Some((set, word)) = queue.pop_front() {
            if set.intersects(&finals) {
                return Some(word);
            }
            for &(sym, sid) in &syms {
                self.step_local_into(&set, sid, &mut next);
                if next.is_empty() || seen.contains(&next) {
                    continue;
                }
                seen.insert(next.clone());
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((next.clone(), w));
            }
        }
        None
    }

    /// Enumerates accepted words of length at most `max_len`, up to `limit`
    /// words, in length-lexicographic order. Intended for tests and examples.
    pub fn enumerate_accepted(&self, max_len: usize, limit: usize) -> Vec<Word> {
        let syms = self.sorted_syms();
        let finals = self.finals_set();
        let mut out = Vec::new();
        let start = self.start_closure();
        let mut frontier: Vec<(StateSet, Word)> = vec![(start, Vec::new())];
        for _len in 0..=max_len {
            let mut next_frontier = Vec::new();
            for (set, word) in &frontier {
                if set.intersects(&finals) {
                    out.push(word.clone());
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            let mut next = StateSet::empty(self.num_states);
            for (set, word) in frontier {
                for &(sym, sid) in &syms {
                    self.step_local_into(&set, sid, &mut next);
                    if !next.is_empty() {
                        let mut w = word.clone();
                        w.push(sym);
                        next_frontier.push((next.clone(), w));
                    }
                }
            }
            frontier = next_frontier;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// Restricts the automaton to states reachable from the start *and*
    /// co-reachable from a final state (keeping the start state even if its
    /// language is empty). The result accepts the same language.
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (a kept state missing from the
    /// dense remap).
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable_from(&StateSet::singleton(self.num_states, self.start));
        let coreach = self.coreachable_to(&self.finals_set());
        let mut keep: Vec<StateId> =
            reach.iter().filter(|&q| coreach.contains(q)).collect();
        if !keep.contains(&self.start) {
            keep.push(self.start);
            keep.sort_unstable();
        }
        // Dense old-id → new-id remap (`keep` is ascending).
        let mut index: Vec<Option<StateId>> = vec![None; self.num_states];
        for (i, &q) in keep.iter().enumerate() {
            index[q] = Some(i);
        }
        let mut out = Nfa::new(keep.len(), index[self.start].expect("start is kept"));
        for &q in &keep {
            let qi = index[q].expect("kept state is indexed");
            for &t in &self.eps[q] {
                if let Some(ti) = index[t] {
                    out.add_epsilon(qi, ti);
                }
            }
            for &(sid, t) in &self.trans[q] {
                if let Some(ti) = index[t] {
                    out.add_transition(qi, self.syms[sid as usize], ti);
                }
            }
            if self.finals.contains(&q) {
                out.set_final(qi);
            }
        }
        out
    }

    /// Returns an equivalent NFA without ε-transitions.
    pub fn eps_free(&self) -> Nfa {
        if !self.has_epsilon() {
            return self.clone();
        }
        let mut out = Nfa::new(self.num_states, self.start);
        for q in 0..self.num_states {
            let closure =
                self.epsilon_closure_inplace(StateSet::singleton(self.num_states, q));
            if closure.iter().any(|c| self.finals.contains(&c)) {
                out.set_final(q);
            }
            for c in &closure {
                for &(sid, t) in &self.trans[c] {
                    out.add_transition(q, self.syms[sid as usize], t);
                }
            }
        }
        out.trim()
    }

    /// Renames the symbols of the automaton through `f` (used to apply the
    /// specialisation-erasing morphism `µ` of SDTDs/EDTDs to content
    /// models).
    ///
    /// `f` is invoked **once per distinct symbol** (in first-registration
    /// order), not once per transition — all transitions carrying the same
    /// symbol receive the same image. A stateful closure that wants to
    /// distinguish individual transitions should rebuild through
    /// [`Nfa::transitions`] instead.
    pub fn map_symbols(&self, f: impl FnMut(&Symbol) -> Symbol) -> Nfa {
        let mut out = Nfa::new(self.num_states, self.start);
        // One rename per registered symbol, not one per transition.
        let renamed: Vec<Symbol> = self.syms.iter().map(f).collect();
        for q in 0..self.num_states {
            for &t in &self.eps[q] {
                out.add_epsilon(q, t);
            }
            for &(sid, t) in &self.trans[q] {
                out.add_transition(q, renamed[sid as usize], t);
            }
            if self.finals.contains(&q) {
                out.set_final(q);
            }
        }
        out
    }

    /// Keeps only transitions whose symbol satisfies the predicate
    /// (ε-transitions are always kept).
    ///
    /// Like [`Nfa::map_symbols`], the predicate is evaluated **once per
    /// distinct symbol**, and the verdict applies to every transition
    /// carrying it.
    pub fn filter_symbols(&self, keep: impl FnMut(&Symbol) -> bool) -> Nfa {
        let mut out = Nfa::new(self.num_states, self.start);
        let kept: Vec<bool> = self.syms.iter().map(keep).collect();
        for q in 0..self.num_states {
            for &t in &self.eps[q] {
                out.add_epsilon(q, t);
            }
            for &(sid, t) in &self.trans[q] {
                if kept[sid as usize] {
                    out.add_transition(q, self.syms[sid as usize], t);
                }
            }
            if self.finals.contains(&q) {
                out.set_final(q);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Rational operations
    // ------------------------------------------------------------------

    /// Copies `other`'s states into `self` with an offset, returning the
    /// offset. (Internal helper for the rational operations.)
    fn absorb(&mut self, other: &Nfa) -> usize {
        let offset = self.num_states;
        self.num_states += other.num_states;
        // Remap other's local symbol ids into self's index once.
        let remap: Vec<u32> = other.syms.iter().map(|&s| self.local_id(s)).collect();
        self.trans.extend(other.trans.iter().map(|v| {
            let mut adj: Vec<(u32, StateId)> =
                v.iter().map(|&(s, t)| (remap[s as usize], t + offset)).collect();
            adj.sort_unstable();
            adj
        }));
        self.eps
            .extend(other.eps.iter().map(|v| v.iter().map(|&t| t + offset).collect::<Vec<_>>()));
        self.has_eps |= other.has_eps;
        offset
    }

    /// Union `[self] ∪ [other]`.
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut out = Nfa::new(1, 0);
        let o1 = out.absorb(self);
        let o2 = out.absorb(other);
        out.add_epsilon(0, self.start + o1);
        out.add_epsilon(0, other.start + o2);
        for &f in &self.finals {
            out.set_final(f + o1);
        }
        for &f in &other.finals {
            out.set_final(f + o2);
        }
        out
    }

    /// Union of many automata. Returns the empty language for an empty slice.
    pub fn union_all<'a>(automata: impl IntoIterator<Item = &'a Nfa>) -> Nfa {
        let mut iter = automata.into_iter();
        match iter.next() {
            None => Nfa::empty(),
            Some(first) => iter.fold(first.clone(), |acc, a| acc.union(a)),
        }
    }

    /// Concatenation `[self] ◦ [other]`.
    pub fn concat(&self, other: &Nfa) -> Nfa {
        let mut out = self.clone();
        let o2 = out.absorb(other);
        for &f in &self.finals {
            out.add_epsilon(f, other.start + o2);
        }
        out.finals = other.finals.iter().map(|f| f + o2).collect();
        out
    }

    /// Kleene star `[self]*`.
    pub fn star(&self) -> Nfa {
        let mut out = Nfa::new(1, 0);
        let o = out.absorb(self);
        out.add_epsilon(0, self.start + o);
        out.set_final(0);
        for &f in &self.finals {
            out.add_epsilon(f + o, 0);
            out.set_final(f + o);
        }
        out
    }

    /// Kleene plus `[self]+`.
    pub fn plus(&self) -> Nfa {
        self.concat(&self.star())
    }

    /// Option `[self]?` = `[self] ∪ {ε}`.
    pub fn optional(&self) -> Nfa {
        let mut out = self.clone();
        if !out.finals.contains(&out.start) {
            let new_start = out.add_state();
            out.add_epsilon(new_start, out.start);
            out.set_start(new_start);
            out.set_final(new_start);
        }
        out
    }

    /// Intersection `[self] ∩ [other]` (product construction on the ε-free
    /// versions).
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        let a = self.eps_free();
        let b = other.eps_free();
        // b's local index for each of a's local symbols, resolved once.
        let b_ids: Vec<Option<u32>> = a.syms.iter().map(|s| b.sym_id(s)).collect();
        // Product over pairs, built lazily from the reachable part.
        let mut index: FxHashMap<(StateId, StateId), StateId> = FxHashMap::default();
        let mut out = Nfa::new(1, 0);
        index.insert((a.start, b.start), 0);
        let mut stack = vec![(a.start, b.start)];
        while let Some((p, q)) = stack.pop() {
            let pid = index[&(p, q)];
            if a.is_final(p) && b.is_final(q) {
                out.set_final(pid);
            }
            let adj = &a.trans[p];
            let mut i = 0;
            while i < adj.len() {
                let sid = adj[i].0;
                let run_end = i + adj[i..].partition_point(|&(s, _)| s == sid);
                if let Some(bsid) = b_ids[sid as usize] {
                    let b_tos = b.succ_slice(q, bsid);
                    if !b_tos.is_empty() {
                        let sym = a.syms[sid as usize];
                        for &(_, ta) in &adj[i..run_end] {
                            for &(_, tb) in b_tos {
                                let tid = *index.entry((ta, tb)).or_insert_with(|| {
                                    stack.push((ta, tb));
                                    out.add_state()
                                });
                                out.add_transition(pid, sym, tid);
                            }
                        }
                    }
                }
                i = run_end;
            }
        }
        out.trim()
    }

    /// Intersection of many automata.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator (there is no universal language without
    /// an alphabet).
    pub fn intersect_all<'a>(automata: impl IntoIterator<Item = &'a Nfa>) -> Nfa {
        let mut iter = automata.into_iter();
        let first = iter.next().expect("intersect_all needs at least one automaton");
        iter.fold(first.clone(), |acc, a| acc.intersect(a))
    }

    /// Complement `Σ* − [self]` with respect to the given alphabet.
    pub fn complement(&self, alphabet: &Alphabet) -> Nfa {
        Dfa::from_nfa(self).complete(alphabet).complement().to_nfa()
    }

    /// Difference `[self] − [other]` with respect to the given alphabet
    /// (needed to complete `other` before complementing it).
    pub fn difference(&self, other: &Nfa, alphabet: &Alphabet) -> Nfa {
        self.intersect(&other.complement(alphabet))
    }

    /// Converts to a DFA (subset construction).
    pub fn to_dfa(&self) -> Dfa {
        Dfa::from_nfa(self)
    }
}

impl PartialEq for Nfa {
    /// Structural equality up to the (internal) local symbol numbering: two
    /// automata are equal iff they have the same states, start, finals and
    /// the same labelled transition sets.
    fn eq(&self, other: &Self) -> bool {
        if self.num_states != other.num_states
            || self.start != other.start
            || self.finals != other.finals
        {
            return false;
        }
        (0..self.num_states).all(|q| {
            if self.eps[q] != other.eps[q] || self.trans[q].len() != other.trans[q].len() {
                return false;
            }
            let canon = |nfa: &Nfa, v: &[(u32, StateId)]| -> Vec<(Symbol, StateId)> {
                let mut out: Vec<(Symbol, StateId)> =
                    v.iter().map(|&(s, t)| (nfa.syms[s as usize], t)).collect();
                out.sort_unstable();
                out
            };
            canon(self, &self.trans[q]) == canon(other, &other.trans[q])
        })
    }
}

impl Eq for Nfa {}

impl fmt::Debug for Nfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Nfa(states={}, start={}, finals={:?})", self.num_states, self.start, self.finals)?;
        for (q, lbl, t) in self.transitions() {
            match lbl {
                Some(s) => writeln!(f, "  {q} --{s}--> {t}")?,
                None => writeln!(f, "  {q} --ε--> {t}")?,
            }
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{word_chars, Alphabet};

    fn ab() -> Alphabet {
        Alphabet::from_chars("ab")
    }

    #[test]
    fn literal_accepts_only_itself() {
        let w = word_chars("aba");
        let a = Nfa::literal(&w);
        assert!(a.accepts(&w));
        assert!(!a.accepts(&word_chars("ab")));
        assert!(!a.accepts(&word_chars("abaa")));
        assert!(!a.accepts(&[]));
    }

    #[test]
    fn metrics_reflect_structure() {
        let w = word_chars("aba");
        let m = Nfa::literal(&w).metrics();
        assert_eq!(m.states, 4);
        assert_eq!(m.transitions, 3);
        assert_eq!(m.alphabet, ab());
        assert!(!m.has_epsilon);
        assert_eq!(m.min_word_len, Some(3));

        let empty = Nfa::empty().metrics();
        assert_eq!(empty.min_word_len, None);
        assert!(empty.alphabet.is_empty());

        let star = Nfa::symbol("a").star().metrics();
        assert!(star.has_epsilon);
        assert_eq!(star.min_word_len, Some(0));
    }

    #[test]
    fn empty_and_epsilon() {
        assert!(Nfa::empty().is_empty());
        assert!(!Nfa::epsilon().is_empty());
        assert!(Nfa::epsilon().accepts(&[]));
        assert!(!Nfa::epsilon().accepts(&word_chars("a")));
    }

    #[test]
    fn union_concat_star() {
        let a = Nfa::symbol("a");
        let b = Nfa::symbol("b");
        let ab = a.concat(&b);
        assert!(ab.accepts(&word_chars("ab")));
        assert!(!ab.accepts(&word_chars("a")));
        let a_or_b = a.union(&b);
        assert!(a_or_b.accepts(&word_chars("a")));
        assert!(a_or_b.accepts(&word_chars("b")));
        assert!(!a_or_b.accepts(&word_chars("ab")));
        let astar = a.star();
        assert!(astar.accepts(&[]));
        assert!(astar.accepts(&word_chars("aaaa")));
        assert!(!astar.accepts(&word_chars("ab")));
        let aplus = a.plus();
        assert!(!aplus.accepts(&[]));
        assert!(aplus.accepts(&word_chars("aa")));
        let aopt = a.optional();
        assert!(aopt.accepts(&[]));
        assert!(aopt.accepts(&word_chars("a")));
        assert!(!aopt.accepts(&word_chars("aa")));
    }

    #[test]
    fn intersection_and_difference() {
        // (ab)* ∩ a(ba)*b = (ab)+ restricted... both describe strings of
        // alternating ab starting with a and ending with b, so the
        // intersection equals the non-empty even-length ones.
        let abstar = Nfa::literal(&word_chars("ab")).star();
        let a_ba_b = Nfa::symbol("a")
            .concat(&Nfa::literal(&word_chars("ba")).star())
            .concat(&Nfa::symbol("b"));
        let inter = abstar.intersect(&a_ba_b);
        assert!(inter.accepts(&word_chars("ab")));
        assert!(inter.accepts(&word_chars("abab")));
        assert!(!inter.accepts(&[]));
        assert!(!inter.accepts(&word_chars("aba")));

        let diff = abstar.difference(&a_ba_b, &ab());
        assert!(diff.accepts(&[]));
        assert!(!diff.accepts(&word_chars("ab")));
    }

    #[test]
    fn complement_and_universality() {
        let astar = Nfa::symbol("a").star();
        let comp = astar.complement(&ab());
        assert!(!comp.accepts(&[]));
        assert!(!comp.accepts(&word_chars("aa")));
        assert!(comp.accepts(&word_chars("ab")));
        assert!(comp.accepts(&word_chars("b")));
        let union = astar.union(&comp);
        assert!(union.is_universal(&ab()));
        assert!(!astar.is_universal(&ab()));
    }

    #[test]
    fn eps_free_preserves_language() {
        let a = Nfa::symbol("a").star().concat(&Nfa::symbol("b").optional());
        let ef = a.eps_free();
        assert!(!ef.has_epsilon());
        for w in ["", "a", "aa", "b", "ab", "aab", "ba", "bb"] {
            assert_eq!(a.accepts(&word_chars(w)), ef.accepts(&word_chars(w)), "word {w}");
        }
    }

    #[test]
    fn shortest_and_enumeration() {
        let a = Nfa::symbol("a").plus().concat(&Nfa::symbol("b"));
        assert_eq!(a.shortest_accepted(), Some(word_chars("ab")));
        assert_eq!(Nfa::empty().shortest_accepted(), None);
        let words = a.enumerate_accepted(4, 10);
        assert!(words.contains(&word_chars("ab")));
        assert!(words.contains(&word_chars("aaab")));
        assert!(!words.contains(&word_chars("b")));
    }

    #[test]
    fn trim_keeps_language() {
        let mut a = Nfa::new(4, 0);
        a.add_transition(0, "a", 1);
        a.add_transition(2, "b", 3); // unreachable garbage
        a.set_final(1);
        a.set_final(3);
        let t = a.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&word_chars("a")));
        assert!(!t.accepts(&word_chars("b")));
    }

    #[test]
    fn map_and_filter_symbols() {
        let a = Nfa::literal(&word_chars("ab"));
        let mapped = a.map_symbols(|s| if s.as_str() == "a" { Symbol::new("x") } else { *s });
        assert!(mapped.accepts(&word_chars("xb")));
        assert!(!mapped.accepts(&word_chars("ab")));
        let filtered = a.filter_symbols(|s| s.as_str() != "b");
        assert!(filtered.is_empty());
    }

    #[test]
    fn delta_star_reachability() {
        let a = Nfa::literal(&word_chars("ab")).star();
        let from_start = a.delta_star_from(a.start(), &word_chars("ab"));
        assert!(from_start.iter().any(|q| a.is_final(q)));
        let dead = a.delta_star_from(a.start(), &word_chars("ba"));
        assert!(dead.iter().all(|q| !a.is_final(q)));
    }

    #[test]
    fn any_of_and_sigma_star() {
        let any = Nfa::any_of(["a", "b"]);
        assert!(any.accepts(&word_chars("a")));
        assert!(any.accepts(&word_chars("b")));
        assert!(!any.accepts(&word_chars("ab")));
        let sig = Nfa::sigma_star(&ab());
        assert!(sig.accepts(&[]));
        assert!(sig.accepts(&word_chars("abba")));
        assert!(sig.is_universal(&ab()));
        let sp = Nfa::sigma_plus(&ab());
        assert!(!sp.accepts(&[]));
        assert!(sp.accepts(&word_chars("b")));
    }
}
