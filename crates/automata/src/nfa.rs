//! Nondeterministic finite automata (nFAs) with ε-transitions.
//!
//! This follows Section 2.1.2 of the paper: an nFA is a quintuple
//! `⟨K, Σ, Δ, qs, F⟩` with `Δ ⊆ K × (Σ ∪ {ε}) × K`. States are dense
//! integers `0..num_states`. The module provides the combinators the paper
//! relies on (`A1 · A2`, `A1 ∪ A2`, `A1 ∩ A2`, `A1 − A2`, complement) and the
//! basic decision procedures (membership, emptiness, universality). The
//! state-set reachability helpers (`delta_star_from`, `reachable_from`,
//! `coreachable_to`, `transitions`) are exposed publicly because the perfect
//! automaton construction of Section 6 manipulates the transition structure
//! of the global type directly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::dfa::Dfa;
use crate::symbol::{Alphabet, Symbol, Word};

/// A state identifier; states of an [`Nfa`] are `0..nfa.num_states()`.
pub type StateId = usize;

/// A nondeterministic finite automaton with ε-transitions.
#[derive(Clone, PartialEq, Eq)]
pub struct Nfa {
    num_states: usize,
    start: StateId,
    finals: BTreeSet<StateId>,
    /// `trans[q]` maps `Some(a)` (or `None` for ε) to the set of successor
    /// states.
    trans: Vec<BTreeMap<Option<Symbol>, BTreeSet<StateId>>>,
}

impl Nfa {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an NFA with `num_states` states (no transitions, no final
    /// states) and the given start state.
    pub fn new(num_states: usize, start: StateId) -> Self {
        assert!(start < num_states.max(1), "start state out of range");
        Nfa {
            num_states: num_states.max(1),
            start,
            finals: BTreeSet::new(),
            trans: vec![BTreeMap::new(); num_states.max(1)],
        }
    }

    /// The automaton recognising the empty language `∅`.
    pub fn empty() -> Self {
        Nfa::new(1, 0)
    }

    /// The automaton recognising only the empty word `{ε}`.
    pub fn epsilon() -> Self {
        let mut a = Nfa::new(1, 0);
        a.set_final(0);
        a
    }

    /// The automaton recognising the single-symbol word `{a}`.
    pub fn symbol(sym: impl Into<Symbol>) -> Self {
        let mut a = Nfa::new(2, 0);
        a.add_transition(0, sym, 1);
        a.set_final(1);
        a
    }

    /// The automaton recognising exactly the given word.
    pub fn literal(word: &[Symbol]) -> Self {
        let mut a = Nfa::new(word.len() + 1, 0);
        for (i, sym) in word.iter().enumerate() {
            a.add_transition(i, sym.clone(), i + 1);
        }
        a.set_final(word.len());
        a
    }

    /// The automaton recognising any *single* symbol from the given set
    /// (the building block of boxes).
    pub fn any_of<I, S>(symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let mut a = Nfa::new(2, 0);
        for s in symbols {
            a.add_transition(0, s, 1);
        }
        a.set_final(1);
        a
    }

    /// The automaton recognising `Σ*` for the given alphabet.
    pub fn sigma_star(alphabet: &Alphabet) -> Self {
        let mut a = Nfa::new(1, 0);
        for s in alphabet {
            a.add_transition(0, s.clone(), 0);
        }
        a.set_final(0);
        a
    }

    /// The automaton recognising `Σ+` for the given alphabet.
    pub fn sigma_plus(alphabet: &Alphabet) -> Self {
        Nfa::sigma_star(alphabet).concat(&Nfa::any_of(alphabet.iter().cloned()))
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.trans.push(BTreeMap::new());
        self.num_states += 1;
        self.num_states - 1
    }

    /// Adds a transition `from --sym--> to`.
    pub fn add_transition(&mut self, from: StateId, sym: impl Into<Symbol>, to: StateId) {
        assert!(from < self.num_states && to < self.num_states);
        self.trans[from].entry(Some(sym.into())).or_default().insert(to);
    }

    /// Adds an ε-transition `from --ε--> to`.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        assert!(from < self.num_states && to < self.num_states);
        self.trans[from].entry(None).or_default().insert(to);
    }

    /// Marks a state as final.
    pub fn set_final(&mut self, state: StateId) {
        assert!(state < self.num_states);
        self.finals.insert(state);
    }

    /// Unmarks a state as final.
    pub fn unset_final(&mut self, state: StateId) {
        self.finals.remove(&state);
    }

    /// Changes the start state.
    pub fn set_start(&mut self, state: StateId) {
        assert!(state < self.num_states);
        self.start = state;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total number of transitions (counting each `(q, a, q')` triple once).
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(|m| m.values().map(BTreeSet::len).sum::<usize>()).sum()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(&state)
    }

    /// Iterates over all transitions as `(from, label, to)` where a label of
    /// `None` denotes ε.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Option<&Symbol>, StateId)> + '_ {
        self.trans.iter().enumerate().flat_map(|(q, m)| {
            m.iter().flat_map(move |(lbl, tos)| tos.iter().map(move |t| (q, lbl.as_ref(), *t)))
        })
    }

    /// The successor set `Δ(q, a)`.
    pub fn delta(&self, q: StateId, sym: &Symbol) -> BTreeSet<StateId> {
        self.trans[q].get(&Some(sym.clone())).cloned().unwrap_or_default()
    }

    /// The alphabet of symbols actually appearing on transitions.
    pub fn alphabet(&self) -> Alphabet {
        self.trans
            .iter()
            .flat_map(|m| m.keys())
            .filter_map(|k| k.clone())
            .collect()
    }

    /// Whether the automaton has any ε-transition.
    pub fn has_epsilon(&self) -> bool {
        self.trans.iter().any(|m| m.contains_key(&None))
    }

    // ------------------------------------------------------------------
    // Runs
    // ------------------------------------------------------------------

    /// The ε-closure of a set of states.
    pub fn epsilon_closure(&self, set: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = set.clone();
        let mut stack: Vec<StateId> = set.iter().copied().collect();
        while let Some(q) = stack.pop() {
            if let Some(next) = self.trans[q].get(&None) {
                for &t in next {
                    if closure.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        closure
    }

    /// One symbol step on a (ε-closed) state set, returning the ε-closure of
    /// the successor set.
    pub fn step(&self, set: &BTreeSet<StateId>, sym: &Symbol) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &q in set {
            if let Some(ts) = self.trans[q].get(&Some(sym.clone())) {
                next.extend(ts.iter().copied());
            }
        }
        self.epsilon_closure(&next)
    }

    /// The set of states reachable from `set` by reading `word`
    /// (the extended transition relation `Δ*`).
    pub fn delta_star(&self, set: &BTreeSet<StateId>, word: &[Symbol]) -> BTreeSet<StateId> {
        let mut current = self.epsilon_closure(set);
        for sym in word {
            if current.is_empty() {
                break;
            }
            current = self.step(&current, sym);
        }
        current
    }

    /// The set of states reachable from a single state `q` by reading `word`.
    pub fn delta_star_from(&self, q: StateId, word: &[Symbol]) -> BTreeSet<StateId> {
        self.delta_star(&BTreeSet::from([q]), word)
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.delta_star_from(self.start, word).iter().any(|q| self.finals.contains(q))
    }

    // ------------------------------------------------------------------
    // Reachability & structure
    // ------------------------------------------------------------------

    /// The set of states reachable (by any transitions, including ε) from the
    /// states in `from`.
    pub fn reachable_from(&self, from: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut seen = from.clone();
        let mut stack: Vec<StateId> = from.iter().copied().collect();
        while let Some(q) = stack.pop() {
            for tos in self.trans[q].values() {
                for &t in tos {
                    if seen.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        seen
    }

    /// The set of states from which some state in `to` is reachable.
    pub fn coreachable_to(&self, to: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        // Build reverse adjacency.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states];
        for (q, m) in self.trans.iter().enumerate() {
            for tos in m.values() {
                for &t in tos {
                    rev[t].push(q);
                }
            }
        }
        let mut seen = to.clone();
        let mut stack: Vec<StateId> = to.iter().copied().collect();
        while let Some(q) = stack.pop() {
            for &p in &rev[q] {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Whether the language of the automaton is empty.
    pub fn is_empty(&self) -> bool {
        let reach = self.reachable_from(&BTreeSet::from([self.start]));
        reach.is_disjoint(&self.finals) || self.finals.is_empty()
    }

    /// Whether the language equals `Σ*` over the given alphabet.
    pub fn is_universal(&self, alphabet: &Alphabet) -> bool {
        self.complement(alphabet).is_empty()
    }

    /// A shortest accepted word, if any (breadth-first search over state
    /// sets of the determinised automaton, so the result is genuinely
    /// shortest).
    pub fn shortest_accepted(&self) -> Option<Word> {
        let alphabet = self.alphabet();
        let start = self.epsilon_closure(&BTreeSet::from([self.start]));
        let mut queue: VecDeque<(BTreeSet<StateId>, Word)> = VecDeque::new();
        let mut seen: BTreeSet<BTreeSet<StateId>> = BTreeSet::new();
        queue.push_back((start.clone(), Vec::new()));
        seen.insert(start);
        while let Some((set, word)) = queue.pop_front() {
            if set.iter().any(|q| self.finals.contains(q)) {
                return Some(word);
            }
            for sym in &alphabet {
                let next = self.step(&set, sym);
                if next.is_empty() {
                    continue;
                }
                if seen.insert(next.clone()) {
                    let mut w = word.clone();
                    w.push(sym.clone());
                    queue.push_back((next, w));
                }
            }
        }
        None
    }

    /// Enumerates accepted words of length at most `max_len`, up to `limit`
    /// words, in length-lexicographic order. Intended for tests and examples.
    pub fn enumerate_accepted(&self, max_len: usize, limit: usize) -> Vec<Word> {
        let alphabet = self.alphabet();
        let mut out = Vec::new();
        let start = self.epsilon_closure(&BTreeSet::from([self.start]));
        let mut frontier: Vec<(BTreeSet<StateId>, Word)> = vec![(start, Vec::new())];
        for _len in 0..=max_len {
            let mut next_frontier = Vec::new();
            for (set, word) in &frontier {
                if set.iter().any(|q| self.finals.contains(q)) {
                    out.push(word.clone());
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            for (set, word) in frontier {
                for sym in &alphabet {
                    let next = self.step(&set, sym);
                    if !next.is_empty() {
                        let mut w = word.clone();
                        w.push(sym.clone());
                        next_frontier.push((next, w));
                    }
                }
            }
            frontier = next_frontier;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// Restricts the automaton to states reachable from the start *and*
    /// co-reachable from a final state (keeping the start state even if its
    /// language is empty). The result accepts the same language.
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable_from(&BTreeSet::from([self.start]));
        let coreach = self.coreachable_to(&self.finals);
        let mut keep: Vec<StateId> =
            reach.intersection(&coreach).copied().collect();
        if !keep.contains(&self.start) {
            keep.push(self.start);
        }
        keep.sort_unstable();
        let index: BTreeMap<StateId, StateId> =
            keep.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let mut out = Nfa::new(keep.len(), index[&self.start]);
        for &q in &keep {
            for (lbl, tos) in &self.trans[q] {
                for t in tos {
                    if let Some(&ti) = index.get(t) {
                        match lbl {
                            Some(sym) => out.add_transition(index[&q], sym.clone(), ti),
                            None => out.add_epsilon(index[&q], ti),
                        }
                    }
                }
            }
            if self.finals.contains(&q) {
                out.set_final(index[&q]);
            }
        }
        out
    }

    /// Returns an equivalent NFA without ε-transitions.
    pub fn eps_free(&self) -> Nfa {
        if !self.has_epsilon() {
            return self.clone();
        }
        let mut out = Nfa::new(self.num_states, self.start);
        for q in 0..self.num_states {
            let closure = self.epsilon_closure(&BTreeSet::from([q]));
            if closure.iter().any(|c| self.finals.contains(c)) {
                out.set_final(q);
            }
            for &c in &closure {
                for (lbl, tos) in &self.trans[c] {
                    if let Some(sym) = lbl {
                        for &t in tos {
                            out.add_transition(q, sym.clone(), t);
                        }
                    }
                }
            }
        }
        out.trim()
    }

    /// Renames every symbol on every transition through `f` (used to apply
    /// the specialisation-erasing morphism `µ` of SDTDs/EDTDs to content
    /// models).
    pub fn map_symbols(&self, mut f: impl FnMut(&Symbol) -> Symbol) -> Nfa {
        let mut out = Nfa::new(self.num_states, self.start);
        for q in 0..self.num_states {
            for (lbl, tos) in &self.trans[q] {
                for &t in tos {
                    match lbl {
                        Some(sym) => out.add_transition(q, f(sym), t),
                        None => out.add_epsilon(q, t),
                    }
                }
            }
            if self.finals.contains(&q) {
                out.set_final(q);
            }
        }
        out
    }

    /// Keeps only transitions whose symbol satisfies the predicate
    /// (ε-transitions are always kept).
    pub fn filter_symbols(&self, mut keep: impl FnMut(&Symbol) -> bool) -> Nfa {
        let mut out = Nfa::new(self.num_states, self.start);
        for q in 0..self.num_states {
            for (lbl, tos) in &self.trans[q] {
                for &t in tos {
                    match lbl {
                        Some(sym) if keep(sym) => out.add_transition(q, sym.clone(), t),
                        Some(_) => {}
                        None => out.add_epsilon(q, t),
                    }
                }
            }
            if self.finals.contains(&q) {
                out.set_final(q);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Rational operations
    // ------------------------------------------------------------------

    /// Copies `other`'s states into `self` with an offset, returning the
    /// offset. (Internal helper for the rational operations.)
    fn absorb(&mut self, other: &Nfa) -> usize {
        let offset = self.num_states;
        self.num_states += other.num_states;
        self.trans.extend(other.trans.iter().map(|m| {
            m.iter()
                .map(|(lbl, tos)| (lbl.clone(), tos.iter().map(|t| t + offset).collect()))
                .collect()
        }));
        offset
    }

    /// Union `[self] ∪ [other]`.
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut out = Nfa::new(1, 0);
        let o1 = out.absorb(self);
        let o2 = out.absorb(other);
        out.add_epsilon(0, self.start + o1);
        out.add_epsilon(0, other.start + o2);
        for &f in &self.finals {
            out.set_final(f + o1);
        }
        for &f in &other.finals {
            out.set_final(f + o2);
        }
        out
    }

    /// Union of many automata. Returns the empty language for an empty slice.
    pub fn union_all<'a>(automata: impl IntoIterator<Item = &'a Nfa>) -> Nfa {
        let mut iter = automata.into_iter();
        match iter.next() {
            None => Nfa::empty(),
            Some(first) => iter.fold(first.clone(), |acc, a| acc.union(a)),
        }
    }

    /// Concatenation `[self] ◦ [other]`.
    pub fn concat(&self, other: &Nfa) -> Nfa {
        let mut out = self.clone();
        let o2 = out.absorb(other);
        for &f in &self.finals {
            out.add_epsilon(f, other.start + o2);
        }
        out.finals = other.finals.iter().map(|f| f + o2).collect();
        out
    }

    /// Kleene star `[self]*`.
    pub fn star(&self) -> Nfa {
        let mut out = Nfa::new(1, 0);
        let o = out.absorb(self);
        out.add_epsilon(0, self.start + o);
        out.set_final(0);
        for &f in &self.finals {
            out.add_epsilon(f + o, 0);
            out.set_final(f + o);
        }
        out
    }

    /// Kleene plus `[self]+`.
    pub fn plus(&self) -> Nfa {
        self.concat(&self.star())
    }

    /// Option `[self]?` = `[self] ∪ {ε}`.
    pub fn optional(&self) -> Nfa {
        let mut out = self.clone();
        if !out.finals.contains(&out.start) {
            let new_start = out.add_state();
            out.add_epsilon(new_start, out.start);
            out.set_start(new_start);
            out.set_final(new_start);
        }
        out
    }

    /// Intersection `[self] ∩ [other]` (product construction on the ε-free
    /// versions).
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        let a = self.eps_free();
        let b = other.eps_free();
        // Product over pairs, built lazily from the reachable part.
        let mut index: BTreeMap<(StateId, StateId), StateId> = BTreeMap::new();
        let mut out = Nfa::new(1, 0);
        index.insert((a.start, b.start), 0);
        let mut stack = vec![(a.start, b.start)];
        while let Some((p, q)) = stack.pop() {
            let pid = index[&(p, q)];
            if a.is_final(p) && b.is_final(q) {
                out.set_final(pid);
            }
            for (lbl, tos) in &a.trans[p] {
                let sym = match lbl {
                    Some(s) => s,
                    None => continue,
                };
                let b_tos = match b.trans[q].get(&Some(sym.clone())) {
                    Some(t) => t,
                    None => continue,
                };
                for &ta in tos {
                    for &tb in b_tos {
                        let tid = *index.entry((ta, tb)).or_insert_with(|| {
                            stack.push((ta, tb));
                            out.add_state()
                        });
                        out.add_transition(pid, sym.clone(), tid);
                    }
                }
            }
        }
        out.trim()
    }

    /// Intersection of many automata. Panics on an empty iterator (there is
    /// no universal language without an alphabet).
    pub fn intersect_all<'a>(automata: impl IntoIterator<Item = &'a Nfa>) -> Nfa {
        let mut iter = automata.into_iter();
        let first = iter.next().expect("intersect_all needs at least one automaton");
        iter.fold(first.clone(), |acc, a| acc.intersect(a))
    }

    /// Complement `Σ* − [self]` with respect to the given alphabet.
    pub fn complement(&self, alphabet: &Alphabet) -> Nfa {
        Dfa::from_nfa(self).complete(alphabet).complement().to_nfa()
    }

    /// Difference `[self] − [other]` with respect to the given alphabet
    /// (needed to complete `other` before complementing it).
    pub fn difference(&self, other: &Nfa, alphabet: &Alphabet) -> Nfa {
        self.intersect(&other.complement(alphabet))
    }

    /// Converts to a DFA (subset construction).
    pub fn to_dfa(&self) -> Dfa {
        Dfa::from_nfa(self)
    }
}

impl fmt::Debug for Nfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Nfa(states={}, start={}, finals={:?})", self.num_states, self.start, self.finals)?;
        for (q, lbl, t) in self.transitions() {
            match lbl {
                Some(s) => writeln!(f, "  {q} --{s}--> {t}")?,
                None => writeln!(f, "  {q} --ε--> {t}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{word_chars, Alphabet};

    fn ab() -> Alphabet {
        Alphabet::from_chars("ab")
    }

    #[test]
    fn literal_accepts_only_itself() {
        let w = word_chars("aba");
        let a = Nfa::literal(&w);
        assert!(a.accepts(&w));
        assert!(!a.accepts(&word_chars("ab")));
        assert!(!a.accepts(&word_chars("abaa")));
        assert!(!a.accepts(&[]));
    }

    #[test]
    fn empty_and_epsilon() {
        assert!(Nfa::empty().is_empty());
        assert!(!Nfa::epsilon().is_empty());
        assert!(Nfa::epsilon().accepts(&[]));
        assert!(!Nfa::epsilon().accepts(&word_chars("a")));
    }

    #[test]
    fn union_concat_star() {
        let a = Nfa::symbol("a");
        let b = Nfa::symbol("b");
        let ab = a.concat(&b);
        assert!(ab.accepts(&word_chars("ab")));
        assert!(!ab.accepts(&word_chars("a")));
        let a_or_b = a.union(&b);
        assert!(a_or_b.accepts(&word_chars("a")));
        assert!(a_or_b.accepts(&word_chars("b")));
        assert!(!a_or_b.accepts(&word_chars("ab")));
        let astar = a.star();
        assert!(astar.accepts(&[]));
        assert!(astar.accepts(&word_chars("aaaa")));
        assert!(!astar.accepts(&word_chars("ab")));
        let aplus = a.plus();
        assert!(!aplus.accepts(&[]));
        assert!(aplus.accepts(&word_chars("aa")));
        let aopt = a.optional();
        assert!(aopt.accepts(&[]));
        assert!(aopt.accepts(&word_chars("a")));
        assert!(!aopt.accepts(&word_chars("aa")));
    }

    #[test]
    fn intersection_and_difference() {
        // (ab)* ∩ a(ba)*b = (ab)+ restricted... both describe strings of
        // alternating ab starting with a and ending with b, so the
        // intersection equals the non-empty even-length ones.
        let abstar = Nfa::literal(&word_chars("ab")).star();
        let a_ba_b = Nfa::symbol("a")
            .concat(&Nfa::literal(&word_chars("ba")).star())
            .concat(&Nfa::symbol("b"));
        let inter = abstar.intersect(&a_ba_b);
        assert!(inter.accepts(&word_chars("ab")));
        assert!(inter.accepts(&word_chars("abab")));
        assert!(!inter.accepts(&[]));
        assert!(!inter.accepts(&word_chars("aba")));

        let diff = abstar.difference(&a_ba_b, &ab());
        assert!(diff.accepts(&[]));
        assert!(!diff.accepts(&word_chars("ab")));
    }

    #[test]
    fn complement_and_universality() {
        let astar = Nfa::symbol("a").star();
        let comp = astar.complement(&ab());
        assert!(!comp.accepts(&[]));
        assert!(!comp.accepts(&word_chars("aa")));
        assert!(comp.accepts(&word_chars("ab")));
        assert!(comp.accepts(&word_chars("b")));
        let union = astar.union(&comp);
        assert!(union.is_universal(&ab()));
        assert!(!astar.is_universal(&ab()));
    }

    #[test]
    fn eps_free_preserves_language() {
        let a = Nfa::symbol("a").star().concat(&Nfa::symbol("b").optional());
        let ef = a.eps_free();
        assert!(!ef.has_epsilon());
        for w in ["", "a", "aa", "b", "ab", "aab", "ba", "bb"] {
            assert_eq!(a.accepts(&word_chars(w)), ef.accepts(&word_chars(w)), "word {w}");
        }
    }

    #[test]
    fn shortest_and_enumeration() {
        let a = Nfa::symbol("a").plus().concat(&Nfa::symbol("b"));
        assert_eq!(a.shortest_accepted(), Some(word_chars("ab")));
        assert_eq!(Nfa::empty().shortest_accepted(), None);
        let words = a.enumerate_accepted(4, 10);
        assert!(words.contains(&word_chars("ab")));
        assert!(words.contains(&word_chars("aaab")));
        assert!(!words.contains(&word_chars("b")));
    }

    #[test]
    fn trim_keeps_language() {
        let mut a = Nfa::new(4, 0);
        a.add_transition(0, "a", 1);
        a.add_transition(2, "b", 3); // unreachable garbage
        a.set_final(1);
        a.set_final(3);
        let t = a.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&word_chars("a")));
        assert!(!t.accepts(&word_chars("b")));
    }

    #[test]
    fn map_and_filter_symbols() {
        let a = Nfa::literal(&word_chars("ab"));
        let mapped = a.map_symbols(|s| if s.as_str() == "a" { Symbol::new("x") } else { s.clone() });
        assert!(mapped.accepts(&word_chars("xb")));
        assert!(!mapped.accepts(&word_chars("ab")));
        let filtered = a.filter_symbols(|s| s.as_str() != "b");
        assert!(filtered.is_empty());
    }

    #[test]
    fn delta_star_reachability() {
        let a = Nfa::literal(&word_chars("ab")).star();
        let from_start = a.delta_star_from(a.start(), &word_chars("ab"));
        assert!(from_start.iter().any(|q| a.is_final(*q)));
        let dead = a.delta_star_from(a.start(), &word_chars("ba"));
        assert!(dead.iter().all(|q| !a.is_final(*q)));
    }

    #[test]
    fn any_of_and_sigma_star() {
        let any = Nfa::any_of(["a", "b"]);
        assert!(any.accepts(&word_chars("a")));
        assert!(any.accepts(&word_chars("b")));
        assert!(!any.accepts(&word_chars("ab")));
        let sig = Nfa::sigma_star(&ab());
        assert!(sig.accepts(&[]));
        assert!(sig.accepts(&word_chars("abba")));
        assert!(sig.is_universal(&ab()));
        let sp = Nfa::sigma_plus(&ab());
        assert!(!sp.accepts(&[]));
        assert!(sp.accepts(&word_chars("b")));
    }
}
