//! Boxes: cartesian products of symbol sets (Section 2.1.2).
//!
//! A *box* of width `n` over `Σ` is a language of the form `Σ1 Σ2 … Σn` with
//! `Σi ⊆ Σ`: every word of length exactly `n` whose `i`-th symbol belongs to
//! `Σi`. Boxes appear in the paper as the "kernel boxes" `B(fn)` used to
//! reduce the R-EDTD design problems on trees to design problems on strings
//! whose constant parts are boxes rather than single words (Section 7,
//! Definition 21).
//!
//! Besides the box datatype itself, this module provides the automaton
//! operations the Section-7 reduction needs:
//!
//! * [`BoxLang::intersect`] / [`BoxLang::is_disjoint_from`] — slot-wise
//!   boolean structure of boxes (boxes of different widths are disjoint);
//! * [`BoxLang::product_nfa`] — the box↔NFA product `[B] ∩ [A]`, built
//!   directly on the layered structure of the box (no subset construction);
//! * [`Nfa::residual_by_box`] / [`Nfa::right_residual_by_box`] — the
//!   existential residuals `B⁻¹[A]` and `[A]·B⁻¹` of an NFA by a box,
//!   computed by stepping state sets through the slots;
//! * [`Nfa::expand_symbols`] — the slot substitution `σ(a) ⊆ Σ'` applied to
//!   every transition, turning a word automaton over constant symbols into
//!   one over *boxes* of specialised names (the inverse-morphism step of the
//!   reduction from R-EDTD tree problems to string problems).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::nfa::{Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::{Alphabet, Symbol, Word};

/// A box `Σ1 Σ2 … Σn`: a finite regular language that is a cartesian product
/// of symbol sets.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BoxLang {
    slots: Vec<BTreeSet<Symbol>>,
}

impl BoxLang {
    /// The empty-width box, whose language is `{ε}`.
    pub fn epsilon() -> Self {
        BoxLang { slots: Vec::new() }
    }

    /// Builds a box from the given slots. A slot with an empty symbol set
    /// makes the whole language empty.
    pub fn new(slots: Vec<BTreeSet<Symbol>>) -> Self {
        BoxLang { slots }
    }

    /// Builds a box from one single-symbol slot per symbol of the word (the
    /// box whose language is exactly `{word}`).
    pub fn from_word(word: &[Symbol]) -> Self {
        BoxLang {
            slots: word.iter().map(|s| BTreeSet::from([*s])).collect(),
        }
    }

    /// Appends a slot.
    pub fn push_slot<I, S>(&mut self, symbols: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        self.slots.push(symbols.into_iter().map(Into::into).collect());
    }

    /// The width `n` of the box.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// The slots of the box.
    pub fn slots(&self) -> &[BTreeSet<Symbol>] {
        &self.slots
    }

    /// Whether the language of the box is empty (some slot has no symbols).
    pub fn is_empty_language(&self) -> bool {
        self.slots.iter().any(BTreeSet::is_empty)
    }

    /// Number of words in the box (`|Σ1| · … · |Σn|`), saturating at
    /// `usize::MAX`.
    pub fn num_words(&self) -> usize {
        self.slots
            .iter()
            .map(BTreeSet::len)
            .fold(1usize, usize::saturating_mul)
    }

    /// Whether `word` belongs to the box.
    pub fn contains(&self, word: &[Symbol]) -> bool {
        word.len() == self.slots.len()
            && word.iter().zip(&self.slots).all(|(s, slot)| slot.contains(s))
    }

    /// Concatenation of two boxes.
    pub fn concat(&self, other: &BoxLang) -> BoxLang {
        let mut slots = self.slots.clone();
        slots.extend(other.slots.iter().cloned());
        BoxLang { slots }
    }

    /// The union of all symbols appearing in some slot.
    pub fn alphabet(&self) -> Alphabet {
        self.slots.iter().flatten().cloned().collect()
    }

    /// Converts the box to an [`Nfa`] (a chain of `any_of` transitions).
    pub fn to_nfa(&self) -> Nfa {
        if self.is_empty_language() {
            return Nfa::empty();
        }
        let mut nfa = Nfa::new(self.slots.len() + 1, 0);
        for (i, slot) in self.slots.iter().enumerate() {
            for sym in slot {
                nfa.add_transition(i, *sym, i + 1);
            }
        }
        nfa.set_final(self.slots.len());
        nfa
    }

    /// The slot-wise intersection `[self] ∩ [other]` as a box. Boxes of
    /// different widths have no word in common; the result is then a box of
    /// `self`'s width whose first slot is empty (so its language is empty).
    pub fn intersect(&self, other: &BoxLang) -> BoxLang {
        if self.width() != other.width() {
            let mut slots = vec![BTreeSet::new()];
            slots.extend(self.slots.iter().skip(1).cloned());
            return BoxLang { slots };
        }
        BoxLang {
            slots: self
                .slots
                .iter()
                .zip(&other.slots)
                .map(|(a, b)| a.intersection(b).cloned().collect())
                .collect(),
        }
    }

    /// Whether the two boxes share no word (`[self] ∩ [other] = ∅`).
    pub fn is_disjoint_from(&self, other: &BoxLang) -> bool {
        self.intersect(other).is_empty_language()
    }

    /// The box↔NFA product: an NFA for `[self] ∩ [nfa]`, built layer by
    /// layer on the box structure — state `(i, q)` means "`i` slots read,
    /// `nfa` in state `q`" — rather than through a generic product of
    /// subset constructions.
    pub fn product_nfa(&self, nfa: &Nfa) -> Nfa {
        if self.is_empty_language() {
            return Nfa::empty();
        }
        let n = nfa.num_states();
        let layers = self.width() + 1;
        let mut out = Nfa::new(layers * n, nfa.start());
        let id = |layer: usize, q: StateId| layer * n + q;
        for layer in 0..layers {
            for (q, lbl, t) in nfa.transitions() {
                match lbl {
                    // ε-transitions stay inside their layer.
                    None => out.add_epsilon(id(layer, q), id(layer, t)),
                    Some(sym) => {
                        if layer < self.width() && self.slots[layer].contains(sym) {
                            out.add_transition(id(layer, q), *sym, id(layer + 1, t));
                        }
                    }
                }
            }
        }
        for &f in nfa.finals() {
            out.set_final(id(self.width(), f));
        }
        out.trim()
    }

    /// Enumerates the words of the box in lexicographic slot order, up to
    /// `limit` words.
    pub fn enumerate(&self, limit: usize) -> Vec<Word> {
        if self.is_empty_language() {
            return Vec::new();
        }
        let mut words: Vec<Word> = vec![Vec::new()];
        for slot in &self.slots {
            let mut next = Vec::new();
            'outer: for w in &words {
                for sym in slot {
                    let mut w2 = w.clone();
                    w2.push(*sym);
                    next.push(w2);
                    if next.len() >= limit {
                        break 'outer;
                    }
                }
            }
            words = next;
        }
        words
    }
}

impl Nfa {
    /// The set of states reachable from the (ε-closed) start set by reading
    /// some word of the box: one slot step unions the plain [`Nfa::step`]
    /// over the slot's symbols.
    fn states_after_box(&self, b: &BoxLang) -> StateSet {
        let mut current = self.start_closure();
        for slot in b.slots() {
            current = self.step_all(&current, slot);
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// The existential left residual of the automaton by a box:
    /// `B⁻¹[self] = { w : ∃u ∈ [B], u·w ∈ [self] }`.
    ///
    /// Unlike the generic [`Nfa::left_quotient`] this never determinises:
    /// it steps the state set once per slot (a box is a finite language with
    /// a single "spine"), then grafts a fresh start state.
    pub fn residual_by_box(&self, b: &BoxLang) -> Nfa {
        let entry = self.states_after_box(b);
        let mut out = self.clone();
        let start = out.add_state();
        out.set_start(start);
        for q in &entry {
            out.add_epsilon(start, q);
        }
        out.trim()
    }

    /// The existential right residual of the automaton by a box:
    /// `[self]·B⁻¹ = { w : ∃v ∈ [B], w·v ∈ [self] }`.
    pub fn right_residual_by_box(&self, b: &BoxLang) -> Nfa {
        // `q` is final in the residual iff some box word leads from `q` to a
        // final state: step `{q}` through the slots.
        let mut out = self.clone();
        let finals: Vec<StateId> = out.finals().iter().copied().collect();
        for f in finals {
            out.unset_final(f);
        }
        let finals = self.finals_set();
        for q in 0..self.num_states() {
            let mut current =
                self.epsilon_closure(&StateSet::singleton(self.num_states(), q));
            for slot in b.slots() {
                current = self.step_all(&current, slot);
                if current.is_empty() {
                    break;
                }
            }
            if current.intersects(&finals) {
                out.set_final(q);
            }
        }
        out.trim()
    }

    /// Substitutes every transition symbol by a *slot* (a set of symbols):
    /// the language becomes `{ b1…bn : a1…an ∈ [self], bi ∈ slots(ai) }`.
    ///
    /// This is the inverse-morphism step of the Section-7 reduction: a
    /// content model over element names turns into an automaton over the
    /// specialised names (or determinised subset states) each element can
    /// stand for. Symbols mapped to an empty slot lose their transitions —
    /// words using them become unrealizable.
    pub fn expand_symbols(&self, slots: &BTreeMap<Symbol, BTreeSet<Symbol>>) -> Nfa {
        let mut out = Nfa::new(self.num_states(), self.start());
        for (q, lbl, t) in self.transitions() {
            match lbl {
                None => out.add_epsilon(q, t),
                Some(sym) => match slots.get(sym) {
                    Some(slot) => {
                        for b in slot {
                            out.add_transition(q, *b, t);
                        }
                    }
                    None => out.add_transition(q, *sym, t),
                },
            }
        }
        for &f in self.finals() {
            out.set_final(f);
        }
        out
    }
}

impl fmt::Display for BoxLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if slot.len() == 1 {
                write!(f, "{}", slot.iter().next().unwrap())?;
            } else {
                let names: Vec<String> = slot.iter().map(ToString::to_string).collect();
                write!(f, "{{{}}}", names.join(","))?;
            }
        }
        if self.slots.is_empty() {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::word_chars;

    fn sample_box() -> BoxLang {
        let mut b = BoxLang::epsilon();
        b.push_slot(["a", "b"]);
        b.push_slot(["c"]);
        b.push_slot(["a", "d"]);
        b
    }

    #[test]
    fn membership_and_counts() {
        let b = sample_box();
        assert_eq!(b.width(), 3);
        assert_eq!(b.num_words(), 4);
        assert!(b.contains(&word_chars("aca")));
        assert!(b.contains(&word_chars("bcd")));
        assert!(!b.contains(&word_chars("acc")));
        assert!(!b.contains(&word_chars("ac")));
        assert!(!b.is_empty_language());
    }

    #[test]
    fn nfa_agrees_with_membership() {
        let b = sample_box();
        let nfa = b.to_nfa();
        for w in b.enumerate(100) {
            assert!(nfa.accepts(&w));
        }
        assert!(!nfa.accepts(&word_chars("acc")));
        assert_eq!(nfa.enumerate_accepted(3, 100).len(), 4);
    }

    #[test]
    fn empty_slot_empties_language() {
        let mut b = sample_box();
        b.push_slot(Vec::<Symbol>::new());
        assert!(b.is_empty_language());
        assert!(b.to_nfa().is_empty());
        assert_eq!(b.enumerate(10), Vec::<Word>::new());
        assert_eq!(b.num_words(), 0);
    }

    #[test]
    fn from_word_and_concat() {
        let w = word_chars("ab");
        let b = BoxLang::from_word(&w);
        assert!(b.contains(&w));
        assert_eq!(b.num_words(), 1);
        let b2 = b.concat(&sample_box());
        assert_eq!(b2.width(), 5);
        assert!(b2.contains(&word_chars("abaca")));
    }

    #[test]
    fn epsilon_box() {
        let b = BoxLang::epsilon();
        assert!(b.contains(&[]));
        assert!(!b.contains(&word_chars("a")));
        assert!(b.to_nfa().accepts(&[]));
        assert_eq!(format!("{b}"), "ε");
    }

    #[test]
    fn display_format() {
        let b = sample_box();
        assert_eq!(format!("{b}"), "{a,b} c {a,d}");
    }

    #[test]
    fn intersection_is_slotwise() {
        let mut other = BoxLang::epsilon();
        other.push_slot(["b", "c"]);
        other.push_slot(["c", "d"]);
        other.push_slot(["d"]);
        let inter = sample_box().intersect(&other);
        assert_eq!(inter.width(), 3);
        assert!(inter.contains(&word_chars("bcd")));
        assert_eq!(inter.num_words(), 1);
        assert!(!sample_box().is_disjoint_from(&other));
        // Different widths are disjoint, and the intersection is empty.
        let narrow = BoxLang::from_word(&word_chars("ac"));
        assert!(sample_box().intersect(&narrow).is_empty_language());
        assert!(sample_box().is_disjoint_from(&narrow));
        assert!(sample_box().is_disjoint_from(&BoxLang::epsilon()));
        assert!(!BoxLang::epsilon().is_disjoint_from(&BoxLang::epsilon()));
    }

    #[test]
    fn product_with_nfa_agrees_with_generic_intersection() {
        let b = sample_box();
        // (a|b) c* (a|d)* — overlaps the box on acd? no: on aca, acd, bca, bcd
        // minus whatever c* rules out.
        let lang = Nfa::any_of(["a", "b"])
            .concat(&Nfa::symbol("c").star())
            .concat(&Nfa::any_of(["a", "d"]).star());
        let product = b.product_nfa(&lang);
        let generic = b.to_nfa().intersect(&lang);
        for w in b.enumerate(100) {
            assert_eq!(product.accepts(&w), generic.accepts(&w), "word {w:?}");
        }
        assert!(product.accepts(&word_chars("aca")));
        assert!(!product.accepts(&word_chars("ac")));
        assert!(!product.accepts(&word_chars("acc")));
        // Width-0 boxes intersect to {ε} ∩ L.
        assert!(BoxLang::epsilon().product_nfa(&Nfa::epsilon()).accepts(&[]));
        assert!(BoxLang::epsilon().product_nfa(&Nfa::symbol("a")).is_empty());
        // An empty-slot box yields the empty language.
        let mut dead = sample_box();
        dead.push_slot(Vec::<Symbol>::new());
        assert!(dead.product_nfa(&lang).is_empty());
    }

    #[test]
    fn residuals_by_box() {
        // L = (a|b) c (a|d) e*; residual by the sample box is e*.
        let lang = sample_box().to_nfa().concat(&Nfa::symbol("e").star());
        let res = lang.residual_by_box(&sample_box());
        assert!(res.accepts(&[]));
        assert!(res.accepts(&word_chars("ee")));
        assert!(!res.accepts(&word_chars("a")));
        // Residual by a disjoint box is empty.
        let off = BoxLang::from_word(&word_chars("ccc"));
        assert!(lang.residual_by_box(&off).is_empty());
        // Right residual: {w : w · (aca|…|bcd) ∈ L} = {ε, e…}? No: e* comes
        // after the box, so the right residual of L by the box is {ε} only.
        let rres = lang.right_residual_by_box(&sample_box());
        assert!(rres.accepts(&[]));
        assert!(!rres.accepts(&word_chars("e")));
        // And on e* ◦ box, the right residual is e*.
        let lang2 = Nfa::symbol("e").star().concat(&sample_box().to_nfa());
        let rres2 = lang2.right_residual_by_box(&sample_box());
        assert!(rres2.accepts(&[]));
        assert!(rres2.accepts(&word_chars("eee")));
        assert!(!rres2.accepts(&word_chars("a")));
    }

    #[test]
    fn expand_symbols_substitutes_slots() {
        use std::collections::BTreeMap;
        // a b → ({a1,a2}) ({b1}); `c` has no mapping and passes through.
        let lang = Nfa::literal(&word_chars("ab")).union(&Nfa::symbol("c"));
        let mut slots: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
        slots.insert(Symbol::new("a"), BTreeSet::from([Symbol::new("a1"), Symbol::new("a2")]));
        slots.insert(Symbol::new("b"), BTreeSet::from([Symbol::new("b1")]));
        let expanded = lang.expand_symbols(&slots);
        for w in [["a1", "b1"], ["a2", "b1"]] {
            let w: Vec<Symbol> = w.iter().map(Symbol::new).collect();
            assert!(expanded.accepts(&w), "word {w:?}");
        }
        assert!(expanded.accepts(&[Symbol::new("c")]));
        assert!(!expanded.accepts(&word_chars("ab")));
        // Empty slots kill the words using them.
        slots.insert(Symbol::new("b"), BTreeSet::new());
        let dead = lang.expand_symbols(&slots);
        assert!(!dead.accepts(&[Symbol::new("a1"), Symbol::new("b1")]));
        assert!(dead.accepts(&[Symbol::new("c")]));
    }
}
