//! Boxes: cartesian products of symbol sets (Section 2.1.2).
//!
//! A *box* of width `n` over `Σ` is a language of the form `Σ1 Σ2 … Σn` with
//! `Σi ⊆ Σ`: every word of length exactly `n` whose `i`-th symbol belongs to
//! `Σi`. Boxes appear in the paper as the "kernel boxes" `B(fn)` used to
//! reduce the R-EDTD design problems on trees to design problems on strings
//! whose constant parts are boxes rather than single words (Section 7,
//! Definition 21).

use std::collections::BTreeSet;
use std::fmt;

use crate::nfa::Nfa;
use crate::symbol::{Alphabet, Symbol, Word};

/// A box `Σ1 Σ2 … Σn`: a finite regular language that is a cartesian product
/// of symbol sets.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BoxLang {
    slots: Vec<BTreeSet<Symbol>>,
}

impl BoxLang {
    /// The empty-width box, whose language is `{ε}`.
    pub fn epsilon() -> Self {
        BoxLang { slots: Vec::new() }
    }

    /// Builds a box from the given slots. A slot with an empty symbol set
    /// makes the whole language empty.
    pub fn new(slots: Vec<BTreeSet<Symbol>>) -> Self {
        BoxLang { slots }
    }

    /// Builds a box from one single-symbol slot per symbol of the word (the
    /// box whose language is exactly `{word}`).
    pub fn from_word(word: &[Symbol]) -> Self {
        BoxLang {
            slots: word.iter().map(|s| BTreeSet::from([s.clone()])).collect(),
        }
    }

    /// Appends a slot.
    pub fn push_slot<I, S>(&mut self, symbols: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        self.slots.push(symbols.into_iter().map(Into::into).collect());
    }

    /// The width `n` of the box.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// The slots of the box.
    pub fn slots(&self) -> &[BTreeSet<Symbol>] {
        &self.slots
    }

    /// Whether the language of the box is empty (some slot has no symbols).
    pub fn is_empty_language(&self) -> bool {
        self.slots.iter().any(BTreeSet::is_empty)
    }

    /// Number of words in the box (`|Σ1| · … · |Σn|`), saturating at
    /// `usize::MAX`.
    pub fn num_words(&self) -> usize {
        self.slots
            .iter()
            .map(BTreeSet::len)
            .fold(1usize, |acc, k| acc.saturating_mul(k))
    }

    /// Whether `word` belongs to the box.
    pub fn contains(&self, word: &[Symbol]) -> bool {
        word.len() == self.slots.len()
            && word.iter().zip(&self.slots).all(|(s, slot)| slot.contains(s))
    }

    /// Concatenation of two boxes.
    pub fn concat(&self, other: &BoxLang) -> BoxLang {
        let mut slots = self.slots.clone();
        slots.extend(other.slots.iter().cloned());
        BoxLang { slots }
    }

    /// The union of all symbols appearing in some slot.
    pub fn alphabet(&self) -> Alphabet {
        self.slots.iter().flatten().cloned().collect()
    }

    /// Converts the box to an [`Nfa`] (a chain of `any_of` transitions).
    pub fn to_nfa(&self) -> Nfa {
        if self.is_empty_language() {
            return Nfa::empty();
        }
        let mut nfa = Nfa::new(self.slots.len() + 1, 0);
        for (i, slot) in self.slots.iter().enumerate() {
            for sym in slot {
                nfa.add_transition(i, sym.clone(), i + 1);
            }
        }
        nfa.set_final(self.slots.len());
        nfa
    }

    /// Enumerates the words of the box in lexicographic slot order, up to
    /// `limit` words.
    pub fn enumerate(&self, limit: usize) -> Vec<Word> {
        if self.is_empty_language() {
            return Vec::new();
        }
        let mut words: Vec<Word> = vec![Vec::new()];
        for slot in &self.slots {
            let mut next = Vec::new();
            'outer: for w in &words {
                for sym in slot {
                    let mut w2 = w.clone();
                    w2.push(sym.clone());
                    next.push(w2);
                    if next.len() >= limit {
                        break 'outer;
                    }
                }
            }
            words = next;
        }
        words
    }
}

impl fmt::Display for BoxLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if slot.len() == 1 {
                write!(f, "{}", slot.iter().next().unwrap())?;
            } else {
                let names: Vec<String> = slot.iter().map(|s| s.to_string()).collect();
                write!(f, "{{{}}}", names.join(","))?;
            }
        }
        if self.slots.is_empty() {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::word_chars;

    fn sample_box() -> BoxLang {
        let mut b = BoxLang::epsilon();
        b.push_slot(["a", "b"]);
        b.push_slot(["c"]);
        b.push_slot(["a", "d"]);
        b
    }

    #[test]
    fn membership_and_counts() {
        let b = sample_box();
        assert_eq!(b.width(), 3);
        assert_eq!(b.num_words(), 4);
        assert!(b.contains(&word_chars("aca")));
        assert!(b.contains(&word_chars("bcd")));
        assert!(!b.contains(&word_chars("acc")));
        assert!(!b.contains(&word_chars("ac")));
        assert!(!b.is_empty_language());
    }

    #[test]
    fn nfa_agrees_with_membership() {
        let b = sample_box();
        let nfa = b.to_nfa();
        for w in b.enumerate(100) {
            assert!(nfa.accepts(&w));
        }
        assert!(!nfa.accepts(&word_chars("acc")));
        assert_eq!(nfa.enumerate_accepted(3, 100).len(), 4);
    }

    #[test]
    fn empty_slot_empties_language() {
        let mut b = sample_box();
        b.push_slot(Vec::<Symbol>::new());
        assert!(b.is_empty_language());
        assert!(b.to_nfa().is_empty());
        assert_eq!(b.enumerate(10), Vec::<Word>::new());
        assert_eq!(b.num_words(), 0);
    }

    #[test]
    fn from_word_and_concat() {
        let w = word_chars("ab");
        let b = BoxLang::from_word(&w);
        assert!(b.contains(&w));
        assert_eq!(b.num_words(), 1);
        let b2 = b.concat(&sample_box());
        assert_eq!(b2.width(), 5);
        assert!(b2.contains(&word_chars("abaca")));
    }

    #[test]
    fn epsilon_box() {
        let b = BoxLang::epsilon();
        assert!(b.contains(&[]));
        assert!(!b.contains(&word_chars("a")));
        assert!(b.to_nfa().accepts(&[]));
        assert_eq!(format!("{b}"), "ε");
    }

    #[test]
    fn display_format() {
        let b = sample_box();
        assert_eq!(format!("{b}"), "{a,b} c {a,d}");
    }
}
