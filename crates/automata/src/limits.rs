//! Resource governance: budgets, deadlines and cooperative cancellation
//! for the engine's worst-case-exponential loops.
//!
//! Every decision procedure in the workspace — subset construction, the
//! inclusion/equivalence product BFS, the residual walks, tree-automaton
//! determinisation, the perfect-typing fixpoint — is worst-case exponential
//! and, unbounded, runs to completion no matter what. A [`Budget`] makes
//! abusive input degrade into a *typed error*
//! ([`AutomataError::BudgetExceeded`]) instead of an unbounded compute
//! sink: the governed `*_with_budget` entry points thread a budget through
//! their hot loops and return the error as soon as a quota, the deadline or
//! a cancellation trips.
//!
//! # What each quota counts
//!
//! * **steps** ([`Budget::with_step_quota`]) — one unit per innermost loop
//!   iteration of a governed search: a `(state set, symbol)` expansion in
//!   subset construction, a popped pair or traversed edge in a product BFS,
//!   a `(configuration, letter)` expansion in tree-automaton
//!   determinisation, one consumed SAX event in streaming validation. The
//!   step counter is the universal work measure; every other check
//!   piggybacks on it.
//! * **states** ([`Budget::with_state_quota`]) — one unit per *discovered*
//!   state of a constructed automaton (subset states of a DFA, subset
//!   states of a determinised tree automaton, elements of a transformation
//!   monoid). This is the memory-shaped quota: exponential blow-ups show up
//!   here first.
//! * **nodes** ([`Budget::with_node_quota`]) — one unit per document node
//!   processed (an `Open` event in streaming validation).
//! * **depth** ([`Budget::with_depth_limit`]) — the maximum element nesting
//!   depth a streaming validation accepts (folded into the SAX parser's own
//!   stack bound).
//! * **deadline** ([`Budget::with_deadline`]) — a wall-clock bound for the
//!   whole governed call tree.
//! * **cancellation** ([`Budget::cancellable`]) — a relaxed-atomic flag a
//!   [`CancelHandle`] on another thread can raise at any time.
//!
//! # Cooperative-check granularity
//!
//! Quota comparisons are exact (every step/state/node is counted), but the
//! *clock and cancellation flag* are only consulted every
//! [`CHECK_INTERVAL`] steps and at governed entry-point boundaries, so the
//! steady-state cost of a governed loop is one relaxed `fetch_add` and a
//! predictable branch per iteration — `Instant::now` never appears on the
//! per-iteration path.
//!
//! # Zero cost when unlimited
//!
//! The default budget ([`Budget::unlimited`]) holds no shared state at all:
//! every check collapses to one `Option` discriminant branch — no atomics,
//! no clock, mirroring the `dxml-telemetry` gate discipline. The ungoverned
//! public APIs (`Dfa::from_nfa`, `typecheck`, …) call the governed
//! implementations with the unlimited budget and are byte-identical to
//! their pre-governance behaviour; the `governance_overhead` bench target
//! pins the claim against a committed baseline.
//!
//! A `Budget` is cheaply clonable (an `Arc` handle); clones share the spent
//! counters, so one budget governs a whole request even when the engine
//! fans work out across threads. Trips are observable in the telemetry
//! registry as `limits.budget_trips`, `limits.deadline_trips` and
//! `limits.cancellations`.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dxml_telemetry as telemetry;

use crate::error::AutomataError;

/// How many counted steps elapse between wall-clock/cancellation checks in
/// a governed loop (quota comparisons happen on every step regardless).
pub const CHECK_INTERVAL: u64 = 1024;

/// The resource dimension that tripped a [`Budget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The step quota (innermost loop iterations).
    Steps,
    /// The state quota (discovered automaton states).
    States,
    /// The node quota (document nodes processed).
    Nodes,
    /// The depth limit (element nesting depth).
    Depth,
    /// The wall-clock deadline.
    Deadline,
    /// A cooperative cancellation raised through a [`CancelHandle`].
    Cancelled,
}

impl Resource {
    /// A stable lowercase name for the resource.
    pub fn as_str(self) -> &'static str {
        match self {
            Resource::Steps => "steps",
            Resource::States => "states",
            Resource::Nodes => "nodes",
            Resource::Depth => "depth",
            Resource::Deadline => "deadline",
            Resource::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared state of a governed budget. Counters are relaxed atomics so
/// clones of the handle (including clones on other threads) draw from the
/// same pool.
#[derive(Debug, Default)]
struct Inner {
    max_steps: Option<u64>,
    max_states: Option<u64>,
    max_nodes: Option<u64>,
    depth_limit: Option<usize>,
    deadline: Option<Instant>,
    /// The originally allotted wall-clock budget, for error reporting.
    deadline_ms: u64,
    cancelled: AtomicBool,
    steps: AtomicU64,
    states: AtomicU64,
    nodes: AtomicU64,
}

/// Builds the typed trip error and bumps the matching telemetry counter.
#[cold]
fn trip(resource: Resource, limit: u64, spent: u64) -> AutomataError {
    let metric = match resource {
        Resource::Deadline => telemetry::Metric::LimitsDeadlineTrips,
        Resource::Cancelled => telemetry::Metric::LimitsCancellations,
        _ => telemetry::Metric::LimitsBudgetTrips,
    };
    telemetry::count(metric, 1);
    AutomataError::BudgetExceeded { resource, limit, spent }
}

impl Inner {
    fn step(&self) -> Result<(), AutomataError> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.max_steps {
            if n > limit {
                return Err(trip(Resource::Steps, limit, n));
            }
        }
        if n % CHECK_INTERVAL == 0 {
            self.interrupts()?;
        }
        Ok(())
    }

    fn interrupts(&self) -> Result<(), AutomataError> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(trip(Resource::Cancelled, 0, 0));
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                let over = u64::try_from(now.duration_since(deadline).as_millis())
                    .unwrap_or(u64::MAX);
                return Err(trip(
                    Resource::Deadline,
                    self.deadline_ms,
                    self.deadline_ms.saturating_add(over),
                ));
            }
        }
        Ok(())
    }

    fn grow(
        &self,
        counter: &AtomicU64,
        max: Option<u64>,
        resource: Resource,
        n: u64,
    ) -> Result<(), AutomataError> {
        let total = counter.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = max {
            if total > limit {
                return Err(trip(resource, limit, total));
            }
        }
        Ok(())
    }
}

/// A cheap, clonable resource budget governing a call tree.
///
/// See the [module docs](self) for the semantics of each quota. The
/// default/[`unlimited`](Budget::unlimited) budget never trips and costs
/// one branch per check; builders ([`with_step_quota`](Budget::with_step_quota)
/// and friends) must be applied before the handle is cloned.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// The budget that never trips: every check is a single branch on an
    /// `Option` discriminant — no atomics, no clock.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// Whether this is the unlimited budget (no governance state attached).
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    fn governed(&mut self) -> &mut Inner {
        let arc = self.inner.get_or_insert_with(Arc::default);
        Arc::get_mut(arc).expect("budget builders must run before the handle is cloned")
    }

    /// Caps the counted loop iterations (see the module docs for what a
    /// step is).
    #[must_use]
    pub fn with_step_quota(mut self, max_steps: u64) -> Budget {
        self.governed().max_steps = Some(max_steps);
        self
    }

    /// Caps the discovered automaton states across all constructions under
    /// this budget.
    #[must_use]
    pub fn with_state_quota(mut self, max_states: u64) -> Budget {
        self.governed().max_states = Some(max_states);
        self
    }

    /// Caps the document nodes processed under this budget.
    #[must_use]
    pub fn with_node_quota(mut self, max_nodes: u64) -> Budget {
        self.governed().max_nodes = Some(max_nodes);
        self
    }

    /// Caps the element nesting depth accepted by streaming validation.
    #[must_use]
    pub fn with_depth_limit(mut self, depth_limit: usize) -> Budget {
        self.governed().depth_limit = Some(depth_limit);
        self
    }

    /// Sets a wall-clock deadline `within` from now for the whole governed
    /// call tree. The clock is consulted every [`CHECK_INTERVAL`] steps and
    /// at governed entry-point boundaries.
    #[must_use]
    pub fn with_deadline(mut self, within: Duration) -> Budget {
        let now = Instant::now();
        let inner = self.governed();
        inner.deadline = Some(now.checked_add(within).unwrap_or(now));
        inner.deadline_ms = u64::try_from(within.as_millis()).unwrap_or(u64::MAX);
        self
    }

    /// Makes the budget cancellable: returns the budget plus a
    /// [`CancelHandle`] that any thread may use to raise the cooperative
    /// cancellation flag.
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (`governed()` not attaching the
    /// shared counters).
    #[must_use]
    pub fn cancellable(mut self) -> (Budget, CancelHandle) {
        self.governed();
        let arc = self.inner.clone().expect("governed() attached an inner");
        (self, CancelHandle { inner: arc })
    }

    /// Counts one unit of loop work; every [`CHECK_INTERVAL`]-th step also
    /// consults the deadline and the cancellation flag.
    #[inline]
    pub fn step(&self) -> Result<(), AutomataError> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.step(),
        }
    }

    /// Counts `n` newly discovered automaton states against the state
    /// quota.
    #[inline]
    pub fn grow_states(&self, n: u64) -> Result<(), AutomataError> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.grow(&inner.states, inner.max_states, Resource::States, n),
        }
    }

    /// Counts `n` processed document nodes against the node quota.
    #[inline]
    pub fn grow_nodes(&self, n: u64) -> Result<(), AutomataError> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.grow(&inner.nodes, inner.max_nodes, Resource::Nodes, n),
        }
    }

    /// Checks the nesting depth `depth` against the depth limit.
    #[inline]
    pub fn check_depth(&self, depth: usize) -> Result<(), AutomataError> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => match inner.depth_limit {
                Some(limit) if depth > limit => Err(trip(
                    Resource::Depth,
                    limit as u64,
                    depth as u64,
                )),
                _ => Ok(()),
            },
        }
    }

    /// Immediately consults the deadline and cancellation flag (used at
    /// governed entry-point boundaries, so an already-expired deadline or a
    /// pre-raised cancellation trips before any work starts).
    #[inline]
    pub fn check_interrupts(&self) -> Result<(), AutomataError> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => inner.interrupts(),
        }
    }

    /// The configured depth limit, if any (folded into the SAX parser's
    /// stack bound by the streaming validator).
    pub fn depth_limit(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|i| i.depth_limit)
    }

    /// Steps counted so far across every clone of this budget.
    pub fn steps_spent(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.steps.load(Ordering::Relaxed))
    }

    /// States counted so far across every clone of this budget.
    pub fn states_spent(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.states.load(Ordering::Relaxed))
    }

    /// Nodes counted so far across every clone of this budget.
    pub fn nodes_spent(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.nodes.load(Ordering::Relaxed))
    }
}

/// Raises the cooperative cancellation flag of a [`Budget`] from any
/// thread; governed loops observe it at their next interrupt check and
/// unwind with [`AutomataError::BudgetExceeded`] (`resource: Cancelled`).
#[derive(Clone, Debug)]
pub struct CancelHandle {
    inner: Arc<Inner>,
}

impl CancelHandle {
    /// Raises the cancellation flag (idempotent).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }
}

pub mod faults {
    //! Deterministic fault injection for tests and benches.
    //!
    //! The constructors build budgets that trip at a *chosen*, reproducible
    //! point; the worker-panic registry lets the batch front end inject a
    //! panic into a specific document's validation. The harness is
    //! compiled in (cross-crate integration tests need it) but is intended
    //! for tests and benches only: when disarmed, the panic probe is one
    //! relaxed atomic load.

    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    use super::Budget;

    /// A budget whose step quota trips after exactly `steps` counted
    /// iterations.
    pub fn budget_tripping_after(steps: u64) -> Budget {
        Budget::unlimited().with_step_quota(steps)
    }

    /// A budget whose deadline has already passed: the first interrupt
    /// check (every governed entry point performs one up front) trips it.
    pub fn expired_deadline() -> Budget {
        Budget::unlimited().with_deadline(Duration::ZERO)
    }

    /// A budget whose cancellation flag is already raised.
    pub fn cancelled() -> Budget {
        let (budget, handle) = Budget::unlimited().cancellable();
        handle.cancel();
        budget
    }

    static PANIC_ARMED: AtomicBool = AtomicBool::new(false);

    fn panic_docs() -> &'static Mutex<BTreeSet<usize>> {
        static DOCS: OnceLock<Mutex<BTreeSet<usize>>> = OnceLock::new();
        DOCS.get_or_init(|| Mutex::new(BTreeSet::new()))
    }

    /// Arms the worker-panic injector: subsequent
    /// [`maybe_inject_worker_panic`] calls panic for the listed document
    /// indices. Process-global; pair with [`disarm_worker_panic`].
    pub fn arm_worker_panic(docs: &[usize]) {
        let mut set = panic_docs().lock().unwrap_or_else(PoisonError::into_inner);
        set.clear();
        set.extend(docs.iter().copied());
        PANIC_ARMED.store(true, Ordering::Relaxed);
    }

    /// Disarms the worker-panic injector and clears the document list.
    pub fn disarm_worker_panic() {
        PANIC_ARMED.store(false, Ordering::Relaxed);
        panic_docs().lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// One relaxed load when disarmed — cheap enough to sit on the batch
    /// per-document path unconditionally.
    ///
    /// # Panics
    ///
    /// Panics iff the injector is armed for `doc_index`: the injected
    /// fault itself.
    #[inline]
    pub fn maybe_inject_worker_panic(doc_index: usize) {
        if PANIC_ARMED.load(Ordering::Relaxed) {
            let armed = panic_docs()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .contains(&doc_index);
            if armed {
                panic!("injected fault: worker panic at document {doc_index}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.step().unwrap();
        }
        b.grow_states(u64::MAX).unwrap();
        b.grow_nodes(u64::MAX).unwrap();
        b.check_depth(usize::MAX).unwrap();
        b.check_interrupts().unwrap();
        assert_eq!(b.steps_spent(), 0, "unlimited budgets hold no counters");
        assert_eq!(b.depth_limit(), None);
    }

    #[test]
    fn step_quota_trips_exactly_after_the_quota() {
        let b = Budget::unlimited().with_step_quota(5);
        for _ in 0..5 {
            b.step().unwrap();
        }
        match b.step() {
            Err(AutomataError::BudgetExceeded { resource, limit, spent }) => {
                assert_eq!(resource, Resource::Steps);
                assert_eq!(limit, 5);
                assert_eq!(spent, 6);
            }
            other => panic!("expected a steps trip, got {other:?}"),
        }
    }

    #[test]
    fn state_and_node_quotas_count_exactly() {
        let b = Budget::unlimited().with_state_quota(3).with_node_quota(2);
        b.grow_states(3).unwrap();
        assert!(matches!(
            b.grow_states(1),
            Err(AutomataError::BudgetExceeded { resource: Resource::States, limit: 3, spent: 4 })
        ));
        b.grow_nodes(2).unwrap();
        assert!(matches!(
            b.grow_nodes(5),
            Err(AutomataError::BudgetExceeded { resource: Resource::Nodes, limit: 2, spent: 7 })
        ));
    }

    #[test]
    fn clones_share_the_spent_pool() {
        let a = Budget::unlimited().with_step_quota(4);
        let b = a.clone();
        a.step().unwrap();
        a.step().unwrap();
        b.step().unwrap();
        b.step().unwrap();
        assert_eq!(a.steps_spent(), 4);
        assert!(b.step().is_err(), "the pool is shared, not per-clone");
    }

    #[test]
    fn deadline_and_cancellation_trip_at_interrupt_checks() {
        let expired = faults::expired_deadline();
        assert!(matches!(
            expired.check_interrupts(),
            Err(AutomataError::BudgetExceeded { resource: Resource::Deadline, .. })
        ));

        let (budget, handle) = Budget::unlimited().cancellable();
        budget.check_interrupts().unwrap();
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(matches!(
            budget.check_interrupts(),
            Err(AutomataError::BudgetExceeded { resource: Resource::Cancelled, .. })
        ));
        // The flag is also observed from the stepping path, within one
        // CHECK_INTERVAL of work.
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if budget.step().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "stepping must observe the cancellation");
    }

    #[test]
    fn depth_checks_compare_against_the_limit() {
        let b = Budget::unlimited().with_depth_limit(3);
        assert_eq!(b.depth_limit(), Some(3));
        b.check_depth(3).unwrap();
        assert!(matches!(
            b.check_depth(4),
            Err(AutomataError::BudgetExceeded { resource: Resource::Depth, limit: 3, spent: 4 })
        ));
    }

    #[test]
    fn cancellation_crosses_threads() {
        let (budget, handle) = Budget::unlimited().cancellable();
        std::thread::scope(|scope| {
            scope.spawn(move || handle.cancel());
        });
        assert!(budget.check_interrupts().is_err());
    }

    #[test]
    fn fault_constructors_are_deterministic() {
        assert!(faults::cancelled().check_interrupts().is_err());
        let b = faults::budget_tripping_after(2);
        assert!(b.step().is_ok() && b.step().is_ok() && b.step().is_err());
    }

    #[test]
    fn panic_injector_arms_and_disarms() {
        faults::arm_worker_panic(&[7]);
        faults::maybe_inject_worker_panic(3);
        let caught = std::panic::catch_unwind(|| faults::maybe_inject_worker_panic(7));
        assert!(caught.is_err(), "armed index must panic");
        faults::disarm_worker_panic();
        faults::maybe_inject_worker_panic(7);
    }
}
