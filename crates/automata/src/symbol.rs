//! Symbols (element names, specialised element names and function names) and
//! alphabets.
//!
//! The paper works with two alphabets: `Σ` of element names and `Σf` of
//! function symbols (Section 2.3). Both are represented here by [`Symbol`],
//! a **copyable `u32` id into a global intern table**. Distinguishing element
//! names from function names is the responsibility of the higher layers (the
//! kernel document knows which leaves are docking points).
//!
//! # Interning
//!
//! Every distinct string is interned exactly once, process-wide, in a
//! lock-sharded table ([`Symbol::new`] hashes the text, takes one shard
//! mutex, and allocates an id on first sight). Consequences the rest of the
//! workspace relies on:
//!
//! * **Equality is an integer compare.** Two `Symbol`s built from the same
//!   text always carry the same id, so `==`, and `Hash` (which hashes the
//!   id), are O(1) and never touch the string.
//! * **Ordering and `Debug`/`Display` are by text**, exactly as in the
//!   string-keyed representation this replaced: `BTreeMap`/`BTreeSet`
//!   iteration order, sorted alphabets and rendered words are unchanged.
//! * **Specialisation links are cached.** `a.specialize(i)` (the paper's
//!   `ã_i`, spelled `a~i`) and [`Symbol::base_name`] resolve through cached
//!   id→id links instead of re-scanning and re-hashing strings.
//! * The table is **append-only and leaked**: symbols live for the process
//!   lifetime (the workload universe of element/function names is small and
//!   bounded; this is what makes `as_str` borrows `'static`-backed and
//!   `Symbol` `Copy`). Consequently a long-lived process must not intern an
//!   unbounded stream of *distinct untrusted* names — memory grows with the
//!   number of distinct strings ever seen, and the table caps out at
//!   [`Symbol::MAX_SYMBOLS`] (2²⁴) symbols. Reaching the cap is a **typed
//!   error** through [`Symbol::try_new`] — the constructor every parser
//!   uses, so untrusted schema/document names can reject but never abort
//!   the process — and a panic only through the infallible [`Symbol::new`]
//!   (programmatic, bounded name universes). A service validating
//!   arbitrary user schemas at scale still wants an epoch/session-scoped
//!   interner (tracked in ROADMAP's performance levers).
//! * **Lock poisoning is recovered.** The tables are append-only, so a
//!   thread that panics mid-intern can never leave torn data; the locks
//!   recover the guard from `PoisonError` and later symbol creation keeps
//!   working (pinned by the panicking-interleaving stress tests).
//!
//! One caveat: because `Hash` hashes the id while `str` hashes its bytes, a
//! `Borrow<str>` impl would silently break hashed-container lookups keyed by
//! a raw `&str` — so `Symbol` deliberately does **not** implement it. Intern
//! the key with [`Symbol::new`] first (a hash plus one shard lock on a hit);
//! every comparison-based need is covered by `as_str`.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::AutomataError;

mod intern {
    //! The global, lock-sharded intern table.
    //!
    //! Writes (first sight of a string) go through a per-shard mutex; reads
    //! (`resolve`/`base_of`, which back `Symbol::as_str` and every `Ord`
    //! comparison) are **lock-free**: ids index into fixed-size leaked
    //! chunks whose slots are published once through `OnceLock` — a read is
    //! two acquire loads, never an RMW, so concurrent readers share no
    //! cache-line writes.

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError, TryLockError};

    use dxml_telemetry::{count, Metric};

    use crate::hash::{fx_hash_str, FxHashMap};

    /// Number of lookup shards (a power of two; the shard is picked from the
    /// text hash, so unrelated symbols rarely contend on the same mutex).
    const SHARDS: usize = 16;

    /// log2 of the chunk size: ids `k·4096 .. (k+1)·4096` live in chunk `k`.
    const CHUNK_BITS: usize = 12;
    const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
    const CHUNK_MASK: usize = CHUNK_SIZE - 1;
    /// Maximum number of chunks.
    const MAX_CHUNKS: usize = 1 << 12;

    /// Hard capacity of the table: 2²⁴ distinct symbols — far beyond any
    /// element-name universe. Exceeding it is a *typed error*
    /// ([`try_intern`]), surfaced through `Symbol::try_new` on the parser
    /// paths, so untrusted schema/document names can never abort the
    /// process; the infallible [`intern`] panics instead.
    pub(super) const MAX_SYMBOLS: usize = MAX_CHUNKS << CHUNK_BITS;

    /// The table is at capacity; no new symbol can be interned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(super) struct InternerFull;

    /// One interned symbol: its text (leaked, hence `'static`) and the id of
    /// its base name (`base == own id` for unspecialised names).
    struct Record {
        text: &'static str,
        base: u32,
    }

    /// A chunk of the id → record table: each slot is written exactly once
    /// (by the thread that allocated the id, under its shard lock) and read
    /// lock-free ever after.
    type Chunk = Box<[OnceLock<Record>]>;

    pub(super) struct Interner {
        /// text → id, sharded by text hash. Only taken on [`intern`].
        shards: [Mutex<FxHashMap<&'static str, u32>>; SHARDS],
        /// The next unallocated id (incremented under a shard lock).
        next_id: AtomicU32,
        /// id → record, in append-only leaked chunks (see [`Chunk`]).
        chunks: [OnceLock<Chunk>; MAX_CHUNKS],
        /// `(base id, index) → specialised id` links, so `specialize` skips
        /// the format-and-rehash path after the first call.
        spec: Mutex<FxHashMap<(u32, usize), u32>>,
    }

    fn global() -> &'static Interner {
        static INTERNER: OnceLock<Interner> = OnceLock::new();
        INTERNER.get_or_init(|| Interner {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            next_id: AtomicU32::new(0),
            chunks: std::array::from_fn(|_| OnceLock::new()),
            spec: Mutex::new(FxHashMap::default()),
        })
    }

    /// The record of an interned id (lock-free: two acquire loads).
    fn record(id: u32) -> &'static Record {
        let interner = global();
        let chunk = interner.chunks[id as usize >> CHUNK_BITS]
            .get()
            .expect("interned id precedes its chunk");
        chunk[id as usize & CHUNK_MASK].get().expect("interned id precedes its record")
    }

    /// Recovers the guard from a poisoned lock: every table here is
    /// **append-only** (the maps only gain entries, records are published
    /// through `OnceLock`), so a thread that panicked while holding a lock
    /// can never have left torn data behind — later threads may safely keep
    /// interning instead of propagating the poison and wedging all symbol
    /// creation for the rest of the process.
    fn recover<'a, T>(
        result: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
    ) -> MutexGuard<'a, T> {
        result.unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes an interner lock, counting `interner.shard_contention` when a
    /// `try_lock` probe finds it already held. Poison is recovered exactly
    /// as in [`recover`] — see there for why that is sound.
    fn lock_counted<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
        match mutex.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                count(Metric::InternShardContention, 1);
                recover(mutex.lock())
            }
        }
    }

    /// Interns `text`, returning its stable process-wide id, or
    /// [`InternerFull`] once the [`MAX_SYMBOLS`] cap is reached.
    pub(super) fn try_intern(text: &str) -> Result<u32, InternerFull> {
        let interner = global();
        let shard = &interner.shards[(fx_hash_str(text) as usize) % SHARDS];
        if let Some(&id) = lock_counted(shard).get(text) {
            return Ok(id);
        }
        // Miss: resolve the base id *outside* any lock (the base may hash to
        // this very shard), then re-check under the shard lock — a racing
        // thread may have interned the text in the meantime.
        let base = match text.rfind('~') {
            Some(idx) => Some(try_intern(&text[..idx])?),
            None => None,
        };
        let mut lookup = lock_counted(shard);
        if let Some(&id) = lookup.get(text) {
            return Ok(id);
        }
        // Allocate the id with a capacity-checked CAS loop: the counter
        // saturates at the cap instead of wrapping, so a flood of distinct
        // untrusted names keeps failing cleanly forever.
        let id = interner
            .next_id
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |id| {
                ((id as usize) < MAX_SYMBOLS).then_some(id + 1)
            })
            .map_err(|_| InternerFull)?;
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        count(Metric::SymbolsInterned, 1);
        // Leaked text plus the id→record slot and the lookup-map entry.
        count(
            Metric::InternTableBytes,
            (leaked.len()
                + std::mem::size_of::<OnceLock<Record>>()
                + std::mem::size_of::<(&str, u32)>()) as u64,
        );
        let chunk = interner.chunks[id as usize >> CHUNK_BITS]
            .get_or_init(|| (0..CHUNK_SIZE).map(|_| OnceLock::new()).collect());
        let slot_is_fresh = chunk[id as usize & CHUNK_MASK]
            .set(Record { text: leaked, base: base.unwrap_or(id) })
            .is_ok();
        assert!(slot_is_fresh, "freshly allocated intern id was already populated");
        lookup.insert(leaked, id);
        Ok(id)
    }

    /// Interns `text`, returning its stable process-wide id.
    ///
    /// # Panics
    ///
    /// Panics when the table is at capacity — for the programmatic call
    /// sites that construct bounded name universes. Parser paths use
    /// [`try_intern`] through `Symbol::try_new` instead.
    pub(super) fn intern(text: &str) -> u32 {
        try_intern(text)
            .unwrap_or_else(|_| panic!("interner overflow: {MAX_SYMBOLS} distinct symbols reached"))
    }

    /// The text of an interned id.
    pub(super) fn resolve(id: u32) -> &'static str {
        record(id).text
    }

    /// The base-name id of an interned id (`id` itself when unspecialised).
    pub(super) fn base_of(id: u32) -> u32 {
        record(id).base
    }

    /// The id of `base~index`, through the specialisation link cache.
    pub(super) fn specialize(base: u32, index: usize) -> u32 {
        let interner = global();
        let mut spec = lock_counted(&interner.spec);
        if let Some(&id) = spec.get(&(base, index)) {
            return id;
        }
        let id = intern(&format!("{}~{}", resolve(base), index));
        spec.insert((base, index), id);
        id
    }

    /// Poisons every mutex of the global interner (each via a thread that
    /// unwinds while holding the lock), for the recovery tests. The threads
    /// unwind through [`std::panic::resume_unwind`], which bypasses the
    /// panic hook — no global state is touched and no noise reaches the
    /// test output, while the mutexes still observe a panicking holder.
    #[cfg(test)]
    pub(super) fn poison_all_locks_for_tests() {
        for i in 0..SHARDS {
            let _ = std::thread::spawn(move || {
                let _guard = recover(global().shards[i].lock());
                std::panic::resume_unwind(Box::new("poisoning interner shard for tests"));
            })
            .join();
        }
        let _ = std::thread::spawn(|| {
            let _guard = recover(global().spec.lock());
            std::panic::resume_unwind(Box::new("poisoning interner spec cache for tests"));
        })
        .join();
    }
}

/// An interned, copyable symbol (an element name such as `eurostat`, a
/// specialised element name such as `natIndA`, or a function name such as
/// `f1`): a dense `u32` id into the global intern table.
///
/// Symbols are **ordered, `Debug`-printed and `Display`ed by their textual
/// content** — two `Symbol`s built from the same string are interchangeable,
/// and sorted containers iterate in text order exactly as with a string-keyed
/// representation. Equality and `Hash` go through the id (equal ids ⇔ equal
/// texts), which is what makes `Symbol` keys cheap in the automata hot paths.
/// See the [module docs](self) for the interning contract.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Symbol(u32);

impl Symbol {
    /// Hard capacity of the process-wide intern table (2²⁴ distinct
    /// symbols). [`Symbol::try_new`] reports reaching it as a typed error;
    /// [`Symbol::new`] panics.
    pub const MAX_SYMBOLS: usize = intern::MAX_SYMBOLS;

    /// Creates a symbol from anything string-like (interning the text on
    /// first sight, process-wide).
    ///
    /// # Panics
    ///
    /// Panics if the intern table is at [`Symbol::MAX_SYMBOLS`] capacity.
    /// Appropriate for programmatic call sites whose name universe is
    /// bounded by construction; anything fed from *untrusted input* (the
    /// schema/document parsers) goes through [`Symbol::try_new`] so a flood
    /// of distinct names surfaces as an error instead of aborting the
    /// process.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(intern::intern(name.as_ref()))
    }

    /// Fallible twin of [`Symbol::new`]: returns
    /// [`AutomataError::SymbolTableFull`] instead of panicking when the
    /// global intern table is at capacity. The entry point of every parser
    /// path.
    pub fn try_new(name: impl AsRef<str>) -> Result<Self, AutomataError> {
        intern::try_intern(name.as_ref())
            .map(Symbol)
            .map_err(|_| AutomataError::SymbolTableFull { limit: intern::MAX_SYMBOLS })
    }

    /// The textual content of the symbol.
    pub fn as_str(&self) -> &str {
        intern::resolve(self.0)
    }

    /// The dense intern id of the symbol. Stable for the process lifetime;
    /// equal ids ⇔ equal texts. Hot paths use it to build per-automaton
    /// symbol indices instead of hashing strings.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Creates a "specialised" copy of this symbol, in the sense of R-SDTDs /
    /// R-EDTDs: `a.specialize(3)` is the symbol `a~3`.
    ///
    /// The tilde separator mirrors the paper's notation `ã_i` and is chosen so
    /// that specialised names never collide with ordinary element names
    /// produced by the parsers (which reject `~`). Resolved through a cached
    /// `(base id, index) → id` link, so repeated specialisation never
    /// re-formats the string.
    pub fn specialize(&self, index: usize) -> Symbol {
        Symbol(intern::specialize(self.0, index))
    }

    /// If this symbol is a specialised name (`a~i`), returns the underlying
    /// element name `a`; otherwise returns a copy of the symbol itself.
    /// Resolved through the cached id→base link computed when the symbol was
    /// interned (no string scan).
    pub fn base_name(&self) -> Symbol {
        Symbol(intern::base_of(self.0))
    }

    /// Whether the symbol is a specialised name (contains a `~`).
    pub fn is_specialized(&self) -> bool {
        intern::base_of(self.0) != self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> Ordering {
        // Identical ids are the common case in sorted containers; only
        // distinct symbols pay for the text comparison.
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.0);
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl From<char> for Symbol {
    fn from(c: char) -> Self {
        Symbol::new(c.to_string())
    }
}

/// A finite alphabet: an ordered set of [`Symbol`]s.
///
/// Alphabets are needed wherever a complement is taken (the complement of a
/// language is only meaningful relative to an alphabet), and to describe the
/// element names of a schema. Iteration is in text order.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Alphabet {
    symbols: BTreeSet<Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Creates an alphabet from an iterator of symbols.
    ///
    /// Unlike the `FromIterator` impl (which requires `Symbol` items), this
    /// inherent constructor accepts anything convertible into a symbol —
    /// hence the deliberate name collision.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        Alphabet {
            symbols: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates an alphabet containing one single-character symbol per
    /// character of `chars` (convenient for the paper's compact examples).
    pub fn from_chars(chars: &str) -> Self {
        Alphabet::from_iter(chars.chars().map(Symbol::from))
    }

    /// Inserts a symbol; returns `true` if it was not already present.
    pub fn insert(&mut self, sym: impl Into<Symbol>) -> bool {
        self.symbols.insert(sym.into())
    }

    /// Whether the alphabet contains `sym`.
    pub fn contains(&self, sym: &Symbol) -> bool {
        self.symbols.contains(sym)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over the symbols in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Union of two alphabets.
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        Alphabet {
            symbols: self.symbols.union(&other.symbols).cloned().collect(),
        }
    }

    /// Removes a symbol; returns `true` if it was present.
    pub fn remove(&mut self, sym: &Symbol) -> bool {
        self.symbols.remove(sym)
    }

    /// The symbols as a vector (sorted).
    pub fn to_vec(&self) -> Vec<Symbol> {
        self.symbols.iter().cloned().collect()
    }
}

impl IntoIterator for Alphabet {
    type Item = Symbol;
    type IntoIter = std::collections::btree_set::IntoIter<Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.into_iter()
    }
}

impl<'a> IntoIterator for &'a Alphabet {
    type Item = &'a Symbol;
    type IntoIter = std::collections::btree_set::Iter<'a, Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter()
    }
}

impl FromIterator<Symbol> for Alphabet {
    fn from_iter<T: IntoIterator<Item = Symbol>>(iter: T) -> Self {
        Alphabet {
            symbols: iter.into_iter().collect(),
        }
    }
}

/// A word over an alphabet: a sequence of symbols.
///
/// Provided as a convenience alias; the crate's functions accept `&[Symbol]`.
pub type Word = Vec<Symbol>;

/// Builds a word from a whitespace-separated list of symbol names
/// (`word("a b c")`), or from adjacent single characters if the string
/// contains no whitespace and only single-character names are wanted
/// (use [`word_chars`] for that).
pub fn word(s: &str) -> Word {
    s.split_whitespace().map(Symbol::new).collect()
}

/// Builds a word of single-character symbols from a compact string:
/// `word_chars("abba")` is the word `a·b·b·a`.
pub fn word_chars(s: &str) -> Word {
    s.chars().filter(|c| !c.is_whitespace()).map(Symbol::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip_and_ordering() {
        let a = Symbol::new("a");
        let b = Symbol::new("b");
        assert!(a < b);
        assert_eq!(a.as_str(), "a");
        assert_eq!(a, Symbol::from("a"));
        assert_eq!(format!("{a}"), "a");
    }

    #[test]
    fn interning_is_stable_and_copy() {
        let a1 = Symbol::new("interning_is_stable");
        let a2 = Symbol::new(String::from("interning_is_stable"));
        assert_eq!(a1.id(), a2.id());
        // Copy semantics: both copies resolve to the same backing text.
        let copy = a1;
        assert!(std::ptr::eq(copy.as_str(), a2.as_str()));
    }

    #[test]
    fn specialization_roundtrip() {
        let a = Symbol::new("nationalIndex");
        let a1 = a.specialize(1);
        assert_eq!(a1.as_str(), "nationalIndex~1");
        assert!(a1.is_specialized());
        assert!(!a.is_specialized());
        assert_eq!(a1.base_name(), a);
        assert_eq!(a.base_name(), a);
        // The cached link and the textual route agree.
        assert_eq!(a1, Symbol::new("nationalIndex~1"));
        // Nested specialisation peels one layer at a time.
        let a12 = a1.specialize(2);
        assert_eq!(a12.as_str(), "nationalIndex~1~2");
        assert_eq!(a12.base_name(), a1);
    }

    #[test]
    fn alphabet_operations() {
        let mut sigma = Alphabet::from_chars("ab");
        assert_eq!(sigma.len(), 2);
        assert!(sigma.contains(&Symbol::new("a")));
        assert!(!sigma.contains(&Symbol::new("c")));
        assert!(sigma.insert("c"));
        assert!(!sigma.insert("c"));
        assert_eq!(sigma.len(), 3);
        let other = Alphabet::from_iter(["c", "d"]);
        let u = sigma.union(&other);
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn try_new_matches_new_and_types_the_capacity_error() {
        let a = Symbol::try_new("try_new_probe").expect("table is nowhere near capacity");
        assert_eq!(a, Symbol::new("try_new_probe"));
        assert_eq!(a.id(), Symbol::new("try_new_probe").id());
        // The cap is the documented 2²⁴ and renders as a typed error, not a
        // panic (actually filling the table would leak gigabytes, so the
        // boundary itself is pinned by the saturating counter logic).
        assert_eq!(Symbol::MAX_SYMBOLS, 1 << 24);
        let err = AutomataError::SymbolTableFull { limit: Symbol::MAX_SYMBOLS };
        assert!(err.to_string().contains("intern table is full"), "{err}");
    }

    #[test]
    fn interner_survives_poisoned_locks() {
        // Poison every mutex of the global interner (a thread panics while
        // holding each lock); the append-only tables are never torn, so
        // symbol creation must keep working for the rest of the process.
        intern::poison_all_locks_for_tests();
        let s = Symbol::new("post_poison_probe");
        assert_eq!(s.as_str(), "post_poison_probe");
        assert_eq!(Symbol::try_new("post_poison_probe").unwrap(), s);
        // The specialisation cache lock recovered too.
        let sp = s.specialize(3);
        assert_eq!(sp.as_str(), "post_poison_probe~3");
        assert_eq!(sp.base_name(), s);
    }

    #[test]
    fn word_builders() {
        assert_eq!(word("a b a"), vec![Symbol::new("a"), Symbol::new("b"), Symbol::new("a")]);
        assert_eq!(word_chars("aba"), word("a b a"));
        assert_eq!(word("averages nationalIndex").len(), 2);
    }
}
