//! Symbols (element names, specialised element names and function names) and
//! alphabets.
//!
//! The paper works with two alphabets: `Σ` of element names and `Σf` of
//! function symbols (Section 2.3). Both are represented here by [`Symbol`],
//! a cheaply clonable interned string. Distinguishing element names from
//! function names is the responsibility of the higher layers (the kernel
//! document knows which leaves are docking points).

use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An interned, cheaply clonable symbol (an element name such as `eurostat`,
/// a specialised element name such as `natIndA`, or a function name such as
/// `f1`).
///
/// Symbols are ordered and hashed by their textual content, so two `Symbol`s
/// built from the same string are interchangeable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The textual content of the symbol.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Creates a "specialised" copy of this symbol, in the sense of R-SDTDs /
    /// R-EDTDs: `a.specialize(3)` is the symbol `a~3`.
    ///
    /// The tilde separator mirrors the paper's notation `ã_i` and is chosen so
    /// that specialised names never collide with ordinary element names
    /// produced by the parsers (which reject `~`).
    pub fn specialize(&self, index: usize) -> Symbol {
        Symbol::new(format!("{}~{}", self.0, index))
    }

    /// If this symbol is a specialised name (`a~i`), returns the underlying
    /// element name `a`; otherwise returns a clone of the symbol itself.
    pub fn base_name(&self) -> Symbol {
        match self.0.rfind('~') {
            Some(idx) => Symbol::new(&self.0[..idx]),
            None => self.clone(),
        }
    }

    /// Whether the symbol is a specialised name (contains a `~`).
    pub fn is_specialized(&self) -> bool {
        self.0.contains('~')
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl From<char> for Symbol {
    fn from(c: char) -> Self {
        Symbol::new(c.to_string())
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A finite alphabet: an ordered set of [`Symbol`]s.
///
/// Alphabets are needed wherever a complement is taken (the complement of a
/// language is only meaningful relative to an alphabet), and to describe the
/// element names of a schema.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Alphabet {
    symbols: BTreeSet<Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Creates an alphabet from an iterator of symbols.
    ///
    /// Unlike the `FromIterator` impl (which requires `Symbol` items), this
    /// inherent constructor accepts anything convertible into a symbol —
    /// hence the deliberate name collision.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        Alphabet {
            symbols: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates an alphabet containing one single-character symbol per
    /// character of `chars` (convenient for the paper's compact examples).
    pub fn from_chars(chars: &str) -> Self {
        Alphabet::from_iter(chars.chars().map(Symbol::from))
    }

    /// Inserts a symbol; returns `true` if it was not already present.
    pub fn insert(&mut self, sym: impl Into<Symbol>) -> bool {
        self.symbols.insert(sym.into())
    }

    /// Whether the alphabet contains `sym`.
    pub fn contains(&self, sym: &Symbol) -> bool {
        self.symbols.contains(sym)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over the symbols in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Union of two alphabets.
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        Alphabet {
            symbols: self.symbols.union(&other.symbols).cloned().collect(),
        }
    }

    /// Removes a symbol; returns `true` if it was present.
    pub fn remove(&mut self, sym: &Symbol) -> bool {
        self.symbols.remove(sym)
    }

    /// The symbols as a vector (sorted).
    pub fn to_vec(&self) -> Vec<Symbol> {
        self.symbols.iter().cloned().collect()
    }
}

impl IntoIterator for Alphabet {
    type Item = Symbol;
    type IntoIter = std::collections::btree_set::IntoIter<Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.into_iter()
    }
}

impl<'a> IntoIterator for &'a Alphabet {
    type Item = &'a Symbol;
    type IntoIter = std::collections::btree_set::Iter<'a, Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.symbols.iter()
    }
}

impl FromIterator<Symbol> for Alphabet {
    fn from_iter<T: IntoIterator<Item = Symbol>>(iter: T) -> Self {
        Alphabet {
            symbols: iter.into_iter().collect(),
        }
    }
}

/// A word over an alphabet: a sequence of symbols.
///
/// Provided as a convenience alias; the crate's functions accept `&[Symbol]`.
pub type Word = Vec<Symbol>;

/// Builds a word from a whitespace-separated list of symbol names
/// (`word("a b c")`), or from adjacent single characters if the string
/// contains no whitespace and only single-character names are wanted
/// (use [`word_chars`] for that).
pub fn word(s: &str) -> Word {
    s.split_whitespace().map(Symbol::new).collect()
}

/// Builds a word of single-character symbols from a compact string:
/// `word_chars("abba")` is the word `a·b·b·a`.
pub fn word_chars(s: &str) -> Word {
    s.chars().filter(|c| !c.is_whitespace()).map(Symbol::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip_and_ordering() {
        let a = Symbol::new("a");
        let b = Symbol::new("b");
        assert!(a < b);
        assert_eq!(a.as_str(), "a");
        assert_eq!(a, Symbol::from("a"));
        assert_eq!(format!("{a}"), "a");
    }

    #[test]
    fn specialization_roundtrip() {
        let a = Symbol::new("nationalIndex");
        let a1 = a.specialize(1);
        assert_eq!(a1.as_str(), "nationalIndex~1");
        assert!(a1.is_specialized());
        assert!(!a.is_specialized());
        assert_eq!(a1.base_name(), a);
        assert_eq!(a.base_name(), a);
    }

    #[test]
    fn alphabet_operations() {
        let mut sigma = Alphabet::from_chars("ab");
        assert_eq!(sigma.len(), 2);
        assert!(sigma.contains(&Symbol::new("a")));
        assert!(!sigma.contains(&Symbol::new("c")));
        assert!(sigma.insert("c"));
        assert!(!sigma.insert("c"));
        assert_eq!(sigma.len(), 3);
        let other = Alphabet::from_iter(["c", "d"]);
        let u = sigma.union(&other);
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn word_builders() {
        assert_eq!(word("a b a"), vec![Symbol::new("a"), Symbol::new("b"), Symbol::new("a")]);
        assert_eq!(word_chars("aba"), word("a b a"));
        assert_eq!(word("averages nationalIndex").len(), 2);
    }
}
