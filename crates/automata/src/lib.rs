//! Regular string languages substrate for distributed XML design.
//!
//! This crate implements the string-language machinery of Section 2.1.2 of
//! *Distributed XML Design* (Abiteboul, Gottlob, Manna):
//!
//! * [`Symbol`] / [`Alphabet`] — interned element names and function symbols;
//! * [`Nfa`] — nondeterministic finite automata with ε-transitions, together
//!   with the boolean/rational operations the paper uses (`·`, `∪`, `∩`, `−`,
//!   complement) and decision procedures (emptiness, universality, membership,
//!   inclusion, equivalence);
//! * [`Dfa`] — deterministic automata, subset construction, minimisation;
//! * [`Regex`] — (possibly nondeterministic) regular expressions `nRE`, with a
//!   parser for the textual syntax used throughout the paper and the Glushkov
//!   (position) construction;
//! * [`dre`] — deterministic (one-unambiguous) regular expressions: the
//!   Brüggemann-Klein/Wood determinism test on expressions and the
//!   orbit-property decision procedure on minimal DFAs (`one-unamb[R]`,
//!   Definition 2 of the paper);
//! * [`quotient`] — existential quotients and the universal two-sided
//!   residual of regular languages, the string-level building block of the
//!   perfect-typing construction of Section 6;
//! * [`BoxLang`] — "boxes" `Σ1…Σn` (cartesian-product languages), used by the
//!   box versions of the design problems in Section 7;
//! * [`RSpec`] — a content model in any of the four formalisms
//!   (`nFA`, `dFA`, `nRE`, `dRE`) behind a uniform API, mirroring the paper's
//!   parameter `R`;
//! * [`limits`] — resource governance: the clonable [`Budget`] handle
//!   (step/state/node quotas, depth limits, wall-clock deadlines,
//!   cooperative cancellation) threaded through every worst-case-exponential
//!   loop by the `*_with_budget` entry points, plus the deterministic
//!   fault-injection harness in [`limits::faults`];
//! * [`StateSet`] — fixed-width dense bitset state sets, the frontier
//!   representation of every subset construction and membership loop in the
//!   workspace.
//!
//! The crate is self-contained (no third-party dependencies) and forms the
//! bottom layer of the workspace: trees, schemas and the design algorithms are
//! all built on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxes;
pub mod dfa;
pub mod dre;
pub mod equiv;
pub mod error;
pub mod hash;
pub mod limits;
pub mod nfa;
pub mod quotient;
pub mod regex;
pub mod rspec;
pub mod stateset;
pub mod symbol;

pub use boxes::BoxLang;
pub use dfa::Dfa;
pub use equiv::{equivalent, included, Counterexample};
pub use error::AutomataError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use limits::{Budget, CancelHandle, Resource};
pub use nfa::{Nfa, NfaMetrics};
pub use regex::Regex;
pub use rspec::{RFormalism, RSpec};
pub use stateset::StateSet;
pub use symbol::{Alphabet, Symbol};
