//! Error type shared by the automata crate.

use std::fmt;

/// Errors produced while parsing regular expressions or manipulating
/// automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A regular expression could not be parsed.
    RegexParse {
        /// Human readable description of the problem.
        message: String,
        /// Byte offset in the input at which the problem was detected.
        position: usize,
    },
    /// A regular expression was required to be deterministic
    /// (one-unambiguous) but is not.
    NotDeterministic(String),
    /// An operation referred to a state that does not exist in the automaton.
    InvalidState(usize),
    /// A symbol was used that is not part of the relevant alphabet.
    UnknownSymbol(String),
    /// The process-wide symbol intern table is at capacity; no further
    /// distinct name can be interned. Surfaced by `Symbol::try_new` on the
    /// parser paths so untrusted input rejects instead of aborting the
    /// process.
    SymbolTableFull {
        /// The hard capacity of the intern table (`Symbol::MAX_SYMBOLS`).
        limit: usize,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::RegexParse { message, position } => {
                write!(f, "regex parse error at byte {position}: {message}")
            }
            AutomataError::NotDeterministic(re) => {
                write!(f, "regular expression `{re}` is not deterministic (one-unambiguous)")
            }
            AutomataError::InvalidState(s) => write!(f, "invalid state id {s}"),
            AutomataError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            AutomataError::SymbolTableFull { limit } => {
                write!(f, "symbol intern table is full ({limit} distinct names); rejecting new name")
            }
        }
    }
}

impl std::error::Error for AutomataError {}
