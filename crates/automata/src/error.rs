//! Error type shared by the automata crate.

use std::fmt;

/// Errors produced while parsing regular expressions or manipulating
/// automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A regular expression could not be parsed.
    RegexParse {
        /// Human readable description of the problem.
        message: String,
        /// Byte offset in the input at which the problem was detected.
        position: usize,
    },
    /// A regular expression was required to be deterministic
    /// (one-unambiguous) but is not.
    NotDeterministic(String),
    /// An operation referred to a state that does not exist in the automaton.
    InvalidState(usize),
    /// A symbol was used that is not part of the relevant alphabet.
    UnknownSymbol(String),
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::RegexParse { message, position } => {
                write!(f, "regex parse error at byte {position}: {message}")
            }
            AutomataError::NotDeterministic(re) => {
                write!(f, "regular expression `{re}` is not deterministic (one-unambiguous)")
            }
            AutomataError::InvalidState(s) => write!(f, "invalid state id {s}"),
            AutomataError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
        }
    }
}

impl std::error::Error for AutomataError {}
