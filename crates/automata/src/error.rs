//! Error type shared by the automata crate.

use std::fmt;

/// Errors produced while parsing regular expressions or manipulating
/// automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A regular expression could not be parsed.
    RegexParse {
        /// Human readable description of the problem.
        message: String,
        /// Byte offset in the input at which the problem was detected.
        position: usize,
    },
    /// A regular expression was required to be deterministic
    /// (one-unambiguous) but is not.
    NotDeterministic(String),
    /// An operation referred to a state that does not exist in the automaton.
    InvalidState(usize),
    /// A symbol was used that is not part of the relevant alphabet.
    UnknownSymbol(String),
    /// The process-wide symbol intern table is at capacity; no further
    /// distinct name can be interned. Surfaced by `Symbol::try_new` on the
    /// parser paths so untrusted input rejects instead of aborting the
    /// process.
    SymbolTableFull {
        /// The hard capacity of the intern table (`Symbol::MAX_SYMBOLS`).
        limit: usize,
    },
    /// A governed operation exceeded its [`Budget`](crate::limits::Budget):
    /// a quota tripped, the wall-clock deadline passed, or a cooperative
    /// cancellation was raised. Surfaced by the `*_with_budget` entry
    /// points; the unlimited default budget never produces it.
    BudgetExceeded {
        /// The resource dimension that tripped.
        resource: crate::limits::Resource,
        /// The configured limit (milliseconds for deadlines; 0 for
        /// cancellations, which have no numeric limit).
        limit: u64,
        /// The amount spent when the trip was detected.
        spent: u64,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::RegexParse { message, position } => {
                write!(f, "regex parse error at byte {position}: {message}")
            }
            AutomataError::NotDeterministic(re) => {
                write!(f, "regular expression `{re}` is not deterministic (one-unambiguous)")
            }
            AutomataError::InvalidState(s) => write!(f, "invalid state id {s}"),
            AutomataError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            AutomataError::SymbolTableFull { limit } => {
                write!(f, "symbol intern table is full ({limit} distinct names); rejecting new name")
            }
            AutomataError::BudgetExceeded { resource, limit, spent } => match resource {
                crate::limits::Resource::Cancelled => write!(f, "operation cancelled"),
                crate::limits::Resource::Deadline => {
                    write!(f, "deadline exceeded after {spent} ms (budget {limit} ms)")
                }
                _ => write!(f, "budget exceeded: {spent} {resource} spent of {limit} allowed"),
            },
        }
    }
}

impl std::error::Error for AutomataError {}
