//! Deterministic (one-unambiguous) regular expressions and languages.
//!
//! W3C DTDs and XML Schema require content models to be *deterministic*
//! regular expressions (`dRE`s), called **one-unambiguous** by
//! Brüggemann-Klein and Wood \[11\]. The paper's abstraction `dRE-DTD` /
//! `dRE-SDTD` is the closest to the W3C standards (Table 1), and several of
//! its results (Theorem 3.10 case 3, Corollary 3.7) reduce to the problem
//! `one-unamb[R]` (Definition 2): *is a given regular language
//! one-unambiguous?*
//!
//! This module implements:
//!
//! * [`one_unambiguous_expr`] — is an *expression* deterministic? (Glushkov
//!   automaton determinism; linear-time syntactic test.)
//! * [`one_unambiguous_language`] — is a *language* one-unambiguous, i.e. is
//!   it denoted by some deterministic expression? This is the BKW decision
//!   procedure on the minimal DFA, based on orbits (strongly connected
//!   components), the orbit property and symbol-consistent cuts.
//! * [`smallest_equivalent_dre_hint`] — a constructive helper returning a
//!   deterministic expression for a few syntactic shapes; used by examples.

use std::collections::{BTreeMap, BTreeSet};

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::Symbol;

/// Whether the expression itself is deterministic (one-unambiguous as
/// written): its Glushkov automaton is deterministic.
pub fn one_unambiguous_expr(re: &Regex) -> bool {
    re.glushkov().is_deterministic()
}

/// Whether the *language* of `nfa` is one-unambiguous, i.e. definable by some
/// deterministic regular expression.
///
/// This is the decision procedure `one-unamb[R]` of Definition 2, implemented
/// with the Brüggemann-Klein/Wood characterisation on the minimal DFA:
/// a minimal deterministic automaton recognises a one-unambiguous language
/// iff, after *cutting* the transitions leaving final states on
/// automaton-consistent symbols, the resulting automaton has the **orbit
/// property** and all its orbit languages are recursively one-unambiguous.
pub fn one_unambiguous_language(nfa: &Nfa) -> bool {
    let dfa = Dfa::from_nfa(nfa).minimize();
    bkw(&dfa)
}

/// Whether the language of a regular expression is one-unambiguous (even if
/// the expression itself is not deterministic).
pub fn one_unambiguous_regex_language(re: &Regex) -> bool {
    one_unambiguous_language(&re.to_nfa())
}

// ----------------------------------------------------------------------
// BKW decision procedure
// ----------------------------------------------------------------------

fn bkw(dfa: &Dfa) -> bool {
    // Trivial languages (∅, {ε}, single-state loops) are one-unambiguous.
    if dfa.num_states() <= 1 {
        return true;
    }
    // S := all consistent symbols; cut their transitions out of final states.
    let consistent = consistent_symbols(dfa);
    let (cut, removed_any) = cut_transitions(dfa, &consistent);

    let orbits = strongly_connected_components(&cut);
    let single_covering_orbit =
        orbits.len() == 1 && orbits[0].len() == cut.num_states() && orbit_is_nontrivial(&cut, &orbits[0]);
    if single_covering_orbit && !removed_any {
        // The cut made no progress and the automaton is one big non-trivial
        // orbit: no deterministic expression exists.
        return false;
    }
    if !has_orbit_property(&cut, &orbits) {
        return false;
    }
    // Recurse on the orbit automata. Within an orbit, the orbit automata for
    // different start states share states, transitions and gates; we check
    // each start state (cheap for the sizes arising in schemas).
    for orbit in &orbits {
        if orbit.len() == cut.num_states() && !removed_any {
            // Would recurse on an identical automaton; handled above.
            continue;
        }
        for &q in orbit {
            let sub = orbit_automaton(&cut, orbit, q);
            if !bkw(&sub.minimize()) {
                return false;
            }
        }
    }
    true
}

/// The symbols `a` such that every final state has an `a`-transition and all
/// of them lead to the same state (the "M-consistent" symbols of BKW).
fn consistent_symbols(dfa: &Dfa) -> BTreeSet<Symbol> {
    let finals: Vec<usize> = dfa.finals().iter().copied().collect();
    if finals.is_empty() {
        return BTreeSet::new();
    }
    let mut out = BTreeSet::new();
    for sym in &dfa.alphabet() {
        let mut target = None;
        let mut ok = true;
        for &f in &finals {
            match dfa.delta(f, sym) {
                Some(t) => match target {
                    None => target = Some(t),
                    Some(prev) if prev == t => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                },
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && target.is_some() {
            out.insert(*sym);
        }
    }
    out
}

/// Removes, from every final state, the transitions labelled by symbols in
/// `symbols`. Returns the cut automaton and whether anything was removed.
fn cut_transitions(dfa: &Dfa, symbols: &BTreeSet<Symbol>) -> (Dfa, bool) {
    let mut out = Dfa::new(dfa.num_states(), dfa.start());
    let mut removed = false;
    for q in 0..dfa.num_states() {
        for (sym, t) in dfa.transitions_from(q) {
            if dfa.is_final(q) && symbols.contains(sym) {
                removed = true;
                continue;
            }
            out.set_transition(q, *sym, t);
        }
        if dfa.is_final(q) {
            out.set_final(q);
        }
    }
    (out, removed)
}

/// Strongly connected components of the transition graph (Kosaraju).
/// Each component is returned as a sorted set of states; trivial components
/// (single state without a self loop) are included.
fn strongly_connected_components(dfa: &Dfa) -> Vec<BTreeSet<usize>> {
    let n = dfa.num_states();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, _, t) in dfa.transitions() {
        adj[q].push(t);
        radj[t].push(q);
    }
    // First pass: order by finish time.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for s in 0..n {
        if visited[s] {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next-child-index).
        let mut stack = vec![(s, 0usize)];
        visited[s] = true;
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            if *idx < adj[u].len() {
                let v = adj[u][*idx];
                *idx += 1;
                if !visited[v] {
                    visited[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Second pass on the reverse graph in reverse finish order.
    let mut component = vec![usize::MAX; n];
    let mut components: Vec<BTreeSet<usize>> = Vec::new();
    for &s in order.iter().rev() {
        if component[s] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut comp = BTreeSet::new();
        let mut stack = vec![s];
        component[s] = id;
        while let Some(u) = stack.pop() {
            comp.insert(u);
            for &v in &radj[u] {
                if component[v] == usize::MAX {
                    component[v] = id;
                    stack.push(v);
                }
            }
        }
        components.push(comp);
    }
    components
}

/// Whether an orbit is non-trivial: more than one state, or a single state
/// with a self loop.
fn orbit_is_nontrivial(dfa: &Dfa, orbit: &BTreeSet<usize>) -> bool {
    if orbit.len() > 1 {
        return true;
    }
    let q = *orbit.iter().next().unwrap();
    dfa.transitions_from(q).any(|(_, t)| t == q)
}

/// The gates of an orbit: states that are final or have a transition leaving
/// the orbit.
fn gates(dfa: &Dfa, orbit: &BTreeSet<usize>) -> BTreeSet<usize> {
    orbit
        .iter()
        .copied()
        .filter(|&q| dfa.is_final(q) || dfa.transitions_from(q).any(|(_, t)| !orbit.contains(&t)))
        .collect()
}

/// The orbit property: within each orbit, all gates agree on finality and on
/// every transition that leaves the orbit.
fn has_orbit_property(dfa: &Dfa, orbits: &[BTreeSet<usize>]) -> bool {
    for orbit in orbits {
        let gs: Vec<usize> = gates(dfa, orbit).into_iter().collect();
        if gs.len() <= 1 {
            continue;
        }
        let signature = |q: usize| -> (bool, BTreeMap<Symbol, usize>) {
            let outside: BTreeMap<Symbol, usize> = dfa
                .transitions_from(q)
                .filter(|(_, t)| !orbit.contains(t))
                .map(|(s, t)| (*s, t))
                .collect();
            (dfa.is_final(q), outside)
        };
        let first = signature(gs[0]);
        if gs.iter().skip(1).any(|&q| signature(q) != first) {
            return false;
        }
    }
    true
}

/// The orbit automaton `M_q`: the restriction of the automaton to the orbit
/// of `q`, started at `q`, whose final states are the gates of the orbit.
fn orbit_automaton(dfa: &Dfa, orbit: &BTreeSet<usize>, q: usize) -> Dfa {
    let states: Vec<usize> = orbit.iter().copied().collect();
    let index: BTreeMap<usize, usize> = states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut out = Dfa::new(states.len(), index[&q]);
    for &s in &states {
        for (sym, t) in dfa.transitions_from(s) {
            if let Some(&ti) = index.get(&t) {
                out.set_transition(index[&s], *sym, ti);
            }
        }
    }
    for g in gates(dfa, orbit) {
        out.set_final(index[&g]);
    }
    out
}

// ----------------------------------------------------------------------
// Constructive helper
// ----------------------------------------------------------------------

/// Returns a deterministic regular expression for the language of `re` for a
/// few recognisable shapes; `None` when no equivalent deterministic
/// expression is found by the heuristics (the language may still be
/// one-unambiguous — use [`one_unambiguous_regex_language`] to decide).
///
/// The helper covers the shapes appearing in the paper's examples: already
/// deterministic expressions are returned unchanged, and `(x|y)*x`-style
/// "ends with" languages are rewritten to `(y*x)+` form.
pub fn smallest_equivalent_dre_hint(re: &Regex) -> Option<Regex> {
    if one_unambiguous_expr(re) {
        return Some(re.clone());
    }
    // (a|b)* a  ⇒  (b* a)+   (only attempted for two-symbol alternations)
    if let Regex::Concat(parts) = re {
        if parts.len() == 2 {
            if let (Regex::Star(body), Regex::Sym(x)) = (&parts[0], &parts[1]) {
                if let Regex::Alt(alts) = body.as_ref() {
                    let symbols: Vec<&Symbol> = alts
                        .iter()
                        .filter_map(|r| match r {
                            Regex::Sym(s) => Some(s),
                            _ => None,
                        })
                        .collect();
                    if symbols.len() == alts.len() && symbols.contains(&x) {
                        let others: Vec<Regex> = symbols
                            .iter()
                            .filter(|s| *s != &x)
                            .map(|s| Regex::Sym(*(*s)))
                            .collect();
                        let candidate = Regex::concat(vec![
                            Regex::alt(others).star(),
                            Regex::Sym(*x),
                        ])
                        .plus();
                        if one_unambiguous_expr(&candidate)
                            && crate::equiv::is_equivalent(&candidate.to_nfa(), &re.to_nfa())
                        {
                            return Some(candidate);
                        }
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(s: &str) -> Regex {
        Regex::parse_chars(s).unwrap()
    }

    #[test]
    fn deterministic_expressions() {
        assert!(one_unambiguous_expr(&re("a*bc*")));
        assert!(one_unambiguous_expr(&re("(ab)*")));
        assert!(one_unambiguous_expr(&re("b*a(b*a)*")));
        assert!(!one_unambiguous_expr(&re("(a|b)*a")));
        assert!(!one_unambiguous_expr(&re("(a|b)*a(a|b)")));
        // a? a — two positions with the same symbol follow the start.
        assert!(!one_unambiguous_expr(&re("a?a")));
    }

    #[test]
    fn one_unambiguous_languages_positive() {
        // "ends with a" is one-unambiguous ((b*a)+ is a deterministic
        // expression for it) even though (a|b)*a is not deterministic.
        assert!(one_unambiguous_regex_language(&re("(a|b)*a")));
        assert!(one_unambiguous_regex_language(&re("a*b*")));
        assert!(one_unambiguous_regex_language(&re("(ab)*")));
        assert!(one_unambiguous_regex_language(&re("(ab)+")));
        assert!(one_unambiguous_regex_language(&re("a*bc*")));
        // finite languages used in the paper's examples
        assert!(one_unambiguous_regex_language(&re("ab + ba")));
    }

    #[test]
    fn one_unambiguous_languages_negative() {
        // The classic counterexample of Brüggemann-Klein & Wood:
        // "the second-to-last symbol is an a".
        assert!(!one_unambiguous_regex_language(&re("(a|b)*a(a|b)")));
        assert!(!one_unambiguous_regex_language(&re("(a|b)*a(a|b)(a|b)")));
    }

    #[test]
    fn dre_hint_constructions() {
        let hinted = smallest_equivalent_dre_hint(&re("(a|b)*a")).expect("hint should apply");
        assert!(one_unambiguous_expr(&hinted));
        assert!(crate::equiv::is_equivalent(&hinted.to_nfa(), &re("(a|b)*a").to_nfa()));
        assert!(smallest_equivalent_dre_hint(&re("(a|b)*a(a|b)")).is_none());
        // Deterministic expressions are returned unchanged.
        assert_eq!(smallest_equivalent_dre_hint(&re("a*b")), Some(re("a*b")));
    }

    #[test]
    fn scc_helper_behaves() {
        let dfa = Dfa::from_nfa(&re("(ab)*").to_nfa()).minimize();
        let sccs = strongly_connected_components(&dfa);
        // The minimal DFA of (ab)* is a 2-cycle: one non-trivial SCC.
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
        assert!(orbit_is_nontrivial(&dfa, &sccs[0]));
    }
}
