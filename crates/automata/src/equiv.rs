//! Inclusion and equivalence of regular string languages, with
//! counter-example extraction.
//!
//! These are the `equiv[R]` oracles of Definition 1, used pervasively by the
//! design algorithms: local typings are verified by checking `w(τn) ≡ τ`
//! (Theorem 5.3), consistency reduces to equivalence of schemas
//! (Theorems 3.10/3.13), and so on. The implementation determinises both
//! automata and searches the product for a distinguishing state pair, which
//! also yields a shortest distinguishing word — invaluable in error messages
//! and tests.

use std::collections::VecDeque;

use dxml_telemetry as telemetry;

use crate::dfa::Dfa;
use crate::error::AutomataError;
use crate::hash::{FxHashMap, FxHashSet};
use crate::limits::Budget;
use crate::nfa::Nfa;
use crate::symbol::{Alphabet, Symbol, Word};

/// A word witnessing that two languages differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The distinguishing word.
    pub word: Word,
    /// `true` if the word belongs to the *first* language only, `false` if it
    /// belongs to the second only.
    pub in_first: bool,
}

impl Counterexample {
    /// Renders the word with a separator, for error messages.
    pub fn describe(&self) -> String {
        let w: Vec<String> = self.word.iter().map(ToString::to_string).collect();
        let side = if self.in_first { "first" } else { "second" };
        format!("word [{}] belongs to the {side} language only", w.join(" "))
    }
}

/// Checks `[a] ⊆ [b]`; on failure returns a shortest word in `[a] − [b]`.
///
/// # Panics
///
/// Never in practice: the unlimited budget cannot trip.
pub fn included(a: &Nfa, b: &Nfa) -> Result<(), Counterexample> {
    included_with_budget(a, b, &Budget::unlimited())
        .expect("the unlimited budget never trips")
}

/// Governed variant of [`included`]. The outer `Result` reports resource
/// governance (`BudgetExceeded`); the inner one is the inclusion verdict.
pub fn included_with_budget(
    a: &Nfa,
    b: &Nfa,
    budget: &Budget,
) -> Result<Result<(), Counterexample>, AutomataError> {
    budget.check_interrupts()?;
    let alphabet = a.alphabet().union(&b.alphabet());
    let da = Dfa::from_nfa_with_budget(a, budget)?.complete(&alphabet);
    let db = Dfa::from_nfa_with_budget(b, budget)?.complete(&alphabet);
    Ok(
        if let Some(word) = distinguishing_word(&da, &db, &alphabet, |fa, fb| fa && !fb, budget)? {
            Err(Counterexample { word, in_first: true })
        } else {
            Ok(())
        },
    )
}

/// Checks `[a] = [b]`; on failure returns a shortest distinguishing word
/// together with the side it belongs to.
///
/// # Panics
///
/// Never in practice: the unlimited budget cannot trip.
pub fn equivalent(a: &Nfa, b: &Nfa) -> Result<(), Counterexample> {
    equivalent_with_budget(a, b, &Budget::unlimited())
        .expect("the unlimited budget never trips")
}

/// Governed variant of [`equivalent`]. The outer `Result` reports resource
/// governance (`BudgetExceeded`); the inner one is the equivalence verdict.
pub fn equivalent_with_budget(
    a: &Nfa,
    b: &Nfa,
    budget: &Budget,
) -> Result<Result<(), Counterexample>, AutomataError> {
    budget.check_interrupts()?;
    let alphabet = a.alphabet().union(&b.alphabet());
    let da = Dfa::from_nfa_with_budget(a, budget)?.complete(&alphabet);
    let db = Dfa::from_nfa_with_budget(b, budget)?.complete(&alphabet);
    Ok(
        if let Some(word) = distinguishing_word(&da, &db, &alphabet, |fa, fb| fa != fb, budget)? {
            let in_first = a.accepts(&word);
            Err(Counterexample { word, in_first })
        } else {
            Ok(())
        },
    )
}

/// Convenience boolean wrappers.
pub fn is_included(a: &Nfa, b: &Nfa) -> bool {
    included(a, b).is_ok()
}

/// Whether `[a] = [b]`.
pub fn is_equivalent(a: &Nfa, b: &Nfa) -> bool {
    equivalent(a, b).is_ok()
}

/// Checks `[a] ∩ [b] = ∅`; on failure returns a shortest common word.
pub fn disjoint(a: &Nfa, b: &Nfa) -> Result<(), Word> {
    match a.intersect(b).shortest_accepted() {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// `concat-univ[R]` (Definition 16): is `[a] ◦ [b] = Σ*` over the given
/// alphabet?
pub fn concat_universal(a: &Nfa, b: &Nfa, alphabet: &Alphabet) -> bool {
    a.concat(b).is_universal(alphabet)
}

/// Back-pointers of the product BFS: state pair → (predecessor pair, symbol).
type ParentMap = FxHashMap<(usize, usize), ((usize, usize), Symbol)>;

/// Breadth-first search over the synchronous product of two *complete* DFAs,
/// returning a shortest word leading to a state pair whose acceptance flags
/// satisfy `bad`.
fn distinguishing_word(
    a: &Dfa,
    b: &Dfa,
    alphabet: &Alphabet,
    bad: impl Fn(bool, bool) -> bool,
    budget: &Budget,
) -> Result<Option<Word>, AutomataError> {
    // Resolve each symbol against both local indices once; the BFS then
    // moves on integer ids only. Scanning in text order keeps the witness
    // lexicographically least among the shortest.
    let ids: Vec<(Symbol, u32, u32)> = alphabet
        .iter()
        .filter_map(|&s| {
            // Both DFAs are complete over `alphabet`, so a missing id only
            // arises for symbols outside both alphabets — those never move
            // the product.
            Some((s, a.sym_id(&s)?, b.sym_id(&s)?))
        })
        .collect();
    let start = (a.start(), b.start());
    let mut parent: ParentMap = ParentMap::default();
    let mut seen: FxHashSet<(usize, usize)> = FxHashSet::from_iter([start]);
    let mut queue = VecDeque::from([start]);
    let reconstruct = |end: (usize, usize), parent: &ParentMap| {
        let mut word = Vec::new();
        let mut cur = end;
        while let Some(&(prev, sym)) = parent.get(&cur) {
            word.push(sym);
            cur = prev;
        }
        word.reverse();
        word
    };
    // Telemetry tallies are kept local and flushed once on exit, keeping
    // the BFS loop free of atomic traffic.
    let mut popped: u64 = 0;
    let mut edges: u64 = 0;
    let mut witness = Ok(None);
    while let Some((p, q)) = queue.pop_front() {
        popped += 1;
        if let Err(trip) = budget.step() {
            witness = Err(trip);
            break;
        }
        if bad(a.is_final(p), b.is_final(q)) {
            witness = Ok(Some(reconstruct((p, q), &parent)));
            break;
        }
        for &(sym, sa, sb) in &ids {
            edges += 1;
            let (tp, tq) = match (a.delta_local(p, sa), b.delta_local(q, sb)) {
                (Some(tp), Some(tq)) => (tp, tq),
                _ => continue,
            };
            if seen.insert((tp, tq)) {
                parent.insert((tp, tq), ((p, q), sym));
                queue.push_back((tp, tq));
            }
        }
    }
    telemetry::count(telemetry::Metric::EquivBfsRuns, 1);
    telemetry::count(telemetry::Metric::EquivBfsStates, popped);
    telemetry::count(telemetry::Metric::EquivBfsTransitions, edges);
    telemetry::observe(telemetry::Hist::EquivBfsExplored, popped);
    witness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::symbol::word_chars;

    fn re(s: &str) -> Nfa {
        Regex::parse_chars(s).unwrap().to_nfa()
    }

    #[test]
    fn equivalence_of_equal_languages() {
        // a*bc*c* ≡ a*a*bc* ≡ a*bc* (Example 2 of the paper)
        assert!(is_equivalent(&re("a*bc*c*"), &re("a*a*bc*")));
        assert!(is_equivalent(&re("a*bc*c*"), &re("a*bc*")));
        assert!(is_equivalent(&re("(ab)*"), &re("(ab)*(ab)*")));
    }

    #[test]
    fn inequivalence_gives_counterexample() {
        let err = equivalent(&re("a*b"), &re("a+b")).unwrap_err();
        assert_eq!(err.word, word_chars("b"));
        assert!(err.in_first);
        let err2 = equivalent(&re("ab"), &re("ab|ba")).unwrap_err();
        assert_eq!(err2.word, word_chars("ba"));
        assert!(!err2.in_first);
    }

    #[test]
    fn inclusion_and_witness() {
        assert!(is_included(&re("(ab)+"), &re("(ab)*")));
        assert!(!is_included(&re("(ab)*"), &re("(ab)+")));
        let err = included(&re("(ab)*"), &re("(ab)+")).unwrap_err();
        assert!(err.word.is_empty());
    }

    #[test]
    fn disjointness() {
        assert!(disjoint(&re("a+"), &re("b+")).is_ok());
        let w = disjoint(&re("a*b"), &re("ab*")).unwrap_err();
        assert_eq!(w, word_chars("ab"));
    }

    #[test]
    fn concat_universality() {
        let sigma = Alphabet::from_chars("ab");
        // (a|b)* ◦ (a|b)* = Σ*
        assert!(concat_universal(&re("(a|b)*"), &re("(a|b)*"), &sigma));
        // a* ◦ b* ≠ Σ* (misses "ba")
        assert!(!concat_universal(&re("a*"), &re("b*"), &sigma));
    }

    #[test]
    fn empty_language_edge_cases() {
        assert!(is_included(&Nfa::empty(), &re("a")));
        assert!(!is_included(&re("a"), &Nfa::empty()));
        assert!(is_equivalent(&Nfa::empty(), &Nfa::empty()));
        assert!(!is_equivalent(&Nfa::epsilon(), &re("a*")));
    }
}
