//! Differential property tests: [`StreamValidator`] must agree with the
//! materialising route (`parse_xml` + [`RSdtd::validate`]) on *every* input
//! string — same verdict and byte-identical error value — across random
//! schemas, random documents, mutated documents and adversarial tag soup.

use dxml_automata::RFormalism;
use dxml_schema::{RSdtd, SchemaError, StreamValidator};
use dxml_tree::generate::{random_tree, SplitRng, TreeGenConfig};
use dxml_tree::xml::{parse_xml, to_xml};

const LABELS: [&str; 5] = ["s", "a", "b", "c", "d"];

/// A random single-type SDTD over [`LABELS`]: each rule's content model uses
/// at most one specialisation per label (the single-type restriction holds by
/// construction), with random postfix operators and comma/pipe combinators.
fn random_sdtd(rng: &mut SplitRng) -> RSdtd {
    // How many specialisations each label has (label~1, label~2, ...).
    let spec_counts: Vec<usize> = LABELS.iter().map(|_| 1 + rng.below(2)).collect();
    let all_specs: Vec<String> = LABELS
        .iter()
        .zip(&spec_counts)
        .flat_map(|(l, &k)| (1..=k).map(move |i| format!("{l}~{i}")))
        .collect();
    let mut rules = vec![];
    for (si, spec) in std::iter::once(&"s".to_string()).chain(&all_specs).enumerate() {
        if si > 0 && rng.chance(1, 3) {
            continue; // leaf-only: defaults to the {ε} content model
        }
        let mut atoms = vec![];
        for (li, label) in LABELS.iter().enumerate() {
            if rng.chance(1, 2) {
                continue;
            }
            // One specialisation of this label, so the rule is single-type.
            let idx = 1 + rng.below(spec_counts[li]);
            let postfix = *rng.pick(&["", "*", "?", "+"]);
            atoms.push(format!("{label}~{idx}{postfix}"));
        }
        if atoms.is_empty() {
            continue;
        }
        let sep = if rng.chance(1, 4) { "|" } else { ", " };
        rules.push(format!("{spec} -> {}", atoms.join(sep)));
    }
    if rules.is_empty() || !rules[0].starts_with("s ") {
        rules.insert(0, "s -> a~1?".to_string());
    }
    RSdtd::parse(RFormalism::Nre, &rules.join("\n")).expect("constructed rules are single-type")
}

/// The reference: parse, then validate the materialised tree.
fn tree_route(s: &RSdtd, input: &str) -> Result<(), SchemaError> {
    parse_xml(input).map_err(SchemaError::from).and_then(|t| s.validate(&t))
}

fn assert_agree(v: &StreamValidator, s: &RSdtd, doc: &str) {
    assert_eq!(v.validate(doc), tree_route(s, doc), "schema {s}, doc {doc:?}");
}

/// Splices random markup-flavoured fragments into a document.
fn mutate(rng: &mut SplitRng, doc: &str) -> String {
    let fragments = [
        "<", ">", "/", "</", "/>", "<a>", "</a>", "<e/>", "\"", "'", " x=\"1>2\"", "é", "²", "<!--", "-->", "<?p?>", "text",
    ];
    let mut out = String::new();
    let mut emitted = false;
    for (i, c) in doc.char_indices() {
        if rng.chance(1, 20) {
            let fragment: &&str = rng.pick(&fragments);
            out.push_str(fragment);
            emitted = true;
        }
        if !(rng.chance(1, 40) && i > 0) {
            out.push(c);
        }
    }
    if !emitted {
        let fragment: &&str = rng.pick(&fragments);
        out.push_str(fragment);
    }
    out
}

/// Random tag soup assembled from markup tokens — mostly ill-formed.
fn tag_soup(rng: &mut SplitRng) -> String {
    let tokens = [
        "<a>", "<b>", "<s>", "</a>", "</b>", "</s>", "<c/>", "<a", ">", "<", "</", "x=\"v\"", "x='1>2'", "<!-- c -->", "<?pi?>", "words", " ", "<é>", "²",
    ];
    let n = 1 + rng.below(12);
    (0..n).map(|_| *rng.pick(&tokens)).collect()
}

#[test]
fn streaming_agrees_with_tree_route_on_random_schemas_and_documents() {
    let mut rng = SplitRng::new(0xD15_7C0DE);
    let alphabet = dxml_automata::Alphabet::from_iter(LABELS);
    for round in 0..40 {
        let s = random_sdtd(&mut rng);
        let v = StreamValidator::new(&s);
        // Documents in the language, when the language is non-empty.
        if let Some(t) = s.sample_tree() {
            let xml = to_xml(&t);
            assert_eq!(v.validate(&xml), Ok(()), "sample of {s} must stream-validate");
            assert_agree(&v, &s, &xml);
            for _ in 0..4 {
                assert_agree(&v, &s, &mutate(&mut rng, &xml));
            }
        }
        // Random trees over the schema's labels: a mix of valid and invalid.
        let config = TreeGenConfig::new(&alphabet, 1 + rng.below(5), 1 + rng.below(4));
        for _ in 0..10 {
            let xml = to_xml(&random_tree(&mut rng, &config));
            assert_agree(&v, &s, &xml);
            assert_agree(&v, &s, &mutate(&mut rng, &xml));
        }
        // Adversarial, mostly ill-formed inputs: both routes must return the
        // same parse error (never panic).
        for _ in 0..10 {
            assert_agree(&v, &s, &tag_soup(&mut rng));
        }
        assert_agree(&v, &s, "");
        let _ = round;
    }
}

#[test]
fn convenience_entry_point_agrees_too() {
    let s = RSdtd::parse(RFormalism::Nre, "s -> a*, b\na -> c?").unwrap();
    for doc in ["<s><a><c/></a><b/></s>", "<s><b/><a/></s>", "<s>", "junk"] {
        assert_eq!(s.validate_stream(doc), tree_route(&s, doc), "doc {doc:?}");
    }
}
