//! `R-DTD`s — the paper's abstraction of W3C Document Type Definitions
//! (Definition 3).
//!
//! An `R-DTD` is a triple `⟨Σ, π, s⟩`: an alphabet of element names, a
//! function `π` mapping each element name to a content model (an `R`-type
//! over `Σ`) and a start symbol. A tree belongs to the language iff its root
//! is labelled `s` and, for every node `x`, `child-str(x) ∈ [π(lab(x))]`.
//!
//! The module implements validation, the vertical automaton `dual(τ)`
//! (Definition 4), the *bound-state* marking and the *reduced* property
//! (Definition 5) with the reduction algorithm, language emptiness,
//! equivalence (Proposition 4.1) and conversion to [`REdtd`]. The closure
//! characterisation of Lemma 3.12 (closure under subtree substitution) is
//! *decided* — not sampled — by `dxml-analysis::dtd_definable`, with the
//! brute-force closure search living in that crate's property tests.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dxml_automata::{Alphabet, Dfa, Nfa, RFormalism, RSpec, Symbol};
use dxml_tree::{Nuta, XTree};

use crate::edtd::REdtd;
use crate::error::SchemaError;
use crate::syntax;

/// An `R-DTD` `⟨Σ, π, s⟩` (Definition 3).
#[derive(Clone)]
pub struct RDtd {
    formalism: RFormalism,
    alphabet: Alphabet,
    start: Symbol,
    /// Content models. Element names without an entry are leaf-only
    /// (content `{ε}`), matching the paper's convention ("if no rule is given
    /// for a label, nodes with this label are assumed to be solely leaves").
    rules: BTreeMap<Symbol, RSpec>,
}

impl RDtd {
    /// Creates a DTD with the given start symbol and no other element names.
    pub fn new(formalism: RFormalism, start: impl Into<Symbol>) -> RDtd {
        let start = start.into();
        let mut alphabet = Alphabet::new();
        alphabet.insert(start);
        RDtd { formalism, alphabet, start, rules: BTreeMap::new() }
    }

    /// Parses a DTD from the compact rule syntax used throughout the paper
    /// (Figure 4):
    ///
    /// ```text
    /// eurostat -> averages, nationalIndex*
    /// nationalIndex -> country, Good, (index | value, year)
    /// index -> value, year
    /// ```
    ///
    /// The left-hand side of the first rule is the start symbol; names that
    /// appear only on right-hand sides are leaf-only elements.
    pub fn parse(formalism: RFormalism, input: &str) -> Result<RDtd, SchemaError> {
        syntax::parse_dtd(formalism, input)
    }

    /// Parses the `<!ELEMENT …>` subset of the W3C DTD syntax (Figure 3).
    pub fn parse_w3c(formalism: RFormalism, input: &str) -> Result<RDtd, SchemaError> {
        syntax::parse_w3c_dtd(formalism, input)
    }

    /// Registers an element name without giving it a content model
    /// (leaf-only element).
    pub fn add_element(&mut self, name: impl Into<Symbol>) {
        self.alphabet.insert(name.into());
    }

    /// Sets the content model of an element name; the name and every symbol
    /// of the content model are added to the alphabet.
    pub fn set_rule(&mut self, name: impl Into<Symbol>, content: RSpec) {
        let name = name.into();
        self.alphabet.insert(name);
        for sym in content.alphabet().iter() {
            self.alphabet.insert(*sym);
        }
        self.rules.insert(name, content);
    }

    /// The content-model formalism `R`.
    pub fn formalism(&self) -> RFormalism {
        self.formalism
    }

    /// The element names `Σ`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The start symbol `s`.
    pub fn start(&self) -> &Symbol {
        &self.start
    }

    /// The content model `π(name)`; leaf-only elements yield `{ε}`.
    pub fn content(&self, name: &Symbol) -> RSpec {
        self.rules
            .get(name)
            .cloned()
            .unwrap_or(RSpec::Nre(dxml_automata::Regex::Epsilon))
    }

    /// Whether the element has an explicit content rule.
    pub fn has_rule(&self, name: &Symbol) -> bool {
        self.rules.contains_key(name)
    }

    /// Iterates over the explicit rules.
    pub fn rules(&self) -> impl Iterator<Item = (&Symbol, &RSpec)> {
        self.rules.iter()
    }

    /// A size measure: number of element names plus the sizes of all content
    /// models (used for the `typeT(τn)` size measurements of Table 2).
    pub fn size(&self) -> usize {
        self.alphabet.len() + self.rules.values().map(RSpec::size).sum::<usize>()
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Validates a tree, returning the first violation found (in document
    /// order).
    pub fn validate(&self, tree: &XTree) -> Result<(), SchemaError> {
        if tree.root_label() != &self.start {
            return Err(SchemaError::RootMismatch {
                expected: self.start,
                found: *tree.root_label(),
            });
        }
        for node in tree.document_order() {
            let label = tree.label(node);
            if !self.alphabet.contains(label) {
                return Err(SchemaError::UnknownElement { label: *label });
            }
            let children = tree.child_str(node);
            let content = self.content(label);
            if !content.accepts(&children) {
                return Err(SchemaError::InvalidContent {
                    path: tree.anc_str(node),
                    children,
                    expected: format!("{content}"),
                });
            }
        }
        Ok(())
    }

    /// Whether the tree belongs to `[τ]`.
    pub fn accepts(&self, tree: &XTree) -> bool {
        self.validate(tree).is_ok()
    }

    // ------------------------------------------------------------------
    // dual(τ), bound states, reduction (Definitions 4 and 5)
    // ------------------------------------------------------------------

    /// The vertical automaton `dual(τ)` (Definition 4): a DFA over `Σ` whose
    /// language is the set of root-to-leaf label paths of trees in `[τ]`
    /// (when `τ` is reduced). State `0` is the fresh initial state `q0`;
    /// state `i+1` is `q_a` for the `i`-th element name in sorted order.
    pub fn dual(&self) -> Dfa {
        let names: Vec<Symbol> = self.alphabet.to_vec();
        let index: BTreeMap<&Symbol, usize> = names.iter().enumerate().map(|(i, n)| (n, i + 1)).collect();
        let mut dfa = Dfa::new(names.len() + 1, 0);
        dfa.set_transition(0, self.start, index[&self.start]);
        for a in &names {
            let content = self.content(a);
            for b in content.alphabet().iter() {
                if let Some(&bi) = index.get(b) {
                    dfa.set_transition(index[a], *b, bi);
                }
            }
            if content.accepts_epsilon() {
                dfa.set_final(index[a]);
            }
        }
        dfa
    }

    /// The *bound* element names: the fixpoint marking of Definition 5.
    /// An element name is bound if its content model contains some word over
    /// bound names (in particular, if it contains ε).
    pub fn bound_names(&self) -> BTreeSet<Symbol> {
        // The content NFAs are loop-invariant: build each once, not once per
        // fixpoint round (leaf-only names are bound immediately — their
        // content is {ε}).
        let mut bound: BTreeSet<Symbol> = BTreeSet::new();
        let mut pending: Vec<(&Symbol, Nfa)> = Vec::new();
        for a in &self.alphabet {
            match self.rules.get(a) {
                Some(content) => pending.push((a, content.to_nfa())),
                None => {
                    bound.insert(*a);
                }
            }
        }
        loop {
            let mut changed = false;
            pending.retain(|(a, content)| {
                let restricted = content.filter_symbols(|s| bound.contains(s));
                if restricted.shortest_accepted().is_some() {
                    bound.insert(*(*a));
                    changed = true;
                    false
                } else {
                    true
                }
            });
            if !changed {
                return bound;
            }
        }
    }

    /// The element names reachable from the start symbol in `dual(τ)`.
    pub fn reachable_names(&self) -> BTreeSet<Symbol> {
        let mut reach = BTreeSet::from([self.start]);
        let mut stack = vec![self.start];
        while let Some(a) = stack.pop() {
            // Leaf-only names ({ε} content) mention nothing; look the rule
            // up by reference instead of cloning the content model.
            let content = match self.rules.get(&a) {
                Some(c) => c,
                None => continue,
            };
            for b in content.alphabet().iter() {
                if self.alphabet.contains(b) && reach.insert(*b) {
                    stack.push(*b);
                }
            }
        }
        reach
    }

    /// Whether the DTD is *reduced* (Definition 5): every element name is
    /// reachable, every element name is bound, and the language is non-empty.
    pub fn is_reduced(&self) -> bool {
        let bound = self.bound_names();
        let reachable = self.reachable_names();
        self.alphabet.iter().all(|a| bound.contains(a) && reachable.contains(a))
            && bound.contains(&self.start)
    }

    /// The reduction of the DTD: removes unreachable or unbound
    /// ("unprofitable") element names and restricts the remaining content
    /// models to words over the surviving names. The result describes the
    /// same tree language.
    pub fn reduce(&self) -> RDtd {
        let bound = self.bound_names();
        let reachable = self.reachable_names();
        if !bound.contains(&self.start) {
            // Empty language: keep the start with an unsatisfiable content
            // model so the reduction still describes the same (empty)
            // language instead of silently turning the start into a leaf.
            let mut out = RDtd::new(self.formalism, self.start);
            out.rules.insert(self.start, RSpec::Nfa(dxml_automata::Nfa::empty()));
            return out;
        }
        let keep: BTreeSet<Symbol> =
            bound.intersection(&reachable).cloned().collect();
        let mut out = RDtd::new(self.formalism, self.start);
        for a in &keep {
            out.alphabet.insert(*a);
        }
        for (a, content) in &self.rules {
            if !keep.contains(a) {
                continue;
            }
            let nfa = content.to_nfa().filter_symbols(|s| keep.contains(s)).trim();
            out.rules.insert(*a, RSpec::Nfa(nfa));
        }
        out
    }

    /// Whether `[τ]` is empty (no valid tree exists).
    pub fn language_is_empty(&self) -> bool {
        !self.bound_names().contains(&self.start)
    }

    /// A tree in `[τ]`, if any.
    pub fn sample_tree(&self) -> Option<XTree> {
        self.to_nuta().sample_tree()
    }

    // ------------------------------------------------------------------
    // Equivalence & conversions
    // ------------------------------------------------------------------

    /// Language equivalence with another DTD, using Proposition 4.1: two
    /// *reduced* DTDs are equivalent iff they have the same start symbol, the
    /// same element names and pairwise equivalent content models.
    pub fn equivalent(&self, other: &RDtd) -> bool {
        let a = self.reduce();
        let b = other.reduce();
        if a.language_is_empty() || b.language_is_empty() {
            return a.language_is_empty() == b.language_is_empty();
        }
        if a.start != b.start || a.alphabet != b.alphabet {
            return false;
        }
        // Named binding (not a tail expression) so the iterator borrowing
        // `a.alphabet` is dropped before the locals it borrows from (E0597).
        let same_contents = a.alphabet.iter().all(|name| {
            dxml_automata::equiv::is_equivalent(&a.content(name).to_nfa(), &b.content(name).to_nfa())
        });
        same_contents
    }

    /// Converts to an [`REdtd`] where every element name is its own (unique)
    /// specialisation.
    pub fn to_edtd(&self) -> REdtd {
        let mut edtd = REdtd::new(self.formalism, self.start, self.start);
        for a in &self.alphabet {
            edtd.add_specialization(*a, *a);
        }
        for (a, content) in &self.rules {
            edtd.set_rule(*a, content.clone());
        }
        edtd
    }

    /// Converts to an unranked tree automaton.
    pub fn to_nuta(&self) -> Nuta {
        self.to_edtd().to_nuta()
    }

    /// Alias for [`RDtd::to_nuta`] under the name used by the design layer
    /// (`uta` is the paper's generic word for unranked tree automata).
    pub fn to_uta(&self) -> Nuta {
        self.to_nuta()
    }

    /// Language equivalence via tree automata (works for non-reduced inputs
    /// as well); returns a distinguishing tree on failure.
    pub fn equivalent_witness(&self, other: &RDtd) -> Result<(), (XTree, bool)> {
        dxml_tree::uta::equivalent(&self.to_nuta(), &other.to_nuta())
    }

}

impl fmt::Debug for RDtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}-DTD with start `{}`:", self.formalism, self.start)?;
        for (a, c) in &self.rules {
            writeln!(f, "  {a} -> {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for RDtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_tree::term::parse_term;

    /// The DTD τ of Figure 3 (the Eurostat NCPI global type).
    fn eurostat_dtd() -> RDtd {
        RDtd::parse(
            RFormalism::Nre,
            "eurostat -> averages, nationalIndex*\n\
             averages -> (Good, index+)+\n\
             nationalIndex -> country, Good, (index | value, year)\n\
             index -> value, year",
        )
        .unwrap()
    }

    #[test]
    fn validation_of_figure_2_document() {
        let dtd = eurostat_dtd();
        let doc = parse_term(
            "eurostat(averages(Good index(value year) index(value year)) \
             nationalIndex(country Good index(value year)) \
             nationalIndex(country Good value year))",
        )
        .unwrap();
        assert!(dtd.accepts(&doc));
        // Wrong format: nationalIndex with both index and value.
        let bad = parse_term("eurostat(averages(Good index(value year)) nationalIndex(country Good index(value year) value))").unwrap();
        assert!(!dtd.accepts(&bad));
        // Missing averages.
        assert!(!dtd.accepts(&parse_term("eurostat").unwrap()));
        // Wrong root.
        assert!(matches!(
            dtd.validate(&parse_term("averages(Good index(value year))").unwrap()),
            Err(SchemaError::RootMismatch { .. })
        ));
    }

    #[test]
    fn validation_error_reports_path() {
        let dtd = eurostat_dtd();
        let bad = parse_term("eurostat(averages(Good index(value)))").unwrap();
        match dtd.validate(&bad) {
            Err(SchemaError::InvalidContent { path, children, .. }) => {
                assert_eq!(path.last().unwrap().as_str(), "index");
                assert_eq!(children, vec![Symbol::new("value")]);
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
    }

    #[test]
    fn unknown_element_detection() {
        let dtd = eurostat_dtd();
        let bad = parse_term("eurostat(averages(Good index(value year)) mystery)").unwrap();
        assert!(matches!(dtd.validate(&bad), Err(SchemaError::InvalidContent { .. }) | Err(SchemaError::UnknownElement { .. })));
    }

    #[test]
    fn dual_automaton_vertical_language() {
        let dtd = eurostat_dtd();
        let dual = dtd.dual();
        let path = |s: &str| -> Vec<Symbol> { s.split_whitespace().map(Symbol::new).collect() };
        assert!(dual.accepts(&path("eurostat averages Good")));
        assert!(dual.accepts(&path("eurostat nationalIndex index value")));
        assert!(!dual.accepts(&path("eurostat Good")));
        assert!(!dual.accepts(&path("averages Good")));
        // dual accepts only paths ending at ε-admitting elements
        assert!(!dual.accepts(&path("eurostat averages")));
    }

    #[test]
    fn reduced_property_and_reduction() {
        let dtd = eurostat_dtd();
        assert!(dtd.is_reduced());
        assert!(!dtd.language_is_empty());

        // τ1 = ⟨{s1,c}, π1, s1⟩ with π1(s1)=c*, π1(c)=ε (end of §2.2.1) is reduced.
        let t1 = RDtd::parse(RFormalism::Dre, "s1 -> c*").unwrap();
        assert!(t1.is_reduced());

        // A DTD with an unsatisfiable element (a -> a) is not reduced.
        let bad = RDtd::parse(RFormalism::Nre, "s -> a | b\na -> a").unwrap();
        assert!(!bad.is_reduced());
        assert!(!bad.language_is_empty());
        let red = bad.reduce();
        assert!(red.is_reduced());
        // The reduced DTD no longer mentions `a` …
        assert!(!red.alphabet().contains(&Symbol::new("a")));
        // … and describes the same language.
        assert!(bad.equivalent_witness(&red).is_ok());

        // A DTD whose start is unsatisfiable has an empty language.
        let empty = RDtd::parse(RFormalism::Nre, "s -> s").unwrap();
        assert!(empty.language_is_empty());
        assert_eq!(empty.sample_tree(), None);
    }

    #[test]
    fn equivalence_by_content_models() {
        let a = RDtd::parse(RFormalism::Nre, "s -> a*, b\na -> c | d").unwrap();
        let b = RDtd::parse(RFormalism::Nre, "s -> a*, a*, b\na -> d | c").unwrap();
        assert!(a.equivalent(&b));
        assert!(a.equivalent_witness(&b).is_ok());
        let c = RDtd::parse(RFormalism::Nre, "s -> a+, b\na -> c | d").unwrap();
        assert!(!a.equivalent(&c));
        let (tree, in_first) = a.equivalent_witness(&c).unwrap_err();
        assert!(in_first);
        assert!(a.accepts(&tree) && !c.accepts(&tree));
    }

    #[test]
    fn equivalence_handles_unreduced_inputs() {
        // Same language, but `b` mentions a junk element that can never occur.
        let a = RDtd::parse(RFormalism::Nre, "s -> a*").unwrap();
        let b = RDtd::parse(RFormalism::Nre, "s -> a* | junk, junk\njunk -> junk").unwrap();
        assert!(a.equivalent(&b));
        assert!(a.equivalent_witness(&b).is_ok());
    }

    #[test]
    fn sample_tree_is_valid() {
        let dtd = eurostat_dtd();
        let sample = dtd.sample_tree().expect("non-empty language");
        assert!(dtd.accepts(&sample));
    }

    #[test]
    fn to_edtd_preserves_language() {
        let dtd = eurostat_dtd();
        let edtd = dtd.to_edtd();
        let doc = parse_term(
            "eurostat(averages(Good index(value year)) nationalIndex(country Good value year))",
        )
        .unwrap();
        assert!(edtd.accepts(&doc));
        assert!(dxml_tree::uta::is_equivalent(&dtd.to_nuta(), &edtd.to_nuta()));
    }

    #[test]
    fn w3c_syntax_matches_compact_syntax() {
        let w3c = RDtd::parse_w3c(
            RFormalism::Nre,
            r#"<!ELEMENT eurostat (averages, nationalIndex*)>
               <!ELEMENT averages (Good, index+)+>
               <!ELEMENT nationalIndex (country, Good, (index | (value, year)))>
               <!ELEMENT index (value, year)>
               <!ELEMENT country (#PCDATA)>
               <!ELEMENT Good (#PCDATA)>
               <!ELEMENT value (#PCDATA)>
               <!ELEMENT year (#PCDATA)>"#,
        )
        .unwrap();
        let compact = eurostat_dtd();
        assert!(w3c.equivalent(&compact));
    }
}
