//! Errors produced while parsing or validating schemas.

use std::fmt;

use dxml_automata::{AutomataError, Resource, Symbol};

/// Errors for schema construction, parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A rule or content model failed to parse.
    Parse {
        /// Line (1-based) at which the problem occurred, when known.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying automaton/regex error.
    Automata(AutomataError),
    /// The document's root label does not match the schema's start symbol.
    RootMismatch {
        /// Expected root element name.
        expected: Symbol,
        /// Actual root label.
        found: Symbol,
    },
    /// A node's children do not match its content model.
    InvalidContent {
        /// The path of labels from the root to the offending node.
        path: Vec<Symbol>,
        /// The labels of the children of the offending node.
        children: Vec<Symbol>,
        /// A rendering of the expected content model.
        expected: String,
    },
    /// A label occurs in the document but not in the schema's alphabet.
    UnknownElement {
        /// The unknown label.
        label: Symbol,
    },
    /// A schema violates a structural requirement (e.g. the single-type
    /// requirement of SDTDs, or determinism of dRE content models).
    Structural(String),
    /// A governed validation exceeded its
    /// [`Budget`](dxml_automata::Budget): a quota tripped, the wall-clock
    /// deadline passed, or a cooperative cancellation was raised. Surfaced
    /// by the `*_with_budget` entry points; the unlimited default budget
    /// never produces it.
    BudgetExceeded {
        /// The resource dimension that tripped.
        resource: Resource,
        /// The configured limit (milliseconds for deadlines; 0 for
        /// cancellations, which have no numeric limit).
        limit: u64,
        /// The amount spent when the trip was detected.
        spent: u64,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse { line, message } => write!(f, "schema parse error (line {line}): {message}"),
            SchemaError::Automata(e) => write!(f, "{e}"),
            SchemaError::RootMismatch { expected, found } => {
                write!(f, "root element is `{found}` but the schema requires `{expected}`")
            }
            SchemaError::InvalidContent { path, children, expected } => {
                let path_s: Vec<String> = path.iter().map(ToString::to_string).collect();
                let ch: Vec<String> = children.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "content of node /{} is [{}], which does not match {expected}",
                    path_s.join("/"),
                    ch.join(" ")
                )
            }
            SchemaError::UnknownElement { label } => write!(f, "element `{label}` is not declared in the schema"),
            SchemaError::Structural(msg) => write!(f, "{msg}"),
            SchemaError::BudgetExceeded { resource, limit, spent } => {
                let e = AutomataError::BudgetExceeded {
                    resource: *resource,
                    limit: *limit,
                    spent: *spent,
                };
                write!(f, "{e}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<AutomataError> for SchemaError {
    fn from(e: AutomataError) -> Self {
        // Budget trips keep their typed identity across the layer boundary
        // so callers can match on them without unwrapping `Automata`.
        match e {
            AutomataError::BudgetExceeded { resource, limit, spent } => {
                SchemaError::BudgetExceeded { resource, limit, spent }
            }
            other => SchemaError::Automata(other),
        }
    }
}
