//! Abstract XML schema languages: `R-DTD`, `R-SDTD` and `R-EDTD`.
//!
//! Section 2.2 of *Distributed XML Design* abstracts the three mainstream
//! schema languages for XML into families of tree grammars parameterised by
//! the content-model formalism `R ∈ {nFA, dFA, nRE, dRE}`:
//!
//! | W3C / OASIS language | abstraction here |
//! |---|---|
//! | W3C DTD              | [`RDtd`]  (Definition 3) — `dRE-DTD` is the closest to the standard |
//! | W3C XML Schema (XSD) | [`RSdtd`] (Definition 6) — single-type extended DTDs |
//! | Relax NG             | [`REdtd`] (Definition 7) — full unranked regular tree languages |
//!
//! The crate provides construction (from a compact rule syntax and from a
//! `<!ELEMENT …>` subset of the W3C syntax), validation of documents,
//! the `dual(τ)` vertical automaton, the *reduced* property and the reduction
//! algorithm, conversions to unranked tree automata, normalisation of EDTDs
//! (Lemma 4.10), the closure-property-based candidate constructions for
//! SDTD-/DTD-definability (Lemmas 3.5 and 3.12) and language
//! equivalence/inclusion between schemas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dtd;
pub mod edtd;
pub mod error;
pub mod sdtd;
pub mod stream;
pub mod syntax;

pub use dtd::RDtd;
pub use edtd::REdtd;
pub use error::SchemaError;
pub use sdtd::RSdtd;
pub use stream::{StreamStats, StreamValidator};

/// A convenient re-export of the schema-language discriminator used by the
/// design layer ("the paper's parameter `S`").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum SchemaLanguage {
    /// `R-DTD`s (abstraction of W3C DTDs).
    Dtd,
    /// `R-SDTD`s (abstraction of W3C XSD).
    Sdtd,
    /// `R-EDTD`s (abstraction of Relax NG / regular tree grammars).
    Edtd,
}

impl std::fmt::Display for SchemaLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchemaLanguage::Dtd => "DTD",
            SchemaLanguage::Sdtd => "SDTD",
            SchemaLanguage::Edtd => "EDTD",
        };
        write!(f, "{name}")
    }
}
