//! Parsers for the two DTD syntaxes used by the paper.
//!
//! * The **compact rule syntax** of Figures 4–6 (`name -> content model`,
//!   one rule per line, first rule names the start symbol);
//! * the `<!ELEMENT …>` subset of the **W3C DTD syntax** of Figure 3
//!   (`EMPTY` and `(#PCDATA)` declare leaf-only elements, every other
//!   content model is a regular expression over element names).
//!
//! Both parsers produce an [`RDtd`] in the requested content-model
//! formalism `R`; for `dRE` every content model must be a deterministic
//! (one-unambiguous) expression, as required by the W3C standards.

use dxml_automata::{RFormalism, RSpec, Symbol};

use crate::dtd::RDtd;
use crate::error::SchemaError;

/// Parses the compact rule syntax (`eurostat -> averages, nationalIndex*`).
///
/// Lines that are empty or start with `#` are skipped. The left-hand side of
/// the first rule is the start symbol; element names that appear only on
/// right-hand sides become leaf-only elements.
pub fn parse_dtd(formalism: RFormalism, input: &str) -> Result<RDtd, SchemaError> {
    let mut dtd: Option<RDtd> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (lhs, rhs) = split_rule(line, lineno + 1)?;
        let content = parse_content(formalism, rhs, lineno + 1)?;
        // Intern fallibly: element names come from untrusted input, and a
        // full symbol table must reject the schema, not abort the process.
        let name = Symbol::try_new(lhs)?;
        let dtd = dtd.get_or_insert_with(|| RDtd::new(formalism, name));
        if dtd.has_rule(&name) {
            return Err(SchemaError::Parse {
                line: lineno + 1,
                message: format!("duplicate rule for element `{lhs}`"),
            });
        }
        dtd.set_rule(name, content);
    }
    dtd.ok_or_else(|| SchemaError::Parse { line: 1, message: "no rules found".into() })
}

/// Splits a compact rule into `(lhs, rhs)` at `->` (or the arrow `→`).
fn split_rule(line: &str, lineno: usize) -> Result<(&str, &str), SchemaError> {
    let (lhs, rhs) = line
        .split_once("->")
        .or_else(|| line.split_once('→'))
        .ok_or_else(|| SchemaError::Parse {
            line: lineno,
            message: format!("expected `name -> content`, got `{line}`"),
        })?;
    let lhs = lhs.trim();
    if lhs.is_empty() || !lhs.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '#') {
        return Err(SchemaError::Parse {
            line: lineno,
            message: format!("invalid element name `{lhs}`"),
        });
    }
    Ok((lhs, rhs.trim()))
}

fn parse_content(formalism: RFormalism, rhs: &str, lineno: usize) -> Result<RSpec, SchemaError> {
    RSpec::parse(formalism, rhs).map_err(|e| SchemaError::Parse {
        line: lineno,
        message: format!("bad content model `{rhs}`: {e}"),
    })
}

/// Parses the `<!ELEMENT name content>` subset of the W3C DTD syntax.
///
/// Supported content specifications:
///
/// * `EMPTY` and `(#PCDATA)` — the element is leaf-only (the paper ignores
///   character data);
/// * a parenthesised content model using `,` (sequence), `|` (choice) and
///   the `?`/`*`/`+` occurrence indicators.
///
/// Comments (`<!-- … -->`) are skipped; the first declared element is the
/// start symbol. Mixed content other than pure `(#PCDATA)` and the `ANY`
/// keyword are outside the paper's abstraction and are rejected.
pub fn parse_w3c_dtd(formalism: RFormalism, input: &str) -> Result<RDtd, SchemaError> {
    let mut dtd: Option<RDtd> = None;
    let mut rest = input;
    let mut consumed = 0usize;
    while let Some(open) = rest.find('<') {
        let at = consumed + open;
        let line_of = |pos: usize| input[..pos].matches('\n').count() + 1;
        // Only whitespace may separate declarations; silently skipping
        // arbitrary text would hide typos such as a mangled `<!ELEMENT`.
        if let Some((junk_off, _)) = rest[..open].char_indices().find(|(_, c)| !c.is_whitespace()) {
            return Err(SchemaError::Parse {
                line: line_of(consumed + junk_off),
                message: format!(
                    "unexpected text `{}` between declarations",
                    rest[junk_off..open].trim()
                ),
            });
        }
        let tail = &rest[open..];
        if let Some(stripped) = tail.strip_prefix("<!--") {
            let end = stripped.find("-->").ok_or_else(|| SchemaError::Parse {
                line: line_of(at),
                message: "unterminated comment".into(),
            })?;
            consumed = at + 4 + end + 3;
            rest = &input[consumed..];
            continue;
        }
        let decl = tail.strip_prefix("<!ELEMENT").ok_or_else(|| SchemaError::Parse {
            line: line_of(at),
            message: "expected `<!ELEMENT` or a comment".into(),
        })?;
        let close = decl.find('>').ok_or_else(|| SchemaError::Parse {
            line: line_of(at),
            message: "unterminated `<!ELEMENT` declaration".into(),
        })?;
        let body = decl[..close].trim();
        let lineno = line_of(at);
        let (name, spec) = body.split_once(char::is_whitespace).ok_or_else(|| SchemaError::Parse {
            line: lineno,
            message: format!("expected `<!ELEMENT name content>`, got `{body}`"),
        })?;
        let spec = spec.trim();
        let name_sym = Symbol::try_new(name)?;
        let dtd = dtd.get_or_insert_with(|| RDtd::new(formalism, name_sym));
        if spec == "EMPTY" || is_pcdata_only(spec) {
            dtd.add_element(name_sym);
        } else if spec == "ANY" {
            return Err(SchemaError::Parse {
                line: lineno,
                message: format!("`ANY` content of `{name}` is outside the paper's abstraction"),
            });
        } else if spec.contains("#PCDATA") {
            return Err(SchemaError::Parse {
                line: lineno,
                message: format!("mixed content of `{name}` is outside the paper's abstraction"),
            });
        } else {
            if dtd.has_rule(&name_sym) {
                return Err(SchemaError::Parse {
                    line: lineno,
                    message: format!("duplicate declaration of `{name}`"),
                });
            }
            dtd.set_rule(name_sym, parse_content(formalism, spec, lineno)?);
        }
        consumed = at + "<!ELEMENT".len() + close + 1;
        rest = &input[consumed..];
    }
    if let Some((junk_off, _)) = rest.char_indices().find(|(_, c)| !c.is_whitespace()) {
        return Err(SchemaError::Parse {
            line: input[..consumed + junk_off].matches('\n').count() + 1,
            message: format!("unexpected text `{}` after the last declaration", rest[junk_off..].trim()),
        });
    }
    dtd.ok_or_else(|| SchemaError::Parse { line: 1, message: "no `<!ELEMENT` declarations found".into() })
}

/// Whether the content spec is `(#PCDATA)` modulo whitespace.
fn is_pcdata_only(spec: &str) -> bool {
    let inner = spec.trim();
    inner
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .is_some_and(|s| s.trim() == "#PCDATA")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::Symbol;
    use dxml_tree::term::parse_term;

    #[test]
    fn compact_syntax_start_and_leaves() {
        let dtd = parse_dtd(RFormalism::Nre, "s -> a, b*\na -> c?").unwrap();
        assert_eq!(dtd.start(), &Symbol::new("s"));
        assert!(dtd.alphabet().contains(&Symbol::new("c")));
        assert!(!dtd.has_rule(&Symbol::new("b")));
        assert!(dtd.accepts(&parse_term("s(a(c) b b)").unwrap()));
        assert!(!dtd.accepts(&parse_term("s(b a)").unwrap()));
    }

    #[test]
    fn compact_syntax_skips_blank_lines_and_comments() {
        let dtd = parse_dtd(RFormalism::Nre, "\n# the start rule\ns -> a*\n\n").unwrap();
        assert!(dtd.accepts(&parse_term("s(a a)").unwrap()));
    }

    #[test]
    fn compact_syntax_errors() {
        assert!(matches!(
            parse_dtd(RFormalism::Nre, "just a line"),
            Err(SchemaError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_dtd(RFormalism::Nre, "s -> a\ns -> b"),
            Err(SchemaError::Parse { line: 2, .. })
        ));
        assert!(parse_dtd(RFormalism::Nre, "").is_err());
        // dRE formalism rejects nondeterministic content models.
        assert!(parse_dtd(RFormalism::Dre, "s -> (a | b)*, a").is_err());
    }

    #[test]
    fn w3c_syntax_pcdata_and_empty() {
        let dtd = parse_w3c_dtd(
            RFormalism::Dre,
            r#"<!-- Figure 3 style -->
               <!ELEMENT s (a, b?)>
               <!ELEMENT a (#PCDATA)>
               <!ELEMENT b EMPTY>"#,
        )
        .unwrap();
        assert_eq!(dtd.start(), &Symbol::new("s"));
        assert!(dtd.accepts(&parse_term("s(a)").unwrap()));
        assert!(dtd.accepts(&parse_term("s(a b)").unwrap()));
        assert!(!dtd.accepts(&parse_term("s(b)").unwrap()));
    }

    #[test]
    fn compact_syntax_rejects_empty_content_operands() {
        // Regression: `a,,b` used to parse as `a b`, silently dropping the
        // empty operand. Same for trailing commas and empty alternation arms.
        for rhs in ["a,,b", "a,", ",a", ",,", "a | | b", "(a,)"] {
            let input = format!("s -> {rhs}");
            match parse_dtd(RFormalism::Nre, &input) {
                Err(SchemaError::Parse { line: 1, message }) => {
                    assert!(!message.is_empty(), "error for `{rhs}` must explain itself");
                }
                other => panic!("`{input}` must not parse, got {other:?}"),
            }
        }
        // `| |` as a whole content model is a leading-empty-arm error too.
        assert!(parse_dtd(RFormalism::Nre, "s -> | |").is_err());
    }

    #[test]
    fn w3c_syntax_rejects_empty_content_operands() {
        for spec in ["(a,,b)", "(a,)", "(a | | b)"] {
            let input = format!("<!ELEMENT s {spec}>");
            assert!(
                parse_w3c_dtd(RFormalism::Nre, &input).is_err(),
                "`{input}` must not parse"
            );
        }
    }

    #[test]
    fn w3c_syntax_rejects_junk_between_declarations() {
        assert!(parse_w3c_dtd(
            RFormalism::Nre,
            "<!ELEMENT s (a)> stray text <!ELEMENT a EMPTY>"
        )
        .is_err());
        assert!(parse_w3c_dtd(RFormalism::Nre, "<!ELEMENT s (a)> trailing junk").is_err());
        assert!(parse_w3c_dtd(RFormalism::Nre, "no declarations here").is_err());
        // The diagnostic names the line the junk is on, also at line starts.
        match parse_w3c_dtd(RFormalism::Nre, "<!ELEMENT s (a)>\njunk") {
            Err(SchemaError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a parse error, got {other:?}"),
        }
        match parse_w3c_dtd(RFormalism::Nre, "<!ELEMENT s (a)>\nx\n<!ELEMENT a EMPTY>") {
            Err(SchemaError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a parse error, got {other:?}"),
        }
        // Whitespace and comments between declarations stay fine.
        assert!(parse_w3c_dtd(
            RFormalism::Nre,
            "<!ELEMENT s (a)>\n  <!-- comment -->\n<!ELEMENT a EMPTY>"
        )
        .is_ok());
    }

    #[test]
    fn w3c_syntax_rejects_any_and_mixed() {
        assert!(parse_w3c_dtd(RFormalism::Nre, "<!ELEMENT s ANY>").is_err());
        assert!(parse_w3c_dtd(RFormalism::Nre, "<!ELEMENT s (#PCDATA | a)*>").is_err());
        assert!(parse_w3c_dtd(RFormalism::Nre, "<!ELEMENT s (a)").is_err());
        assert!(parse_w3c_dtd(RFormalism::Nre, "  ").is_err());
    }
}
