//! `R-EDTD`s — extended DTDs (Definition 7), the paper's abstraction of
//! Relax NG and of full unranked regular tree languages.
//!
//! An `R-EDTD` is a tuple `⟨Σ, Σ', d, s⟩`: an alphabet `Σ` of element names,
//! an alphabet `Σ'` of *specialised* names with an erasing morphism
//! `µ : Σ' → Σ` (we write `ã` for a specialisation of `a`), an `R-DTD`-style
//! rule set `d` over `Σ'` and a start name `s ∈ Σ'`. A tree over `Σ` belongs
//! to the language iff it is the `µ`-image of a tree over `Σ'` valid under
//! the rules — which makes `R-EDTD`s exactly the unranked regular tree
//! languages, operationally an [`Nuta`] whose states are the specialised
//! names.

use std::collections::BTreeMap;
use std::fmt;

use dxml_automata::{Alphabet, RFormalism, RSpec, Symbol};
use dxml_tree::{uta, Nuta, XTree};

/// An `R-EDTD` `⟨Σ, Σ', d, s⟩` (Definition 7).
#[derive(Clone)]
pub struct REdtd {
    formalism: RFormalism,
    /// The start name `s ∈ Σ'`.
    start: Symbol,
    /// The morphism `µ : Σ' → Σ` (specialised name → element name).
    mu: BTreeMap<Symbol, Symbol>,
    /// Content models over `Σ'`; specialised names without an entry are
    /// leaf-only (content `{ε}`).
    rules: BTreeMap<Symbol, RSpec>,
}

impl REdtd {
    /// Creates an EDTD whose start is the specialised name `start` with
    /// `µ(start) = start_label`.
    pub fn new(
        formalism: RFormalism,
        start: impl Into<Symbol>,
        start_label: impl Into<Symbol>,
    ) -> REdtd {
        let start = start.into();
        let mut mu = BTreeMap::new();
        mu.insert(start.clone(), start_label.into());
        REdtd { formalism, start, mu, rules: BTreeMap::new() }
    }

    /// Registers a specialised name with its underlying element name
    /// (`µ(specialized) = label`). Idempotent; re-registering with a
    /// different label replaces the mapping.
    pub fn add_specialization(&mut self, specialized: impl Into<Symbol>, label: impl Into<Symbol>) {
        self.mu.insert(specialized.into(), label.into());
    }

    /// Sets the content model of a specialised name. The content model reads
    /// specialised names; any of its symbols not yet registered defaults to
    /// its own label (`µ(ã) = ã`), which makes plain-DTD rule sets work
    /// unchanged.
    pub fn set_rule(&mut self, specialized: impl Into<Symbol>, content: RSpec) {
        let name = specialized.into();
        self.mu.entry(name.clone()).or_insert_with(|| name.clone());
        for sym in content.alphabet().iter() {
            self.mu.entry(sym.clone()).or_insert_with(|| sym.clone());
        }
        self.rules.insert(name, content);
    }

    /// The content-model formalism `R`.
    pub fn formalism(&self) -> RFormalism {
        self.formalism
    }

    /// The start name `s ∈ Σ'`.
    pub fn start(&self) -> &Symbol {
        &self.start
    }

    /// `µ(name)`, if the specialised name is registered.
    pub fn label_of(&self, specialized: &Symbol) -> Option<&Symbol> {
        self.mu.get(specialized)
    }

    /// The specialised names `Σ'`.
    pub fn specialized_names(&self) -> Alphabet {
        self.mu.keys().cloned().collect()
    }

    /// The element names `Σ` (the image of `µ`).
    pub fn labels(&self) -> Alphabet {
        self.mu.values().cloned().collect()
    }

    /// The specialised names mapped to `label`, in sorted order.
    pub fn specializations_of(&self, label: &Symbol) -> Vec<Symbol> {
        self.mu
            .iter()
            .filter(|(_, l)| *l == label)
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// The content model of a specialised name; unregistered or leaf-only
    /// names yield `{ε}`.
    pub fn content(&self, specialized: &Symbol) -> RSpec {
        self.rules
            .get(specialized)
            .cloned()
            .unwrap_or(RSpec::Nre(dxml_automata::Regex::Epsilon))
    }

    /// Iterates over the explicit rules.
    pub fn rules(&self) -> impl Iterator<Item = (&Symbol, &RSpec)> {
        self.rules.iter()
    }

    /// A size measure: number of specialised names plus the sizes of all
    /// content models.
    pub fn size(&self) -> usize {
        self.mu.len() + self.rules.values().map(RSpec::size).sum::<usize>()
    }

    // ------------------------------------------------------------------
    // Semantics via unranked tree automata
    // ------------------------------------------------------------------

    /// The EDTD as a nondeterministic unranked tree automaton: states are the
    /// specialised names, `Δ(ã, µ(ã))` is the content model of `ã`, and the
    /// start name is the only final state.
    pub fn to_nuta(&self) -> Nuta {
        let mut a = Nuta::new();
        for (spec, label) in &self.mu {
            a.set_rule(spec.clone(), label.clone(), self.content(spec).to_nfa());
        }
        a.set_final(self.start.clone());
        a
    }

    /// Whether the tree (over `Σ`) belongs to the language.
    pub fn accepts(&self, tree: &XTree) -> bool {
        self.to_nuta().accepts(tree)
    }

    /// Whether the language is empty.
    pub fn language_is_empty(&self) -> bool {
        self.to_nuta().is_empty()
    }

    /// A tree in the language, if any.
    pub fn sample_tree(&self) -> Option<XTree> {
        self.to_nuta().sample_tree()
    }

    /// Language equivalence with another EDTD (`equiv[S]`, Theorem 4.7).
    pub fn equivalent(&self, other: &REdtd) -> bool {
        uta::is_equivalent(&self.to_nuta(), &other.to_nuta())
    }

    /// Language equivalence with a distinguishing tree on failure
    /// (`true` = the tree belongs to `self` only).
    pub fn equivalent_witness(&self, other: &REdtd) -> Result<(), (XTree, bool)> {
        uta::equivalent(&self.to_nuta(), &other.to_nuta())
    }

    /// Language inclusion in another EDTD, with a counterexample tree on
    /// failure.
    pub fn included_in(&self, other: &REdtd) -> Result<(), XTree> {
        uta::included(&self.to_nuta(), &other.to_nuta())
    }
}

impl fmt::Debug for REdtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}-EDTD with start `{}`:", self.formalism, self.start)?;
        for (spec, label) in &self.mu {
            if spec == label {
                writeln!(f, "  {spec} -> {}", self.content(spec))?;
            } else {
                writeln!(f, "  {spec} [µ={label}] -> {}", self.content(spec))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for REdtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::Regex;
    use dxml_tree::term::parse_term;

    /// The classic non-DTD-definable language: `s(a(b)* a(c) a(b)*)` —
    /// exactly one of the `a` children contains `c`, the others contain `b`.
    fn one_c_edtd() -> REdtd {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("ab", "a");
        e.add_specialization("ac", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
        e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        e
    }

    #[test]
    fn specialisation_distinguishes_contexts() {
        let e = one_c_edtd();
        assert!(e.accepts(&parse_term("s(a(c))").unwrap()));
        assert!(e.accepts(&parse_term("s(a(b) a(c) a(b))").unwrap()));
        assert!(!e.accepts(&parse_term("s(a(b))").unwrap()));
        assert!(!e.accepts(&parse_term("s(a(c) a(c))").unwrap()));
        assert_eq!(e.specializations_of(&Symbol::new("a")).len(), 2);
        assert_eq!(e.label_of(&Symbol::new("ab")), Some(&Symbol::new("a")));
    }

    #[test]
    fn sample_and_emptiness() {
        let e = one_c_edtd();
        assert!(!e.language_is_empty());
        let t = e.sample_tree().unwrap();
        assert!(e.accepts(&t));

        let mut empty = REdtd::new(RFormalism::Nre, "s", "s");
        empty.set_rule("s", RSpec::Nre(Regex::sym("s")));
        assert!(empty.language_is_empty());
        assert_eq!(empty.sample_tree(), None);
    }

    #[test]
    fn equivalence_and_inclusion() {
        let e = one_c_edtd();
        // Same language written with the specialisations swapped.
        let mut f = REdtd::new(RFormalism::Nre, "s", "s");
        f.add_specialization("x", "a");
        f.add_specialization("y", "a");
        f.set_rule("s", RSpec::Nre(Regex::parse("y* x y*").unwrap()));
        f.set_rule("x", RSpec::Nre(Regex::parse("c").unwrap()));
        f.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
        assert!(e.equivalent(&f));
        assert!(e.equivalent_witness(&f).is_ok());

        // A superset: any number of c-children.
        let mut g = REdtd::new(RFormalism::Nre, "s", "s");
        g.add_specialization("ab", "a");
        g.add_specialization("ac", "a");
        g.set_rule("s", RSpec::Nre(Regex::parse("(ab | ac)*").unwrap()));
        g.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        g.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        assert!(e.included_in(&g).is_ok());
        let witness = g.included_in(&e).unwrap_err();
        assert!(g.accepts(&witness) && !e.accepts(&witness));
        assert!(!g.equivalent(&e));
    }

    #[test]
    fn size_is_positive() {
        assert!(one_c_edtd().size() > 5);
    }
}
