//! `R-EDTD`s — extended DTDs (Definition 7), the paper's abstraction of
//! Relax NG and of full unranked regular tree languages.
//!
//! An `R-EDTD` is a tuple `⟨Σ, Σ', d, s⟩`: an alphabet `Σ` of element names,
//! an alphabet `Σ'` of *specialised* names with an erasing morphism
//! `µ : Σ' → Σ` (we write `ã` for a specialisation of `a`), an `R-DTD`-style
//! rule set `d` over `Σ'` and a start name `s ∈ Σ'`. A tree over `Σ` belongs
//! to the language iff it is the `µ`-image of a tree over `Σ'` valid under
//! the rules — which makes `R-EDTD`s exactly the unranked regular tree
//! languages, operationally an [`Nuta`] whose states are the specialised
//! names.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dxml_automata::{Alphabet, Nfa, RFormalism, RSpec, Symbol};
use dxml_tree::{uta, Nuta, XTree};

use crate::error::SchemaError;

/// An `R-EDTD` `⟨Σ, Σ', d, s⟩` (Definition 7).
#[derive(Clone)]
pub struct REdtd {
    formalism: RFormalism,
    /// The start name `s ∈ Σ'`.
    start: Symbol,
    /// The morphism `µ : Σ' → Σ` (specialised name → element name).
    mu: BTreeMap<Symbol, Symbol>,
    /// Content models over `Σ'`; specialised names without an entry are
    /// leaf-only (content `{ε}`).
    rules: BTreeMap<Symbol, RSpec>,
}

impl REdtd {
    /// Creates an EDTD whose start is the specialised name `start` with
    /// `µ(start) = start_label`.
    pub fn new(
        formalism: RFormalism,
        start: impl Into<Symbol>,
        start_label: impl Into<Symbol>,
    ) -> REdtd {
        let start = start.into();
        let mut mu = BTreeMap::new();
        mu.insert(start, start_label.into());
        REdtd { formalism, start, mu, rules: BTreeMap::new() }
    }

    /// Registers a specialised name with its underlying element name
    /// (`µ(specialized) = label`). Idempotent; re-registering with a
    /// different label replaces the mapping.
    pub fn add_specialization(&mut self, specialized: impl Into<Symbol>, label: impl Into<Symbol>) {
        self.mu.insert(specialized.into(), label.into());
    }

    /// Sets the content model of a specialised name. The content model reads
    /// specialised names; any of its symbols not yet registered defaults to
    /// its own label (`µ(ã) = ã`), which makes plain-DTD rule sets work
    /// unchanged.
    pub fn set_rule(&mut self, specialized: impl Into<Symbol>, content: RSpec) {
        let name = specialized.into();
        self.mu.entry(name).or_insert_with(|| name);
        for sym in content.alphabet().iter() {
            self.mu.entry(*sym).or_insert_with(|| *sym);
        }
        self.rules.insert(name, content);
    }

    /// The content-model formalism `R`.
    pub fn formalism(&self) -> RFormalism {
        self.formalism
    }

    /// The start name `s ∈ Σ'`.
    pub fn start(&self) -> &Symbol {
        &self.start
    }

    /// `µ(name)`, if the specialised name is registered.
    pub fn label_of(&self, specialized: &Symbol) -> Option<&Symbol> {
        self.mu.get(specialized)
    }

    /// The specialised names `Σ'`.
    pub fn specialized_names(&self) -> Alphabet {
        self.mu.keys().cloned().collect()
    }

    /// The element names `Σ` (the image of `µ`).
    pub fn labels(&self) -> Alphabet {
        self.mu.values().cloned().collect()
    }

    /// The specialised names mapped to `label`, in sorted order.
    pub fn specializations_of(&self, label: &Symbol) -> Vec<Symbol> {
        self.mu
            .iter()
            .filter(|(_, l)| *l == label)
            .map(|(s, _)| *s)
            .collect()
    }

    /// The content model of a specialised name; unregistered or leaf-only
    /// names yield `{ε}`.
    pub fn content(&self, specialized: &Symbol) -> RSpec {
        self.rules
            .get(specialized)
            .cloned()
            .unwrap_or(RSpec::Nre(dxml_automata::Regex::Epsilon))
    }

    /// The explicit content rule of a specialised name, by reference
    /// (`None` for leaf-only names). The non-cloning sibling of
    /// [`REdtd::content`], for callers that only read the rule.
    pub fn rule(&self, specialized: &Symbol) -> Option<&RSpec> {
        self.rules.get(specialized)
    }

    /// Iterates over the explicit rules.
    pub fn rules(&self) -> impl Iterator<Item = (&Symbol, &RSpec)> {
        self.rules.iter()
    }

    /// A size measure: number of specialised names plus the sizes of all
    /// content models.
    pub fn size(&self) -> usize {
        self.mu.len() + self.rules.values().map(RSpec::size).sum::<usize>()
    }

    // ------------------------------------------------------------------
    // Semantics via unranked tree automata
    // ------------------------------------------------------------------

    /// The EDTD as a nondeterministic unranked tree automaton: states are the
    /// specialised names, `Δ(ã, µ(ã))` is the content model of `ã`, and the
    /// start name is the only final state.
    pub fn to_nuta(&self) -> Nuta {
        let mut a = Nuta::new();
        for (spec, label) in &self.mu {
            let content = match self.rules.get(spec) {
                Some(rule) => rule.to_nfa(),
                None => Nfa::epsilon(),
            };
            a.set_rule(*spec, *label, content);
        }
        a.set_final(self.start);
        a
    }

    /// Whether the tree (over `Σ`) belongs to the language.
    pub fn accepts(&self, tree: &XTree) -> bool {
        self.to_nuta().accepts(tree)
    }

    /// Validates a tree, explaining the rejection: unlike [`REdtd::accepts`]
    /// this reports *where* the typing breaks down — the first node (in
    /// document order) that admits no specialised type although all of its
    /// children do, or a root whose admissible types miss the start name.
    pub fn validate(&self, tree: &XTree) -> Result<(), SchemaError> {
        let nuta = self.to_nuta();
        let possible = nuta.run(tree);
        if possible[tree.root()].contains(&self.start) {
            return Ok(());
        }
        if let Some(expected) = self.label_of(&self.start) {
            if tree.root_label() != expected {
                return Err(SchemaError::RootMismatch {
                    expected: *expected,
                    found: *tree.root_label(),
                });
            }
        }
        let labels = self.labels();
        for node in tree.document_order() {
            if !possible[node].is_empty() {
                continue;
            }
            if tree.children(node).iter().any(|&c| possible[c].is_empty()) {
                continue; // blame the deepest untypable descendant instead
            }
            let label = tree.label(node);
            if !labels.contains(label) {
                return Err(SchemaError::UnknownElement { label: *label });
            }
            let expected: Vec<String> = self
                .specializations_of(label)
                .iter()
                .map(|s| format!("{s} -> {}", self.content(s)))
                .collect();
            return Err(SchemaError::InvalidContent {
                path: tree.anc_str(node),
                children: tree.child_str(node),
                expected: expected.join("  |  "),
            });
        }
        // Every node is typable, but the root types miss the start name.
        let admitted: Vec<String> =
            possible[tree.root()].iter().map(ToString::to_string).collect();
        Err(SchemaError::Structural(format!(
            "the root admits specialised types [{}] but not the start `{}`",
            admitted.join(", "),
            self.start
        )))
    }

    /// Whether the language is empty.
    pub fn language_is_empty(&self) -> bool {
        self.to_nuta().is_empty()
    }

    /// A tree in the language, if any.
    pub fn sample_tree(&self) -> Option<XTree> {
        self.to_nuta().sample_tree()
    }

    /// Language equivalence with another EDTD (`equiv[S]`, Theorem 4.7).
    pub fn equivalent(&self, other: &REdtd) -> bool {
        uta::is_equivalent(&self.to_nuta(), &other.to_nuta())
    }

    /// Language equivalence with a distinguishing tree on failure
    /// (`true` = the tree belongs to `self` only).
    pub fn equivalent_witness(&self, other: &REdtd) -> Result<(), (XTree, bool)> {
        uta::equivalent(&self.to_nuta(), &other.to_nuta())
    }

    /// Language inclusion in another EDTD, with a counterexample tree on
    /// failure.
    pub fn included_in(&self, other: &REdtd) -> Result<(), XTree> {
        uta::included(&self.to_nuta(), &other.to_nuta())
    }

    // ------------------------------------------------------------------
    // Normal form (Lemma 4.10)
    // ------------------------------------------------------------------

    /// Whether the EDTD is in the *normal form* of Lemma 4.10: distinct
    /// specialised names (of the same label) have pairwise disjoint tree
    /// languages, so every tree admits at most one typing. The start name is
    /// exempt — [`REdtd::normalize`] may introduce a start that aliases the
    /// union of several root types, which cannot be avoided with a single
    /// start symbol.
    ///
    /// Operationally: every reachable subset state of the determinised
    /// specialised target contains at most one non-start name.
    pub fn is_normal(&self) -> bool {
        let duta = self.to_nuta().determinize(&self.labels());
        duta.subsets()
            .iter()
            .all(|s| s.iter().filter(|q| **q != self.start).count() <= 1)
    }

    /// The normal form of the EDTD (Lemma 4.10): an equivalent EDTD whose
    /// specialised names are the inhabited `(label, subset state)` pairs of
    /// the *determinised* specialised target, so that every tree has exactly
    /// one typing (up to the start alias). The construction is the
    /// tree-automaton analogue of the subset construction and can be
    /// exponential, exactly as the lemma announces.
    ///
    /// The name of the pair `(a, i)` is `a~i` ([`Symbol::specialize`]); when
    /// several root types are accepting, a fresh start `a~start` aliases
    /// their union (it occurs in no content model).
    pub fn normalize(&self) -> REdtd {
        let duta = self.to_nuta().determinize(&self.labels());
        let pairs = duta.inhabited_label_states();
        // Placeholder alphabet for the machine letters, expanded afterwards
        // to every inhabited pair carrying that subset state. `#` cannot
        // occur in parsed element names, so placeholders never collide.
        let placeholder = |i: usize| Symbol::new(format!("#q{i}"));
        let mut slots: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
        for (label, states) in &pairs {
            for &i in states {
                slots
                    .entry(placeholder(i))
                    .or_default()
                    .insert(label.specialize(i));
            }
        }
        let root_label = self
            .label_of(&self.start)
            .cloned()
            .unwrap_or(self.start);
        let accepting: Vec<usize> = pairs
            .get(&root_label)
            .map(|states| states.iter().copied().filter(|&i| duta.is_final(i)).collect())
            .unwrap_or_default();
        let content_of = |label: &Symbol, i: usize| -> Nfa {
            duta.content_nfa(i, label, placeholder)
                .expand_symbols(&slots)
                .trim()
        };
        // Start: the unique accepting pair if there is one; otherwise a
        // fresh alias for the union of the accepting pairs (possibly none —
        // the empty language keeps an unsatisfiable start).
        let mut out = match accepting.as_slice() {
            [i] => REdtd::new(RFormalism::Nfa, root_label.specialize(*i), root_label),
            many => {
                let alias = Symbol::new(format!("{root_label}~start"));
                let mut e = REdtd::new(RFormalism::Nfa, alias, root_label);
                let union = many
                    .iter()
                    .map(|&i| content_of(&root_label, i))
                    .fold(Nfa::empty(), |acc, nfa| acc.union(&nfa));
                e.set_rule(alias, RSpec::Nfa(union.trim()));
                e
            }
        };
        for (label, states) in &pairs {
            for &i in states {
                let name = label.specialize(i);
                out.add_specialization(name, *label);
                out.set_rule(name, RSpec::Nfa(content_of(label, i)));
            }
        }
        out
    }
}

impl fmt::Debug for REdtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}-EDTD with start `{}`:", self.formalism, self.start)?;
        for (spec, label) in &self.mu {
            if spec == label {
                writeln!(f, "  {spec} -> {}", self.content(spec))?;
            } else {
                writeln!(f, "  {spec} [µ={label}] -> {}", self.content(spec))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for REdtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::Regex;
    use dxml_tree::term::parse_term;

    /// The classic non-DTD-definable language: `s(a(b)* a(c) a(b)*)` —
    /// exactly one of the `a` children contains `c`, the others contain `b`.
    fn one_c_edtd() -> REdtd {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("ab", "a");
        e.add_specialization("ac", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
        e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        e
    }

    #[test]
    fn specialisation_distinguishes_contexts() {
        let e = one_c_edtd();
        assert!(e.accepts(&parse_term("s(a(c))").unwrap()));
        assert!(e.accepts(&parse_term("s(a(b) a(c) a(b))").unwrap()));
        assert!(!e.accepts(&parse_term("s(a(b))").unwrap()));
        assert!(!e.accepts(&parse_term("s(a(c) a(c))").unwrap()));
        assert_eq!(e.specializations_of(&Symbol::new("a")).len(), 2);
        assert_eq!(e.label_of(&Symbol::new("ab")), Some(&Symbol::new("a")));
    }

    #[test]
    fn sample_and_emptiness() {
        let e = one_c_edtd();
        assert!(!e.language_is_empty());
        let t = e.sample_tree().unwrap();
        assert!(e.accepts(&t));

        let mut empty = REdtd::new(RFormalism::Nre, "s", "s");
        empty.set_rule("s", RSpec::Nre(Regex::sym("s")));
        assert!(empty.language_is_empty());
        assert_eq!(empty.sample_tree(), None);
    }

    #[test]
    fn equivalence_and_inclusion() {
        let e = one_c_edtd();
        // Same language written with the specialisations swapped.
        let mut f = REdtd::new(RFormalism::Nre, "s", "s");
        f.add_specialization("x", "a");
        f.add_specialization("y", "a");
        f.set_rule("s", RSpec::Nre(Regex::parse("y* x y*").unwrap()));
        f.set_rule("x", RSpec::Nre(Regex::parse("c").unwrap()));
        f.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
        assert!(e.equivalent(&f));
        assert!(e.equivalent_witness(&f).is_ok());

        // A superset: any number of c-children.
        let mut g = REdtd::new(RFormalism::Nre, "s", "s");
        g.add_specialization("ab", "a");
        g.add_specialization("ac", "a");
        g.set_rule("s", RSpec::Nre(Regex::parse("(ab | ac)*").unwrap()));
        g.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        g.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        assert!(e.included_in(&g).is_ok());
        let witness = g.included_in(&e).unwrap_err();
        assert!(g.accepts(&witness) && !e.accepts(&witness));
        assert!(!g.equivalent(&e));
    }

    #[test]
    fn size_is_positive() {
        assert!(one_c_edtd().size() > 5);
    }

    #[test]
    fn validate_explains_rejections() {
        let e = one_c_edtd();
        assert!(e.validate(&parse_term("s(a(b) a(c))").unwrap()).is_ok());
        // Wrong root label.
        assert!(matches!(
            e.validate(&parse_term("t(a(c))").unwrap()),
            Err(SchemaError::RootMismatch { .. })
        ));
        // An `a` whose content matches no specialisation.
        match e.validate(&parse_term("s(a(b c) a(c))").unwrap()) {
            Err(SchemaError::InvalidContent { path, children, expected }) => {
                assert_eq!(path.last().unwrap().as_str(), "a");
                assert_eq!(children.len(), 2);
                assert!(expected.contains("ab") && expected.contains("ac"), "{expected}");
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
        // Unknown element.
        assert!(matches!(
            e.validate(&parse_term("s(a(c) zz)").unwrap()),
            Err(SchemaError::UnknownElement { .. })
        ));
        // Every node typable but the root word matches no start content:
        // two c-specialisations.
        match e.validate(&parse_term("s(a(c) a(c))").unwrap()) {
            Err(SchemaError::InvalidContent { path, .. }) => {
                assert_eq!(path, vec![Symbol::new("s")]);
            }
            other => panic!("expected InvalidContent at the root, got {other:?}"),
        }
    }

    #[test]
    fn normalization_preserves_the_language() {
        for e in [one_c_edtd(), {
            // A deliberately ambiguous EDTD: x and y overlap on b-leaves.
            let mut e = REdtd::new(RFormalism::Nre, "s", "s");
            e.add_specialization("x", "a");
            e.add_specialization("y", "a");
            e.set_rule("s", RSpec::Nre(Regex::parse("x y").unwrap()));
            e.set_rule("x", RSpec::Nre(Regex::parse("b*").unwrap()));
            e.set_rule("y", RSpec::Nre(Regex::parse("b | c").unwrap()));
            e
        }] {
            let n = e.normalize();
            assert!(e.equivalent(&n), "normalisation changed the language of {e}");
            assert!(n.is_normal(), "normal form is not normal: {n}");
        }
        // The ambiguous EDTD is not normal to begin with.
        let e = {
            let mut e = REdtd::new(RFormalism::Nre, "s", "s");
            e.add_specialization("x", "a");
            e.add_specialization("y", "a");
            e.set_rule("s", RSpec::Nre(Regex::parse("x y").unwrap()));
            e.set_rule("x", RSpec::Nre(Regex::parse("b*").unwrap()));
            e.set_rule("y", RSpec::Nre(Regex::parse("b | c").unwrap()));
            e
        };
        assert!(!e.is_normal());
    }

    #[test]
    fn normalization_of_empty_and_dtd_like_languages() {
        // Empty language: the normal form is empty too.
        let mut empty = REdtd::new(RFormalism::Nre, "s", "s");
        empty.set_rule("s", RSpec::Nre(Regex::sym("s")));
        let n = empty.normalize();
        assert!(n.language_is_empty());
        // A trivial (DTD-like) EDTD stays equivalent and normal.
        let mut plain = REdtd::new(RFormalism::Nre, "s", "s");
        plain.set_rule("s", RSpec::Nre(Regex::parse("a*").unwrap()));
        let np = plain.normalize();
        assert!(plain.equivalent(&np));
        assert!(np.is_normal());
        assert!(np.accepts(&parse_term("s(a a)").unwrap()));
    }
}
