//! `R-SDTD`s — single-type extended DTDs (Definition 6), the paper's
//! abstraction of W3C XML Schema.
//!
//! An `R-SDTD` is an `R-EDTD` with the *single-type* restriction: in each
//! content model, no two distinct specialisations `ã, ã'` of the same element
//! name occur. The restriction makes typing deterministic: the specialised
//! name of a node is a function of its label and its parent's specialised
//! name, so validation proceeds top-down in a single pass
//! ([`RSdtd::validate`]) instead of via the nondeterministic bottom-up run of
//! general EDTDs.

use std::collections::BTreeMap;
use std::fmt;

use dxml_automata::{RFormalism, RSpec, Symbol};
use dxml_tree::{Nuta, XTree};

use crate::edtd::REdtd;
use crate::error::SchemaError;

/// An `R-SDTD`: an [`REdtd`] satisfying the single-type restriction.
#[derive(Clone)]
pub struct RSdtd {
    edtd: REdtd,
}

impl RSdtd {
    /// Wraps an EDTD, verifying the single-type restriction.
    pub fn from_edtd(edtd: REdtd) -> Result<RSdtd, SchemaError> {
        for (name, content) in edtd.rules() {
            let mut seen: BTreeMap<Symbol, Symbol> = BTreeMap::new();
            for spec in content.alphabet().iter() {
                let label = edtd.label_of(spec).cloned().unwrap_or(*spec);
                if let Some(other) = seen.get(&label) {
                    if other != spec {
                        return Err(SchemaError::Structural(format!(
                            "single-type violation in the content of `{name}`: both `{other}` \
                             and `{spec}` specialise element `{label}`"
                        )));
                    }
                }
                seen.insert(label, *spec);
            }
        }
        Ok(RSdtd { edtd })
    }

    /// Parses the compact rule syntax where left-hand sides are specialised
    /// names written `a~i` (as produced by [`Symbol::specialize`]); a plain
    /// name is its own specialisation. The first rule names the start.
    ///
    /// ```text
    /// s -> natA~1, natB~2*
    /// natA~1 -> country
    /// natB~2 -> country, year
    /// ```
    pub fn parse(formalism: RFormalism, input: &str) -> Result<RSdtd, SchemaError> {
        let mut edtd: Option<REdtd> = None;
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (lhs, rhs) = line.split_once("->").ok_or_else(|| SchemaError::Parse {
                line: lineno + 1,
                message: format!("expected `name -> content`, got `{line}`"),
            })?;
            let lhs = Symbol::new(lhs.trim());
            let content = RSpec::parse(formalism, rhs.trim()).map_err(|e| SchemaError::Parse {
                line: lineno + 1,
                message: format!("bad content model: {e}"),
            })?;
            let edtd = edtd.get_or_insert_with(|| {
                REdtd::new(formalism, lhs, lhs.base_name())
            });
            edtd.add_specialization(lhs, lhs.base_name());
            for sym in content.alphabet().iter() {
                edtd.add_specialization(*sym, sym.base_name());
            }
            edtd.set_rule(lhs, content);
        }
        let edtd = edtd.ok_or(SchemaError::Parse { line: 1, message: "no rules found".into() })?;
        RSdtd::from_edtd(edtd)
    }

    /// The underlying EDTD.
    pub fn as_edtd(&self) -> &REdtd {
        &self.edtd
    }

    /// Converts into the underlying EDTD.
    pub fn to_edtd(&self) -> REdtd {
        self.edtd.clone()
    }

    /// The content-model formalism `R`.
    pub fn formalism(&self) -> RFormalism {
        self.edtd.formalism()
    }

    /// The start name.
    pub fn start(&self) -> &Symbol {
        self.edtd.start()
    }

    /// A size measure (see [`REdtd::size`]).
    pub fn size(&self) -> usize {
        self.edtd.size()
    }

    /// The automaton semantics (see [`REdtd::to_nuta`]).
    pub fn to_nuta(&self) -> Nuta {
        self.edtd.to_nuta()
    }

    /// Top-down single-pass validation, exploiting the single-type property:
    /// the specialised name of each node is determined by its label and its
    /// parent's specialised name. Returns the first violation in document
    /// order.
    pub fn validate(&self, tree: &XTree) -> Result<(), SchemaError> {
        let start = self.edtd.start();
        let root_label = self.edtd.label_of(start).cloned().unwrap_or(*start);
        if tree.root_label() != &root_label {
            return Err(SchemaError::RootMismatch {
                expected: root_label,
                found: *tree.root_label(),
            });
        }
        // types[node] = the unique specialised name assignable to the node.
        // The per-specialisation child map (child label → the unique
        // specialisation in the content model) is loop-invariant; build it
        // once per specialisation, not once per node.
        let mut types: Vec<Symbol> = vec![*start; tree.size()];
        let mut maps: BTreeMap<Symbol, (RSpec, BTreeMap<Symbol, Symbol>)> = BTreeMap::new();
        for node in tree.document_order() {
            let spec = types[node];
            let (content, by_label) = maps.entry(spec).or_insert_with(|| {
                let content = self.edtd.content(&spec);
                let mut by_label: BTreeMap<Symbol, Symbol> = BTreeMap::new();
                for sym in content.alphabet().iter() {
                    let label = self.edtd.label_of(sym).cloned().unwrap_or(*sym);
                    by_label.insert(label, *sym);
                }
                (content, by_label)
            });
            let mut child_word: Vec<Symbol> = Vec::with_capacity(tree.children(node).len());
            for &child in tree.children(node) {
                let label = tree.label(child);
                match by_label.get(label) {
                    Some(child_spec) => {
                        types[child] = *child_spec;
                        child_word.push(*child_spec);
                    }
                    None => {
                        return Err(SchemaError::InvalidContent {
                            path: tree.anc_str(node),
                            children: tree.child_str(node),
                            expected: format!("{content}"),
                        });
                    }
                }
            }
            if !content.accepts(&child_word) {
                return Err(SchemaError::InvalidContent {
                    path: tree.anc_str(node),
                    children: tree.child_str(node),
                    expected: format!("{content}"),
                });
            }
        }
        Ok(())
    }

    /// One-pass *streaming* validation of an XML string: types the document
    /// while it is parsed, in memory proportional to the nesting depth, never
    /// materialising the tree. The verdict and the error value agree exactly
    /// with `parse_xml` followed by [`RSdtd::validate`] on every input.
    ///
    /// This convenience constructor rebuilds the per-specialisation DFAs on
    /// each call; to validate many documents, build one
    /// [`StreamValidator`](crate::stream::StreamValidator) and reuse it.
    pub fn validate_stream(&self, input: &str) -> Result<(), SchemaError> {
        crate::stream::StreamValidator::new(self).validate(input)
    }

    /// Governed variant of [`RSdtd::validate_stream`]: charges the budget
    /// per SAX event and per element, honours its depth limit, and surfaces
    /// [`SchemaError::BudgetExceeded`] when a quota, the deadline or a
    /// cancellation trips.
    pub fn validate_stream_with_budget(
        &self,
        input: &str,
        budget: &dxml_automata::Budget,
    ) -> Result<(), SchemaError> {
        crate::stream::StreamValidator::new(self).validate_with_budget(input, budget)
    }

    /// Whether the tree belongs to the language.
    pub fn accepts(&self, tree: &XTree) -> bool {
        self.validate(tree).is_ok()
    }

    /// A tree in the language, if any.
    pub fn sample_tree(&self) -> Option<XTree> {
        self.edtd.sample_tree()
    }

    /// Language equivalence with another SDTD.
    pub fn equivalent(&self, other: &RSdtd) -> bool {
        self.edtd.equivalent(&other.edtd)
    }
}

impl fmt::Debug for RSdtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "single-type {:?}", self.edtd)
    }
}

impl fmt::Display for RSdtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::Regex;
    use dxml_tree::term::parse_term;

    /// Paper-style SDTD: under the root, `nat` elements have one shape; under
    /// `archive`, `nat` elements have another — allowed because the two
    /// specialisations occur in *different* content models.
    fn sdtd() -> RSdtd {
        RSdtd::parse(
            RFormalism::Nre,
            "s -> nat~1*, archive?\n\
             archive -> nat~2*\n\
             nat~1 -> country, year\n\
             nat~2 -> country",
        )
        .unwrap()
    }

    #[test]
    fn context_dependent_shapes() {
        let s = sdtd();
        assert!(s.accepts(&parse_term("s(nat(country year) archive(nat(country)))").unwrap()));
        assert!(s.accepts(&parse_term("s").unwrap()));
        // A top-level nat must have the `nat~1` shape.
        assert!(!s.accepts(&parse_term("s(nat(country))").unwrap()));
        // An archived nat must have the `nat~2` shape.
        assert!(!s.accepts(&parse_term("s(archive(nat(country year)))").unwrap()));
    }

    #[test]
    fn validate_reports_paths() {
        let s = sdtd();
        match s.validate(&parse_term("s(nat(country))").unwrap()) {
            Err(SchemaError::InvalidContent { path, .. }) => {
                assert_eq!(path.last().unwrap().as_str(), "nat");
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
        assert!(matches!(
            s.validate(&parse_term("t").unwrap()),
            Err(SchemaError::RootMismatch { .. })
        ));
        // Unknown child label.
        assert!(s.validate(&parse_term("s(mystery)").unwrap()).is_err());
    }

    #[test]
    fn top_down_validation_agrees_with_automaton() {
        let s = sdtd();
        let nuta = s.to_nuta();
        for src in [
            "s",
            "s(nat(country year))",
            "s(nat(country year) archive)",
            "s(archive(nat(country) nat(country)))",
            "s(nat(country))",
            "s(archive(nat(country year)))",
            "s(nat(country year) nat(country year) archive(nat(country)))",
            "nat(country)",
        ] {
            let t = parse_term(src).unwrap();
            assert_eq!(s.accepts(&t), nuta.accepts(&t), "tree {src}");
        }
    }

    #[test]
    fn single_type_violation_is_rejected() {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("a1", "a");
        e.add_specialization("a2", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("a1, a2").unwrap()));
        assert!(matches!(RSdtd::from_edtd(e), Err(SchemaError::Structural(_))));

        // The same two specialisations in different content models are fine.
        let mut ok = REdtd::new(RFormalism::Nre, "s", "s");
        ok.add_specialization("a1", "a");
        ok.add_specialization("a2", "a");
        ok.set_rule("s", RSpec::Nre(Regex::parse("a1, b").unwrap()));
        ok.set_rule("b", RSpec::Nre(Regex::parse("a2").unwrap()));
        assert!(RSdtd::from_edtd(ok).is_ok());
    }

    #[test]
    fn every_dtd_is_an_sdtd() {
        let dtd = crate::RDtd::parse(RFormalism::Nre, "s -> a*, b\na -> c?").unwrap();
        let sdtd = RSdtd::from_edtd(dtd.to_edtd()).unwrap();
        let t = parse_term("s(a(c) a b)").unwrap();
        assert!(sdtd.accepts(&t) && dtd.accepts(&t));
        let bad = parse_term("s(b a)").unwrap();
        assert!(!sdtd.accepts(&bad) && !dtd.accepts(&bad));
    }
}
