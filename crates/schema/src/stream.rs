//! One-pass streaming validation for `R-SDTD`s.
//!
//! The single-type restriction (Definition 6) makes the specialised name of a
//! node a function of its label and its parent's specialised name, so an
//! [`RSdtd`] can type a document top-down while the document is *parsed*,
//! without ever materialising the tree. [`StreamValidator`] consumes the
//! [`SaxEvent`] stream of [`dxml_tree::sax`] with a stack of
//! (specialised name, content-model DFA state) frames — memory proportional
//! to the open-element chain, not to the document.
//!
//! The verdict — and the error value, byte for byte — agrees with the
//! materialising route `parse_xml` + [`RSdtd::validate`] on *every* input
//! string, malformed ones included. The tree route reports the first
//! violating node in document (pre)order; a streaming pass can detect a
//! *later* node's violation first (an ancestor's content model may only fail
//! at its closing tag, after a descendant has already failed). The validator
//! therefore holds one pending violation and lets it be superseded by frames
//! still open on the stack. Two invariants make this sound:
//!
//! * once a violation is pending, new frames are pushed untyped (`Skip`), so
//!   every `Typed` frame still on the stack is a strict ancestor of the
//!   pending node — i.e. *earlier* in preorder, always entitled to supersede;
//! * among open ancestors, violations surface innermost-first (a frame only
//!   steps when it is on top), so each supersession moves the pending node
//!   strictly earlier in preorder and the preorder-minimum wins.
//!
//! A violated frame keeps collecting the labels of its direct children until
//! it closes, because [`SchemaError::InvalidContent`] reports the node's full
//! `child-str`, including children after the offending one.

use std::collections::{BTreeMap, BTreeSet};

use dxml_automata::nfa::StateId;
use dxml_automata::{Budget, Dfa, Symbol};
use dxml_telemetry as telemetry;
use dxml_tree::sax::{SaxEvent, SaxParser, DEFAULT_DEPTH_LIMIT};

use crate::error::SchemaError;
use crate::sdtd::RSdtd;

/// Per-specialisation machinery, prebuilt once so that validating a document
/// costs one DFA transition per element: the content model determinised, the
/// label → specialisation map of the single-type property, and the rendered
/// content model for error messages.
struct SpecInfo {
    dfa: Dfa,
    by_label: BTreeMap<Symbol, Symbol>,
    expected: String,
}

/// Statistics from one streaming validation run, for benchmarks and memory
/// accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Deepest element nesting seen by the parser.
    pub peak_depth: usize,
    /// Largest number of child labels buffered across all open frames at any
    /// one time (the only per-width state, kept for error parity with the
    /// tree route).
    pub peak_buffered: usize,
}

/// A reusable streaming validator for one [`RSdtd`].
///
/// Construction determinises every content model once; the validator itself
/// is immutable and can be shared across threads to validate many documents
/// concurrently (see `dxml_core`'s batch front end).
pub struct StreamValidator {
    root_label: Symbol,
    start: Symbol,
    specs: BTreeMap<Symbol, SpecInfo>,
}

/// One open element during the streaming run.
enum Frame {
    /// A normally-typed element: its label, specialised name, current DFA
    /// state in the parent content model of its children, and the child
    /// labels seen so far (needed verbatim if this frame turns out violated).
    Typed { label: Symbol, spec: Symbol, state: StateId, children: Vec<Symbol> },
    /// The current pending violation's node, still open: collects the rest of
    /// its direct children so the error can report the full `child-str`.
    Violated { path: Vec<Symbol>, children: Vec<Symbol>, expected: String },
    /// An element whose verdict cannot matter any more (inside a violated
    /// subtree, or opened after a violation was pending).
    Skip,
}

impl StreamValidator {
    /// Prebuilds the streaming machinery for a schema.
    pub fn new(sdtd: &RSdtd) -> StreamValidator {
        let edtd = sdtd.as_edtd();
        let start = *edtd.start();
        let root_label = edtd.label_of(&start).copied().unwrap_or(start);
        let mut names: BTreeSet<Symbol> = BTreeSet::new();
        names.insert(start);
        names.extend(edtd.specialized_names().iter().copied());
        for (lhs, content) in edtd.rules() {
            names.insert(*lhs);
            names.extend(content.alphabet().iter().copied());
        }
        let mut specs = BTreeMap::new();
        for spec in names {
            let content = edtd.content(&spec);
            let mut by_label: BTreeMap<Symbol, Symbol> = BTreeMap::new();
            for sym in content.alphabet().iter() {
                let label = edtd.label_of(sym).copied().unwrap_or(*sym);
                by_label.insert(label, *sym);
            }
            specs.insert(
                spec,
                SpecInfo {
                    dfa: Dfa::from_nfa(&content.to_nfa()),
                    by_label,
                    expected: format!("{content}"),
                },
            );
        }
        StreamValidator { root_label, start, specs }
    }

    /// Validates a document given as an XML string, in one streaming pass.
    pub fn validate(&self, input: &str) -> Result<(), SchemaError> {
        self.validate_with_stats(input).0
    }

    /// Governed variant of [`StreamValidator::validate`]: one budget step is
    /// charged per SAX event, one node per element opened, and the budget's
    /// depth limit (when set) replaces the parser's
    /// [`DEFAULT_DEPTH_LIMIT`] — the budget trips first with a typed
    /// [`SchemaError::BudgetExceeded`] so depth overruns are attributable to
    /// the quota rather than to a parse error.
    pub fn validate_with_budget(&self, input: &str, budget: &Budget) -> Result<(), SchemaError> {
        self.validate_impl(input, budget).0
    }

    /// [`StreamValidator::validate`], also reporting peak depth and buffer
    /// use of the run.
    pub fn validate_with_stats(&self, input: &str) -> (Result<(), SchemaError>, StreamStats) {
        self.validate_impl(input, &Budget::unlimited())
    }

    fn validate_impl(&self, input: &str, budget: &Budget) -> (Result<(), SchemaError>, StreamStats) {
        let _span = telemetry::span(telemetry::SpanKind::ValidateStream);
        // The parser's own guard sits one past the budget's depth limit so a
        // depth overrun surfaces as a typed budget trip, not a parse error.
        let parser_limit = budget
            .depth_limit()
            .map_or(DEFAULT_DEPTH_LIMIT, |l| l.saturating_add(1));
        let mut parser = SaxParser::with_depth_limit(input, parser_limit);
        let mut frames: Vec<Frame> = Vec::new();
        let mut pending: Option<SchemaError> = None;
        let mut buffered = 0usize;
        let mut stats = StreamStats::default();
        // Event tally kept local and flushed once per document, so the
        // per-event loop carries no atomic traffic.
        let mut events: u64 = 0;
        // An expired deadline or a pre-raised cancellation trips before any
        // parsing happens.
        if let Err(trip) = budget.check_interrupts() {
            return (Err(trip.into()), stats);
        }
        loop {
            let event = match parser.next_event() {
                Ok(Some(event)) => event,
                Ok(None) => break,
                // A parse error preempts any schema verdict, exactly as in
                // the parse-then-validate composition.
                Err(e) => {
                    stats.peak_depth = parser.peak_depth();
                    flush_stream_telemetry(events, stats.peak_depth, true);
                    return (Err(SchemaError::Automata(e)), stats);
                }
            };
            events += 1;
            let charge = budget.step().and_then(|()| match &event {
                SaxEvent::Open(_) => {
                    budget.grow_nodes(1)?;
                    budget.check_depth(frames.len() + 1)
                }
                SaxEvent::Close => Ok(()),
            });
            if let Err(trip) = charge {
                stats.peak_depth = parser.peak_depth();
                flush_stream_telemetry(events, stats.peak_depth, true);
                return (Err(trip.into()), stats);
            }
            match event {
                SaxEvent::Open(label) => {
                    enum Act {
                        PushTyped(Symbol),
                        PushSkip,
                        ViolateTop,
                    }
                    let act = match frames.last_mut() {
                        None => {
                            if label == self.root_label {
                                Act::PushTyped(self.start)
                            } else {
                                pending = Some(SchemaError::RootMismatch {
                                    expected: self.root_label,
                                    found: label,
                                });
                                Act::PushSkip
                            }
                        }
                        Some(Frame::Skip) => Act::PushSkip,
                        Some(Frame::Violated { children, .. }) => {
                            children.push(label);
                            buffered += 1;
                            Act::PushSkip
                        }
                        Some(Frame::Typed { spec, state, children, .. }) => {
                            children.push(label);
                            buffered += 1;
                            let info = &self.specs[spec];
                            match info.by_label.get(&label) {
                                Some(child_spec) => match info.dfa.delta(*state, child_spec) {
                                    Some(next) => {
                                        *state = next;
                                        Act::PushTyped(*child_spec)
                                    }
                                    None => Act::ViolateTop,
                                },
                                None => Act::ViolateTop,
                            }
                        }
                    };
                    stats.peak_buffered = stats.peak_buffered.max(buffered);
                    match act {
                        Act::PushSkip => frames.push(Frame::Skip),
                        Act::PushTyped(spec) if pending.is_none() => {
                            let state = self.specs[&spec].dfa.start();
                            frames.push(Frame::Typed { label, spec, state, children: Vec::new() });
                        }
                        // A violation is already pending and this element is
                        // later in preorder: its parent's DFA was stepped
                        // (the parent, an open ancestor, may still violate),
                        // but its own subtree cannot change the verdict.
                        Act::PushTyped(_) => frames.push(Frame::Skip),
                        Act::ViolateTop => {
                            // The top frame is Typed, hence a strict ancestor
                            // of any pending node: it supersedes. Its frame
                            // becomes the collector for its remaining
                            // children; the child just opened is skipped.
                            pending = None;
                            let top = frames.len() - 1;
                            let mut path: Vec<Symbol> = frames[..top]
                                .iter()
                                .map(|f| match f {
                                    Frame::Typed { label, .. } => *label,
                                    _ => unreachable!("frames under a typed frame are typed"),
                                })
                                .collect();
                            let (label, spec, children) = match std::mem::replace(&mut frames[top], Frame::Skip) {
                                Frame::Typed { label, spec, children, .. } => (label, spec, children),
                                _ => unreachable!("ViolateTop fires on a typed top frame"),
                            };
                            path.push(label);
                            frames[top] = Frame::Violated {
                                path,
                                children,
                                expected: self.specs[&spec].expected.clone(),
                            };
                            frames.push(Frame::Skip);
                        }
                    }
                }
                SaxEvent::Close => {
                    match frames.pop().expect("parser balances open/close events") {
                        Frame::Skip => {}
                        Frame::Violated { path, children, expected } => {
                            buffered -= children.len();
                            pending =
                                Some(SchemaError::InvalidContent { path, children, expected });
                        }
                        Frame::Typed { label, spec, state, children } => {
                            buffered -= children.len();
                            let info = &self.specs[&spec];
                            if !info.dfa.is_final(state) {
                                // This frame is a strict ancestor of any
                                // pending node, so it supersedes; its child
                                // list is complete, so the error is final.
                                let mut path: Vec<Symbol> = frames
                                    .iter()
                                    .map(|f| match f {
                                        Frame::Typed { label, .. } => *label,
                                        _ => unreachable!("frames under a typed frame are typed"),
                                    })
                                    .collect();
                                path.push(label);
                                pending = Some(SchemaError::InvalidContent {
                                    path,
                                    children,
                                    expected: info.expected.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        stats.peak_depth = parser.peak_depth();
        flush_stream_telemetry(events, stats.peak_depth, pending.is_some());
        (pending.map_or(Ok(()), Err), stats)
    }
}

/// One document's worth of streaming telemetry, flushed at end of run.
fn flush_stream_telemetry(events: u64, peak_depth: usize, violated: bool) {
    telemetry::count(telemetry::Metric::StreamDocs, 1);
    telemetry::count(telemetry::Metric::StreamEvents, events);
    if violated {
        telemetry::count(telemetry::Metric::StreamViolations, 1);
    }
    telemetry::observe(telemetry::Hist::StreamDocEvents, events);
    telemetry::observe(telemetry::Hist::StreamDocDepth, peak_depth as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::RFormalism;
    use dxml_tree::xml::{parse_xml, to_xml};

    fn sdtd() -> RSdtd {
        RSdtd::parse(
            RFormalism::Nre,
            "s -> nat~1*, archive?\n\
             archive -> nat~2*\n\
             nat~1 -> country, year\n\
             nat~2 -> country",
        )
        .unwrap()
    }

    fn tree_route(s: &RSdtd, input: &str) -> Result<(), SchemaError> {
        parse_xml(input)
            .map_err(SchemaError::from)
            .and_then(|t| s.validate(&t))
    }

    #[test]
    fn agrees_with_tree_route_on_curated_documents() {
        let s = sdtd();
        let v = StreamValidator::new(&s);
        for doc in [
            "<s/>",
            "<s><nat><country/><year/></nat></s>",
            "<s><nat><country/><year/></nat><archive><nat><country/></nat></archive></s>",
            "<s><nat><country/></nat></s>",
            "<s><archive><nat><country/><year/></nat></archive></s>",
            "<s><mystery/></s>",
            "<t/>",
            "<s><nat><country/><year/><year/></nat></s>",
            "<s><archive/><archive/></s>",
            "<s><nat/></s>",
            "not xml at all",
            "<s><nat>",
            "<s></t>",
            "",
        ] {
            assert_eq!(v.validate(doc), tree_route(&s, doc), "doc {doc:?}");
        }
    }

    #[test]
    fn ancestor_violation_supersedes_descendant_violation() {
        // The inner `nat` is wrong (detected first by the stream), but the
        // tree route blames `s` itself: `mystery` is not in s's content
        // model, and s precedes nat in preorder. The streaming error must
        // match, down to the full child list of `s`.
        let s = sdtd();
        let v = StreamValidator::new(&s);
        let doc = "<s><nat><country/></nat><mystery/></s>";
        let stream = v.validate(doc).unwrap_err();
        let tree = tree_route(&s, doc).unwrap_err();
        assert_eq!(stream, tree);
        match stream {
            SchemaError::InvalidContent { path, children, .. } => {
                assert_eq!(path.len(), 1, "error blames the root");
                assert_eq!(children.len(), 2, "full child-str is reported");
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
    }

    #[test]
    fn close_time_violation_supersedes_descendant_violation() {
        let s = RSdtd::parse(
            RFormalism::Nre,
            "s -> a\n\
             a -> b, c\n\
             b -> d",
        )
        .unwrap();
        let v = StreamValidator::new(&s);
        // b's content is wrong (d missing → detected at b's close), and a's
        // content is also wrong (c missing → detected at a's close, later).
        // The tree route blames a (preorder parent first).
        let doc = "<s><a><b/></a></s>";
        assert_eq!(v.validate(doc), tree_route(&s, doc));
        match v.validate(doc).unwrap_err() {
            SchemaError::InvalidContent { path, .. } => {
                assert_eq!(path.last().unwrap().as_str(), "a");
            }
            other => panic!("expected InvalidContent, got {other:?}"),
        }
    }

    #[test]
    fn validates_hundred_thousand_deep_document() {
        // Streaming: O(depth) frames, no recursion, no tree.
        let s = RSdtd::parse(RFormalism::Nre, "a -> a?").unwrap();
        let v = StreamValidator::new(&s);
        let depth = 100_000;
        let doc = format!("{}{}", "<a>".repeat(depth), "</a>".repeat(depth));
        let (verdict, stats) = v.validate_with_stats(&doc);
        assert!(verdict.is_ok());
        assert_eq!(stats.peak_depth, depth);
        assert_eq!(stats.peak_buffered, depth - 1);
    }

    #[test]
    fn stats_report_peaks() {
        let s = sdtd();
        let v = StreamValidator::new(&s);
        let doc = "<s><nat><country/><year/></nat></s>";
        let (verdict, stats) = v.validate_with_stats(doc);
        assert!(verdict.is_ok());
        assert_eq!(stats.peak_depth, 3);
        // At peak, s buffers [nat] and nat buffers [country year].
        assert_eq!(stats.peak_buffered, 3);
    }

    #[test]
    fn roundtrip_of_sample_trees_validates() {
        let s = sdtd();
        let v = StreamValidator::new(&s);
        let t = s.sample_tree().unwrap();
        assert_eq!(v.validate(&to_xml(&t)), Ok(()));
    }
}
