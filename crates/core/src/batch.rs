//! Batch streaming validation: many documents, one schema, all cores.
//!
//! A [`StreamValidator`] is immutable after construction, so a batch of
//! documents fans out over [`std::thread::scope`] workers that share one
//! validator (the per-specialisation DFAs are built exactly once). Work is
//! handed out through an atomic cursor so one pathological document does not
//! serialise the rest behind it, and the verdicts are returned in the input
//! order regardless of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};

use dxml_schema::{RSdtd, SchemaError, StreamValidator};
use dxml_telemetry as telemetry;

/// Validates every document of a batch against `sdtd` with one streaming
/// pass each, in parallel. `verdicts[i]` is the verdict for `documents[i]`,
/// identical to what [`RSdtd::validate_stream`] returns for it alone.
///
/// A panic in any worker propagates to the caller.
pub fn validate_batch<S: AsRef<str> + Sync>(
    sdtd: &RSdtd,
    documents: &[S],
) -> Vec<Result<(), SchemaError>> {
    let _span = telemetry::span(telemetry::SpanKind::ValidateBatch);
    let validator = StreamValidator::new(sdtd);
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(documents.len());
    telemetry::count(telemetry::Metric::BatchRuns, 1);
    telemetry::count(telemetry::Metric::BatchWorkers, workers.max(1) as u64);
    if workers <= 1 {
        telemetry::count(telemetry::Metric::BatchDocs, documents.len() as u64);
        telemetry::observe(telemetry::Hist::BatchWorkerDocs, documents.len() as u64);
        return documents.iter().map(|d| validator.validate(d.as_ref())).collect();
    }
    // A worker's even share of the batch; anything claimed beyond it was
    // effectively stolen from a slower neighbour.
    let even_share = (documents.len() / workers) as u64;
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut verdicts = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(doc) = documents.get(i) else { break };
                        verdicts.push((i, validator.validate(doc.as_ref())));
                    }
                    let taken = verdicts.len() as u64;
                    telemetry::count(telemetry::Metric::BatchDocs, taken);
                    telemetry::count(telemetry::Metric::BatchSteals, taken.saturating_sub(even_share));
                    telemetry::observe(telemetry::Hist::BatchWorkerDocs, taken);
                    verdicts
                })
            })
            .collect();
        let mut out: Vec<Result<(), SchemaError>> = vec![Ok(()); documents.len()];
        for handle in handles {
            for (i, verdict) in handle.join().expect("batch validation worker panicked") {
                out[i] = verdict;
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::RFormalism;

    fn sdtd() -> RSdtd {
        RSdtd::parse(RFormalism::Nre, "s -> a*, b\na -> c?").unwrap()
    }

    #[test]
    fn batch_agrees_with_sequential_and_preserves_order() {
        let s = sdtd();
        let docs: Vec<String> = (0..64)
            .map(|i| match i % 4 {
                0 => "<s><a><c/></a><b/></s>".to_string(),
                1 => "<s><b/><a/></s>".to_string(),
                2 => "<s><a><b/></a></s>".to_string(),
                _ => "<s><a>".to_string(),
            })
            .collect();
        let batch = validate_batch(&s, &docs);
        assert_eq!(batch.len(), docs.len());
        for (doc, verdict) in docs.iter().zip(&batch) {
            assert_eq!(verdict, &s.validate_stream(doc), "doc {doc:?}");
        }
        assert!(batch[0].is_ok());
        assert!(batch[1].is_err());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let s = sdtd();
        assert!(validate_batch(&s, &[] as &[&str]).is_empty());
        assert_eq!(validate_batch(&s, &["<s><b/></s>"]), vec![Ok(())]);
    }
}
