//! Batch streaming validation: many documents, one schema, all cores.
//!
//! A [`StreamValidator`] is immutable after construction, so a batch of
//! documents fans out over [`std::thread::scope`] workers that share one
//! validator (the per-specialisation DFAs are built exactly once). Work is
//! handed out through an atomic cursor so one pathological document does not
//! serialise the rest behind it, and the verdicts are returned in the input
//! order regardless of completion order.
//!
//! # Fault isolation
//!
//! Each document is validated under [`std::panic::catch_unwind`]: a panic
//! while validating one document becomes a [`SchemaError::Structural`]
//! verdict *for that document* and the rest of the batch completes normally.
//! Only a panic outside the per-document region (a broken invariant of the
//! harness itself) propagates to the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use dxml_automata::limits::faults;
use dxml_automata::Budget;
use dxml_schema::{RSdtd, SchemaError, StreamValidator};
use dxml_telemetry as telemetry;

/// Validates every document of a batch against `sdtd` with one streaming
/// pass each, in parallel. `verdicts[i]` is the verdict for `documents[i]`,
/// identical to what [`RSdtd::validate_stream`] returns for it alone.
///
/// A panic while validating one document yields an error verdict for that
/// document only; the rest of the batch completes.
pub fn validate_batch<S: AsRef<str> + Sync>(
    sdtd: &RSdtd,
    documents: &[S],
) -> Vec<Result<(), SchemaError>> {
    validate_batch_with_budget(sdtd, documents, &Budget::unlimited())
}

/// Governed variant of [`validate_batch`]: all workers share the same budget
/// (quotas are pooled across the batch, a deadline or cancellation stops
/// every worker at its next check), and each verdict surfaces
/// [`SchemaError::BudgetExceeded`] once the budget trips. Documents
/// validated before the trip keep their real verdicts.
///
/// # Panics
///
/// Panics if a validation worker itself panicked — only possible through
/// the fault injector (`fault::arm_worker_panic`); per-document panics are
/// otherwise caught and surfaced as verdicts.
pub fn validate_batch_with_budget<S: AsRef<str> + Sync>(
    sdtd: &RSdtd,
    documents: &[S],
    budget: &Budget,
) -> Vec<Result<(), SchemaError>> {
    let _span = telemetry::span(telemetry::SpanKind::ValidateBatch);
    let validator = StreamValidator::new(sdtd);
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(documents.len());
    telemetry::count(telemetry::Metric::BatchRuns, 1);
    telemetry::count(telemetry::Metric::BatchWorkers, workers.max(1) as u64);
    if workers <= 1 {
        telemetry::count(telemetry::Metric::BatchDocs, documents.len() as u64);
        telemetry::observe(telemetry::Hist::BatchWorkerDocs, documents.len() as u64);
        return documents
            .iter()
            .enumerate()
            .map(|(i, d)| validate_one(&validator, i, d.as_ref(), budget))
            .collect();
    }
    // A worker's even share of the batch; anything claimed beyond it was
    // effectively stolen from a slower neighbour.
    let even_share = (documents.len() / workers) as u64;
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut verdicts = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(doc) = documents.get(i) else { break };
                        verdicts.push((i, validate_one(&validator, i, doc.as_ref(), budget)));
                    }
                    let taken = verdicts.len() as u64;
                    telemetry::count(telemetry::Metric::BatchDocs, taken);
                    telemetry::count(telemetry::Metric::BatchSteals, taken.saturating_sub(even_share));
                    telemetry::observe(telemetry::Hist::BatchWorkerDocs, taken);
                    verdicts
                })
            })
            .collect();
        let mut out: Vec<Result<(), SchemaError>> = vec![Ok(()); documents.len()];
        for handle in handles {
            // The per-document region is unwind-isolated, so a worker join
            // only fails on a harness bug — that one still propagates.
            for (i, verdict) in handle.join().expect("batch validation worker panicked") {
                out[i] = verdict;
            }
        }
        out
    })
}

/// Validates one document behind an unwind barrier: a panic (including an
/// injected one from [`faults::arm_worker_panic`]) is converted into an
/// error verdict for this document alone.
fn validate_one(
    validator: &StreamValidator,
    index: usize,
    doc: &str,
    budget: &Budget,
) -> Result<(), SchemaError> {
    catch_unwind(AssertUnwindSafe(|| {
        faults::maybe_inject_worker_panic(index);
        validator.validate_with_budget(doc, budget)
    }))
    .unwrap_or_else(|_| {
        Err(SchemaError::Structural(format!(
            "validation of document {index} panicked; verdict unavailable"
        )))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::RFormalism;

    fn sdtd() -> RSdtd {
        RSdtd::parse(RFormalism::Nre, "s -> a*, b\na -> c?").unwrap()
    }

    #[test]
    fn batch_agrees_with_sequential_and_preserves_order() {
        let s = sdtd();
        let docs: Vec<String> = (0..64)
            .map(|i| match i % 4 {
                0 => "<s><a><c/></a><b/></s>".to_string(),
                1 => "<s><b/><a/></s>".to_string(),
                2 => "<s><a><b/></a></s>".to_string(),
                _ => "<s><a>".to_string(),
            })
            .collect();
        let batch = validate_batch(&s, &docs);
        assert_eq!(batch.len(), docs.len());
        for (doc, verdict) in docs.iter().zip(&batch) {
            assert_eq!(verdict, &s.validate_stream(doc), "doc {doc:?}");
        }
        assert!(batch[0].is_ok());
        assert!(batch[1].is_err());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let s = sdtd();
        assert!(validate_batch(&s, &[] as &[&str]).is_empty());
        assert_eq!(validate_batch(&s, &["<s><b/></s>"]), vec![Ok(())]);
    }
}
