//! Box-design subsystem: the design problems for **R-EDTD targets**
//! (Section 7).
//!
//! [`crate::DesignProblem`] decides typing verification against DTD targets,
//! where validation is per-node-local and the string-level fast path only
//! needs plain words. Section 7 of the paper lifts every design problem to
//! full R-EDTD targets (unranked regular tree languages) by reducing the
//! tree problems to string problems whose constant parts are *boxes*
//! `B(fn)` ([`BoxLang`], Definition 21): with the target in the normal form
//! of Lemma 4.10 — operationally, its bottom-up **determinised** specialised
//! automaton — every kernel subtree evaluates to a unique subset of
//! specialised names, so a sequence of fixed kernel children contributes a
//! box `Σ1 Σ2 … Σn` of specialised names, and every docking point
//! contributes a regular gap language over the same specialised alphabet.
//!
//! [`BoxDesignProblem`] packages an [`REdtd`] target with one [`REdtd`]
//! schema per function (DTD schemas embed through [`RDtd::to_edtd`]) and
//! offers the same three decision procedures as the DTD layer:
//!
//! * [`BoxDesignProblem::typecheck`] — the ground-truth tree-automaton
//!   route: extension automaton vs. determinised target, with a full
//!   counterexample document on failure;
//! * [`BoxDesignProblem::verify_local`] — the Section-7 string route: a
//!   single bottom-up pass over the kernel computing, per node, the set of
//!   achievable subset states from the words-with-box-gaps language of its
//!   children (Moore-machine image, [`Duta::outputs_over`]); sound **and**
//!   complete because the determinised run is unique, with the offending
//!   realizable child word reported as a box;
//! * [`BoxDesignProblem::perfect_schema`] — perfect typing for EDTD
//!   targets: the admissible gap language is propagated top-down along the
//!   spine from the root to the docking parent by universal context
//!   residuals over the per-label Moore machines, and the resulting maximal
//!   schema is itself an [`REdtd`] (one specialised name per inhabited
//!   `(label, subset state)` pair) — which a DTD could not express. The
//!   candidate is confirmed by the [`BoxDesignProblem::typecheck`] oracle in
//!   the refute-and-refine style of [`crate::perfect`].
//!
//! All target- and schema-derived artefacts (the determinised specialised
//! target, the per-function gap languages over subset states) are built
//! lazily once per problem in a [`BoxTargetCache`] behind an `OnceLock`,
//! mirroring [`crate::design::TargetCache`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use dxml_automata::{AutomataError, BoxLang, Budget, Dfa, Nfa, RFormalism, RSpec, StateSet, Symbol};
use dxml_schema::{RDtd, REdtd};
use dxml_telemetry as telemetry;
use dxml_tree::uta::Duta;
use dxml_tree::{uta, NodeId, Nuta};

use crate::design::{CacheStats, Origin, ResidualDfaCache, TypingVerdict};
use crate::doc::DistributedDoc;
use crate::error::DesignError;

/// The symbol standing for the determinised target's subset state `i` in
/// the string languages of the reduction (`#` cannot occur in parsed
/// element names, so these never collide with real labels).
fn state_sym(i: usize) -> Symbol {
    Symbol::new(format!("#s{i}"))
}

/// The inverse of [`state_sym`].
fn letter_of(sym: &Symbol) -> Option<usize> {
    sym.as_str().strip_prefix("#s").and_then(|t| t.parse().ok())
}

/// An NFA accepting exactly the single-symbol words of a subset-state set
/// (one box slot of the reduction).
fn state_set_nfa(states: &StateSet) -> Nfa {
    Nfa::any_of(states.iter().map(state_sym))
}

/// The deterministic *skeleton* of a per-label Moore machine over
/// subset-state symbols: its transitions, no final states. The machine is
/// deterministic by construction, so this is already a [`Dfa`] — the
/// residual constructions consume it directly, with the per-call admissible
/// outputs marked final on a clone (see [`BoxTargetCache::machine_dfa`]).
fn machine_skeleton(duta: &Duta, label: &Symbol) -> Dfa {
    let machine = match duta.machine(label) {
        Some(m) => m,
        None => return Dfa::new(1, 0),
    };
    let mut dfa = Dfa::new(machine.num_configs(), machine.start());
    for (config, letter, next) in machine.transitions() {
        dfa.set_transition(config, state_sym(letter), next);
    }
    dfa
}

// ----------------------------------------------------------------------
// Cached artefacts
// ----------------------------------------------------------------------

/// Per-function artefacts of the box reduction: which trees the function can
/// realize, expressed in the determinised target's subset states.
#[derive(Clone, Debug)]
struct FunArtifacts {
    /// The gap language: the exact image of the function's forest language
    /// under the tree → subset-state evaluation, as an NFA over
    /// [`state_sym`] symbols.
    forest_states: Nfa,
    /// Whether the function can return no document at all (empty schema
    /// language — the design is vacuous).
    forest_empty: bool,
    /// A realizable element label unknown to the target, if any (every
    /// extension is then invalid no matter the kernel).
    unknown: Option<Symbol>,
}

impl FunArtifacts {
    fn build(schema: &REdtd, duta: &Duta, budget: &Budget) -> Result<FunArtifacts, AutomataError> {
        let nuta = schema.to_nuta();
        let inhabited = nuta.inhabited_witnesses();
        let restrict =
            |nfa: Nfa| nfa.filter_symbols(|s| inhabited.contains_key(s)).trim();
        // Realizable specialised names: reachable from the start content
        // through content models restricted to inhabited names — after the
        // restriction every remaining transition lies on a realizable word,
        // so reachability is occurrence-exact (the analogue of
        // `RDtd::reduce`).
        let forest_restricted = restrict(schema.content(schema.start()).to_nfa());
        let mut realizable: BTreeSet<Symbol> = forest_restricted.alphabet().iter().cloned().collect();
        let mut contents: BTreeMap<Symbol, Nfa> = BTreeMap::new();
        let mut queue: VecDeque<Symbol> = realizable.iter().cloned().collect();
        while let Some(spec) = queue.pop_front() {
            let content = restrict(schema.content(&spec).to_nfa());
            for next in content.alphabet().iter() {
                if realizable.insert(*next) {
                    queue.push_back(*next);
                }
            }
            contents.insert(spec, content);
        }
        let forest_empty = forest_restricted.is_empty();
        let label_of = |spec: &Symbol| {
            schema.label_of(spec).cloned().unwrap_or(*spec)
        };
        let unknown = realizable
            .iter()
            .map(&label_of)
            .find(|label| !duta.labels().contains(label));

        // Least fixpoint: `d[ã]` = the subset states achievable by trees
        // derivable from ã. Exact by induction — independent subtrees make
        // independent state choices, so the image of a content word is the
        // full product of the per-name sets. The slot map (ã → its states
        // as symbols) is the same data seen by `expand_symbols`; it grows
        // monotonically with `d`, so it is maintained incrementally instead
        // of being rebuilt from `d` on every fixpoint iteration.
        let universe = duta.num_states();
        let mut d: BTreeMap<Symbol, StateSet> =
            realizable.iter().map(|s| (*s, StateSet::empty(universe))).collect();
        let mut slots: BTreeMap<Symbol, BTreeSet<Symbol>> =
            realizable.iter().map(|s| (*s, BTreeSet::new())).collect();
        if unknown.is_none() && !forest_empty {
            loop {
                let mut changed = false;
                for spec in &realizable {
                    budget.step()?;
                    let word_lang = contents[spec].expand_symbols(&slots);
                    let outs =
                        duta.outputs_over_with_budget(&label_of(spec), &word_lang, letter_of, budget)?;
                    let entry = d.get_mut(spec).expect("d covers every realizable name");
                    let slot = slots.get_mut(spec).expect("slots covers every realizable name");
                    for &o in outs.keys() {
                        if entry.insert(o) {
                            slot.insert(state_sym(o));
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        let forest_states = forest_restricted.expand_symbols(&slots).trim();
        Ok(FunArtifacts { forest_states, forest_empty, unknown })
    }
}

/// Builds the per-function artefacts, fanning the independent fixpoints out
/// over [`std::thread::scope`] workers. Each function's `D`-fixpoint only
/// reads the shared determinised target, so the builds are embarrassingly
/// parallel; the offline (per-problem, once) cost dominates cold decisions
/// on many-function designs. Work is handed out through an atomic cursor so
/// an expensive schema does not serialise the cheap ones behind it, and the
/// results land in a `BTreeMap`, making the output independent of
/// completion order.
///
/// A budget trip in one worker stops that worker after its current build;
/// the shared budget makes every sibling trip at its own next check, and the
/// first trip is what the caller sees. A genuine panic in a worker is
/// re-raised on the calling thread with its original payload.
fn build_fun_artifacts(
    fun_schemas: &BTreeMap<Symbol, REdtd>,
    duta: &Duta,
    budget: &Budget,
) -> Result<BTreeMap<Symbol, FunArtifacts>, AutomataError> {
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(fun_schemas.len());
    if workers <= 1 {
        return fun_schemas
            .iter()
            .map(|(f, schema)| FunArtifacts::build(schema, duta, budget).map(|a| (*f, a)))
            .collect();
    }
    let entries: Vec<(&Symbol, &REdtd)> = fun_schemas.iter().collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut built = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(f, schema)) = entries.get(i) else { break };
                        let artifacts = FunArtifacts::build(schema, duta, budget);
                        let tripped = artifacts.is_err();
                        built.push((*f, artifacts));
                        if tripped {
                            break;
                        }
                    }
                    built
                })
            })
            .collect();
        let mut out = BTreeMap::new();
        let mut first_trip: Option<AutomataError> = None;
        for handle in handles {
            match handle.join() {
                Ok(built) => {
                    for (f, artifacts) in built {
                        match artifacts {
                            Ok(a) => {
                                out.insert(f, a);
                            }
                            Err(e) => {
                                if first_trip.is_none() {
                                    first_trip = Some(e);
                                }
                            }
                        }
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        first_trip.map_or(Ok(out), Err)
    })
}

/// Problem artefacts of a [`BoxDesignProblem`] that are expensive to build
/// and independent of the document being checked: the determinised
/// specialised target and the per-function gap languages. Computed lazily
/// on the first decision and shared by every subsequent
/// [`BoxDesignProblem::typecheck`], [`BoxDesignProblem::verify_local`] and
/// [`BoxDesignProblem::perfect_schema`] call; mutating the problem
/// invalidates it.
#[derive(Clone, Debug)]
pub struct BoxTargetCache {
    duta: Duta,
    accepting: StateSet,
    empty_subset: Option<usize>,
    funs: BTreeMap<Symbol, FunArtifacts>,
    /// Determinised per-label Moore-machine skeletons, keyed by label —
    /// the residual inputs of the spine walk, built at most once per label.
    machine_dfas: ResidualDfaCache,
}

impl BoxTargetCache {
    fn build(target: &REdtd, fun_schemas: &BTreeMap<Symbol, REdtd>) -> BoxTargetCache {
        BoxTargetCache::build_with(target, fun_schemas, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// Governed cache build: the target determinisation and every
    /// per-function `D`-fixpoint charge `budget`. A trip aborts the build
    /// and caches nothing.
    fn build_with(
        target: &REdtd,
        fun_schemas: &BTreeMap<Symbol, REdtd>,
        budget: &Budget,
    ) -> Result<BoxTargetCache, AutomataError> {
        let _span = telemetry::span(telemetry::SpanKind::BoxTargetCacheBuild);
        telemetry::count(telemetry::Metric::BoxTargetCacheBuilds, 1);
        let duta = target.to_nuta().determinize_with_budget(&target.labels(), budget)?;
        let accepting = StateSet::from_iter(duta.num_states(), duta.accepting_states());
        let empty_subset = duta.empty_subset();
        let funs = build_fun_artifacts(fun_schemas, &duta, budget)?;
        Ok(BoxTargetCache {
            duta,
            accepting,
            empty_subset,
            funs,
            machine_dfas: ResidualDfaCache::default(),
        })
    }

    /// The determinised skeleton of `label`'s Moore machine (transitions
    /// over subset-state symbols, no finals), memoised per problem. Callers
    /// clone it and mark their admissible outputs final — the clone is
    /// cheap next to the subset construction it replaces.
    fn machine_dfa(&self, label: &Symbol) -> Arc<Dfa> {
        self.machine_dfas.get_or_build(label, || machine_skeleton(&self.duta, label))
    }

    /// The language of child words whose Moore output under `label` lies in
    /// `outputs`, as a DFA over subset-state symbols: the memoised skeleton
    /// with the admissible configurations marked final.
    fn admissible_children_dfa(&self, label: &Symbol, outputs: &StateSet) -> Dfa {
        let mut dfa = (*self.machine_dfa(label)).clone();
        if let Some(machine) = self.duta.machine(label) {
            for config in 0..machine.num_configs() {
                if outputs.contains(machine.output(config)) {
                    dfa.set_final(config);
                }
            }
        }
        dfa
    }

    /// Residual-memo misses and hits so far (backs
    /// [`BoxDesignProblem::cache_stats`]).
    pub(crate) fn residual_stats(&self) -> (u64, u64) {
        self.machine_dfas.stats()
    }

    /// The target's specialised tree automaton, determinised (bottom-up)
    /// over the target's label universe. Its subset states are the slots of
    /// the kernel boxes.
    pub fn duta(&self) -> &Duta {
        &self.duta
    }

    /// The gap language of a declared function: the exact image of its
    /// forest language under tree → subset-state evaluation, over
    /// `#s<i>` state symbols. Exposed so tests and benches can pin that
    /// repeated decisions reuse it.
    pub fn forest_states(&self, function: &Symbol) -> Option<&Nfa> {
        self.funs.get(function).map(|fa| &fa.forest_states)
    }
}

// ----------------------------------------------------------------------
// Verdicts
// ----------------------------------------------------------------------

/// A violation found by the box (string-level) typing check of an EDTD
/// target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoxViolation {
    /// An element name can occur in some extension but is not part of the
    /// target's label universe.
    UnknownElement {
        /// The undeclared element name.
        element: Symbol,
        /// Where the element comes from.
        origin: Origin,
    },
    /// A realizable child word of `element` breaks the typing: rendered as
    /// a box whose slots are the exact sets of specialised types the
    /// children can take.
    Content {
        /// The element whose children break the typing.
        element: Symbol,
        /// A shortest realizable child word, as a box of specialised-name
        /// sets.
        counterexample: BoxLang,
        /// The specialised types the element still admits under that child
        /// word — empty when no typing exists at all; non-empty (at the
        /// root) when types exist but the start name is not among them.
        admitted: Vec<Symbol>,
        /// Where the bad word can be realised.
        origin: Origin,
    },
}

impl fmt::Display for BoxViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let origin = |o: &Origin| match o {
            Origin::Kernel { path } => {
                let p: Vec<&str> = path.iter().map(Symbol::as_str).collect();
                format!("kernel node /{}", p.join("/"))
            }
            Origin::Function { function } => format!("documents returned by `{function}`"),
        };
        match self {
            BoxViolation::UnknownElement { element, origin: o } => {
                write!(f, "element `{element}` ({}) is not declared in the target schema", origin(o))
            }
            BoxViolation::Content { element, counterexample, admitted, origin: o } => {
                if admitted.is_empty() {
                    write!(
                        f,
                        "children ⟨{counterexample}⟩ of `{element}` ({}) are realizable but admit \
                         no typing under the target",
                        origin(o)
                    )
                } else {
                    let names: Vec<&str> = admitted.iter().map(Symbol::as_str).collect();
                    write!(
                        f,
                        "children ⟨{counterexample}⟩ of `{element}` ({}) type the node as \
                         [{}], which does not include the start name",
                        origin(o),
                        names.join(", ")
                    )
                }
            }
        }
    }
}

/// The outcome of the box typing check.
#[derive(Clone, Debug)]
pub enum BoxVerdict {
    /// All achievable subset states are admissible; every extension
    /// validates against the EDTD target.
    Valid,
    /// A realizable violation exists.
    Invalid(BoxViolation),
}

impl BoxVerdict {
    /// Whether the verdict is [`BoxVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, BoxVerdict::Valid)
    }
}

// ----------------------------------------------------------------------
// The problem
// ----------------------------------------------------------------------

/// A typing-verification instance with an **R-EDTD target**: the target
/// schema `τ` plus one R-EDTD schema per function symbol. The EDTD analogue
/// of [`crate::DesignProblem`] — DTD targets embed through
/// [`RDtd::to_edtd`] / [`From<&DesignProblem>`](BoxDesignProblem::from) and
/// produce identical verdicts (asserted by the test suite).
#[derive(Clone)]
pub struct BoxDesignProblem {
    doc_schema: REdtd,
    fun_schemas: BTreeMap<Symbol, REdtd>,
    target: OnceLock<BoxTargetCache>,
}

impl fmt::Debug for BoxDesignProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoxDesignProblem")
            .field("doc_schema", &self.doc_schema)
            .field("fun_schemas", &self.fun_schemas)
            .field("target_cache_ready", &self.target_cache_ready())
            .finish()
    }
}

impl From<&crate::DesignProblem> for BoxDesignProblem {
    /// Embeds a DTD design problem as a box design problem with trivial
    /// specialisations (every element name is its own specialisation).
    fn from(problem: &crate::DesignProblem) -> BoxDesignProblem {
        let mut out = BoxDesignProblem::new(problem.doc_schema().to_edtd());
        for (f, schema) in problem.fun_schemas() {
            out.add_function(*f, schema.to_edtd());
        }
        out
    }
}

impl BoxDesignProblem {
    /// Creates a box design problem with no function schemas.
    pub fn new(doc_schema: REdtd) -> BoxDesignProblem {
        BoxDesignProblem { doc_schema, fun_schemas: BTreeMap::new(), target: OnceLock::new() }
    }

    /// Declares the R-EDTD schema of a function (builder style).
    pub fn with_function(mut self, function: impl Into<Symbol>, schema: REdtd) -> BoxDesignProblem {
        self.add_function(function, schema);
        self
    }

    /// Declares a DTD schema for a function, embedded as a trivial EDTD
    /// (builder style).
    pub fn with_function_dtd(self, function: impl Into<Symbol>, schema: &RDtd) -> BoxDesignProblem {
        self.with_function(function, schema.to_edtd())
    }

    /// Declares the R-EDTD schema of a function, invalidating the cached
    /// problem artefacts.
    pub fn add_function(&mut self, function: impl Into<Symbol>, schema: REdtd) {
        self.fun_schemas.insert(function.into(), schema);
        self.target = OnceLock::new();
    }

    /// The target document schema `τ`.
    pub fn doc_schema(&self) -> &REdtd {
        &self.doc_schema
    }

    /// Replaces the target schema, invalidating the cached determinised
    /// target.
    pub fn set_doc_schema(&mut self, doc_schema: REdtd) {
        self.doc_schema = doc_schema;
        self.target = OnceLock::new();
    }

    /// The declared function schemas.
    pub fn fun_schemas(&self) -> &BTreeMap<Symbol, REdtd> {
        &self.fun_schemas
    }

    /// The schema of a function, if declared.
    pub fn fun_schema(&self, function: &Symbol) -> Option<&REdtd> {
        self.fun_schemas.get(function)
    }

    /// Every content model of the problem — the target schema's rules
    /// followed by each function schema's rules — paired with a stable
    /// human-readable location in the style of the `dxml-analysis`
    /// diagnostics (`target schema: specialisation `x``, `schema of
    /// function `f`: specialisation `y``). The budget-synthesis entry
    /// point of the box route: `dxml-analysis::cost` brackets the
    /// determinisation cost of exactly these models to recommend
    /// step/state quotas for the Section-7 constructions.
    pub fn content_models(&self) -> Vec<(String, RSpec)> {
        let mut out = Vec::new();
        for (name, spec) in self.doc_schema.rules() {
            out.push((format!("target schema: specialisation `{name}`"), spec.clone()));
        }
        for (f, schema) in &self.fun_schemas {
            for (name, spec) in schema.rules() {
                out.push((format!("schema of function `{f}`: specialisation `{name}`"), spec.clone()));
            }
        }
        out
    }

    /// The lazily built problem artefacts (determinised specialised target,
    /// per-function gap languages). The first call pays for the
    /// determinisation; later calls are free.
    pub fn target_cache(&self) -> &BoxTargetCache {
        self.target.get_or_init(|| BoxTargetCache::build(&self.doc_schema, &self.fun_schemas))
    }

    /// Governed variant of [`BoxDesignProblem::target_cache`]: the cold
    /// build (determinisation plus per-function fixpoints) charges `budget`,
    /// and a trip propagates *without* initialising the cache cell — the
    /// cell is only set from a fully built cache, so a tripped build leaves
    /// the problem exactly as it was and a retry with a larger budget
    /// rebuilds cleanly.
    pub fn target_cache_with_budget(&self, budget: &Budget) -> Result<&BoxTargetCache, DesignError> {
        if let Some(cache) = self.target.get() {
            return Ok(cache);
        }
        let built = BoxTargetCache::build_with(&self.doc_schema, &self.fun_schemas, budget)?;
        Ok(self.target.get_or_init(|| built))
    }

    /// Whether the cache has been built (used by tests and benches to pin
    /// that repeated decisions do not re-determinise).
    pub fn target_cache_ready(&self) -> bool {
        self.target.get().is_some()
    }

    /// Point-in-time statistics of this problem's caches. The extension
    /// memo fields stay zero — box problems build their extension automata
    /// per call and memoise only the target-derived artefacts.
    pub fn cache_stats(&self) -> CacheStats {
        let (residual_dfa_builds, residual_dfa_hits) = self
            .target
            .get()
            .map_or((0, 0), BoxTargetCache::residual_stats);
        CacheStats {
            target_cache_built: self.target_cache_ready(),
            residual_dfa_builds,
            residual_dfa_hits,
            ext_memo_hits: 0,
            ext_memo_misses: 0,
        }
    }

    fn require_schemas(&self, doc: &DistributedDoc) -> Result<(), DesignError> {
        for f in doc.called_functions() {
            if !self.fun_schemas.contains_key(&f) {
                return Err(DesignError::MissingFunctionSchema { function: f });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Kernel boxes
    // ------------------------------------------------------------------

    /// The kernel box `B` of a node (Definition 21): one slot per child,
    /// each the exact set of specialised names the child's subtree can be
    /// typed as under the target. Defined for nodes whose children carry no
    /// docking point anywhere below them (and that are not docking points
    /// themselves); `None` otherwise. A child using a label unknown to the
    /// target contributes an empty slot (the box language is then empty).
    pub fn kernel_box(&self, doc: &DistributedDoc, node: NodeId) -> Option<BoxLang> {
        let kernel = doc.kernel();
        if doc.is_function(kernel.label(node)) {
            return None;
        }
        let cache = self.target_cache();
        let mut b = BoxLang::epsilon();
        for &child in kernel.children(node) {
            let sub = kernel.subtree(child);
            if sub.document_order().iter().any(|&n| doc.is_function(sub.label(n))) {
                return None;
            }
            match cache.duta.run(&sub) {
                Some(states) => b.push_slot(cache.duta.subset(states[sub.root()]).iter().cloned()),
                None => b.push_slot(Vec::<Symbol>::new()),
            }
        }
        Some(b)
    }

    // ------------------------------------------------------------------
    // Typing verification — tree route
    // ------------------------------------------------------------------

    /// A [`Nuta`] recognising exactly the extensions of `doc`: the kernel
    /// with every docking point `f` replaced by a forest of trees valid
    /// under `τf`'s specialised rules. The construction mirrors
    /// [`crate::DesignProblem::extension_nuta`] with specialised names as
    /// the per-function states.
    pub fn extension_nuta(&self, doc: &DistributedDoc) -> Result<Nuta, DesignError> {
        self.require_schemas(doc)?;
        let kernel = doc.kernel();
        let mut a = Nuta::new();

        let mut forest_nfas: BTreeMap<Symbol, Nfa> = BTreeMap::new();
        for f in doc.called_functions() {
            let schema = &self.fun_schemas[&f];
            let prefix = |name: &Symbol| Symbol::new(format!("{f}${name}"));
            for spec in schema.specialized_names().iter() {
                let content = schema.content(spec).to_nfa().map_symbols(prefix);
                let label = schema.label_of(spec).cloned().unwrap_or(*spec);
                a.set_rule(prefix(spec), label, content);
            }
            let forest = schema.content(schema.start()).to_nfa().map_symbols(prefix);
            forest_nfas.insert(f, forest);
        }

        let state_of = |node: usize| Symbol::new(format!("#k{node}"));
        for node in kernel.document_order() {
            if doc.is_function(kernel.label(node)) {
                continue;
            }
            let mut content = Nfa::epsilon();
            for &child in kernel.children(node) {
                let label = kernel.label(child);
                let piece = match forest_nfas.get(label) {
                    Some(forest) => forest.clone(),
                    None => Nfa::symbol(state_of(child)),
                };
                content = content.concat(&piece);
            }
            a.set_rule(state_of(node), *kernel.label(node), content);
        }
        a.set_final(state_of(kernel.root()));
        Ok(a)
    }

    /// Decides whether every extension of `doc` validates against the EDTD
    /// target, via tree-language inclusion of the extension automaton in
    /// the determinised specialised target. On failure the verdict carries
    /// a full counterexample document and the typing failure it triggers
    /// ([`REdtd::validate`]).
    pub fn typecheck(&self, doc: &DistributedDoc) -> Result<TypingVerdict, DesignError> {
        self.typecheck_with_budget(doc, &Budget::unlimited())
    }

    /// Governed variant of [`BoxDesignProblem::typecheck`]: the cache build,
    /// the extension determinisation and the product walk all charge
    /// `budget`, and a trip surfaces as [`DesignError::BudgetExceeded`]
    /// without poisoning the problem's caches.
    pub fn typecheck_with_budget(
        &self,
        doc: &DistributedDoc,
        budget: &Budget,
    ) -> Result<TypingVerdict, DesignError> {
        let _span = telemetry::span(telemetry::SpanKind::Typecheck);
        budget.check_interrupts().map_err(DesignError::from)?;
        let ext = self.extension_nuta(doc)?;
        let cache = self.target_cache_with_budget(budget)?;
        match uta::included_in_duta_with_budget(&ext, &cache.duta, budget)
            .map_err(DesignError::from)?
        {
            Ok(()) => Ok(TypingVerdict::Valid),
            Err(counterexample) => match self.doc_schema.validate(&counterexample) {
                Err(violation) => Ok(TypingVerdict::Invalid { counterexample, violation }),
                Ok(()) => Err(DesignError::InvariantViolation {
                    detail: format!(
                        "tree-inclusion counterexample `{counterexample}` unexpectedly \
                         validates against the EDTD target"
                    ),
                }),
            },
        }
    }

    // ------------------------------------------------------------------
    // Typing verification — box/string route
    // ------------------------------------------------------------------

    /// Renders a witness word over subset-state symbols as a box of
    /// specialised-name sets.
    fn box_of(&self, cache: &BoxTargetCache, witness: &[Symbol]) -> BoxLang {
        let mut b = BoxLang::epsilon();
        for sym in witness {
            match letter_of(sym) {
                Some(i) => b.push_slot(cache.duta.subset(i).iter().cloned()),
                None => b.push_slot(Vec::<Symbol>::new()),
            }
        }
        b
    }

    /// The Section-7 string route: typing verification without tree
    /// automata on the extension side. One bottom-up pass over the kernel
    /// computes, per node, the **exact** set of subset states its subtree
    /// can evaluate to — fixed children contribute box slots, docking
    /// points their gap languages — via the Moore-machine image
    /// [`Duta::outputs_over`]. Sound and complete for every R-EDTD target
    /// because the determinised run is unique; agrees with
    /// [`BoxDesignProblem::typecheck`] on every input (asserted by the
    /// tests).
    ///
    /// If some called function has an empty schema language no extension
    /// exists and the verdict is vacuously valid.
    pub fn verify_local(&self, doc: &DistributedDoc) -> Result<BoxVerdict, DesignError> {
        self.verify_local_with_budget(doc, &Budget::unlimited())
    }

    /// Governed variant of [`BoxDesignProblem::verify_local`]: the cache
    /// build and every per-node Moore-machine image charge `budget`, and a
    /// trip surfaces as [`DesignError::BudgetExceeded`].
    pub fn verify_local_with_budget(
        &self,
        doc: &DistributedDoc,
        budget: &Budget,
    ) -> Result<BoxVerdict, DesignError> {
        let _span = telemetry::span(telemetry::SpanKind::VerifyLocal);
        budget.check_interrupts().map_err(DesignError::from)?;
        self.require_schemas(doc)?;
        let cache = self.target_cache_with_budget(budget)?;
        let kernel = doc.kernel();
        let called = doc.called_functions();

        for f in &called {
            if cache.funs[f].forest_empty {
                return Ok(BoxVerdict::Valid);
            }
        }
        for f in &called {
            if let Some(label) = &cache.funs[f].unknown {
                return Ok(BoxVerdict::Invalid(BoxViolation::UnknownElement {
                    element: *label,
                    origin: Origin::Function { function: *f },
                }));
            }
        }

        let universe = cache.duta.num_states();
        let mut achievable: Vec<StateSet> = vec![StateSet::empty(universe); kernel.size()];
        for node in kernel.bottom_up_order() {
            let label = kernel.label(node);
            if doc.is_function(label) {
                continue;
            }
            let origin = || Origin::Kernel { path: kernel.anc_str(node) };
            if !cache.duta.labels().contains(label) {
                return Ok(BoxVerdict::Invalid(BoxViolation::UnknownElement {
                    element: *label,
                    origin: origin(),
                }));
            }
            let mut word = Nfa::epsilon();
            for &child in kernel.children(node) {
                let child_label = kernel.label(child);
                let piece = match cache.funs.get(child_label) {
                    Some(fa) if doc.is_function(child_label) => fa.forest_states.clone(),
                    _ => state_set_nfa(&achievable[child]),
                };
                word = word.concat(&piece);
            }
            let outs = cache
                .duta
                .outputs_over_with_budget(label, &word, letter_of, budget)
                .map_err(DesignError::from)?;
            // A realizable child word with no typing at all is already a
            // violation — the surrounding kernel always completes it to a
            // full extension (all gap languages are non-empty), and the
            // empty subset propagates to a non-accepting root.
            if let Some(ei) = cache.empty_subset {
                if let Some(witness) = outs.get(&ei) {
                    return Ok(BoxVerdict::Invalid(BoxViolation::Content {
                        element: *label,
                        counterexample: self.box_of(cache, witness),
                        admitted: Vec::new(),
                        origin: origin(),
                    }));
                }
            }
            if node == kernel.root() {
                for (&state, witness) in &outs {
                    if !cache.accepting.contains(state) {
                        return Ok(BoxVerdict::Invalid(BoxViolation::Content {
                            element: *label,
                            counterexample: self.box_of(cache, witness),
                            admitted: cache.duta.subset(state).iter().cloned().collect(),
                            origin: origin(),
                        }));
                    }
                }
            }
            achievable[node] = StateSet::from_iter(universe, outs.keys().copied());
        }
        Ok(BoxVerdict::Valid)
    }

    // ------------------------------------------------------------------
    // Perfect typing for EDTD targets
    // ------------------------------------------------------------------

    /// Computes the **perfect schema** of `function` for the EDTD target:
    /// the most permissive R-EDTD schema under which the design still
    /// typechecks, the other functions keeping their declared schemas.
    ///
    /// The admissible gap language is computed exactly by walking the spine
    /// from the root down to the docking parent: at each level the set of
    /// *safe* subset states is the universal context residual of the
    /// admissible-children language (the per-label Moore machine with every
    /// admissible output marked final) by the
    /// realizable sibling languages, restricted to single states; at the
    /// parent the full residual (uniform for several docking points,
    /// [`Nfa::uniform_context_residual`]) is the gap language. The schema
    /// materialises it with one specialised name per inhabited
    /// `(label, subset state)` pair — maximal per construction, confirmed
    /// by the [`BoxDesignProblem::typecheck`] oracle.
    ///
    /// # Errors
    ///
    /// * [`DesignError::FunctionNotCalled`] — `function` labels no docking
    ///   point of `doc`.
    /// * [`DesignError::MissingFunctionSchema`] — another called function
    ///   has no declared schema.
    /// * [`DesignError::NoMaximalSchema`] — another function's language is
    ///   empty (the design is vacuous), or several docking points under the
    ///   same parent interact without a unique maximum.
    /// * [`DesignError::SynthesisUnsupported`] — the docking points of
    ///   `function` sit under several distinct parents; the per-parent
    ///   residuals of this construction cannot bound that case for EDTD
    ///   targets.
    /// * [`DesignError::InvariantViolation`] — the oracle refuted a
    ///   candidate the construction proves maximal; a bug in this library,
    ///   never a property of the input.
    pub fn perfect_schema(
        &self,
        doc: &DistributedDoc,
        function: impl Into<Symbol>,
    ) -> Result<REdtd, DesignError> {
        self.perfect_schema_with_budget(doc, function, &Budget::unlimited())
    }

    /// Governed variant of [`BoxDesignProblem::perfect_schema`]: the cache
    /// build, the achievable-set pass, the spine residuals and the
    /// confirming typecheck oracle all charge `budget`, and a trip surfaces
    /// as [`DesignError::BudgetExceeded`] with the problem's caches left
    /// unpoisoned (a retry with a larger budget agrees with the ungoverned
    /// result).
    ///
    /// # Errors
    ///
    /// Everything [`BoxDesignProblem::perfect_schema`] reports, plus
    /// [`DesignError::BudgetExceeded`].
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (an admitted function with an
    /// empty docking set).
    pub fn perfect_schema_with_budget(
        &self,
        doc: &DistributedDoc,
        function: impl Into<Symbol>,
        budget: &Budget,
    ) -> Result<REdtd, DesignError> {
        let _span = telemetry::span(telemetry::SpanKind::PerfectSchema);
        budget.check_interrupts().map_err(DesignError::from)?;
        let f = function.into();
        let kernel = doc.kernel();

        let mut docking: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for parent in kernel.document_order() {
            if doc.is_function(kernel.label(parent)) {
                continue;
            }
            for (position, &child) in kernel.children(parent).iter().enumerate() {
                if kernel.label(child) == &f {
                    docking.entry(parent).or_default().push(position);
                }
            }
        }
        if !doc.is_function(&f) || docking.is_empty() {
            return Err(DesignError::FunctionNotCalled { function: f });
        }
        if docking.len() > 1 {
            return Err(DesignError::SynthesisUnsupported {
                function: f,
                detail: "its docking points sit under several distinct parents".into(),
            });
        }
        let cache = self.target_cache_with_budget(budget)?;
        let mut forced_empty = false;
        for g in doc.called_functions() {
            if g == f {
                continue;
            }
            let art = cache
                .funs
                .get(&g)
                .ok_or(DesignError::MissingFunctionSchema { function: g })?;
            if art.forest_empty {
                return Err(DesignError::NoMaximalSchema { function: f });
            }
            if art.unknown.is_some() {
                // A sibling realizes trees outside the target's universe:
                // every non-vacuous design fails, independent of `f`.
                forced_empty = true;
            }
        }
        let (&parent, positions) = docking.iter().next().expect("docking is non-empty");

        // The spine from the root down to the docking parent; everything
        // off the spine is free of `f` and gets an exact achievable set.
        let mut spine = vec![parent];
        let mut cursor = parent;
        while let Some(p) = kernel.parent(cursor) {
            spine.push(p);
            cursor = p;
        }
        spine.reverse();
        let spine_set: BTreeSet<NodeId> = spine.iter().copied().collect();

        let universe = cache.duta.num_states();
        let mut achievable: Vec<StateSet> = vec![StateSet::empty(universe); kernel.size()];
        for node in kernel.bottom_up_order() {
            let label = kernel.label(node);
            if spine_set.contains(&node) || doc.is_function(label) {
                continue;
            }
            if !cache.duta.labels().contains(label) {
                forced_empty = true;
                continue;
            }
            let mut word = Nfa::epsilon();
            for &child in kernel.children(node) {
                let child_label = kernel.label(child);
                let piece = match cache.funs.get(child_label) {
                    Some(fa) if doc.is_function(child_label) => fa.forest_states.clone(),
                    _ => state_set_nfa(&achievable[child]),
                };
                word = word.concat(&piece);
            }
            achievable[node] = StateSet::from_iter(
                universe,
                cache
                    .duta
                    .outputs_over_with_budget(label, &word, letter_of, budget)
                    .map_err(DesignError::from)?
                    .keys()
                    .copied(),
            );
        }

        // Top-down: the safe subset states per spine level, then the gap
        // language at the parent.
        let piece_for = |child: NodeId| -> Nfa {
            let child_label = kernel.label(child);
            match cache.funs.get(child_label) {
                Some(fa) if doc.is_function(child_label) => fa.forest_states.clone(),
                _ => state_set_nfa(&achievable[child]),
            }
        };
        let segment = |range: &[NodeId]| {
            range.iter().fold(Nfa::epsilon(), |acc, &c| acc.concat(&piece_for(c)))
        };
        let mut safe: StateSet = cache.accepting.clone();
        let mut gap = Nfa::empty();
        for (level, &x) in spine.iter().enumerate() {
            if forced_empty {
                break;
            }
            let label = kernel.label(x);
            if !cache.duta.labels().contains(label) {
                forced_empty = true;
                break;
            }
            // The skeleton DFA comes from the problem memo; only the finals
            // (the admissible outputs at this level) differ per call.
            let admissible_children = cache.admissible_children_dfa(label, &safe);
            let children = kernel.children(x);
            if level + 1 < spine.len() {
                let next = spine[level + 1];
                let position = children
                    .iter()
                    .position(|&c| c == next)
                    .expect("spine child is a child of its spine parent");
                let prefix = segment(&children[..position]);
                let suffix = segment(&children[position + 1..]);
                let residual = admissible_children
                    .universal_context_residual_with_budget(&prefix, &suffix, budget)
                    .map_err(DesignError::from)?;
                safe = StateSet::from_iter(
                    universe,
                    (0..universe).filter(|&j| residual.accepts(&[state_sym(j)])),
                );
                if safe.is_empty() {
                    forced_empty = true;
                }
            } else {
                // The docking parent: residual over the gap(s).
                let mut contexts: Vec<Nfa> = Vec::with_capacity(positions.len() + 1);
                let mut prev = 0usize;
                for &position in positions {
                    contexts.push(segment(&children[prev..position]));
                    prev = position + 1;
                }
                contexts.push(segment(&children[prev..]));
                gap = if positions.len() == 1 {
                    admissible_children.universal_context_residual_with_budget(
                        &contexts[0],
                        &contexts[1],
                        budget,
                    )
                } else {
                    admissible_children.uniform_context_residual_with_budget(&contexts, budget)
                }
                .map_err(DesignError::from)?;
            }
        }
        let gap = if forced_empty { Nfa::empty() } else { gap };

        let schema = self.build_perfect(&gap, cache);
        let candidate = self.clone().with_function(f, schema.clone());
        match candidate.typecheck_with_budget(doc, budget)? {
            TypingVerdict::Valid => Ok(schema),
            TypingVerdict::Invalid { counterexample, .. } => {
                if positions.len() > 1 {
                    // The uniform candidate is an upper bound on every
                    // valid gap language (substituting any of its words at
                    // every docking point stays valid), so a refutation
                    // proves incomparable maximal languages exist.
                    Err(DesignError::NoMaximalSchema { function: f })
                } else {
                    Err(DesignError::InvariantViolation {
                        detail: format!(
                            "typecheck refuted the maximal box candidate for `{f}` \
                             with `{counterexample}`"
                        ),
                    })
                }
            }
        }
    }

    /// Perfect schemas for every called function of `doc`, each synthesised
    /// with the other functions keeping their declared schemas.
    pub fn perfect_schemas(
        &self,
        doc: &DistributedDoc,
    ) -> Result<BTreeMap<Symbol, REdtd>, DesignError> {
        doc.called_functions()
            .into_iter()
            .map(|f| self.perfect_schema(doc, f).map(|s| (f, s)))
            .collect()
    }

    /// Materialises a gap language over subset-state symbols as an R-EDTD:
    /// a fresh start whose content model is the gap language with every
    /// state expanded to the inhabited `(label, state)` pairs carrying it,
    /// plus one specialised rule per reachable pair holding the target's
    /// exact content language for that pair.
    fn build_perfect(&self, gap: &Nfa, cache: &BoxTargetCache) -> REdtd {
        let duta = &cache.duta;
        let pairs = duta.inhabited_label_states();
        let mut slots: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
        let mut pair_index: BTreeMap<Symbol, (Symbol, usize)> = BTreeMap::new();
        for (label, states) in &pairs {
            for &i in states {
                let name = label.specialize(i);
                slots.entry(state_sym(i)).or_default().insert(name);
                pair_index.insert(name, (*label, i));
            }
        }
        let mut start = String::from("result");
        while duta.labels().contains(&Symbol::new(&start)) {
            start.push('_');
        }
        let mut schema = REdtd::new(RFormalism::Nfa, start.as_str(), start.as_str());
        let forest = gap.trim().expand_symbols(&slots);
        schema.set_rule(start.as_str(), RSpec::Nfa(forest.clone()));
        let mut queue: VecDeque<Symbol> = forest.alphabet().iter().cloned().collect();
        let mut seen: BTreeSet<Symbol> = queue.iter().cloned().collect();
        while let Some(name) = queue.pop_front() {
            let (label, i) = pair_index[&name];
            let content = duta
                .content_nfa(i, &label, state_sym)
                .expand_symbols(&slots)
                .trim();
            for next in content.alphabet().iter() {
                if seen.insert(*next) {
                    queue.push_back(*next);
                }
            }
            schema.add_specialization(name, label);
            schema.set_rule(name, RSpec::Nfa(content));
        }
        schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::Regex;
    use dxml_tree::term::parse_term;

    fn dtd(rules: &str) -> RDtd {
        RDtd::parse(RFormalism::Nre, rules).unwrap()
    }

    /// The classic non-DTD-definable target: `s` has `a`-children of which
    /// exactly one contains a `c`, the rest contain a `b`.
    fn one_c_target() -> REdtd {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("ab", "a");
        e.add_specialization("ac", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
        e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        e
    }

    /// An EDTD function schema returning forests of `a(c)`-trees: start
    /// content `x*` with `µ(x) = a`, `x → c`.
    fn ac_forest_schema(star: bool) -> REdtd {
        let mut e = REdtd::new(RFormalism::Nre, "r", "r");
        e.add_specialization("x", "a");
        let content = if star { "x*" } else { "x" };
        e.set_rule("r", RSpec::Nre(Regex::parse(content).unwrap()));
        e.set_rule("x", RSpec::Nre(Regex::parse("c").unwrap()));
        e
    }

    fn agree(problem: &BoxDesignProblem, doc: &DistributedDoc) -> bool {
        let global = problem.typecheck(doc).unwrap();
        let local = problem.verify_local(doc).unwrap();
        assert_eq!(
            global.is_valid(),
            local.is_valid(),
            "typecheck ({global:?}) and verify_local ({local:?}) disagree on {doc:?}"
        );
        global.is_valid()
    }

    #[test]
    fn specialised_target_typechecks_the_right_forests() {
        let target = one_c_target();
        // f returns exactly one a(c): the kernel supplies the a(b)'s.
        let good = BoxDesignProblem::new(target.clone())
            .with_function("f", ac_forest_schema(false));
        let doc = DistributedDoc::parse("s(a(b) f)", ["f"]).unwrap();
        assert!(agree(&good, &doc));
        // f returning any number of a(c)'s can produce zero or two: invalid.
        let bad = BoxDesignProblem::new(target).with_function("f", ac_forest_schema(true));
        assert!(!agree(&bad, &doc));
        match bad.typecheck(&doc).unwrap() {
            TypingVerdict::Invalid { counterexample, violation } => {
                assert!(!bad.doc_schema().accepts(&counterexample));
                assert!(bad.extension_nuta(&doc).unwrap().accepts(&counterexample));
                let _ = format!("{violation}");
            }
            TypingVerdict::Valid => panic!("expected invalid"),
        }
        match bad.verify_local(&doc).unwrap() {
            BoxVerdict::Invalid(ref v @ BoxViolation::Content { ref counterexample, .. }) => {
                assert!(counterexample.width() >= 1);
                let _ = format!("{v}");
            }
            other => panic!("expected a Content violation, got {other:?}"),
        }
    }

    #[test]
    fn unknown_elements_are_reported_with_origin() {
        let target = one_c_target();
        // Kernel element outside the target universe.
        let p = BoxDesignProblem::new(target.clone());
        let doc = DistributedDoc::parse("s(a(b) zz)", [] as [&str; 0]).unwrap();
        assert!(!agree(&p, &doc));
        assert!(matches!(
            p.verify_local(&doc).unwrap(),
            BoxVerdict::Invalid(BoxViolation::UnknownElement { ref element, origin: Origin::Kernel { .. } })
                if element.as_str() == "zz"
        ));
        // Function forest realizing an unknown element.
        let mut schema = REdtd::new(RFormalism::Nre, "r", "r");
        schema.add_specialization("x", "a");
        schema.set_rule("r", RSpec::Nre(Regex::parse("x").unwrap()));
        schema.set_rule("x", RSpec::Nre(Regex::parse("zz?").unwrap()));
        let p2 = BoxDesignProblem::new(target).with_function("f", schema);
        let doc2 = DistributedDoc::parse("s(a(b) a(c) f)", ["f"]).unwrap();
        assert!(!agree(&p2, &doc2));
        assert!(matches!(
            p2.verify_local(&doc2).unwrap(),
            BoxVerdict::Invalid(BoxViolation::UnknownElement { origin: Origin::Function { .. }, .. })
        ));
    }

    #[test]
    fn vacuous_designs_are_valid() {
        // The function's specialised language is empty: x → x never
        // bottoms out.
        let mut schema = REdtd::new(RFormalism::Nre, "r", "r");
        schema.add_specialization("x", "a");
        schema.set_rule("r", RSpec::Nre(Regex::parse("x").unwrap()));
        schema.set_rule("x", RSpec::Nre(Regex::parse("x").unwrap()));
        let p = BoxDesignProblem::new(one_c_target()).with_function("f", schema);
        let doc = DistributedDoc::parse("s(f)", ["f"]).unwrap();
        assert!(agree(&p, &doc));
    }

    #[test]
    fn missing_schema_is_an_error() {
        let p = BoxDesignProblem::new(one_c_target());
        let doc = DistributedDoc::parse("s(f)", ["f"]).unwrap();
        assert!(matches!(p.typecheck(&doc), Err(DesignError::MissingFunctionSchema { .. })));
        assert!(matches!(p.verify_local(&doc), Err(DesignError::MissingFunctionSchema { .. })));
    }

    #[test]
    fn kernel_boxes_expose_the_specialised_slots() {
        let p = BoxDesignProblem::new(one_c_target());
        let doc = DistributedDoc::parse("s(a(b) a(c) f)", ["f"]).unwrap();
        let kernel_box = p.kernel_box(&doc, doc.kernel().root());
        assert!(kernel_box.is_none(), "root has a docking child");
        // The box of the first a-child: its `b` subtree types exactly as a
        // leaf typable by no specialisation other than… `b` itself has no
        // rule in the target, so check the a-node instead: a(b) types
        // exactly as {ab}.
        let a_node = doc.kernel().children(doc.kernel().root())[0];
        let b = p.kernel_box(&doc, a_node).unwrap();
        assert_eq!(b.width(), 1, "a(b) has one child");
        // And the box of the whole fixed prefix via a synthetic doc without
        // the docking point: slots are the exact specialised-type sets.
        let plain = DistributedDoc::parse("s(a(b) a(c))", [] as [&str; 0]).unwrap();
        let pb = p.kernel_box(&plain, plain.kernel().root()).unwrap();
        assert_eq!(pb.width(), 2);
        assert_eq!(pb.slots()[0], BTreeSet::from([Symbol::new("ab")]));
        assert_eq!(pb.slots()[1], BTreeSet::from([Symbol::new("ac")]));
        assert!(pb.contains(&[Symbol::new("ab"), Symbol::new("ac")]));
    }

    #[test]
    fn dtd_embedding_agrees_with_design_problem() {
        let target = dtd("s -> a, b*\nb -> c?");
        let problem = crate::DesignProblem::new(target).with_function("f", dtd("r -> b, b\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        let boxed = BoxDesignProblem::from(&problem);
        assert!(agree(&boxed, &doc));
        assert_eq!(
            problem.typecheck(&doc).unwrap().is_valid(),
            boxed.typecheck(&doc).unwrap().is_valid()
        );
        // And on an invalid design.
        let bad = crate::DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b*\nb -> d?"));
        let boxed_bad = BoxDesignProblem::from(&bad);
        assert!(!agree(&boxed_bad, &doc));
        assert!(!bad.typecheck(&doc).unwrap().is_valid());
    }

    #[test]
    fn repeated_decisions_reuse_the_cache() {
        let p = BoxDesignProblem::new(one_c_target()).with_function("f", ac_forest_schema(false));
        let doc = DistributedDoc::parse("s(a(b) f)", ["f"]).unwrap();
        assert!(!p.target_cache_ready());
        assert!(p.verify_local(&doc).unwrap().is_valid());
        assert!(p.target_cache_ready());
        let first = p.target_cache().duta() as *const _;
        assert!(p.typecheck(&doc).unwrap().is_valid());
        let second = p.target_cache().duta() as *const _;
        assert!(std::ptr::eq(first, second), "decisions must not re-determinise the target");
        let f = Symbol::new("f");
        let fs1 = p.target_cache().forest_states(&f).unwrap() as *const _;
        assert!(p.verify_local(&doc).unwrap().is_valid());
        let fs2 = p.target_cache().forest_states(&f).unwrap() as *const _;
        assert!(std::ptr::eq(fs1, fs2), "gap languages must be reused across calls");
        // Mutation invalidates.
        let mut changed = p.clone();
        changed.set_doc_schema(one_c_target());
        assert!(!changed.target_cache_ready());
    }

    #[test]
    fn perfect_schema_for_a_specialised_target() {
        // Kernel s(a(b) f): the perfect gap language is a's typed ab* ac ab*
        // — expressible as an EDTD, not as a DTD.
        let p = BoxDesignProblem::new(one_c_target());
        let doc = DistributedDoc::parse("s(a(b) f)", ["f"]).unwrap();
        let perfect = p.perfect_schema(&doc, "f").unwrap();
        let solved = p.clone().with_function("f", perfect.clone());
        assert!(solved.typecheck(&doc).unwrap().is_valid());
        assert!(solved.verify_local(&doc).unwrap().is_valid());
        // The synthesised schema accepts a lone a(c) forest …
        let forest_ac = parse_term("r(a(c))").unwrap();
        // … by embedding it under the fresh start (whose name we read off).
        let start = *perfect.start();
        let embed = |forest: &str| {
            parse_term(&format!("{}({forest})", start.as_str())).unwrap()
        };
        assert!(perfect.accepts(&embed("a(c)")));
        assert!(perfect.accepts(&embed("a(b) a(c) a(b)")));
        assert!(!perfect.accepts(&embed("a(b)")));
        assert!(!perfect.accepts(&embed("a(c) a(c)")));
        let _ = forest_ac;
        // Declared valid schemas are subsumed: the single-a(c) schema's
        // forests are all accepted by the perfect one.
        let declared = ac_forest_schema(false);
        let with_declared = p.clone().with_function("f", declared);
        assert!(with_declared.typecheck(&doc).unwrap().is_valid());
    }

    #[test]
    fn perfect_schema_error_cases() {
        let p = BoxDesignProblem::new(one_c_target());
        let doc = DistributedDoc::parse("s(a(b) f)", ["f"]).unwrap();
        assert!(matches!(
            p.perfect_schema(&doc, "g"),
            Err(DesignError::FunctionNotCalled { .. })
        ));
        // Docking under two distinct parents is unsupported for EDTD
        // targets.
        let mut nested = REdtd::new(RFormalism::Nre, "s", "s");
        nested.set_rule("s", RSpec::Nre(Regex::parse("t t").unwrap()));
        nested.set_rule("t", RSpec::Nre(Regex::parse("a*").unwrap()));
        let p2 = BoxDesignProblem::new(nested);
        let doc2 = DistributedDoc::parse("s(t(f) t(f))", ["f"]).unwrap();
        assert!(matches!(
            p2.perfect_schema(&doc2, "f"),
            Err(DesignError::SynthesisUnsupported { .. })
        ));
        // Interacting docking points under one parent: (ab ac | ac ab)
        // admits {ab-word} and {ac-word}… use the DTD-style (a,a)|(b,b).
        let mut t = REdtd::new(RFormalism::Nre, "s", "s");
        t.set_rule("s", RSpec::Nre(Regex::parse("a a | b b").unwrap()));
        let p3 = BoxDesignProblem::new(t);
        let doc3 = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        assert!(matches!(
            p3.perfect_schema(&doc3, "f"),
            Err(DesignError::NoMaximalSchema { .. })
        ));
        // A sibling with an empty language makes the design vacuous.
        let mut empty = REdtd::new(RFormalism::Nre, "r", "r");
        empty.set_rule("r", RSpec::Nre(Regex::parse("r").unwrap()));
        let p4 = BoxDesignProblem::new(one_c_target()).with_function("g", empty);
        let doc4 = DistributedDoc::parse("s(a(b) f g)", ["f", "g"]).unwrap();
        assert!(matches!(
            p4.perfect_schema(&doc4, "f"),
            Err(DesignError::NoMaximalSchema { .. })
        ));
    }

    #[test]
    fn perfect_schema_with_repeated_docking_points() {
        // τ(s) = (ab)* over specialised pairs: s → (x y)* with µ(x)=a,
        // µ(y)=b; kernel s(f f): the uniform candidate (x y)* is closed
        // under concatenation, hence the unique maximum.
        let mut t = REdtd::new(RFormalism::Nre, "s", "s");
        t.add_specialization("x", "a");
        t.add_specialization("y", "b");
        t.set_rule("s", RSpec::Nre(Regex::parse("(x y)*").unwrap()));
        let p = BoxDesignProblem::new(t);
        let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        let perfect = p.perfect_schema(&doc, "f").unwrap();
        let solved = p.clone().with_function("f", perfect.clone());
        assert!(solved.typecheck(&doc).unwrap().is_valid());
        let start = *perfect.start();
        let embed = |forest: &str| parse_term(&format!("{}({forest})", start.as_str())).unwrap();
        assert!(perfect.accepts(&embed("a b")));
        assert!(!perfect.accepts(&embed("a")));
    }

    #[test]
    fn independent_violations_force_the_empty_gap() {
        // The kernel's `zz` child violates the target whatever f returns:
        // the perfect gap language is empty (vacuously valid).
        let mut t = REdtd::new(RFormalism::Nre, "s", "s");
        t.set_rule("s", RSpec::Nre(Regex::parse("t a*").unwrap()));
        t.set_rule("t", RSpec::Nre(Regex::parse("b").unwrap()));
        let p = BoxDesignProblem::new(t);
        let doc = DistributedDoc::parse("s(t(zz) f)", ["f"]).unwrap();
        let perfect = p.perfect_schema(&doc, "f").unwrap();
        let forest = perfect.content(perfect.start()).to_nfa();
        assert!(forest.is_empty());
        let solved = p.clone().with_function("f", perfect);
        assert!(solved.typecheck(&doc).unwrap().is_valid());
    }
}
