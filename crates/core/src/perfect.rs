//! Perfect typing — maximal function-schema synthesis (Section 6).
//!
//! [`DesignProblem::typecheck`] answers "does this design typecheck?".
//! This module answers the question the paper is actually about: *what are
//! the most permissive function schemas for which it would?* For a DTD
//! target `τ` and a function `f` docking into the kernel, the **perfect
//! schema** of `f` is the schema with the largest content models such that
//! the design still typechecks when `f` is given that schema (the other
//! functions keep their declared schemas).
//!
//! # Construction
//!
//! The synthesis runs over the target artefacts cached in
//! [`crate::design::TargetCache`] (the determinised tree automaton, the
//! per-element content NFAs and the productive names) and proceeds in two
//! interleaved phases, in the style of implicit-hitting-set abduction:
//!
//! 1. **Candidate construction.** Inside the forests `f` may return, target
//!    validation is per-node-local, so the maximal content model of an
//!    element `a` is the target's own `π(a)` restricted to productive
//!    names. The only genuinely constrained language is the *forest*
//!    language `W` contributed at the docking points: for a docking point
//!    under a kernel node labelled `b`, with sibling languages `P` (to the
//!    left) and `S` (to the right), the admissible words are the universal
//!    residual `{ w : ∀u∈P, ∀v∈S, u·w·v ∈ π(b) }`
//!    ([`dxml_automata::Nfa::universal_context_residual`]). When `f` docks
//!    *several times under the same parent*, the candidate is the uniform
//!    residual instead ([`dxml_automata::Nfa::uniform_context_residual`]):
//!    the words `w` whose substitution at *every* docking point stays in
//!    `π(b)`. The candidate `U` is the intersection over all parents.
//!
//!    `U` is an upper bound by construction: a forest language `V` is
//!    valid iff every combination of its words at the docking points
//!    validates, and since singletons only shrink the combination space,
//!    every `w ∈ V` has `{w}` valid, i.e. `V ⊆ U`. Consequently **a
//!    maximal schema exists iff `U` itself is valid, and is then exactly
//!    `U`** — mixed-word combinations from `U` are what the oracle below
//!    decides.
//! 2. **Refute or confirm.** The candidate is submitted to the
//!    [`DesignProblem::typecheck`] oracle. A counterexample either exposes
//!    a violation *independent* of `f` (in which case only the empty forest
//!    language typechecks, vacuously), or proves — by the maximality
//!    argument above — that incomparable maximal languages exist
//!    ([`DesignError::NoMaximalSchema`]: e.g. `(a,a) | (b,b)` with two `f`
//!    docking points, where `{a}` and `{b}` are both maximal), or, when
//!    neither explanation applies, reveals a broken invariant of the
//!    construction, reported as [`DesignError::InvariantViolation`] rather
//!    than being papered over.
//!
//! # Worked example (the paper's Eurostat scenario, Figures 1–4)
//!
//! The global type requires `eurostat → averages, nationalIndex*`; the
//! kernel stores the averages locally and docks the per-country data at a
//! single call `fNCP`. The perfect schema for `fNCP` is then: forests of
//! `nationalIndex*`, with every inner element free to use the target's own
//! content models.
//!
//! ```
//! use dxml_automata::RFormalism;
//! use dxml_core::{DesignProblem, DistributedDoc};
//! use dxml_schema::RDtd;
//!
//! let target = RDtd::parse(
//!     RFormalism::Nre,
//!     "eurostat -> averages, nationalIndex*\n\
//!      averages -> (Good, index+)+\n\
//!      nationalIndex -> country, Good, (index | value, year)\n\
//!      index -> value, year",
//! )
//! .unwrap();
//! let problem = DesignProblem::new(target);
//! let doc = DistributedDoc::parse(
//!     "eurostat(averages(Good index(value year)) fNCP)",
//!     ["fNCP"],
//! )
//! .unwrap();
//!
//! let perfect = problem.perfect_schema(&doc, "fNCP").unwrap();
//! // The forest language is nationalIndex*: both the old `index` format and
//! // the newer `value, year` format are admitted …
//! let forest = perfect.content(perfect.start()).to_nfa();
//! let national = |n: usize| vec![dxml_automata::Symbol::new("nationalIndex"); n];
//! assert!(forest.accepts(&national(0)));
//! assert!(forest.accepts(&national(3)));
//! // … and the design typechecks with the synthesised schema.
//! let solved = problem.clone().with_function("fNCP", perfect);
//! assert!(solved.typecheck(&doc).unwrap().is_valid());
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dxml_automata::equiv::included_with_budget as str_included_with_budget;
use dxml_automata::{Alphabet, Budget, Nfa, RFormalism, RSpec, Symbol};
use dxml_schema::RDtd;
use dxml_tree::NodeId;

use crate::design::{DesignProblem, ReducedFun, TargetCache, TypingVerdict};
use crate::doc::DistributedDoc;
use crate::error::DesignError;

impl DesignProblem {
    /// Computes the **perfect schema** of `function`: the schema with the
    /// largest content models under which the design still typechecks, the
    /// other functions keeping their declared schemas (Section 6).
    ///
    /// The returned [`RDtd`]'s start symbol is a fresh name; its start
    /// content model is the maximal *forest* language of the docking
    /// points, and every other rule is the target's content model of that
    /// element restricted to productive names. Any schema the design
    /// typechecks with is a sub-schema of the result, and enlarging any
    /// returned content model by a single word over the schema's element
    /// names breaks typechecking (the property the tests assert).
    ///
    /// # Errors
    ///
    /// * [`DesignError::FunctionNotCalled`] — `function` labels no docking
    ///   point of `doc`, so every schema typechecks and no maximal one
    ///   exists.
    /// * [`DesignError::MissingFunctionSchema`] — another called function
    ///   has no declared schema.
    /// * [`DesignError::NoMaximalSchema`] — no single most-permissive
    ///   schema exists: either another function's language is empty (the
    ///   design is vacuous and every schema typechecks), or the docking
    ///   points of `function` interact through a content model with several
    ///   incomparable maximal languages.
    /// * [`DesignError::InvariantViolation`] — the typecheck oracle refuted
    ///   a converged candidate for a reason the construction cannot
    ///   explain; a bug in this library, never a property of the input.
    pub fn perfect_schema(
        &self,
        doc: &DistributedDoc,
        function: impl Into<Symbol>,
    ) -> Result<RDtd, DesignError> {
        self.perfect_schema_with_budget(doc, function, &Budget::unlimited())
    }

    /// Governed variant of [`DesignProblem::perfect_schema`]: the residual
    /// constructions, the cached determinisations and the confirming
    /// typecheck oracle all charge `budget`, and a trip surfaces as
    /// [`DesignError::BudgetExceeded`]. A trip leaves the problem's caches
    /// unpoisoned: retrying the same synthesis with a larger budget (or the
    /// unlimited default) succeeds and agrees with the ungoverned result.
    ///
    /// # Errors
    ///
    /// Everything [`DesignProblem::perfect_schema`] reports, plus
    /// [`DesignError::BudgetExceeded`].
    pub fn perfect_schema_with_budget(
        &self,
        doc: &DistributedDoc,
        function: impl Into<Symbol>,
        budget: &Budget,
    ) -> Result<RDtd, DesignError> {
        let _span = dxml_telemetry::span(dxml_telemetry::SpanKind::PerfectSchema);
        budget.check_interrupts().map_err(DesignError::from)?;
        let f = function.into();
        let kernel = doc.kernel();

        // The docking points of `f`, grouped by the kernel node they hang
        // under (positions in increasing order, courtesy of the child scan).
        let mut docking: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for parent in kernel.document_order() {
            if doc.is_function(kernel.label(parent)) {
                continue;
            }
            for (position, &child) in kernel.children(parent).iter().enumerate() {
                if kernel.label(child) == &f {
                    docking.entry(parent).or_default().push(position);
                }
            }
        }
        if !doc.is_function(&f) || docking.is_empty() {
            return Err(DesignError::FunctionNotCalled { function: f });
        }

        // Reduced schemas and forest languages of the *other* called
        // functions, straight from the problem cache (reduced once per
        // problem). An empty one makes the design vacuous: every schema
        // for `f` typechecks and no maximal schema exists.
        let cache = self.target_cache_with_budget(budget)?;
        let mut siblings: BTreeMap<Symbol, &ReducedFun> = BTreeMap::new();
        for g in doc.called_functions() {
            if g == f {
                continue;
            }
            let reduced = cache
                .reduced_fun(&g)
                .ok_or(DesignError::MissingFunctionSchema { function: g })?;
            if reduced.language_is_empty() {
                return Err(DesignError::NoMaximalSchema { function: f });
            }
            siblings.insert(g, reduced);
        }
        let productive = Alphabet::from_iter(cache.productive().iter().cloned());

        // The candidate: intersection over all parents of the residual
        // languages, seeded with all words over productive names.
        let tau = self.doc_schema();
        let mut w = Nfa::sigma_star(&productive);
        for (&parent, positions) in &docking {
            let label = kernel.label(parent);
            if !tau.alphabet().contains(label) {
                // The parent element itself is unknown to the target: no
                // forest whatsoever can make the design typecheck.
                w = Nfa::empty();
                break;
            }
            // The fixed-language segments between consecutive docking
            // points (and before the first / after the last one).
            let children = kernel.children(parent);
            let segment = |range: &[NodeId]| {
                range.iter().fold(Nfa::epsilon(), |acc, &c| {
                    acc.concat(&self.fixed_child_language(doc, c, &siblings))
                })
            };
            let mut contexts: Vec<Nfa> = Vec::with_capacity(positions.len() + 1);
            let mut prev = 0usize;
            for &position in positions {
                contexts.push(segment(&children[prev..position]));
                prev = position + 1;
            }
            contexts.push(segment(&children[prev..]));
            // The determinised content model comes from the problem cache:
            // synthesis re-enters here once per docking parent and once per
            // synthesised function, but each content model is determinised
            // at most once per problem.
            let content = cache.content_dfa_with_budget(label, budget).map_err(DesignError::from)?;
            let residual = if positions.len() == 1 {
                content.universal_context_residual_with_budget(&contexts[0], &contexts[1], budget)
            } else {
                content.uniform_context_residual_with_budget(&contexts, budget)
            }
            .map_err(DesignError::from)?;
            w = w.intersect(&residual);
            if w.is_empty() {
                break;
            }
        }
        self.confirm_candidate(doc, &f, &docking, &siblings, &w, cache, budget)
    }

    /// Perfect schemas for every called function of `doc`, each synthesised
    /// with the other functions keeping their declared schemas.
    pub fn perfect_schemas(
        &self,
        doc: &DistributedDoc,
    ) -> Result<BTreeMap<Symbol, RDtd>, DesignError> {
        doc.called_functions()
            .into_iter()
            .map(|f| self.perfect_schema(doc, f).map(|s| (f, s)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Candidate construction
    // ------------------------------------------------------------------

    /// The language of child words a single kernel child contributes to its
    /// parent: the declared (reduced) forest language for docking points of
    /// other functions, the singleton of its own label for plain elements.
    /// Callers never pass docking points of the synthesised function.
    fn fixed_child_language(
        &self,
        doc: &DistributedDoc,
        child: NodeId,
        siblings: &BTreeMap<Symbol, &ReducedFun>,
    ) -> Nfa {
        let label = doc.kernel().label(child);
        if let Some(reduced) = siblings.get(label) {
            reduced.forest().clone()
        } else {
            Nfa::symbol(*label)
        }
    }

    /// Materialises the candidate forest language `w` as a schema: a fresh
    /// start symbol whose content model is `w`, plus one rule per element
    /// name reachable from `w`, carrying the target's content model of that
    /// element restricted to productive names.
    fn build_perfect(&self, w: &Nfa, cache: &TargetCache) -> RDtd {
        let tau = self.doc_schema();
        let mut start = String::from("result");
        while tau.alphabet().contains(&Symbol::new(&start)) {
            start.push('_');
        }
        let mut schema = RDtd::new(RFormalism::Nfa, start.as_str());
        let trimmed = w.trim();
        let mut queue: VecDeque<Symbol> = trimmed.alphabet().iter().cloned().collect();
        let mut seen: BTreeSet<Symbol> = queue.iter().cloned().collect();
        schema.set_rule(start.as_str(), RSpec::Nfa(trimmed));
        while let Some(name) = queue.pop_front() {
            let content = cache
                .content_nfa(&name)
                .filter_symbols(|s| cache.productive().contains(s))
                .trim();
            for next in content.alphabet().iter() {
                if seen.insert(*next) {
                    queue.push_back(*next);
                }
            }
            schema.set_rule(name, RSpec::Nfa(content));
        }
        schema
    }

    // ------------------------------------------------------------------
    // The typecheck oracle
    // ------------------------------------------------------------------

    /// Submits the candidate to the typecheck oracle. On refutation the
    /// counterexample is explained: a violation independent of `f` means
    /// only the empty forest language typechecks (vacuously); otherwise,
    /// for interacting docking points, the refutation *proves* incomparable
    /// maximal languages exist (the candidate is an upper bound on every
    /// valid forest language); any other refutation is a broken invariant
    /// of the construction.
    #[allow(clippy::too_many_arguments)] // internal: the synthesis walk's full working set
    fn confirm_candidate(
        &self,
        doc: &DistributedDoc,
        f: &Symbol,
        docking: &BTreeMap<NodeId, Vec<usize>>,
        siblings: &BTreeMap<Symbol, &ReducedFun>,
        w: &Nfa,
        cache: &TargetCache,
        budget: &Budget,
    ) -> Result<RDtd, DesignError> {
        let schema = self.build_perfect(w, cache);
        let candidate = self.clone().with_function(*f, schema.clone());
        match candidate.typecheck_with_budget(doc, budget)? {
            TypingVerdict::Valid => Ok(schema),
            TypingVerdict::Invalid { counterexample, .. } => {
                if self.violation_independent_of(doc, docking, siblings, cache, budget)? {
                    let empty = self.build_perfect(&Nfa::empty(), cache);
                    let check = self.clone().with_function(*f, empty.clone());
                    match check.typecheck_with_budget(doc, budget)? {
                        TypingVerdict::Valid => Ok(empty),
                        TypingVerdict::Invalid { counterexample, .. } => {
                            Err(DesignError::InvariantViolation {
                                detail: format!(
                                    "the empty forest language for `{f}` still admits the \
                                     invalid extension `{counterexample}`"
                                ),
                            })
                        }
                    }
                } else if docking.values().any(|positions| positions.len() > 1) {
                    // Several docking points share a parent: the refuted
                    // upper bound proves incomparable maximal languages.
                    Err(DesignError::NoMaximalSchema { function: *f })
                } else {
                    Err(DesignError::InvariantViolation {
                        detail: format!(
                            "typecheck refuted the maximal perfect candidate for `{f}` \
                             with `{counterexample}`"
                        ),
                    })
                }
            }
        }
    }

    /// Whether the design violates the target for a reason no schema of the
    /// synthesised function can influence: a wrong root label, an undeclared
    /// kernel element, a kernel node without docking-point children whose
    /// realizable child words escape the target content model, or another
    /// function whose forests violate the target. (The checks mirror
    /// [`DesignProblem::verify_local`] with every constraint that depends on
    /// the synthesised function removed.)
    fn violation_independent_of(
        &self,
        doc: &DistributedDoc,
        docking: &BTreeMap<NodeId, Vec<usize>>,
        siblings: &BTreeMap<Symbol, &ReducedFun>,
        cache: &TargetCache,
        budget: &Budget,
    ) -> Result<bool, DesignError> {
        let kernel = doc.kernel();
        let tau = self.doc_schema();
        if kernel.root_label() != tau.start() {
            return Ok(true);
        }
        for node in kernel.document_order() {
            let label = kernel.label(node);
            if doc.is_function(label) {
                continue;
            }
            if !tau.alphabet().contains(label) {
                return Ok(true);
            }
            if docking.contains_key(&node) {
                continue;
            }
            let realizable = kernel.children(node).iter().fold(Nfa::epsilon(), |acc, &c| {
                acc.concat(&self.fixed_child_language(doc, c, siblings))
            });
            let verdict = str_included_with_budget(&realizable, cache.content_nfa(label), budget)
                .map_err(DesignError::from)?;
            if verdict.is_err() {
                return Ok(true);
            }
        }
        // Forests of the other functions: every reachable name must be
        // declared with a content model inside the target's.
        for sibling in siblings.values() {
            let reduced = sibling.schema();
            let mut queue: VecDeque<Symbol> = sibling
                .forest()
                .alphabet()
                .iter()
                .filter(|s| reduced.alphabet().contains(s))
                .cloned()
                .collect();
            let mut seen: BTreeSet<Symbol> = queue.iter().cloned().collect();
            while let Some(name) = queue.pop_front() {
                if !tau.alphabet().contains(&name) {
                    return Ok(true);
                }
                let content = reduced.content(&name).to_nfa();
                let verdict = str_included_with_budget(&content, cache.content_nfa(&name), budget)
                    .map_err(DesignError::from)?;
                if verdict.is_err() {
                    return Ok(true);
                }
                for next in content.alphabet().iter() {
                    if reduced.alphabet().contains(next) && seen.insert(*next) {
                        queue.push_back(*next);
                    }
                }
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::equiv::included as str_included;
    use dxml_automata::symbol::word;

    fn dtd(rules: &str) -> RDtd {
        RDtd::parse(RFormalism::Nre, rules).unwrap()
    }

    fn solve(problem: &DesignProblem, doc: &DistributedDoc, f: &str, schema: RDtd) -> bool {
        problem
            .clone()
            .with_function(f, schema)
            .typecheck(doc)
            .unwrap()
            .is_valid()
    }

    #[test]
    fn single_docking_point_residual() {
        // τ(s) = a, b* and the kernel is s(a f): the forest language is b*.
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let forest = perfect.content(perfect.start()).to_nfa();
        assert!(forest.accepts(&[]));
        assert!(forest.accepts(&word("b b b")));
        assert!(!forest.accepts(&word("a")));
        assert!(!forest.accepts(&word("b a")));
        // The inner `b` elements inherit the target's content model c?.
        let b_content = perfect.content(&Symbol::new("b")).to_nfa();
        assert!(b_content.accepts(&[]));
        assert!(b_content.accepts(&word("c")));
        assert!(!b_content.accepts(&word("c c")));
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn perfect_schema_respects_fixed_sibling_functions() {
        // τ(s) = (b, c)* with kernel s(g f): g is declared to return a
        // single `b`, so f must contribute c (b c)*.
        let problem = DesignProblem::new(dtd("s -> (b, c)*")).with_function("g", dtd("r -> b"));
        let doc = DistributedDoc::parse("s(g f)", ["g", "f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let forest = perfect.content(perfect.start()).to_nfa();
        assert!(forest.accepts(&word("c")));
        assert!(forest.accepts(&word("c b c")));
        assert!(!forest.accepts(&[]));
        assert!(!forest.accepts(&word("b c")));
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn unproductive_target_names_are_excluded() {
        // τ(s) = (a | d)* but d -> d is unproductive: the perfect forest
        // language is a*, and `d` does not appear in the schema at all.
        let problem = DesignProblem::new(dtd("s -> (a | d)*\nd -> d"));
        let doc = DistributedDoc::parse("s(f)", ["f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let forest = perfect.content(perfect.start()).to_nfa();
        assert!(forest.accepts(&word("a a")));
        assert!(!forest.accepts(&word("d")));
        assert!(!perfect.alphabet().contains(&Symbol::new("d")));
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn independent_violations_force_the_empty_forest() {
        // The kernel node `x` violates τ no matter what f returns, so only
        // the empty forest language (no extension at all) typechecks.
        let problem = DesignProblem::new(dtd("s -> x, b*\nx -> a"));
        let doc = DistributedDoc::parse("s(x f)", ["f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        assert!(perfect.content(perfect.start()).to_nfa().is_empty());
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn uncallable_and_vacuous_designs_are_errors() {
        let problem = DesignProblem::new(dtd("s -> a, b*"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        assert!(matches!(
            problem.perfect_schema(&doc, "g"),
            Err(DesignError::FunctionNotCalled { .. })
        ));
        // `a` is an element of the kernel, not a declared function.
        assert!(matches!(
            problem.perfect_schema(&doc, "a"),
            Err(DesignError::FunctionNotCalled { .. })
        ));
        // A sibling function with an empty language makes the design
        // vacuous: every schema typechecks, no maximal one exists.
        let vacuous = DesignProblem::new(dtd("s -> a, b*")).with_function("g", dtd("r -> r"));
        let doc2 = DistributedDoc::parse("s(a f g)", ["f", "g"]).unwrap();
        assert!(matches!(
            vacuous.perfect_schema(&doc2, "f"),
            Err(DesignError::NoMaximalSchema { .. })
        ));
        // A sibling function without a schema is reported as missing.
        let missing = DesignProblem::new(dtd("s -> a, b*"));
        assert!(matches!(
            missing.perfect_schema(&doc2, "f"),
            Err(DesignError::MissingFunctionSchema { .. })
        ));
    }

    #[test]
    fn interacting_docking_points_have_no_maximum() {
        // τ(s) = (a, a) | (b, b) with kernel s(f f): {a} and {b} are both
        // maximal forest languages, so no single maximal schema exists.
        let problem = DesignProblem::new(dtd("s -> a, a | b, b"));
        let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        assert!(matches!(
            problem.perfect_schema(&doc, "f"),
            Err(DesignError::NoMaximalSchema { .. })
        ));
    }

    #[test]
    fn compatible_repeated_docking_points_converge() {
        // τ(s) = a* with kernel s(f f): the candidate a* is valid as-is.
        let problem = DesignProblem::new(dtd("s -> a*"));
        let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let forest = perfect.content(perfect.start()).to_nfa();
        assert!(forest.accepts(&[]));
        assert!(forest.accepts(&word("a a a")));
        assert!(!forest.accepts(&word("b")));
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn repeated_docking_points_with_unique_empty_maximum() {
        // τ(s) = a with kernel s(f f): no word can be contributed twice and
        // concatenate to the single `a`, so the *unique* maximal forest
        // language is empty — not a NoMaximalSchema situation.
        let problem = DesignProblem::new(dtd("s -> a"));
        let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        assert!(perfect.content(perfect.start()).to_nfa().is_empty());
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn repeated_docking_points_with_nonempty_uniform_maximum() {
        // τ(s) = (a, b)* with kernel s(f f): the uniform candidate (ab)* is
        // closed under concatenation, hence valid — and it is the unique
        // maximum, which the plain two-sided residual can never find.
        let problem = DesignProblem::new(dtd("s -> (a, b)*"));
        let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let forest = perfect.content(perfect.start()).to_nfa();
        assert!(forest.accepts(&[]));
        assert!(forest.accepts(&word("a b")));
        assert!(forest.accepts(&word("a b a b")));
        assert!(!forest.accepts(&word("a")));
        assert!(!forest.accepts(&word("b a")));
        assert!(solve(&problem, &doc, "f", perfect));
    }

    #[test]
    fn perfect_schemas_covers_every_called_function() {
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b"))
            .with_function("g", dtd("r -> b"));
        let doc = DistributedDoc::parse("s(a f g)", ["f", "g"]).unwrap();
        let all = problem.perfect_schemas(&doc).unwrap();
        assert_eq!(all.len(), 2);
        for (f, schema) in &all {
            assert!(solve(&problem, &doc, f.as_str(), schema.clone()), "function {f}");
        }
    }

    #[test]
    fn declared_schemas_are_subsumed_by_the_perfect_one() {
        // Whenever the design typechecks with the declared schema, that
        // schema's forest language is included in the perfect one.
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b, b\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        let perfect = problem.perfect_schema(&doc, "f").unwrap();
        let declared = problem.fun_schema(&Symbol::new("f")).unwrap();
        let declared_forest = declared.content(declared.start()).to_nfa();
        let perfect_forest = perfect.content(perfect.start()).to_nfa();
        assert!(str_included(&declared_forest, &perfect_forest).is_ok());
    }
}
