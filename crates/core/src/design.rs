//! Design problems and typing verification (Sections 3–5).
//!
//! A [`DesignProblem`] pairs the *global type* `τ` a distributed document
//! must conform to with a schema `τf` for each function, describing the
//! documents the function may return. A kernel `T` **has type `τ`** iff every
//! possible extension `ext_T(t1…tn)` with `ti ∈ [τfi]` validates against `τ`
//! — the typing-verification problem.
//!
//! Two decision procedures are provided and proved against each other by the
//! test suite:
//!
//! * [`DesignProblem::typecheck`] — the general tree-automaton route: build a
//!   [`Nuta`] recognising exactly the extension language
//!   ([`DesignProblem::extension_nuta`]), then decide tree-language inclusion
//!   in `τ` (product/complement inside [`dxml_tree::uta`]), extracting a full
//!   counterexample document on failure.
//! * [`DesignProblem::verify_local`] — the DTD fast path: since DTD
//!   validation is per-node-local, the extension language is included in
//!   `[τ]` iff a family of *string*-language inclusions holds, each decided
//!   by [`dxml_automata::equiv::included`] with a counterexample word.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use dxml_automata::equiv::included_with_budget as str_included_with_budget;
use dxml_telemetry as telemetry;
use dxml_automata::{AutomataError, Budget, Dfa, Nfa, RSpec, Symbol};
use dxml_schema::{RDtd, SchemaError};
use dxml_tree::uta::Duta;
use dxml_tree::{uta, Nuta, XTree};

use crate::doc::DistributedDoc;
use crate::error::DesignError;

/// How many `(document, extension automaton)` pairs a problem memoises —
/// enough for the few documents a problem is typically checked against
/// back-to-back, small enough that stale documents do not accumulate.
const EXT_CACHE_CAP: usize = 4;

/// A function schema reduced once per problem (every surviving name
/// realizable, Definition 5) together with its *forest* language — the
/// root-word language its documents contribute at a docking point.
#[derive(Clone, Debug)]
pub struct ReducedFun {
    schema: RDtd,
    forest: Nfa,
    empty: bool,
}

impl ReducedFun {
    fn build(schema: &RDtd) -> ReducedFun {
        let schema = schema.reduce();
        let empty = schema.language_is_empty();
        let forest = schema.content(schema.start()).to_nfa();
        ReducedFun { schema, forest, empty }
    }

    /// The reduced schema.
    pub fn schema(&self) -> &RDtd {
        &self.schema
    }

    /// The forest language: the content model of the reduced start symbol.
    pub fn forest(&self) -> &Nfa {
        &self.forest
    }

    /// Whether the schema's language is empty (the function can return no
    /// document at all).
    pub fn language_is_empty(&self) -> bool {
        self.empty
    }
}

/// A lazily filled memo of determinised residual inputs: the key identifies
/// the *machine* (a target content model, or a per-label Moore machine) and
/// the value is its determinisation, shared by every residual taken against
/// it. Kept behind a `Mutex` so the enclosing cache stays usable through
/// `&self` (the synthesis loops hold the cache by shared reference).
#[derive(Default)]
pub(crate) struct ResidualDfaCache {
    memo: Mutex<BTreeMap<Symbol, Arc<Dfa>>>,
    /// Memo misses (machines actually determinised) and hits, kept as plain
    /// per-problem atomics so test assertions stay deterministic even when
    /// the process-global telemetry registry is shared with other work; the
    /// same events are mirrored into `cache.residual_dfa_builds`/`_hits`.
    builds: AtomicU64,
    hits: AtomicU64,
}

impl ResidualDfaCache {
    /// The determinisation of the machine identified by `key`, built by
    /// `make` on first use and shared afterwards.
    pub(crate) fn get_or_build(&self, key: &Symbol, make: impl FnOnce() -> Dfa) -> Arc<Dfa> {
        self.get_or_try_build(key, || Ok::<Dfa, AutomataError>(make()))
            .expect("an infallible build cannot fail")
    }

    /// Fallible twin of [`ResidualDfaCache::get_or_build`]: a `make` that
    /// errors (a budget trip) inserts nothing, so the memo stays clean and a
    /// retry with a larger budget rebuilds from scratch. A `make` that
    /// *panicked* on an earlier call poisons the mutex; the memo data is
    /// only ever mutated after a successful build, so the poison is benign
    /// and recovered from.
    pub(crate) fn get_or_try_build<E>(
        &self,
        key: &Symbol,
        make: impl FnOnce() -> Result<Dfa, E>,
    ) -> Result<Arc<Dfa>, E> {
        let mut memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(d) = memo.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::count(telemetry::Metric::ResidualDfaHits, 1);
            return Ok(Arc::clone(d));
        }
        let d = Arc::new(make()?);
        memo.insert(*key, Arc::clone(&d));
        self.builds.fetch_add(1, Ordering::Relaxed);
        telemetry::count(telemetry::Metric::ResidualDfaBuilds, 1);
        Ok(d)
    }

    /// Memo misses and hits so far, in that order.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.builds.load(Ordering::Relaxed), self.hits.load(Ordering::Relaxed))
    }
}

impl Clone for ResidualDfaCache {
    fn clone(&self) -> Self {
        ResidualDfaCache {
            memo: Mutex::new(
                self.memo.lock().map(|memo| memo.clone()).unwrap_or_default(),
            ),
            builds: AtomicU64::new(self.builds.load(Ordering::Relaxed)),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
        }
    }
}

impl fmt::Debug for ResidualDfaCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let machines = self.memo.lock().map_or(0, |memo| memo.len());
        write!(f, "ResidualDfaCache({machines} machines)")
    }
}

/// Problem artefacts that are expensive to build and independent of the
/// document being checked: computed lazily on first use and shared by
/// [`DesignProblem::typecheck`], [`DesignProblem::verify_local`] and the
/// perfect-schema synthesis of [`crate::perfect`]. Besides the
/// target-derived artefacts this caches the *reduced* function schemas, so
/// repeated local verification stops re-reducing them per call, and the
/// determinised content models the residual constructions consume, so
/// repeated synthesis stops re-determinising them per call.
#[derive(Clone, Debug)]
pub struct TargetCache {
    duta: Duta,
    content_nfas: BTreeMap<Symbol, Nfa>,
    epsilon: Nfa,
    productive: BTreeSet<Symbol>,
    reduced_fun: BTreeMap<Symbol, ReducedFun>,
    residual_dfas: ResidualDfaCache,
}

impl TargetCache {
    fn build(target: &RDtd, fun_schemas: &BTreeMap<Symbol, RDtd>) -> TargetCache {
        TargetCache::build_with(target, fun_schemas, &Budget::unlimited())
            .expect("the unlimited budget never trips")
    }

    /// Governed cache build: the target determinisation charges `budget`
    /// and a trip aborts the build *before* anything is cached, so a later
    /// retry (with a larger budget or none) starts clean.
    fn build_with(
        target: &RDtd,
        fun_schemas: &BTreeMap<Symbol, RDtd>,
        budget: &Budget,
    ) -> Result<TargetCache, AutomataError> {
        let _span = telemetry::span(telemetry::SpanKind::TargetCacheBuild);
        telemetry::count(telemetry::Metric::TargetCacheBuilds, 1);
        let nuta = target.to_uta();
        let duta = nuta.determinize_with_budget(target.alphabet(), budget)?;
        let content_nfas = target
            .alphabet()
            .iter()
            .map(|a| (*a, target.content(a).to_nfa()))
            .collect();
        let reduced_fun = fun_schemas
            .iter()
            .map(|(f, schema)| (*f, ReducedFun::build(schema)))
            .collect();
        Ok(TargetCache {
            duta,
            content_nfas,
            epsilon: Nfa::epsilon(),
            productive: target.bound_names(),
            reduced_fun,
            residual_dfas: ResidualDfaCache::default(),
        })
    }

    /// The target's tree automaton, determinised (bottom-up) over the
    /// target's own label universe.
    pub fn duta(&self) -> &Duta {
        &self.duta
    }

    /// The content model of `name` as an NFA (`{ε}` for names without a
    /// rule, matching the leaf-only convention of [`RDtd::content`]).
    pub fn content_nfa(&self, name: &Symbol) -> &Nfa {
        self.content_nfas.get(name).unwrap_or(&self.epsilon)
    }

    /// The *productive* (bound, Definition 5) element names of the target:
    /// the names that can root a complete valid subtree.
    pub fn productive(&self) -> &BTreeSet<Symbol> {
        &self.productive
    }

    /// The reduced schema of a declared function (with its forest language
    /// and emptiness), reduced once per problem.
    pub fn reduced_fun(&self, function: &Symbol) -> Option<&ReducedFun> {
        self.reduced_fun.get(function)
    }

    /// The determinisation of the content model of `name`, memoised per
    /// problem (keyed by the element name — the machine's identity within
    /// this cache). The universal/uniform context residuals of the
    /// perfect-typing synthesis consume this instead of re-determinising
    /// `content_nfa(name)` on every call.
    pub fn content_dfa(&self, name: &Symbol) -> Arc<Dfa> {
        self.residual_dfas
            .get_or_build(name, || Dfa::from_nfa(self.content_nfa(name)))
    }

    /// Governed variant of [`TargetCache::content_dfa`]: a budget trip
    /// during the determinisation caches nothing, so retrying with a larger
    /// budget rebuilds the machine cleanly.
    pub fn content_dfa_with_budget(
        &self,
        name: &Symbol,
        budget: &Budget,
    ) -> Result<Arc<Dfa>, AutomataError> {
        self.residual_dfas
            .get_or_try_build(name, || Dfa::from_nfa_with_budget(self.content_nfa(name), budget))
    }

    /// Residual-memo misses and hits so far (backs
    /// [`DesignProblem::cache_stats`]).
    pub(crate) fn residual_stats(&self) -> (u64, u64) {
        self.residual_dfas.stats()
    }
}

/// Point-in-time cache statistics of one design problem: how much of the
/// lazily built machinery exists and how well the memos are doing. The same
/// events feed the process-global [`dxml_telemetry`] counters
/// (`cache.residual_dfa_*`, `design.ext_memo_*`); these per-problem numbers
/// are kept separately so assertions about *this* problem stay exact no
/// matter what other problems in the process are doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Whether the target cache (determinised target automaton, content
    /// NFAs, reduced function schemas) has been built.
    pub target_cache_built: bool,
    /// Residual-DFA memo misses: content models actually determinised.
    pub residual_dfa_builds: u64,
    /// Residual-DFA memo hits: determinisations served from the memo.
    pub residual_dfa_hits: u64,
    /// Extension-automaton FIFO memo hits.
    pub ext_memo_hits: u64,
    /// Extension-automaton FIFO memo misses (automaton built).
    pub ext_memo_misses: u64,
}

/// A typing-verification instance: the target document schema `τ` plus one
/// schema per function symbol.
///
/// The determinised target automaton (and the other problem-derived
/// artefacts in [`TargetCache`], including the reduced function schemas) is
/// computed lazily on the first decision and reused by every subsequent
/// [`DesignProblem::typecheck`], [`DesignProblem::verify_local`] and
/// [`DesignProblem::perfect_schema`](crate::perfect) call. The *extension*
/// automaton is additionally memoised per document, so back-to-back
/// decisions on the same document stop rebuilding it. Mutating the problem
/// through [`DesignProblem::set_doc_schema`] or
/// [`DesignProblem::add_function`] invalidates both caches.
pub struct DesignProblem {
    doc_schema: RDtd,
    fun_schemas: BTreeMap<Symbol, RDtd>,
    target: OnceLock<TargetCache>,
    /// FIFO memo of extension automata, keyed by the document.
    ext_cache: Mutex<Vec<(DistributedDoc, Arc<Nuta>)>>,
    /// Extension-memo hits/misses for [`DesignProblem::cache_stats`]
    /// (mirrored into the global `design.ext_memo_*` telemetry counters).
    ext_hits: AtomicU64,
    ext_misses: AtomicU64,
}

impl Clone for DesignProblem {
    fn clone(&self) -> Self {
        DesignProblem {
            doc_schema: self.doc_schema.clone(),
            fun_schemas: self.fun_schemas.clone(),
            target: self.target.clone(),
            ext_cache: Mutex::new(
                self.ext_cache.lock().map(|entries| entries.clone()).unwrap_or_default(),
            ),
            ext_hits: AtomicU64::new(self.ext_hits.load(Ordering::Relaxed)),
            ext_misses: AtomicU64::new(self.ext_misses.load(Ordering::Relaxed)),
        }
    }
}

impl fmt::Debug for DesignProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DesignProblem")
            .field("doc_schema", &self.doc_schema)
            .field("fun_schemas", &self.fun_schemas)
            .field("target_cache_ready", &self.target_cache_ready())
            .finish()
    }
}

/// The outcome of typing verification.
#[derive(Clone, Debug)]
pub enum TypingVerdict {
    /// Every extension of the kernel validates against the target schema.
    Valid,
    /// Some extension violates the target schema.
    Invalid {
        /// A materialised document that is a possible extension but does not
        /// validate.
        counterexample: XTree,
        /// Why the counterexample fails validation.
        violation: SchemaError,
    },
}

impl TypingVerdict {
    /// Whether the verdict is [`TypingVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, TypingVerdict::Valid)
    }
}

/// Where a local-typing violation was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// At a kernel node, identified by its root-to-node label path.
    Kernel {
        /// `anc-str` of the kernel node.
        path: Vec<Symbol>,
    },
    /// Inside documents producible by a function.
    Function {
        /// The function symbol.
        function: Symbol,
    },
}

/// A violation found by the local (string-level) typing check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalViolation {
    /// The kernel root label differs from the target start symbol.
    RootLabel {
        /// The target start symbol.
        expected: Symbol,
        /// The kernel root label.
        found: Symbol,
    },
    /// An element name can occur in some extension but is not declared in the
    /// target schema.
    UnknownElement {
        /// The undeclared element name.
        element: Symbol,
        /// Where the element comes from.
        origin: Origin,
    },
    /// A realizable child word violates the target content model of
    /// `element`.
    Content {
        /// The element whose content model is violated.
        element: Symbol,
        /// A shortest realizable child word outside the target content model.
        counterexample: Vec<Symbol>,
        /// A rendering of the expected content model.
        expected: String,
        /// Where the bad word can be realised.
        origin: Origin,
    },
}

impl fmt::Display for LocalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let origin = |o: &Origin| match o {
            Origin::Kernel { path } => {
                let p: Vec<&str> = path.iter().map(Symbol::as_str).collect();
                format!("kernel node /{}", p.join("/"))
            }
            Origin::Function { function } => format!("documents returned by `{function}`"),
        };
        match self {
            LocalViolation::RootLabel { expected, found } => {
                write!(f, "kernel root is `{found}` but the target schema starts at `{expected}`")
            }
            LocalViolation::UnknownElement { element, origin: o } => {
                write!(f, "element `{element}` ({}) is not declared in the target schema", origin(o))
            }
            LocalViolation::Content { element, counterexample, expected, origin: o } => {
                let w: Vec<&str> = counterexample.iter().map(Symbol::as_str).collect();
                write!(
                    f,
                    "children [{}] of `{element}` ({}) are possible but do not match {expected}",
                    w.join(" "),
                    origin(o)
                )
            }
        }
    }
}

/// The outcome of the local typing check.
#[derive(Clone, Debug)]
pub enum LocalVerdict {
    /// All local inclusions hold; every extension validates.
    Valid,
    /// A local inclusion fails; the violation is realizable in some
    /// extension.
    Invalid(LocalViolation),
}

impl LocalVerdict {
    /// Whether the verdict is [`LocalVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, LocalVerdict::Valid)
    }
}

impl DesignProblem {
    /// Creates a design problem with no function schemas.
    pub fn new(doc_schema: RDtd) -> DesignProblem {
        DesignProblem {
            doc_schema,
            fun_schemas: BTreeMap::new(),
            target: OnceLock::new(),
            ext_cache: Mutex::new(Vec::new()),
            ext_hits: AtomicU64::new(0),
            ext_misses: AtomicU64::new(0),
        }
    }

    /// Declares the schema of a function (builder style).
    pub fn with_function(mut self, function: impl Into<Symbol>, schema: RDtd) -> DesignProblem {
        self.add_function(function, schema);
        self
    }

    /// Declares the schema of a function, invalidating the cached
    /// problem artefacts (the reduced form of the new schema is cached, and
    /// the memoised extension automata depend on the function schemas).
    pub fn add_function(&mut self, function: impl Into<Symbol>, schema: RDtd) {
        self.fun_schemas.insert(function.into(), schema);
        self.invalidate_caches();
    }

    /// The target document schema `τ`.
    pub fn doc_schema(&self) -> &RDtd {
        &self.doc_schema
    }

    /// Replaces the target document schema, invalidating the cached
    /// determinised target.
    pub fn set_doc_schema(&mut self, doc_schema: RDtd) {
        self.doc_schema = doc_schema;
        self.invalidate_caches();
    }

    fn invalidate_caches(&mut self) {
        self.target = OnceLock::new();
        if let Ok(entries) = self.ext_cache.get_mut() {
            entries.clear();
        }
    }

    /// The declared function schemas.
    pub fn fun_schemas(&self) -> &BTreeMap<Symbol, RDtd> {
        &self.fun_schemas
    }

    /// The schema of a function, if declared.
    pub fn fun_schema(&self, function: &Symbol) -> Option<&RDtd> {
        self.fun_schemas.get(function)
    }

    /// Every content model of the problem — the target schema's rules
    /// followed by each function schema's rules — paired with a stable
    /// human-readable location in the style of the `dxml-analysis`
    /// diagnostics (`target schema: element `a``, `schema of function `f`:
    /// element `b``). This is the budget-synthesis entry point: the static
    /// cost model in `dxml-analysis::cost` brackets the determinisation
    /// cost of exactly these models to recommend step/state quotas.
    pub fn content_models(&self) -> Vec<(String, RSpec)> {
        let mut out = Vec::new();
        for (name, spec) in self.doc_schema.rules() {
            out.push((format!("target schema: element `{name}`"), spec.clone()));
        }
        for (f, schema) in &self.fun_schemas {
            for (name, spec) in schema.rules() {
                out.push((format!("schema of function `{f}`: element `{name}`"), spec.clone()));
            }
        }
        out
    }

    /// The lazily built problem artefacts (determinised target automaton,
    /// content NFAs, productive names, reduced function schemas). The first
    /// call pays for the determinisation and the reductions; later calls
    /// are free.
    pub fn target_cache(&self) -> &TargetCache {
        self.target.get_or_init(|| TargetCache::build(&self.doc_schema, &self.fun_schemas))
    }

    /// Governed variant of [`DesignProblem::target_cache`]: the cold build
    /// charges `budget`, and a trip propagates *without* initialising the
    /// cache cell — the cell is only set from a fully built cache, so a
    /// tripped build leaves the problem exactly as it was and a retry (with
    /// any budget) rebuilds from scratch.
    pub fn target_cache_with_budget(&self, budget: &Budget) -> Result<&TargetCache, DesignError> {
        if let Some(cache) = self.target.get() {
            return Ok(cache);
        }
        let built = TargetCache::build_with(&self.doc_schema, &self.fun_schemas, budget)?;
        Ok(self.target.get_or_init(|| built))
    }

    /// Whether the target cache has already been built (used by tests and
    /// benches to pin that repeated decisions do not re-determinise).
    pub fn target_cache_ready(&self) -> bool {
        self.target.get().is_some()
    }

    /// Point-in-time statistics of this problem's caches: target-cache
    /// readiness, residual-DFA memo builds/hits and extension-memo
    /// hits/misses. Exact for this problem regardless of other work in the
    /// process; the same events also feed the global [`dxml_telemetry`]
    /// counters.
    pub fn cache_stats(&self) -> CacheStats {
        let (residual_dfa_builds, residual_dfa_hits) = self
            .target
            .get()
            .map_or((0, 0), TargetCache::residual_stats);
        CacheStats {
            target_cache_built: self.target_cache_ready(),
            residual_dfa_builds,
            residual_dfa_hits,
            ext_memo_hits: self.ext_hits.load(Ordering::Relaxed),
            ext_memo_misses: self.ext_misses.load(Ordering::Relaxed),
        }
    }

    fn require_schemas(&self, doc: &DistributedDoc) -> Result<(), DesignError> {
        for f in doc.called_functions() {
            if !self.fun_schemas.contains_key(&f) {
                return Err(DesignError::MissingFunctionSchema { function: f });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Extension language as a tree automaton
    // ------------------------------------------------------------------

    /// A [`Nuta`] recognising exactly the extensions of `doc`: the kernel
    /// with every docking point `f` replaced by a forest of `τf`-valid trees
    /// whose root-label word matches the content model of `τf`'s start
    /// symbol.
    ///
    /// States are `#k<i>` for kernel node `i` and `<f>$<a>` for element `a`
    /// of function `f`'s schema (the `$`/`#` mangling cannot collide with
    /// parsed element names). Each call site expands independently, so the
    /// automaton over-approximates snapshot materialisation when the same
    /// function occurs twice — matching the paper, where every docking point
    /// is its own call.
    ///
    /// The automaton is memoised per document (FIFO of the last few
    /// documents): back-to-back decisions on the same document hand back
    /// the very same `Arc` without rebuilding. Mutating the problem clears
    /// the memo.
    pub fn extension_nuta(&self, doc: &DistributedDoc) -> Result<Arc<Nuta>, DesignError> {
        self.require_schemas(doc)?;
        if let Ok(entries) = self.ext_cache.lock() {
            if let Some((_, ext)) = entries.iter().find(|(d, _)| d == doc) {
                self.ext_hits.fetch_add(1, Ordering::Relaxed);
                telemetry::count(telemetry::Metric::ExtMemoHits, 1);
                return Ok(Arc::clone(ext));
            }
        }
        self.ext_misses.fetch_add(1, Ordering::Relaxed);
        telemetry::count(telemetry::Metric::ExtMemoMisses, 1);
        let ext = Arc::new(self.build_extension_nuta(doc));
        if let Ok(mut entries) = self.ext_cache.lock() {
            if entries.len() >= EXT_CACHE_CAP {
                entries.remove(0);
            }
            entries.push((doc.clone(), Arc::clone(&ext)));
        }
        Ok(ext)
    }

    /// Builds the extension automaton (no memoisation; callers go through
    /// [`DesignProblem::extension_nuta`]).
    fn build_extension_nuta(&self, doc: &DistributedDoc) -> Nuta {
        let kernel = doc.kernel();
        let mut a = Nuta::new();

        // Rules for the trees producible by each called function.
        let mut forest_nfas: BTreeMap<Symbol, Nfa> = BTreeMap::new();
        for f in doc.called_functions() {
            let schema = &self.fun_schemas[&f];
            let prefix = |name: &Symbol| Symbol::new(format!("{f}${name}"));
            for name in schema.alphabet().iter() {
                let content = schema.content(name).to_nfa().map_symbols(prefix);
                a.set_rule(prefix(name), *name, content);
            }
            let forest = schema.content(schema.start()).to_nfa().map_symbols(prefix);
            forest_nfas.insert(f, forest);
        }

        // One state per kernel node; the content of a node concatenates its
        // children, with each docking point contributing its forest language.
        let state_of = |node: usize| Symbol::new(format!("#k{node}"));
        for node in kernel.document_order() {
            if doc.is_function(kernel.label(node)) {
                continue;
            }
            let mut content = Nfa::epsilon();
            for &child in kernel.children(node) {
                let label = kernel.label(child);
                let piece = match forest_nfas.get(label) {
                    Some(forest) => forest.clone(),
                    None => Nfa::symbol(state_of(child)),
                };
                content = content.concat(&piece);
            }
            a.set_rule(state_of(node), *kernel.label(node), content);
        }
        a.set_final(state_of(kernel.root()));
        a
    }

    // ------------------------------------------------------------------
    // Typing verification
    // ------------------------------------------------------------------

    /// Decides whether every extension of `doc` validates against
    /// [`DesignProblem::doc_schema`], via tree-language inclusion of the
    /// extension automaton in the target automaton. On failure the verdict
    /// carries a full counterexample document and the validation error it
    /// triggers.
    ///
    /// The target automaton is determinised once per problem (see
    /// [`DesignProblem::target_cache`]); repeated calls only pay for the
    /// extension side.
    pub fn typecheck(&self, doc: &DistributedDoc) -> Result<TypingVerdict, DesignError> {
        self.typecheck_with_budget(doc, &Budget::unlimited())
    }

    /// Governed variant of [`DesignProblem::typecheck`]: the target
    /// determinisation (on a cold cache), the extension-side determinisation
    /// and the product walk all charge `budget`; a trip surfaces as
    /// [`DesignError::BudgetExceeded`] and leaves every cache rebuildable.
    pub fn typecheck_with_budget(
        &self,
        doc: &DistributedDoc,
        budget: &Budget,
    ) -> Result<TypingVerdict, DesignError> {
        let _span = telemetry::span(telemetry::SpanKind::Typecheck);
        budget.check_interrupts().map_err(DesignError::from)?;
        let ext = self.extension_nuta(doc)?;
        let cache = self.target_cache_with_budget(budget)?;
        match uta::included_in_duta_with_budget(&ext, cache.duta(), budget)
            .map_err(DesignError::from)?
        {
            Ok(()) => Ok(TypingVerdict::Valid),
            Err(counterexample) => match self.doc_schema.validate(&counterexample) {
                Err(violation) => Ok(TypingVerdict::Invalid { counterexample, violation }),
                Ok(()) => Err(DesignError::InvariantViolation {
                    detail: format!(
                        "tree-inclusion counterexample `{counterexample}` unexpectedly \
                         validates against the target schema"
                    ),
                }),
            },
        }
    }

    /// The DTD fast path: local typing verification by string-language
    /// inclusions only (no tree automata). Sound and complete for DTD
    /// targets because DTD validation is per-node-local; agrees with
    /// [`DesignProblem::typecheck`] on every input (asserted by the tests).
    ///
    /// Checks performed:
    ///
    /// 1. the kernel root label is the target start symbol;
    /// 2. for every kernel node, the language of realizable child words is
    ///    included in the target content model of its label;
    /// 3. for every element name reachable inside a forest attached by a
    ///    function `f`, the name is declared in the target and the (reduced)
    ///    content model of `τf` is included in the target's.
    ///
    /// If some called function has an empty schema language no extension
    /// exists and the verdict is vacuously valid.
    pub fn verify_local(&self, doc: &DistributedDoc) -> Result<LocalVerdict, DesignError> {
        self.verify_local_with_budget(doc, &Budget::unlimited())
    }

    /// Governed variant of [`DesignProblem::verify_local`]: every
    /// string-language inclusion (and the cold target-cache build) charges
    /// `budget`; a trip surfaces as [`DesignError::BudgetExceeded`].
    ///
    /// # Panics
    ///
    /// Only on a broken internal invariant (a call site surviving
    /// `require_schemas` without a reduced schema).
    pub fn verify_local_with_budget(
        &self,
        doc: &DistributedDoc,
        budget: &Budget,
    ) -> Result<LocalVerdict, DesignError> {
        let _span = telemetry::span(telemetry::SpanKind::VerifyLocal);
        budget.check_interrupts().map_err(DesignError::from)?;
        self.require_schemas(doc)?;
        let kernel = doc.kernel();
        let tau = &self.doc_schema;
        let cache = self.target_cache_with_budget(budget)?;
        let called = doc.called_functions();

        // The reduced function schemas (every surviving name realizable —
        // what makes counterexample words realizable and the check
        // complete) come from the problem cache: reduced once, reused by
        // every later call.
        let mut reduced: BTreeMap<Symbol, &ReducedFun> = BTreeMap::new();
        for f in &called {
            let r = cache.reduced_fun(f).expect("require_schemas admitted only declared functions");
            if r.language_is_empty() {
                return Ok(LocalVerdict::Valid);
            }
            reduced.insert(*f, r);
        }

        if kernel.root_label() != tau.start() {
            return Ok(LocalVerdict::Invalid(LocalViolation::RootLabel {
                expected: *tau.start(),
                found: *kernel.root_label(),
            }));
        }

        // (2) kernel nodes: realizable child words vs target content models.
        for node in kernel.document_order() {
            let label = kernel.label(node);
            if doc.is_function(label) {
                continue;
            }
            let origin = || Origin::Kernel { path: kernel.anc_str(node) };
            if !tau.alphabet().contains(label) {
                return Ok(LocalVerdict::Invalid(LocalViolation::UnknownElement {
                    element: *label,
                    origin: origin(),
                }));
            }
            let mut realizable = Nfa::epsilon();
            for &child in kernel.children(node) {
                let child_label = kernel.label(child);
                let piece = match reduced.get(child_label) {
                    Some(r) => r.forest().clone(),
                    None => Nfa::symbol(*child_label),
                };
                realizable = realizable.concat(&piece);
            }
            let verdict = str_included_with_budget(&realizable, cache.content_nfa(label), budget)
                .map_err(DesignError::from)?;
            if let Err(ce) = verdict {
                return Ok(LocalVerdict::Invalid(LocalViolation::Content {
                    element: *label,
                    counterexample: ce.word,
                    expected: format!("{}", tau.content(label)),
                    origin: origin(),
                }));
            }
        }

        // (3) function forests: every name reachable below an attached root.
        for f in &called {
            let r = reduced[f].schema();
            let mut seen: BTreeSet<Symbol> = r
                .content(r.start())
                .alphabet()
                .iter()
                .filter(|s| r.alphabet().contains(s))
                .cloned()
                .collect();
            let mut queue: VecDeque<Symbol> = seen.iter().cloned().collect();
            while let Some(name) = queue.pop_front() {
                if !tau.alphabet().contains(&name) {
                    return Ok(LocalVerdict::Invalid(LocalViolation::UnknownElement {
                        element: name,
                        origin: Origin::Function { function: *f },
                    }));
                }
                let content = r.content(&name);
                let verdict =
                    str_included_with_budget(&content.to_nfa(), cache.content_nfa(&name), budget)
                        .map_err(DesignError::from)?;
                if let Err(ce) = verdict {
                    return Ok(LocalVerdict::Invalid(LocalViolation::Content {
                        element: name,
                        counterexample: ce.word,
                        expected: format!("{}", tau.content(&name)),
                        origin: Origin::Function { function: *f },
                    }));
                }
                for next in content.alphabet().iter() {
                    if r.alphabet().contains(next) && seen.insert(*next) {
                        queue.push_back(*next);
                    }
                }
            }
        }

        Ok(LocalVerdict::Valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::RFormalism;
    use dxml_tree::term::parse_term;

    fn dtd(rules: &str) -> RDtd {
        RDtd::parse(RFormalism::Nre, rules).unwrap()
    }

    fn agree(problem: &DesignProblem, doc: &DistributedDoc) -> bool {
        let global = problem.typecheck(doc).unwrap();
        let local = problem.verify_local(doc).unwrap();
        assert_eq!(
            global.is_valid(),
            local.is_valid(),
            "typecheck ({global:?}) and verify_local ({local:?}) disagree on {doc:?}"
        );
        global.is_valid()
    }

    #[test]
    fn valid_typing_accepts() {
        let target = dtd("s -> a, b*\nb -> c?");
        let problem = DesignProblem::new(target).with_function("f", dtd("r -> b, b\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        assert!(agree(&problem, &doc));
    }

    #[test]
    fn invalid_typing_yields_counterexample() {
        let target = dtd("s -> a, b*\nb -> c?");
        // f may return roots whose b-children contain a `d`, unknown to τ.
        let problem = DesignProblem::new(target.clone()).with_function("f", dtd("r -> b*\nb -> d?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        assert!(!agree(&problem, &doc));
        match problem.typecheck(&doc).unwrap() {
            TypingVerdict::Invalid { counterexample, violation } => {
                assert!(!target.accepts(&counterexample));
                assert!(problem.extension_nuta(&doc).unwrap().accepts(&counterexample));
                let _ = format!("{violation}");
            }
            TypingVerdict::Valid => panic!("expected invalid"),
        }
    }

    #[test]
    fn wrong_root_and_unknown_kernel_element() {
        let target = dtd("s -> a*");
        let problem = DesignProblem::new(target);
        let wrong_root = DistributedDoc::parse("t(a)", [] as [&str; 0]).unwrap();
        assert!(!agree(&problem, &wrong_root));
        assert!(matches!(
            problem.verify_local(&wrong_root).unwrap(),
            LocalVerdict::Invalid(LocalViolation::RootLabel { .. })
        ));
        let unknown = DistributedDoc::parse("s(a x)", [] as [&str; 0]).unwrap();
        assert!(!agree(&problem, &unknown));
    }

    #[test]
    fn empty_function_language_is_vacuously_valid() {
        let target = dtd("s -> a");
        // f's schema has an empty language (r -> r never bottoms out), so no
        // extension exists at all.
        let problem = DesignProblem::new(target).with_function("f", dtd("r -> r"));
        let doc = DistributedDoc::parse("s(f)", ["f"]).unwrap();
        assert!(agree(&problem, &doc));
    }

    #[test]
    fn missing_schema_is_an_error() {
        let problem = DesignProblem::new(dtd("s -> a"));
        let doc = DistributedDoc::parse("s(f)", ["f"]).unwrap();
        assert!(matches!(
            problem.typecheck(&doc),
            Err(DesignError::MissingFunctionSchema { .. })
        ));
        assert!(problem.fun_schema(&Symbol::new("f")).is_none());
    }

    #[test]
    fn forest_word_interleaves_with_kernel_children() {
        // τ requires a (b c)* content; f supplies `b c` pairs between the
        // kernel's own children.
        let target = dtd("s -> (b, c)*");
        let good = DesignProblem::new(target.clone()).with_function("f", dtd("r -> (b, c)*"));
        let doc = DistributedDoc::parse("s(b c f)", ["f"]).unwrap();
        assert!(agree(&good, &doc));
        // A function returning a lone `b` forest breaks the pairing.
        let bad = DesignProblem::new(target).with_function("f", dtd("r -> b"));
        assert!(!agree(&bad, &doc));
    }

    #[test]
    fn two_call_sites_expand_independently() {
        let target = dtd("s -> a, a");
        let problem = DesignProblem::new(target).with_function("f", dtd("r -> a"));
        let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
        assert!(agree(&problem, &doc));
    }

    #[test]
    fn typecheck_reuses_the_cached_target() {
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b, b\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        assert!(!problem.target_cache_ready());
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(problem.target_cache_ready());
        // Repeated decisions hand back the very same determinised target.
        let first = problem.target_cache().duta() as *const _;
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        let second = problem.target_cache().duta() as *const _;
        assert!(std::ptr::eq(first, second), "typecheck must not re-determinise the target");
        // Replacing the target invalidates the cache.
        let mut changed = problem.clone();
        changed.set_doc_schema(dtd("s -> a"));
        assert!(!changed.target_cache_ready());
        assert!(!changed.typecheck(&doc).unwrap().is_valid());
    }

    #[test]
    fn verify_local_reuses_cached_reduced_schemas() {
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b, b\nb -> c?\njunk -> junk"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        let f = Symbol::new("f");
        let first = problem.target_cache().reduced_fun(&f).unwrap() as *const _;
        // The cached reduction dropped the unprofitable `junk` rule.
        assert!(!problem
            .target_cache()
            .reduced_fun(&f)
            .unwrap()
            .schema()
            .alphabet()
            .contains(&Symbol::new("junk")));
        assert!(problem.verify_local(&doc).unwrap().is_valid());
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        let second = problem.target_cache().reduced_fun(&f).unwrap() as *const _;
        assert!(std::ptr::eq(first, second), "verify_local must not re-reduce function schemas");
        // Declaring a new function invalidates the problem cache.
        let mut changed = problem.clone();
        changed.add_function("g", dtd("r -> b"));
        assert!(!changed.target_cache_ready());
        assert!(changed.target_cache().reduced_fun(&Symbol::new("g")).is_some());
    }

    #[test]
    fn extension_nuta_is_memoised_per_document() {
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b, b\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        let first = problem.extension_nuta(&doc).unwrap();
        let second = problem.extension_nuta(&doc).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same document must reuse the extension automaton");
        // typecheck goes through the same memo.
        assert!(problem.typecheck(&doc).unwrap().is_valid());
        assert!(Arc::ptr_eq(&first, &problem.extension_nuta(&doc).unwrap()));
        // A different document gets its own automaton …
        let other = DistributedDoc::parse("s(a b f)", ["f"]).unwrap();
        let third = problem.extension_nuta(&other).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        // … and both stay cached side by side.
        assert!(Arc::ptr_eq(&third, &problem.extension_nuta(&other).unwrap()));
        assert!(Arc::ptr_eq(&first, &problem.extension_nuta(&doc).unwrap()));
        // Mutating the schemas drops the memo.
        let mut changed = problem.clone();
        changed.add_function("f", dtd("r -> b"));
        assert!(!Arc::ptr_eq(&first, &changed.extension_nuta(&doc).unwrap()));
        // The FIFO is bounded: flooding it evicts the oldest entry.
        for i in 0..super::EXT_CACHE_CAP {
            let flood = DistributedDoc::parse(&format!("s(a {} f)", "b ".repeat(i + 2)), ["f"])
                .unwrap();
            problem.extension_nuta(&flood).unwrap();
        }
        assert!(!Arc::ptr_eq(&first, &problem.extension_nuta(&doc).unwrap()));
    }

    #[test]
    fn agreement_on_unproductive_recursive_schemas() {
        // Target with an empty language: `a -> a` never bottoms out, and the
        // start symbol requires an `a`. The kernel r(a) cannot validate; both
        // routes must refute, exercising the `bound_names` fixpoint.
        let empty_target = dtd("r -> a\na -> a");
        let problem = DesignProblem::new(empty_target);
        let doc = DistributedDoc::parse("r(a)", [] as [&str; 0]).unwrap();
        assert!(!agree(&problem, &doc));

        // Target whose unproductive branch is avoidable: `s -> b | a` with
        // `a -> a`; a kernel using only `b` stays valid.
        let avoidable = dtd("s -> b | a\na -> a");
        let problem2 = DesignProblem::new(avoidable.clone());
        assert!(agree(&problem2, &DistributedDoc::parse("s(b)", [] as [&str; 0]).unwrap()));
        assert!(!agree(&problem2, &DistributedDoc::parse("s(a)", [] as [&str; 0]).unwrap()));

        // Function schema with an unproductive-recursive branch: the reduced
        // forest language is just `b`, and the design is valid.
        let problem3 = DesignProblem::new(dtd("s -> b*"))
            .with_function("f", dtd("r -> b | a\na -> a"));
        let doc3 = DistributedDoc::parse("s(f)", ["f"]).unwrap();
        assert!(agree(&problem3, &doc3));

        // Mutually-recursive unproductive function schema: empty language,
        // vacuously valid (no extension exists).
        let problem4 = DesignProblem::new(dtd("s -> a"))
            .with_function("f", dtd("r -> a\na -> b\nb -> a"));
        assert!(agree(&problem4, &doc3));
    }

    #[test]
    fn agreement_when_element_names_overlap_function_names() {
        // The target declares an *element* literally named `f`, while the
        // kernel also calls a *function* named `f`. The docking-point leaf is
        // a call; the trees the call returns contain `f`-elements.
        let target = dtd("s -> f, a\nf -> a?");
        let problem = DesignProblem::new(target.clone())
            .with_function("f", dtd("r -> f\nf -> a?"));
        let doc = DistributedDoc::parse("s(f a)", ["f"]).unwrap();
        assert!(agree(&problem, &doc));

        // An f-forest violating the target's `f` content model is caught.
        let bad = DesignProblem::new(target).with_function("f", dtd("r -> f\nf -> a, a"));
        assert!(!agree(&bad, &doc));

        // Elements whose names textually embed the mangling prefixes used by
        // the extension automaton (`f$…`, `#k…`) must not collide. `$` is
        // not parseable syntax, so the schemas and kernel are built directly.
        let fa = Symbol::new("f$a");
        let mut tricky_target = RDtd::new(dxml_automata::RFormalism::Nre, "s");
        tricky_target.set_rule(
            "s",
            dxml_automata::RSpec::Nre(dxml_automata::Regex::concat(vec![
                dxml_automata::Regex::Sym(fa),
                dxml_automata::Regex::sym("#k0").star(),
            ])),
        );
        let mut gschema = RDtd::new(dxml_automata::RFormalism::Nre, "r");
        gschema.set_rule("r", dxml_automata::RSpec::Nre(dxml_automata::Regex::sym("#k0").star()));
        let tricky = DesignProblem::new(tricky_target).with_function("g", gschema);
        let kernel = dxml_tree::XTree::node(
            Symbol::new("s"),
            vec![dxml_tree::XTree::leaf(fa), dxml_tree::XTree::leaf(Symbol::new("g"))],
        );
        let tricky_doc = DistributedDoc::new(kernel, ["g"]).unwrap();
        assert!(agree(&tricky, &tricky_doc));
    }

    #[test]
    fn extension_nuta_recognises_materialisations() {
        let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"))
            .with_function("f", dtd("r -> b, b\nb -> c?"));
        let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
        let ext = problem.extension_nuta(&doc).unwrap();
        assert!(ext.accepts(&parse_term("s(a b b)").unwrap()));
        assert!(ext.accepts(&parse_term("s(a b(c) b)").unwrap()));
        // Not an extension: the forest must contribute exactly two b's.
        assert!(!ext.accepts(&parse_term("s(a b)").unwrap()));
        assert!(!ext.accepts(&parse_term("s(a)").unwrap()));
    }
}
