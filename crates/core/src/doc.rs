//! Distributed documents: kernels with typed function calls at the leaves.
//!
//! Section 2.3 of the paper models a distributed document as a *kernel*
//! `T`: an XML tree some of whose leaves are **docking points** labelled with
//! function symbols `f ∈ Σf`. Calling `f` returns a document `t`; the call
//! node is replaced by the forest of trees directly connected to the root of
//! `t`. The fully materialised document `ext_T(t1…tn)` is the *extension* of
//! the kernel.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dxml_automata::Symbol;
use dxml_tree::term::parse_term;
use dxml_tree::{NodeId, XForest, XTree};

use crate::error::DesignError;

/// A kernel document together with the set of function symbols that label its
/// docking points.
///
/// Invariants (checked at construction): function symbols occur only at
/// leaves, and the root is not a function call.
#[derive(Clone, PartialEq, Eq)]
pub struct DistributedDoc {
    kernel: XTree,
    functions: BTreeSet<Symbol>,
}

impl DistributedDoc {
    /// Wraps a kernel tree, declaring which symbols are function calls.
    pub fn new<I, S>(kernel: XTree, functions: I) -> Result<DistributedDoc, DesignError>
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let functions: BTreeSet<Symbol> = functions.into_iter().map(Into::into).collect();
        if functions.contains(kernel.root_label()) {
            return Err(DesignError::RootIsFunction { function: *kernel.root_label() });
        }
        for node in kernel.document_order() {
            if functions.contains(kernel.label(node)) && !kernel.is_leaf(node) {
                return Err(DesignError::FunctionNotLeaf { function: *kernel.label(node) });
            }
        }
        Ok(DistributedDoc { kernel, functions })
    }

    /// Parses a kernel from the paper's term notation
    /// (`s(a f1 b(f2))`) and declares the function symbols.
    pub fn parse<I, S>(term: &str, functions: I) -> Result<DistributedDoc, DesignError>
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        DistributedDoc::new(parse_term(term)?, functions)
    }

    /// The kernel tree (function calls included as leaves).
    pub fn kernel(&self) -> &XTree {
        &self.kernel
    }

    /// The declared function symbols `Σf`.
    pub fn functions(&self) -> &BTreeSet<Symbol> {
        &self.functions
    }

    /// Whether a symbol is a declared function.
    pub fn is_function(&self, sym: &Symbol) -> bool {
        self.functions.contains(sym)
    }

    /// The docking points (function-call nodes), in document order.
    pub fn function_nodes(&self) -> Vec<NodeId> {
        self.kernel
            .document_order()
            .into_iter()
            .filter(|&n| self.functions.contains(self.kernel.label(n)))
            .collect()
    }

    /// The function symbols that actually occur in the kernel.
    pub fn called_functions(&self) -> BTreeSet<Symbol> {
        self.function_nodes()
            .into_iter()
            .map(|n| *self.kernel.label(n))
            .collect()
    }

    /// Whether the document is fully materialised (no calls left).
    pub fn is_plain(&self) -> bool {
        self.function_nodes().is_empty()
    }

    /// Number of docking points.
    pub fn num_calls(&self) -> usize {
        self.function_nodes().len()
    }

    /// The extension of the kernel under the given call results: every
    /// docking point labelled `f` is replaced by the forest of trees directly
    /// connected to the root of `results[f]` (Section 2.3). All occurrences
    /// of the same function symbol receive the same result — a *snapshot*
    /// materialisation.
    pub fn materialize(&self, results: &BTreeMap<Symbol, XForest>) -> Result<XTree, DesignError> {
        for f in self.called_functions() {
            if !results.contains_key(&f) {
                return Err(DesignError::MissingFunctionResult { function: f });
            }
        }
        Ok(self
            .kernel
            .replace_with_forest(|l| self.functions.contains(l), |l| results[l].clone()))
    }
}

impl fmt::Debug for DistributedDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let funs: Vec<&str> = self.functions.iter().map(Symbol::as_str).collect();
        write!(f, "{} with functions {{{}}}", self.kernel, funs.join(", "))
    }
}

impl fmt::Display for DistributedDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_tree::term::parse_forest;

    #[test]
    fn construction_invariants() {
        assert!(DistributedDoc::parse("s(a f1 b(f2))", ["f1", "f2"]).is_ok());
        assert!(matches!(
            DistributedDoc::parse("f1(a)", ["f1"]),
            Err(DesignError::RootIsFunction { .. })
        ));
        assert!(matches!(
            DistributedDoc::parse("s(f1(a))", ["f1"]),
            Err(DesignError::FunctionNotLeaf { .. })
        ));
        assert!(DistributedDoc::parse("s((", ["f1"]).is_err());
    }

    #[test]
    fn call_accessors() {
        let doc = DistributedDoc::parse("s(a f1 b(f2) f1)", ["f1", "f2", "funused"]).unwrap();
        assert_eq!(doc.num_calls(), 3);
        assert_eq!(doc.called_functions().len(), 2);
        assert!(!doc.is_plain());
        assert!(doc.is_function(&Symbol::new("funused")));
        let plain = DistributedDoc::parse("s(a b)", ["f1"]).unwrap();
        assert!(plain.is_plain());
    }

    #[test]
    fn materialisation_matches_paper_example() {
        // Section 2.3: T0 = s(a f1 b(f2)), f1 ↦ s1(c(d d)), f2 ↦ s2(d(e f)).
        let doc = DistributedDoc::parse("s(a f1 b(f2))", ["f1", "f2"]).unwrap();
        let mut results = BTreeMap::new();
        results.insert(Symbol::new("f1"), parse_forest("c(d d)").unwrap());
        results.insert(Symbol::new("f2"), parse_forest("d(e f)").unwrap());
        let ext = doc.materialize(&results).unwrap();
        assert_eq!(ext, parse_term("s(a c(d d) b(d(e f)))").unwrap());

        let missing = BTreeMap::new();
        assert!(matches!(
            doc.materialize(&missing),
            Err(DesignError::MissingFunctionResult { .. })
        ));
    }
}
