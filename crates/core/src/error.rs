//! Errors of the distributed-design layer.

use std::fmt;

use dxml_automata::{AutomataError, Resource, Symbol};
use dxml_schema::SchemaError;

/// Errors raised while building distributed documents or design problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// The root of a kernel document cannot be a function call (the paper
    /// requires documents to have a proper root element).
    RootIsFunction {
        /// The offending function symbol.
        function: Symbol,
    },
    /// A function symbol occurs at an inner node; docking points must be
    /// leaves (Section 2.3).
    FunctionNotLeaf {
        /// The offending function symbol.
        function: Symbol,
    },
    /// A function is called in the kernel but the design problem has no
    /// schema for it.
    MissingFunctionSchema {
        /// The function without a schema.
        function: Symbol,
    },
    /// A function call was materialised without a result document.
    MissingFunctionResult {
        /// The function without a result.
        function: Symbol,
    },
    /// Perfect-schema synthesis was requested for a function that labels no
    /// docking point of the document, so no constraint — and no maximal
    /// schema — exists.
    FunctionNotCalled {
        /// The function without a docking point.
        function: Symbol,
    },
    /// The occurrences of a function interact in a way that admits several
    /// incomparable maximal schemas, so no single most-permissive schema
    /// exists (e.g. two docking points of the same function under a content
    /// model such as `(a, a) | (b, b)`).
    NoMaximalSchema {
        /// The function whose docking points interact.
        function: Symbol,
    },
    /// Perfect-schema synthesis on a box design problem was requested in a
    /// configuration the construction does not cover yet (docking points of
    /// the same function under several distinct parents interact through
    /// the specialised target in a way the per-parent residuals cannot
    /// bound).
    SynthesisUnsupported {
        /// The function whose synthesis is unsupported.
        function: Symbol,
        /// Which configuration is not covered.
        detail: String,
    },
    /// Two internal decision procedures that must agree disagreed — a broken
    /// invariant of this library, not a property of the input. Distinguished
    /// from ordinary verdicts so callers never mistake a bug for a real
    /// typing violation.
    InvariantViolation {
        /// What disagreed, with the offending witness rendered in.
        detail: String,
    },
    /// A term or expression failed to parse.
    Term(AutomataError),
    /// An underlying schema error.
    Schema(SchemaError),
    /// A governed design operation exceeded its
    /// [`Budget`](dxml_automata::Budget): a quota tripped, the wall-clock
    /// deadline passed, or a cooperative cancellation was raised. Surfaced
    /// by the `*_with_budget` entry points; the unlimited default budget
    /// never produces it. A trip leaves the problem's caches unpoisoned —
    /// retrying the same call with a larger budget (or none) succeeds.
    BudgetExceeded {
        /// The resource dimension that tripped.
        resource: Resource,
        /// The configured limit (milliseconds for deadlines; 0 for
        /// cancellations, which have no numeric limit).
        limit: u64,
        /// The amount spent when the trip was detected.
        spent: u64,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::RootIsFunction { function } => {
                write!(f, "the root of a kernel document cannot be the function call `{function}`")
            }
            DesignError::FunctionNotLeaf { function } => {
                write!(f, "function call `{function}` occurs at an inner node; docking points must be leaves")
            }
            DesignError::MissingFunctionSchema { function } => {
                write!(f, "no schema declared for called function `{function}`")
            }
            DesignError::MissingFunctionResult { function } => {
                write!(f, "no result document supplied for called function `{function}`")
            }
            DesignError::FunctionNotCalled { function } => {
                write!(f, "function `{function}` labels no docking point, so no maximal schema exists")
            }
            DesignError::NoMaximalSchema { function } => {
                write!(
                    f,
                    "the docking points of `{function}` interact; no single maximal schema exists"
                )
            }
            DesignError::SynthesisUnsupported { function, detail } => {
                write!(f, "perfect-schema synthesis for `{function}` is not supported: {detail}")
            }
            DesignError::InvariantViolation { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
            DesignError::Term(e) => write!(f, "{e}"),
            DesignError::Schema(e) => write!(f, "{e}"),
            DesignError::BudgetExceeded { resource, limit, spent } => {
                let e = AutomataError::BudgetExceeded {
                    resource: *resource,
                    limit: *limit,
                    spent: *spent,
                };
                write!(f, "{e}")
            }
        }
    }
}

impl std::error::Error for DesignError {}

impl From<AutomataError> for DesignError {
    fn from(e: AutomataError) -> Self {
        // Budget trips keep their typed identity across the layer boundary
        // so callers can match on them without unwrapping `Term`.
        match e {
            AutomataError::BudgetExceeded { resource, limit, spent } => {
                DesignError::BudgetExceeded { resource, limit, spent }
            }
            other => DesignError::Term(other),
        }
    }
}

impl From<SchemaError> for DesignError {
    fn from(e: SchemaError) -> Self {
        match e {
            SchemaError::BudgetExceeded { resource, limit, spent } => {
                DesignError::BudgetExceeded { resource, limit, spent }
            }
            other => DesignError::Schema(other),
        }
    }
}
