//! Errors of the distributed-design layer.

use std::fmt;

use dxml_automata::{AutomataError, Symbol};
use dxml_schema::SchemaError;

/// Errors raised while building distributed documents or design problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// The root of a kernel document cannot be a function call (the paper
    /// requires documents to have a proper root element).
    RootIsFunction {
        /// The offending function symbol.
        function: Symbol,
    },
    /// A function symbol occurs at an inner node; docking points must be
    /// leaves (Section 2.3).
    FunctionNotLeaf {
        /// The offending function symbol.
        function: Symbol,
    },
    /// A function is called in the kernel but the design problem has no
    /// schema for it.
    MissingFunctionSchema {
        /// The function without a schema.
        function: Symbol,
    },
    /// A function call was materialised without a result document.
    MissingFunctionResult {
        /// The function without a result.
        function: Symbol,
    },
    /// A term or expression failed to parse.
    Term(AutomataError),
    /// An underlying schema error.
    Schema(SchemaError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::RootIsFunction { function } => {
                write!(f, "the root of a kernel document cannot be the function call `{function}`")
            }
            DesignError::FunctionNotLeaf { function } => {
                write!(f, "function call `{function}` occurs at an inner node; docking points must be leaves")
            }
            DesignError::MissingFunctionSchema { function } => {
                write!(f, "no schema declared for called function `{function}`")
            }
            DesignError::MissingFunctionResult { function } => {
                write!(f, "no result document supplied for called function `{function}`")
            }
            DesignError::Term(e) => write!(f, "{e}"),
            DesignError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<AutomataError> for DesignError {
    fn from(e: AutomataError) -> Self {
        DesignError::Term(e)
    }
}

impl From<SchemaError> for DesignError {
    fn from(e: SchemaError) -> Self {
        DesignError::Schema(e)
    }
}
