//! placeholder
