//! Distributed XML design: distributed documents and typing verification.
//!
//! This crate is the paper's centerpiece layer (Sections 3–5 of *Distributed
//! XML Design*, Abiteboul, Gottlob, Manna, PODS '09), built on the string
//! automata of `dxml-automata`, the trees and tree automata of `dxml-tree`
//! and the schema languages of `dxml-schema`:
//!
//! * [`DistributedDoc`] — a kernel document whose leaves may be typed
//!   function calls (docking points), with snapshot materialisation;
//! * [`DesignProblem`] — a target document schema plus a schema per
//!   function;
//! * [`DesignProblem::typecheck`] — typing verification via tree-automaton
//!   inclusion of the extension language, with counterexample documents;
//! * [`DesignProblem::verify_local`] — the string-inclusion fast path for
//!   DTD targets, with counterexample words;
//! * [`DesignProblem::perfect_schema`] — perfect typing (Section 6): the
//!   most permissive function schema for which the design still
//!   typechecks, synthesised by residual construction with a
//!   counterexample-driven refinement loop;
//! * [`BoxDesignProblem`] — the box-design subsystem (Section 7): the same
//!   three decision procedures for full **R-EDTD targets**, reduced to
//!   string problems over the determinised specialised alphabet whose
//!   constant parts are kernel boxes `B(fn)`;
//! * [`validate_batch`] — a batch front end fanning one-pass streaming
//!   SDTD validation of many documents over all cores, with per-document
//!   panic isolation.
//!
//! Every decision procedure has a governed `*_with_budget` variant
//! ([`DesignProblem::typecheck_with_budget`],
//! [`BoxDesignProblem::perfect_schema_with_budget`],
//! [`validate_batch_with_budget`], …) taking a
//! [`Budget`](dxml_automata::Budget): step/state/node quotas, a depth
//! limit, a wall-clock deadline and cooperative cancellation, surfacing
//! [`DesignError::BudgetExceeded`] without poisoning the problem's caches.
//!
//! The problem-derived artefacts (determinised tree automaton, content
//! NFAs, productive names, reduced function schemas, per-document extension
//! automata) are computed once per problem and shared by all decision
//! procedures — see [`design::TargetCache`] and [`boxes::BoxTargetCache`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod boxes;
pub mod design;
pub mod doc;
pub mod error;
pub mod perfect;

pub use batch::{validate_batch, validate_batch_with_budget};
pub use boxes::{BoxDesignProblem, BoxTargetCache, BoxVerdict, BoxViolation};
pub use design::{
    CacheStats, DesignProblem, LocalVerdict, LocalViolation, Origin, ReducedFun, TargetCache,
    TypingVerdict,
};
pub use doc::DistributedDoc;
pub use error::DesignError;
