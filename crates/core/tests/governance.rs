//! End-to-end resource governance: budgets, deadlines, cancellation and
//! fault injection across every engine entry point. The central claim under
//! test: a budget trip is a *typed verdict*, not a broken engine — the same
//! problem object answers correctly when retried with a larger (or
//! unlimited) budget, because a tripped build never initialises a cache.
//!
//! This test owns its process (integration tests build as separate
//! binaries), so the process-global fault injector cannot interfere with
//! any other test binary.

use dxml_automata::limits::faults;
use dxml_automata::{Budget, RFormalism, Resource};
use dxml_core::{
    validate_batch, validate_batch_with_budget, BoxDesignProblem, DesignError, DesignProblem,
    DistributedDoc,
};
use dxml_schema::{RDtd, RSdtd, SchemaError};

/// A design problem whose target content model is the subset-blowup family
/// `(a|b)* a (a|b)^{n-1}` — determinising it needs `2^n` states, so small
/// budgets trip and generous ones succeed.
fn blowup_problem(n: usize) -> DesignProblem {
    let mut rules = String::from("s -> (a | b)*, a");
    for _ in 0..n.saturating_sub(1) {
        rules.push_str(", (a | b)");
    }
    let target = RDtd::parse(RFormalism::Nre, &rules).unwrap();
    let fun = RDtd::parse(RFormalism::Nre, "r -> a*").unwrap();
    DesignProblem::new(target).with_function("f", fun)
}

fn doc() -> DistributedDoc {
    DistributedDoc::parse("s(f)", ["f"]).unwrap()
}

#[test]
fn typecheck_trips_promptly_and_the_same_problem_recovers() {
    let problem = blowup_problem(10);
    let doc = doc();
    match problem.typecheck_with_budget(&doc, &faults::budget_tripping_after(10)) {
        Err(DesignError::BudgetExceeded { resource: Resource::Steps, limit: 10, .. }) => {}
        other => panic!("expected a steps trip, got {other:?}"),
    }
    // The trip initialised nothing: the cache cell is still empty …
    assert!(!problem.target_cache_ready(), "a tripped build must not cache");
    // … and the *same* problem object, retried without a budget, decides.
    let free = problem.typecheck(&doc).unwrap();
    // A governed retry with a generous budget agrees.
    let governed = problem
        .typecheck_with_budget(&doc, &Budget::unlimited().with_step_quota(50_000_000))
        .unwrap();
    assert_eq!(free.is_valid(), governed.is_valid());
}

#[test]
fn verify_local_and_perfect_schema_trip_and_recover() {
    let problem = blowup_problem(9);
    let doc = doc();
    assert!(matches!(
        problem.verify_local_with_budget(&doc, &faults::expired_deadline()),
        Err(DesignError::BudgetExceeded { resource: Resource::Deadline, .. })
    ));
    assert!(matches!(
        problem.perfect_schema_with_budget(&doc, "f", &faults::budget_tripping_after(5)),
        Err(DesignError::BudgetExceeded { resource: Resource::Steps, .. })
    ));
    // Unbudgeted synthesis on the same object still succeeds and the result
    // solves the design.
    let perfect = problem.perfect_schema(&doc, "f").unwrap();
    let solved = problem.clone().with_function("f", perfect);
    assert!(solved.typecheck(&doc).unwrap().is_valid());
}

#[test]
fn cancellation_trips_at_the_entry_boundary_even_when_cached() {
    let problem = blowup_problem(6);
    let doc = doc();
    // Warm every cache first.
    assert!(problem.typecheck(&doc).is_ok());
    assert!(problem.target_cache_ready());
    // A pre-raised cancellation still trips: entry points check interrupts
    // before consulting any cache.
    let (budget, handle) = Budget::unlimited().cancellable();
    handle.cancel();
    assert!(matches!(
        problem.typecheck_with_budget(&doc, &budget),
        Err(DesignError::BudgetExceeded { resource: Resource::Cancelled, .. })
    ));
}

#[test]
fn box_problem_trips_and_recovers() {
    let problem = BoxDesignProblem::from(&blowup_problem(9));
    let doc = doc();
    match problem.typecheck_with_budget(&doc, &faults::budget_tripping_after(10)) {
        Err(DesignError::BudgetExceeded { resource: Resource::Steps, .. }) => {}
        other => panic!("expected a steps trip, got {other:?}"),
    }
    assert!(!problem.target_cache_ready(), "a tripped box build must not cache");
    assert!(matches!(
        problem.verify_local_with_budget(&doc, &faults::cancelled()),
        Err(DesignError::BudgetExceeded { resource: Resource::Cancelled, .. })
    ));
    // The same object recovers, and the two ungoverned routes agree.
    let global = problem.typecheck(&doc).unwrap();
    let local = problem.verify_local(&doc).unwrap();
    assert_eq!(global.is_valid(), local.is_valid());
    // Box perfect typing honours the budget too.
    assert!(matches!(
        problem.perfect_schema_with_budget(&doc, "f", &faults::expired_deadline()),
        Err(DesignError::BudgetExceeded { resource: Resource::Deadline, .. })
    ));
    let perfect = problem.perfect_schema(&doc, "f").unwrap();
    let solved = problem.clone().with_function("f", perfect);
    assert!(solved.typecheck(&doc).unwrap().is_valid());
}

#[test]
fn streaming_validation_honours_every_budget_dimension() {
    let sdtd = RSdtd::parse(RFormalism::Nre, "s -> r*\nr -> r*").unwrap();
    let depth = 64usize;
    let mut xml = String::from("<s>");
    for _ in 0..depth {
        xml.push_str("<r>");
    }
    for _ in 0..depth {
        xml.push_str("</r>");
    }
    xml.push_str("</s>");
    assert!(sdtd.validate_stream(&xml).is_ok());

    let deep = Budget::unlimited().with_depth_limit(8);
    assert!(matches!(
        sdtd.validate_stream_with_budget(&xml, &deep),
        Err(SchemaError::BudgetExceeded { resource: Resource::Depth, limit: 8, .. })
    ));
    let nodes = Budget::unlimited().with_node_quota(10);
    assert!(matches!(
        sdtd.validate_stream_with_budget(&xml, &nodes),
        Err(SchemaError::BudgetExceeded { resource: Resource::Nodes, limit: 10, .. })
    ));
    assert!(matches!(
        sdtd.validate_stream_with_budget(&xml, &faults::budget_tripping_after(5)),
        Err(SchemaError::BudgetExceeded { resource: Resource::Steps, limit: 5, .. })
    ));
    // A budget that fits changes nothing about the verdict.
    let generous = Budget::unlimited().with_depth_limit(depth + 1).with_node_quota(1000);
    assert!(sdtd.validate_stream_with_budget(&xml, &generous).is_ok());
}

#[test]
fn batch_isolates_injected_worker_panics_and_pools_budgets() {
    let sdtd = RSdtd::parse(RFormalism::Nre, "s -> a*, b\na -> c?").unwrap();
    let docs: Vec<String> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                "<s><a><c/></a><b/></s>".to_string()
            } else {
                "<s><b/></s>".to_string()
            }
        })
        .collect();

    // Inject a panic into two specific documents: their verdicts degrade to
    // a typed error, every other document keeps its real verdict, and the
    // batch itself completes instead of propagating the panic.
    faults::arm_worker_panic(&[3, 11]);
    let verdicts = validate_batch(&sdtd, &docs);
    faults::disarm_worker_panic();
    assert_eq!(verdicts.len(), docs.len());
    for (i, verdict) in verdicts.iter().enumerate() {
        if i == 3 || i == 11 {
            match verdict {
                Err(SchemaError::Structural(msg)) => {
                    assert!(msg.contains("panicked"), "verdict must explain itself: {msg}");
                    assert!(msg.contains(&i.to_string()), "verdict must name the document");
                }
                other => panic!("expected a panic verdict for document {i}, got {other:?}"),
            }
        } else {
            assert_eq!(verdict, &sdtd.validate_stream(&docs[i]), "document {i}");
        }
    }
    // After disarming, the same batch validates cleanly — no leaked state.
    assert!(validate_batch(&sdtd, &docs).iter().all(Result::is_ok));

    // A pre-expired deadline is observed by every worker at its entry
    // check: all verdicts trip, none panics, no lock is poisoned.
    let verdicts = validate_batch_with_budget(&sdtd, &docs, &faults::expired_deadline());
    assert!(verdicts
        .iter()
        .all(|v| matches!(v, Err(SchemaError::BudgetExceeded { resource: Resource::Deadline, .. }))));

    // Quotas are pooled across workers: a node quota smaller than the batch
    // trips somewhere, yet documents validated before the trip keep real
    // verdicts and a fresh unlimited run still succeeds.
    let pooled = Budget::unlimited().with_node_quota(8);
    let verdicts = validate_batch_with_budget(&sdtd, &docs, &pooled);
    assert!(verdicts
        .iter()
        .any(|v| matches!(v, Err(SchemaError::BudgetExceeded { resource: Resource::Nodes, .. }))));
    assert!(validate_batch(&sdtd, &docs).iter().all(Result::is_ok));
}
