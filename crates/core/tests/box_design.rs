//! Property tests for the box-design subsystem (Section 7).
//!
//! Two independent confirmations of `BoxDesignProblem`:
//!
//! 1. **Brute force.** On small universes (≤ 3 element labels, kernels with
//!    box width ≤ 3) and *finite* (star-free, acyclic) function schemas,
//!    every instantiation of the docking point can be enumerated and
//!    materialised; the design typechecks iff every materialisation
//!    validates against the EDTD target. Both `typecheck` and
//!    `verify_local` must agree with that ground truth.
//! 2. **DTD embedding.** A DTD target embedded as a trivial EDTD must
//!    reproduce the verdicts of the existing `DesignProblem` on the same
//!    documents.

use std::collections::BTreeMap;

use dxml_automata::{RFormalism, Regex, RSpec, Symbol};
use dxml_core::{BoxDesignProblem, DesignProblem, DistributedDoc};
use dxml_schema::{RDtd, REdtd};
use dxml_tree::generate::SplitRng;
use dxml_tree::{XForest, XTree};

/// All trees derivable from a specialised name of a *star-free, acyclic*
/// schema. The generators below only produce bounded content models, so the
/// enumeration is complete; the depth bound is a safety net, not a cap.
fn trees_of(schema: &REdtd, spec: &Symbol, depth: usize) -> Vec<XTree> {
    assert!(depth > 0, "generated schemas are acyclic with depth <= 4");
    let label = schema
        .label_of(spec)
        .cloned()
        .unwrap_or(*spec);
    let words = schema.content(spec).to_nfa().enumerate_accepted(3, 64);
    assert!(words.len() < 64, "content models must stay finite");
    let mut out = Vec::new();
    for word in words {
        let mut combos: Vec<Vec<XTree>> = vec![Vec::new()];
        for child_spec in &word {
            let children = trees_of(schema, child_spec, depth - 1);
            let mut next = Vec::new();
            for combo in &combos {
                for t in &children {
                    let mut extended = combo.clone();
                    extended.push(t.clone());
                    next.push(extended);
                }
            }
            combos = next;
            assert!(combos.len() <= 256, "enumeration must stay complete");
        }
        for combo in combos {
            out.push(XTree::node(label, combo));
        }
    }
    out
}

/// Every forest the function schema can return.
fn forests_of(schema: &REdtd) -> Vec<XForest> {
    let words = schema.content(schema.start()).to_nfa().enumerate_accepted(3, 64);
    assert!(words.len() < 64, "forest content models must stay finite");
    let mut out = Vec::new();
    for word in words {
        let mut combos: Vec<XForest> = vec![Vec::new()];
        for spec in &word {
            let trees = trees_of(schema, spec, 4);
            let mut next = Vec::new();
            for combo in &combos {
                for t in &trees {
                    let mut extended = combo.clone();
                    extended.push(t.clone());
                    next.push(extended);
                }
            }
            combos = next;
            assert!(combos.len() <= 256, "enumeration must stay complete");
        }
        out.extend(combos);
    }
    out
}

/// A random EDTD target over the labels `{s, a, b}` with up to two
/// specialisations of `a` (stars allowed — the target side is not
/// enumerated).
fn random_target(rng: &mut SplitRng) -> REdtd {
    let mut e = REdtd::new(RFormalism::Nre, "s", "s");
    e.add_specialization("a1", "a");
    e.add_specialization("a2", "a");
    e.add_specialization("b1", "b");
    let roots = [
        "a1* a2 a1*",
        "(a1 | b1)*",
        "a1 a2* b1?",
        "b1? a1*",
        "(a1 b1)*",
        "a2* b1",
        "a1? a2?",
    ];
    let inner = ["", "b1", "b1?", "b1*", "b1 b1", "a2?"];
    e.set_rule("s", RSpec::Nre(Regex::parse(roots[rng.below(roots.len())]).unwrap()));
    for spec in ["a1", "a2"] {
        let src = inner[rng.below(inner.len())];
        if !src.is_empty() {
            e.set_rule(spec, RSpec::Nre(Regex::parse(src).unwrap()));
        }
    }
    e
}

/// A random *finite* function schema: forests of `a`- and `b`-trees of
/// depth ≤ 2, star-free, so every instantiation can be enumerated.
fn random_finite_schema(rng: &mut SplitRng) -> REdtd {
    let mut e = REdtd::new(RFormalism::Nre, "r", "r");
    e.add_specialization("x", "a");
    e.add_specialization("y", "b");
    let forests = ["x", "x?", "x y", "x | y", "x x", "y?"];
    let xcontents = ["", "y", "y?", "y y"];
    e.set_rule("r", RSpec::Nre(Regex::parse(forests[rng.below(forests.len())]).unwrap()));
    let xc = xcontents[rng.below(xcontents.len())];
    if !xc.is_empty() {
        e.set_rule("x", RSpec::Nre(Regex::parse(xc).unwrap()));
    }
    e
}

/// A random kernel `s(…)` with at most 3 fixed children (box width ≤ 3) and
/// exactly one docking point `f`.
fn random_kernel(rng: &mut SplitRng) -> DistributedDoc {
    let mut kernel = XTree::leaf(Symbol::new("s"));
    let fixed = rng.below(4);
    let gap_at = rng.below(fixed + 1);
    for i in 0..=fixed {
        if i == gap_at {
            kernel.add_child(0, Symbol::new("f"));
            continue;
        }
        if i >= fixed {
            break;
        }
        match rng.below(3) {
            0 => {
                kernel.add_child(0, Symbol::new("a"));
            }
            1 => {
                kernel.add_child(0, Symbol::new("b"));
            }
            _ => {
                let node = kernel.add_child(0, Symbol::new("a"));
                kernel.add_child(node, Symbol::new("b"));
            }
        }
    }
    DistributedDoc::new(kernel, ["f"]).expect("kernel invariants hold")
}

#[test]
fn box_typecheck_agrees_with_brute_force_enumeration() {
    let mut rng = SplitRng::new(0xB0C5);
    let mut valids = 0usize;
    let mut invalids = 0usize;
    for case in 0..60 {
        let target = random_target(&mut rng);
        let schema = random_finite_schema(&mut rng);
        let doc = random_kernel(&mut rng);
        let forests = forests_of(&schema);
        assert!(!forests.is_empty(), "generated schemas always return some forest");

        // Ground truth: every instantiation of the docking point must
        // validate against the target.
        let brute = forests.iter().all(|forest| {
            let mut results: BTreeMap<Symbol, XForest> = BTreeMap::new();
            results.insert(Symbol::new("f"), forest.clone());
            let materialised = doc.materialize(&results).expect("schema for f supplied");
            target.accepts(&materialised)
        });

        let problem = BoxDesignProblem::new(target).with_function("f", schema);
        let global = problem.typecheck(&doc).expect("typecheck runs");
        let local = problem.verify_local(&doc).expect("verify_local runs");
        assert_eq!(
            global.is_valid(),
            brute,
            "case {case}: typecheck disagrees with enumeration on {doc:?} \
             against {:?}",
            problem.doc_schema()
        );
        assert_eq!(
            local.is_valid(),
            brute,
            "case {case}: verify_local disagrees with enumeration on {doc:?} \
             against {:?}",
            problem.doc_schema()
        );
        if brute {
            valids += 1;
        } else {
            invalids += 1;
        }
    }
    // The generator must exercise both verdicts, otherwise the test is
    // vacuous.
    assert!(valids >= 5, "only {valids} valid cases sampled");
    assert!(invalids >= 5, "only {invalids} invalid cases sampled");
}

#[test]
fn dtd_targets_embedded_as_edtds_agree_with_design_problem() {
    let targets = [
        "s -> a, b*\nb -> c?",
        "s -> (b, c)*",
        "s -> a*",
        "s -> a, a",
        "s -> b | a\na -> a",
        "s -> f, a\nf -> a?",
    ];
    let schemas = [
        "r -> b, b\nb -> c?",
        "r -> b*\nb -> d?",
        "r -> a",
        "r -> b",
        "r -> a*",
        "r -> f\nf -> a?",
    ];
    let kernels = ["s(a f)", "s(b c f)", "s(f)", "s(f f)", "s(a f b)", "s(f a)"];
    let mut rng = SplitRng::new(0xD7D);
    let mut agreements = 0usize;
    for _ in 0..40 {
        let target = RDtd::parse(RFormalism::Nre, targets[rng.below(targets.len())]).unwrap();
        let schema = RDtd::parse(RFormalism::Nre, schemas[rng.below(schemas.len())]).unwrap();
        let doc = DistributedDoc::parse(kernels[rng.below(kernels.len())], ["f"]).unwrap();
        let dtd_problem = DesignProblem::new(target).with_function("f", schema);
        let box_problem = BoxDesignProblem::from(&dtd_problem);

        let dtd_verdict = dtd_problem.typecheck(&doc).expect("DTD typecheck runs").is_valid();
        assert_eq!(
            dtd_problem.verify_local(&doc).expect("DTD verify_local runs").is_valid(),
            dtd_verdict
        );
        assert_eq!(
            box_problem.typecheck(&doc).expect("box typecheck runs").is_valid(),
            dtd_verdict,
            "box typecheck disagrees with the DTD problem on {doc:?} against \
             {:?}",
            dtd_problem.doc_schema()
        );
        assert_eq!(
            box_problem.verify_local(&doc).expect("box verify_local runs").is_valid(),
            dtd_verdict,
            "box verify_local disagrees with the DTD problem on {doc:?} against \
             {:?}",
            dtd_problem.doc_schema()
        );
        agreements += 1;
    }
    assert_eq!(agreements, 40);
}

#[test]
fn box_perfect_schema_is_exact_on_enumerated_forests() {
    // Whenever synthesis succeeds on the random workloads, the schema must
    // solve the design — and be *exactly* the admissible set: since the
    // kernel has a single docking point and no sibling functions, a forest
    // is admissible iff its one materialisation validates, so we enumerate
    // small forests over the target universe and require
    //   perfect-schema membership  ⟺  materialisation validates.
    // The ⊇ direction is maximality (nothing admissible is missing), the
    // ⊆ direction is soundness (nothing inadmissible slipped in).
    use dxml_tree::term::parse_term;
    let pool: Vec<XTree> = ["a", "b", "a(b)", "a(b b)", "a(a)", "b(b)"]
        .iter()
        .map(|src| parse_term(src).unwrap())
        .collect();
    let mut probe_forests: Vec<XForest> = vec![Vec::new()];
    probe_forests.extend(pool.iter().map(|t| vec![t.clone()]));
    for t1 in &pool {
        for t2 in &pool {
            probe_forests.push(vec![t1.clone(), t2.clone()]);
        }
    }

    let mut rng = SplitRng::new(0x9E1);
    let mut synthesised = 0usize;
    let mut admitted = 0usize;
    for _ in 0..20 {
        let target = random_target(&mut rng);
        let doc = random_kernel(&mut rng);
        let problem = BoxDesignProblem::new(target);
        let Ok(perfect) = problem.perfect_schema(&doc, "f") else {
            continue;
        };
        let solved = problem.clone().with_function("f", perfect.clone());
        assert!(
            solved.typecheck(&doc).expect("typecheck runs").is_valid(),
            "synthesised schema fails its own design on {doc:?} against {:?}",
            problem.doc_schema()
        );
        assert!(solved.verify_local(&doc).expect("verify_local runs").is_valid());
        for forest in &probe_forests {
            let mut results: BTreeMap<Symbol, XForest> = BTreeMap::new();
            results.insert(Symbol::new("f"), forest.clone());
            let materialised = doc.materialize(&results).expect("schema for f supplied");
            let admissible = problem.doc_schema().accepts(&materialised);
            let in_schema =
                perfect.accepts(&XTree::node(*perfect.start(), forest.clone()));
            assert_eq!(
                in_schema,
                admissible,
                "perfect schema is not exact on forest {forest:?} for {doc:?} \
                 against {:?} (in_schema={in_schema}, admissible={admissible})",
                problem.doc_schema()
            );
            admitted += usize::from(admissible);
        }
        synthesised += 1;
    }
    assert!(synthesised >= 10, "only {synthesised} syntheses sampled");
    assert!(admitted >= 10, "only {admitted} admissible probe forests sampled");
}

#[test]
fn box_residual_determinisations_are_memoised_per_problem() {
    // The spine walk determinises each label's Moore machine at most once
    // per problem; repeated synthesis reuses the memoised skeletons.
    let one_c_target = {
        let mut e = REdtd::new(RFormalism::Nre, "s", "s");
        e.add_specialization("ab", "a");
        e.add_specialization("ac", "a");
        e.set_rule("s", RSpec::Nre(Regex::parse("ab* ac ab*").unwrap()));
        e.set_rule("ab", RSpec::Nre(Regex::parse("b").unwrap()));
        e.set_rule("ac", RSpec::Nre(Regex::parse("c").unwrap()));
        e
    };
    let p = BoxDesignProblem::new(one_c_target);
    let doc = DistributedDoc::parse("s(a(b) f)", ["f"]).unwrap();
    let first = p.perfect_schema(&doc, "f").unwrap();
    let after_first = p.cache_stats();
    assert!(after_first.target_cache_built);
    assert!(
        after_first.residual_dfa_builds >= 1,
        "the spine walk must go through the machine-DFA memo"
    );
    let second = p.perfect_schema(&doc, "f").unwrap();
    let after_second = p.cache_stats();
    assert_eq!(
        after_second.residual_dfa_builds, after_first.residual_dfa_builds,
        "a repeated synthesis must not re-determinise any Moore machine"
    );
    assert!(
        after_second.residual_dfa_hits > after_first.residual_dfa_hits,
        "the repeated synthesis must be served from the memo"
    );
    assert!(first.equivalent(&second));
}
