//! Cross-crate integration: W3C `<!ELEMENT …>` parsing (`dxml-schema`) →
//! distributed document with function calls (`dxml-core`) → typing verdict
//! with the counterexample the paper's Example 1 scenario predicts
//! (`dxml-tree` + `dxml-automata` underneath).

use std::collections::BTreeMap;

use dxml_automata::{RFormalism, Symbol};
use dxml_core::{DesignProblem, DistributedDoc, LocalVerdict, LocalViolation, TypingVerdict};
use dxml_schema::{RDtd, SchemaError};
use dxml_tree::term::{parse_forest, parse_term};

/// The Eurostat NCPI global type τ of Figure 3, in the W3C syntax, with
/// deterministic (dRE) content models as the standard requires.
fn eurostat_target() -> RDtd {
    RDtd::parse_w3c(
        RFormalism::Dre,
        r#"<!-- Figure 3: the global type of the Eurostat NCPI document -->
           <!ELEMENT eurostat (averages, nationalIndex*)>
           <!ELEMENT averages (Good, index+)+>
           <!ELEMENT nationalIndex (country, Good, (index | (value, year)))>
           <!ELEMENT index (value, year)>
           <!ELEMENT country (#PCDATA)>
           <!ELEMENT Good (#PCDATA)>
           <!ELEMENT value (#PCDATA)>
           <!ELEMENT year (#PCDATA)>"#,
    )
    .expect("the Figure 3 DTD parses")
}

/// A national-statistics-office function returning well-typed
/// `nationalIndex` entries (old format: nested `index`).
fn well_typed_office() -> RDtd {
    RDtd::parse(
        RFormalism::Dre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index\n\
         index -> value, year",
    )
    .unwrap()
}

/// An office whose results use a format the target forbids: `index`
/// followed by a stray `value` — the Example 1 shape, where one resource's
/// local format breaks the global type.
fn ill_typed_office() -> RDtd {
    RDtd::parse(
        RFormalism::Dre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index, value\n\
         index -> value, year",
    )
    .unwrap()
}

/// Kernel of the distributed Eurostat document: the averages are stored
/// locally, the per-country indexes come from two function calls.
fn kernel() -> DistributedDoc {
    DistributedDoc::parse(
        "eurostat(averages(Good index(value year)) fDE fFR)",
        ["fDE", "fFR"],
    )
    .unwrap()
}

#[test]
fn well_typed_design_accepts() {
    let problem = DesignProblem::new(eurostat_target())
        .with_function("fDE", well_typed_office())
        .with_function("fFR", well_typed_office());
    let doc = kernel();
    assert!(problem.typecheck(&doc).unwrap().is_valid());
    assert!(problem.verify_local(&doc).unwrap().is_valid());

    // A materialised snapshot validates against the target directly.
    let mut results = BTreeMap::new();
    results.insert(
        Symbol::new("fDE"),
        parse_forest("nationalIndex(country Good index(value year))").unwrap(),
    );
    results.insert(Symbol::new("fFR"), parse_forest("").unwrap());
    let ext = doc.materialize(&results).unwrap();
    assert!(eurostat_target().accepts(&ext));
}

#[test]
fn ill_typed_design_rejects_with_predicted_counterexample() {
    let problem = DesignProblem::new(eurostat_target())
        .with_function("fDE", well_typed_office())
        .with_function("fFR", ill_typed_office());
    let doc = kernel();

    // The tree-level check produces a full bad extension whose violation is
    // exactly the predicted one: a nationalIndex with children
    // [country Good index value], which the target content model
    // (country, Good, (index | (value, year))) forbids.
    match problem.typecheck(&doc).unwrap() {
        TypingVerdict::Invalid { counterexample, violation } => {
            assert!(problem.extension_nuta(&doc).unwrap().accepts(&counterexample));
            assert!(!eurostat_target().accepts(&counterexample));
            match violation {
                SchemaError::InvalidContent { path, children, .. } => {
                    assert_eq!(path.last().unwrap().as_str(), "nationalIndex");
                    assert_eq!(
                        children,
                        vec![
                            Symbol::new("country"),
                            Symbol::new("Good"),
                            Symbol::new("index"),
                            Symbol::new("value"),
                        ]
                    );
                }
                other => panic!("expected InvalidContent, got {other}"),
            }
        }
        TypingVerdict::Valid => panic!("the ill-typed design must be rejected"),
    }

    // The string-level check pins the same violation as a word
    // counterexample inside the documents returned by fFR.
    match problem.verify_local(&doc).unwrap() {
        LocalVerdict::Invalid(LocalViolation::Content { element, counterexample, .. }) => {
            assert_eq!(element.as_str(), "nationalIndex");
            assert_eq!(
                counterexample,
                vec![
                    Symbol::new("country"),
                    Symbol::new("Good"),
                    Symbol::new("index"),
                    Symbol::new("value"),
                ]
            );
        }
        other => panic!("expected a content violation, got {other:?}"),
    }
}

#[test]
fn typecheck_and_local_check_agree_on_a_battery() {
    let target = eurostat_target();
    let offices = [well_typed_office(), ill_typed_office()];
    let kernels = [
        "eurostat(averages(Good index(value year)) fDE)",
        "eurostat(averages(Good index(value year)) fDE fFR)",
        "eurostat(averages(Good index(value year)) nationalIndex(country Good value year) fFR)",
        "eurostat(fDE averages(Good index(value year)))",
    ];
    for (i, a) in offices.iter().enumerate() {
        for (j, b) in offices.iter().enumerate() {
            for k in kernels {
                let problem = DesignProblem::new(target.clone())
                    .with_function("fDE", a.clone())
                    .with_function("fFR", b.clone());
                let doc = DistributedDoc::parse(k, ["fDE", "fFR"]).unwrap();
                let global = problem.typecheck(&doc).unwrap().is_valid();
                let local = problem.verify_local(&doc).unwrap().is_valid();
                assert_eq!(global, local, "disagreement for offices ({i},{j}) kernel {k}");
            }
        }
    }
}

#[test]
fn materialised_snapshots_sample_the_extension_language() {
    // Every sample of a function schema, materialised, is accepted by the
    // extension automaton; and whenever the design typechecks it validates.
    let problem = DesignProblem::new(eurostat_target())
        .with_function("fDE", well_typed_office())
        .with_function("fFR", well_typed_office());
    let doc = kernel();
    let ext = problem.extension_nuta(&doc).unwrap();

    let sample = well_typed_office().sample_tree().expect("office schema is non-empty");
    let forest: Vec<_> = sample
        .children(sample.root())
        .iter()
        .map(|&c| sample.subtree(c))
        .collect();
    let mut results = BTreeMap::new();
    results.insert(Symbol::new("fDE"), forest.clone());
    results.insert(Symbol::new("fFR"), forest);
    let materialised = doc.materialize(&results).unwrap();
    assert!(ext.accepts(&materialised));
    assert!(eurostat_target().accepts(&materialised));
}

#[test]
fn w3c_and_compact_routes_build_the_same_problem() {
    // The same target written in the compact syntax yields the same verdicts.
    let compact = RDtd::parse(
        RFormalism::Dre,
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, (index | value, year)\n\
         index -> value, year",
    )
    .unwrap();
    assert!(compact.equivalent(&eurostat_target()));

    let doc = kernel();
    for office in [well_typed_office(), ill_typed_office()] {
        let via_w3c = DesignProblem::new(eurostat_target())
            .with_function("fDE", office.clone())
            .with_function("fFR", office.clone());
        let via_compact = DesignProblem::new(compact.clone())
            .with_function("fDE", office.clone())
            .with_function("fFR", office);
        assert_eq!(
            via_w3c.typecheck(&doc).unwrap().is_valid(),
            via_compact.typecheck(&doc).unwrap().is_valid()
        );
    }
}

#[test]
fn rejects_kernel_breaking_the_global_type_without_functions() {
    // No functions at all: typing verification degenerates to validation.
    let target = eurostat_target();
    let problem = DesignProblem::new(target.clone());
    let plain = DistributedDoc::new(
        parse_term("eurostat(averages(Good index(value year)))").unwrap(),
        [] as [&str; 0],
    )
    .unwrap();
    assert!(problem.typecheck(&plain).unwrap().is_valid());

    let bad = DistributedDoc::new(parse_term("eurostat").unwrap(), [] as [&str; 0]).unwrap();
    assert!(!problem.typecheck(&bad).unwrap().is_valid());
    assert!(!problem.verify_local(&bad).unwrap().is_valid());
}
