//! Property tests for perfect typing (Section 6): the synthesised schema
//! must (a) typecheck and (b) be *maximal* — enlarging any of its content
//! models by a single enumerated word over the schema's element names must
//! break typechecking.

use dxml_automata::{Nfa, RFormalism, RSpec, Symbol};
use dxml_core::{DesignProblem, DistributedDoc};
use dxml_schema::RDtd;

fn dtd(rules: &str) -> RDtd {
    RDtd::parse(RFormalism::Nre, rules).unwrap()
}

/// All words over `names` of length at most `max_len`, in length-lex order.
fn words_up_to(names: &[Symbol], max_len: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for n in names {
                let mut grown = w.clone();
                grown.push(*n);
                next.push(grown.clone());
                out.push(grown);
            }
        }
        frontier = next;
    }
    out
}

/// Checks the two halves of the acceptance criterion on one design:
/// the perfect schema typechecks, and growing any content model by one
/// non-accepted word (up to `per_rule` words per rule) refutes typechecking.
fn assert_perfect_and_maximal(problem: &DesignProblem, doc: &DistributedDoc, f: &str) {
    let schema = problem.perfect_schema(doc, f).expect("synthesis succeeds");

    // (a) the synthesised schema typechecks.
    let solved = problem.clone().with_function(f, schema.clone());
    assert!(
        solved.typecheck(doc).unwrap().is_valid(),
        "perfect schema for `{f}` must typecheck:\n{schema}"
    );
    assert!(solved.verify_local(doc).unwrap().is_valid());

    // (b) maximality: any single-word growth of any content model breaks it.
    let per_rule = 5usize;
    let names: Vec<Symbol> = schema
        .alphabet()
        .iter()
        .filter(|s| *s != schema.start())
        .cloned()
        .collect();
    let candidates = words_up_to(&names, 3);
    for name in schema.alphabet().iter() {
        let content = schema.content(name).to_nfa();
        let mut tested = 0usize;
        for w in &candidates {
            if tested >= per_rule {
                break;
            }
            if content.accepts(w) {
                continue;
            }
            let mut grown = schema.clone();
            grown.set_rule(*name, RSpec::Nfa(content.union(&Nfa::literal(w))));
            let enlarged = problem.clone().with_function(f, grown);
            let verdict = enlarged.typecheck(doc).unwrap();
            let rendered: Vec<&str> = w.iter().map(Symbol::as_str).collect();
            assert!(
                !verdict.is_valid(),
                "adding [{}] to the content of `{name}` must break typechecking of `{f}`",
                rendered.join(" ")
            );
            tested += 1;
        }
    }
}

#[test]
fn eurostat_perfect_schema_is_maximal() {
    // The paper's running example: the averages are kernel-local, the
    // per-country indexes dock at a single call.
    let target = dtd(
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, (index | value, year)\n\
         index -> value, year",
    );
    let problem = DesignProblem::new(target);
    let doc = DistributedDoc::parse(
        "eurostat(averages(Good index(value year)) fNCP)",
        ["fNCP"],
    )
    .unwrap();
    assert_perfect_and_maximal(&problem, &doc, "fNCP");
}

#[test]
fn interleaved_docking_point_is_maximal() {
    // The docking point sits *between* kernel children, so the forest
    // language is a genuine two-sided residual.
    let problem = DesignProblem::new(dtd("s -> a, b*, a\nb -> c?"));
    let doc = DistributedDoc::parse("s(a f a)", ["f"]).unwrap();
    assert_perfect_and_maximal(&problem, &doc, "f");
}

#[test]
fn fixed_sibling_functions_shape_the_maximum() {
    let problem = DesignProblem::new(dtd("s -> (b, c)*")).with_function("g", dtd("r -> b"));
    let doc = DistributedDoc::parse("s(g f)", ["g", "f"]).unwrap();
    assert_perfect_and_maximal(&problem, &doc, "f");
}

#[test]
fn repeated_compatible_docking_points_are_maximal() {
    let problem = DesignProblem::new(dtd("s -> b*\nb -> c?"));
    let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
    assert_perfect_and_maximal(&problem, &doc, "f");
}

#[test]
fn repeated_interacting_docking_points_with_a_maximum_are_maximal() {
    // Two docking points under one parent whose uniform maximal language
    // ((a b)*, closed under concatenation) exists and must be found.
    let problem = DesignProblem::new(dtd("s -> (a, b)*\na -> c?"));
    let doc = DistributedDoc::parse("s(f f)", ["f"]).unwrap();
    assert_perfect_and_maximal(&problem, &doc, "f");
}

#[test]
fn independent_violation_yields_the_maximal_empty_schema() {
    // The kernel node x violates τ regardless of f: the empty forest
    // language is the unique (vacuous) solution — and still maximal, since
    // admitting even the empty forest word realises the violation.
    let problem = DesignProblem::new(dtd("s -> x, b*\nx -> a"));
    let doc = DistributedDoc::parse("s(x f)", ["f"]).unwrap();
    assert_perfect_and_maximal(&problem, &doc, "f");
}

#[test]
fn perfect_schema_of_two_functions_each_maximal() {
    let target = dtd("s -> a, b*, c*\nb -> c?");
    let problem = DesignProblem::new(target)
        .with_function("f", dtd("r -> b"))
        .with_function("g", dtd("r -> c"));
    let doc = DistributedDoc::parse("s(a f g)", ["f", "g"]).unwrap();
    // Each synthesis keeps the *other* function's declared schema fixed.
    assert_perfect_and_maximal(&problem, &doc, "f");
    assert_perfect_and_maximal(&problem, &doc, "g");
}

#[test]
fn residual_determinisations_are_memoised_per_problem() {
    // Synthesis determinises each docking parent's content model at most
    // once per problem: repeated perfect_schema calls reuse the memo.
    let problem = DesignProblem::new(dtd("s -> a, b*\nb -> c?"));
    let doc = DistributedDoc::parse("s(a f)", ["f"]).unwrap();
    let first = problem.perfect_schema(&doc, "f").unwrap();
    let after_first = problem.cache_stats();
    assert!(after_first.target_cache_built);
    assert!(
        after_first.residual_dfa_builds >= 1,
        "synthesis must go through the residual-DFA memo"
    );
    let second = problem.perfect_schema(&doc, "f").unwrap();
    let after_second = problem.cache_stats();
    assert_eq!(
        after_second.residual_dfa_builds, after_first.residual_dfa_builds,
        "a repeated synthesis must not determinise any further residual input"
    );
    assert!(
        after_second.residual_dfa_hits > after_first.residual_dfa_hits,
        "the repeated synthesis must be served from the memo"
    );
    // The memo is an optimisation only: both syntheses agree.
    let fa = first.content(first.start()).to_nfa();
    let fb = second.content(second.start()).to_nfa();
    assert!(dxml_automata::equiv::is_equivalent(&fa, &fb));
}
