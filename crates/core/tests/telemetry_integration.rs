//! End-to-end telemetry integration: with the gate enabled, one pass of
//! design typechecking, local verification, streaming validation and batch
//! validation must light up a broad cross-section of the metric registry.
//!
//! This test owns its process (integration tests build as separate
//! binaries), so flipping the global gate here cannot interfere with the
//! library's unit tests or any other integration binary.

use dxml_core::{validate_batch, DesignProblem, DistributedDoc};
use dxml_schema::{RDtd, RSdtd, StreamValidator};
use dxml_telemetry as telemetry;

#[test]
fn enabled_engine_pass_lights_up_the_registry() {
    telemetry::set_enabled(true);
    telemetry::reset();

    // Design layer: typecheck + verify_local over the paper's Figure 3
    // design (exercises the interner, subset construction, the target
    // cache, the residual-DFA memo and the extension memo).
    let target = RDtd::parse(
        dxml_automata::RFormalism::Nre,
        "eurostat -> averages, nationalIndex*\n\
         averages -> (Good, index+)+\n\
         nationalIndex -> country, Good, (index | value, year)\n\
         index -> value, year",
    )
    .unwrap();
    let office = RDtd::parse(
        dxml_automata::RFormalism::Nre,
        "natResult -> nationalIndex*\n\
         nationalIndex -> country, Good, index\n\
         index -> value, year",
    )
    .unwrap();
    let problem = DesignProblem::new(target)
        .with_function("fDE", office.clone())
        .with_function("fFR", office);
    let doc = DistributedDoc::parse(
        "eurostat(averages(Good index(value year)) fDE fFR)",
        ["fDE", "fFR"],
    )
    .unwrap();
    assert!(problem.typecheck(&doc).unwrap().is_valid());
    assert!(problem.verify_local(&doc).unwrap().is_valid());
    // Repeat once so the memo caches record hits, not just misses.
    assert!(problem.typecheck(&doc).unwrap().is_valid());
    // Perfect-schema synthesis drives the residual-DFA memo.
    problem.perfect_schema(&doc, "fDE").expect("synthesis succeeds");

    // Streaming layer: one well-formed document through the one-pass
    // validator, then a small batch through the parallel driver.
    let sdtd = RSdtd::parse(dxml_automata::RFormalism::Nre, "s -> r*\nr -> a, b?").unwrap();
    let validator = StreamValidator::new(&sdtd);
    assert!(validator.validate("<s><r><a/><b/></r><r><a/></r></s>").is_ok());
    let docs: Vec<String> = (0..8).map(|_| "<s><r><a/></r></s>".to_string()).collect();
    assert!(validate_batch(&sdtd, &docs).iter().all(Result::is_ok));

    let snapshot = telemetry::Snapshot::take();
    assert!(snapshot.enabled, "snapshot must report the gate as enabled");
    let nonzero = snapshot.nonzero_metrics();
    assert!(
        nonzero >= 10,
        "one engine pass should light up at least 10 distinct metrics, got {nonzero}:\n{}",
        snapshot.render()
    );

    // Spot-check one metric per instrumented subsystem, so a dropped call
    // site fails loudly rather than just shrinking the count above.
    for metric in [
        telemetry::Metric::SymbolsInterned,
        telemetry::Metric::SubsetConstructions,
        telemetry::Metric::TargetCacheBuilds,
        telemetry::Metric::ResidualDfaBuilds,
        telemetry::Metric::StreamDocs,
        telemetry::Metric::BatchRuns,
        telemetry::Metric::SpanEntered,
    ] {
        assert!(
            snapshot.counter(metric) > 0,
            "expected non-zero counter {}:\n{}",
            metric.name(),
            snapshot.render()
        );
    }
    for hist in [
        telemetry::Hist::StreamDocEvents,
        telemetry::Hist::SpanTypecheckNs,
        telemetry::Hist::SpanValidateStreamNs,
    ] {
        assert!(
            snapshot.histogram(hist).count > 0,
            "expected non-empty histogram {}:\n{}",
            hist.name(),
            snapshot.render()
        );
    }

    // The JSON rendering must carry the same data machine-readably.
    let json = snapshot.to_json();
    assert!(json.contains("\"enabled\": true"));
    assert!(json.contains("\"stream.docs\""));
}
