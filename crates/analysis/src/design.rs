//! Design-level analysis passes over [`DesignProblem`] (DTD targets) and
//! [`BoxDesignProblem`] (EDTD targets): the schema rules applied to the
//! target and every function schema, plus the rules that need the
//! distributed document — shadowing, never-docked and schema-less
//! functions, vacuous designs, and the multi-parent docking advisory that
//! predicts `SynthesisUnsupported` for box synthesis.

use std::collections::BTreeSet;

use dxml_automata::Symbol;
use dxml_core::{BoxDesignProblem, DesignProblem, DistributedDoc};

use crate::cost::{
    box_design_cost, design_cost, recommended_quotas, DesignCost, ATTENTION_THRESHOLD,
    DEFAULT_HEADROOM,
};
use crate::rules::{analyze_dtd, analyze_edtd};
use crate::{sort_report, Diagnostic, Severity};

/// Analyzes a design problem with a DTD target: schema rules over the
/// target and the function schemas, plus the design-level rules. Multi-
/// parent docking is *not* flagged here — `DesignProblem::perfect_schema`
/// supports it via uniform context residuals.
pub fn analyze_design(problem: &DesignProblem, doc: &DistributedDoc) -> Vec<Diagnostic> {
    let mut out = prefixed(analyze_dtd(problem.doc_schema()), "target schema");
    for (f, schema) in problem.fun_schemas() {
        out.extend(prefixed(analyze_dtd(schema), &format!("schema of function `{f}`")));
        if schema.language_is_empty() {
            out.push(empty_function_schema(f));
        }
        if problem.doc_schema().alphabet().contains(f) {
            out.push(shadowing(f));
        }
    }
    out.extend(doc_rules(
        doc,
        problem.doc_schema().language_is_empty(),
        &problem.fun_schemas().keys().copied().collect(),
    ));
    out.extend(cost_advisories(&design_cost(problem)));
    sort_report(&mut out);
    out
}

/// Analyzes a box-design problem (EDTD target): the EDTD schema rules —
/// including the definability advisories that unlock the SDTD/DTD fast
/// paths — plus the design-level rules and the multi-parent docking
/// advisory (`DX012`), which predicts exactly the condition under which
/// [`BoxDesignProblem::perfect_schema`] refuses with `SynthesisUnsupported`.
pub fn analyze_box_design(problem: &BoxDesignProblem, doc: &DistributedDoc) -> Vec<Diagnostic> {
    let mut out = prefixed(analyze_edtd(problem.doc_schema()), "target schema");
    for (f, schema) in problem.fun_schemas() {
        out.extend(prefixed(analyze_edtd(schema), &format!("schema of function `{f}`")));
        if schema.language_is_empty() {
            out.push(empty_function_schema(f));
        }
        if problem.doc_schema().labels().contains(f) {
            out.push(shadowing(f));
        }
    }
    out.extend(doc_rules(
        doc,
        problem.doc_schema().language_is_empty(),
        &problem.fun_schemas().keys().copied().collect(),
    ));
    // Multi-parent docking: the same scan `perfect_schema` performs.
    let kernel = doc.kernel();
    for f in doc.called_functions() {
        let mut parents = BTreeSet::new();
        for parent in kernel.document_order() {
            if doc.is_function(kernel.label(parent)) {
                continue;
            }
            if kernel.children(parent).iter().any(|&c| kernel.label(c) == &f) {
                parents.insert(parent);
            }
        }
        if parents.len() > 1 {
            out.push(
                Diagnostic::new(
                    "DX012",
                    Severity::Warning,
                    format!("function `{f}`"),
                    format!(
                        "function `{f}` docks under {} distinct parents: box schema \
                         synthesis (`perfect_schema`) will refuse with `SynthesisUnsupported`",
                        parents.len()
                    ),
                )
                .with_suggestion(
                    "regroup the docking points under a single parent, or split the \
                     function into one function per parent",
                ),
            );
        }
    }
    out.extend(cost_advisories(&box_design_cost(problem)));
    sort_report(&mut out);
    out
}

/// The static-cost advisories: `DX015` (the recommended budget quotas)
/// and `DX016` (one location dominates the predicted cost). Both are
/// threshold-gated — they fire only when the predicted upper state bound
/// reaches [`ATTENTION_THRESHOLD`] or a rule is predicted-exponential
/// (`DX014` territory) — so cheap designs stay diagnostic-free.
fn cost_advisories(cost: &DesignCost) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let exponential = cost.target.exponential().next().is_some()
        || cost.functions.iter().any(|(_, s)| s.exponential().next().is_some());
    if cost.states.upper < ATTENTION_THRESHOLD && !exponential {
        return out;
    }
    let (state_quota, step_quota) = recommended_quotas(cost, DEFAULT_HEADROOM);
    out.push(
        Diagnostic::new(
            "DX015",
            Severity::Info,
            "design",
            format!(
                "predicted determinisation cost: {} subset states, {} governed steps \
                 (determinised tree target: {} states)",
                cost.states, cost.steps, cost.duta_states
            ),
        )
        .with_suggestion(format!(
            "run this design governed: `cost::recommend_budget` synthesises a budget \
             with state quota {state_quota} and step quota {step_quota} \
             (headroom {DEFAULT_HEADROOM})"
        )),
    );
    if let Some(dom) = &cost.dominant {
        out.push(Diagnostic::new(
            "DX016",
            Severity::Info,
            dom.location.clone(),
            format!(
                "this content model dominates the design's predicted cost: {} of the \
                 {} upper-bound subset states",
                dom.upper, dom.total_upper
            ),
        ));
    }
    out
}

/// The document-dependent rules shared by both passes: vacuous designs,
/// never-docked functions and called-but-schema-less functions.
fn doc_rules(
    doc: &DistributedDoc,
    target_empty: bool,
    declared: &BTreeSet<Symbol>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if target_empty {
        out.push(Diagnostic::new(
            "DX008",
            Severity::Error,
            "design",
            "the design is vacuous: the target schema's language is empty, so no \
             materialisation of any document can typecheck",
        ));
    }
    let called = doc.called_functions();
    for f in declared {
        if !called.contains(f) {
            out.push(
                Diagnostic::new(
                    "DX010",
                    Severity::Warning,
                    format!("function `{f}`"),
                    format!("function `{f}` has a schema but the document never calls it"),
                )
                .with_suggestion("remove the unused schema or dock the function in the kernel"),
            );
        }
    }
    for f in &called {
        if !declared.contains(f) {
            out.push(Diagnostic::new(
                "DX011",
                Severity::Error,
                format!("function `{f}`"),
                format!(
                    "function `{f}` is called by the document but has no schema: \
                     typechecking will fail with `MissingFunctionSchema`"
                ),
            ));
        }
    }
    out
}

fn empty_function_schema(f: &Symbol) -> Diagnostic {
    Diagnostic::new(
        "DX013",
        Severity::Warning,
        format!("function `{f}`"),
        format!(
            "the schema of function `{f}` has an empty language: every call site is \
             unsatisfiable and the design cannot typecheck once `{f}` is called"
        ),
    )
}

fn shadowing(f: &Symbol) -> Diagnostic {
    Diagnostic::new(
        "DX009",
        Severity::Warning,
        format!("function `{f}`"),
        format!(
            "function `{f}` shares its name with an element of the target schema: \
             kernel nodes labelled `{f}` are docking points, never plain elements"
        ),
    )
    .with_suggestion("rename the function; docking is detected purely by label")
}

fn prefixed(mut report: Vec<Diagnostic>, prefix: &str) -> Vec<Diagnostic> {
    for d in &mut report {
        d.location = format!("{prefix}: {}", d.location);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxml_automata::{RFormalism, RSpec, Regex};
    use dxml_schema::{RDtd, REdtd};
    use dxml_tree::XTree;

    fn codes(report: &[Diagnostic]) -> Vec<&'static str> {
        report.iter().map(|d| d.code).collect()
    }

    /// Target `s -> a, f?`; kernel `s(a f)`; one function `f` returning `a`.
    fn simple_design() -> (DesignProblem, DistributedDoc) {
        let mut target = RDtd::new(RFormalism::Nre, "s");
        target.set_rule("s", RSpec::Nre(Regex::parse("a, a?").unwrap()));
        let mut fschema = RDtd::new(RFormalism::Nre, "a");
        fschema.add_element("a");
        let problem = DesignProblem::new(target).with_function("f", fschema);
        let mut kernel = XTree::leaf("s");
        kernel.add_child(0, "a");
        kernel.add_child(0, "f");
        let doc = DistributedDoc::new(kernel, ["f"]).unwrap();
        (problem, doc)
    }

    #[test]
    fn clean_design_yields_no_diagnostics() {
        let (problem, doc) = simple_design();
        let report = analyze_design(&problem, &doc);
        assert!(report.is_empty(), "{report:?}");
        assert!(problem.typecheck(&doc).unwrap().is_valid());
    }

    #[test]
    fn never_docked_and_missing_schema_functions() {
        let (problem, doc) = simple_design();
        // `g` declared but never called.
        let mut extra = RDtd::new(RFormalism::Nre, "a");
        extra.add_element("a");
        let problem = problem.with_function("g", extra);
        let report = analyze_design(&problem, &doc);
        assert_eq!(codes(&report), vec!["DX010"]);
        // `h` called but undeclared.
        let mut kernel = XTree::leaf("s");
        kernel.add_child(0, "a");
        kernel.add_child(0, "h");
        let doc2 = DistributedDoc::new(kernel, ["h"]).unwrap();
        let report = analyze_design(&problem, &doc2);
        assert!(codes(&report).contains(&"DX011"));
        assert_eq!(report[0].severity, Severity::Error);
    }

    #[test]
    fn vacuous_designs_and_empty_function_schemas() {
        let (_, doc) = simple_design();
        let mut empty_target = RDtd::new(RFormalism::Nre, "s");
        empty_target.set_rule("s", RSpec::Nre(Regex::sym("s")));
        let mut empty_fun = RDtd::new(RFormalism::Nre, "r");
        empty_fun.set_rule("r", RSpec::Nre(Regex::sym("r")));
        let problem = DesignProblem::new(empty_target).with_function("f", empty_fun);
        let report = analyze_design(&problem, &doc);
        let c = codes(&report);
        assert!(c.contains(&"DX008"), "{c:?}");
        assert!(c.contains(&"DX013"), "{c:?}");
        // DX008 is design-level; the target schema's own DX001 also fires,
        // prefixed with its location.
        assert!(report.iter().any(|d| d.code == "DX001" && d.location.starts_with("target")));
    }

    #[test]
    fn shadowing_functions_are_flagged() {
        let (problem, _) = simple_design();
        let mut fschema = RDtd::new(RFormalism::Nre, "a");
        fschema.add_element("a");
        // `a` is an element of the target — shadowed.
        let problem = problem.with_function("a", fschema);
        let mut kernel = XTree::leaf("s");
        kernel.add_child(0, "a");
        kernel.add_child(0, "f");
        let doc = DistributedDoc::new(kernel, ["f", "a"]).unwrap();
        let report = analyze_design(&problem, &doc);
        assert!(codes(&report).contains(&"DX009"), "{report:?}");
    }

    #[test]
    fn multi_parent_docking_predicts_synthesis_unsupported() {
        // Target s -> b b, b -> f?: `f` docks under both `b` nodes.
        let mut target = REdtd::new(RFormalism::Nre, "s", "s");
        target.set_rule("s", RSpec::Nre(Regex::parse("b, b").unwrap()));
        target.set_rule("b", RSpec::Nre(Regex::parse("c?").unwrap()));
        let mut fschema = REdtd::new(RFormalism::Nre, "c", "c");
        fschema.add_specialization("c", "c");
        let problem = BoxDesignProblem::new(target).with_function("f", fschema);
        let mut kernel = XTree::leaf("s");
        let b1 = kernel.add_child(0, "b");
        let b2 = kernel.add_child(0, "b");
        kernel.add_child(b1, "f");
        kernel.add_child(b2, "f");
        let doc = DistributedDoc::new(kernel, ["f"]).unwrap();
        let report = analyze_box_design(&problem, &doc);
        assert!(codes(&report).contains(&"DX012"), "{report:?}");
        // The advisory predicts the actual synthesis error.
        assert!(matches!(
            problem.perfect_schema(&doc, "f"),
            Err(dxml_core::DesignError::SynthesisUnsupported { .. })
        ));
        // A single-parent variant is clean.
        let mut kernel = XTree::leaf("s");
        let b1 = kernel.add_child(0, "b");
        kernel.add_child(0, "b");
        kernel.add_child(b1, "f");
        let doc = DistributedDoc::new(kernel, ["f"]).unwrap();
        let report = analyze_box_design(&problem, &doc);
        assert!(!codes(&report).contains(&"DX012"), "{report:?}");
    }

    #[test]
    fn cost_advisories_fire_only_above_the_attention_threshold() {
        // A predicted-exponential rule pushes the design over the gate:
        // DX014 on the rule, DX015 with the recommended quotas, DX016 on
        // the dominating location.
        let mut target = RDtd::parse(RFormalism::Nre, "s -> a?").unwrap();
        let tail = " (a | b)".repeat(9);
        target.set_rule("a", RSpec::Nre(Regex::parse(&format!("(a | b)* a{tail}")).unwrap()));
        let problem = DesignProblem::new(target);
        let mut kernel = XTree::leaf("s");
        kernel.add_child(0, "a");
        let doc = DistributedDoc::new(kernel, Vec::<Symbol>::new()).unwrap();
        let report = analyze_design(&problem, &doc);
        let c = codes(&report);
        assert!(c.contains(&"DX014"), "{c:?}");
        assert!(c.contains(&"DX015"), "{c:?}");
        assert!(c.contains(&"DX016"), "{c:?}");
        let dx15 = report.iter().find(|d| d.code == "DX015").unwrap();
        assert_eq!(dx15.severity, Severity::Info);
        assert!(
            dx15.suggestion.as_deref().is_some_and(|s| s.contains("state quota")),
            "{:?}",
            dx15.suggestion
        );
        let dx16 = report.iter().find(|d| d.code == "DX016").unwrap();
        assert!(dx16.location.contains("element `a`"), "{}", dx16.location);
    }

    #[test]
    fn box_targets_get_definability_advisories() {
        // An EDTD target that is secretly a DTD: advisory DX007 fires on
        // the target schema, prefixed with its location.
        let mut target = REdtd::new(RFormalism::Nre, "s", "s");
        target.add_specialization("x", "a");
        target.add_specialization("y", "a");
        target.set_rule("s", RSpec::Nre(Regex::parse("x y*").unwrap()));
        target.set_rule("x", RSpec::Nre(Regex::parse("b").unwrap()));
        target.set_rule("y", RSpec::Nre(Regex::parse("b").unwrap()));
        let problem = BoxDesignProblem::new(target);
        let mut kernel = XTree::leaf("s");
        let a = kernel.add_child(0, "a");
        kernel.add_child(a, "b");
        let doc = DistributedDoc::new(kernel, Vec::<Symbol>::new()).unwrap();
        let report = analyze_box_design(&problem, &doc);
        let advisory = report.iter().find(|d| d.code == "DX007").expect("DTD-definable target");
        assert!(advisory.location.starts_with("target schema"), "{}", advisory.location);
    }
}
